#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, formatting, lints. Any failure fails the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> ci.sh: all green"

#!/usr/bin/env bash
# Tier-1 CI gate: build, tests, formatting, lints. Any failure fails the run.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q (per-package, timed)"
suite_start=$SECONDS
for manifest in crates/*/Cargo.toml shims/*/Cargo.toml Cargo.toml; do
    pkg=$(grep -m1 '^name = ' "$manifest" | cut -d'"' -f2)
    pkg_start=$SECONDS
    cargo test -q -p "$pkg"
    echo "    ${pkg}: $((SECONDS - pkg_start))s"
done
echo "    total test wall time: $((SECONDS - suite_start))s"

echo "==> ablation smoke matrix (differential + scheduler suites under env knobs)"
for combo in "DRBW_NO_FUSE=1" "DRBW_NO_SIMD=1" "DRBW_SHARDS=1" "DRBW_SHARDS=4" \
             "DRBW_NO_FUSE=1 DRBW_NO_SIMD=1 DRBW_SHARDS=4"; do
    combo_start=$SECONDS
    env $combo cargo test -q -p drbw --test differential --test scheduler > /dev/null
    echo "    ${combo}: $((SECONDS - combo_start))s"
done

echo "==> cargo fmt --check"
cargo fmt --check

echo "==> cargo clippy --workspace --all-targets -- -D warnings"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo doc --no-deps (RUSTDOCFLAGS=-D warnings)"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --workspace

echo "==> cargo bench --workspace --no-run (benches must compile)"
cargo bench --workspace --no-run

echo "==> run-cache cold->warm smoke (table1_features twice, byte-identical)"
smoke_cache=$(mktemp -d)
DRBW_RUNCACHE_DIR="$smoke_cache" ./target/release/table1_features \
    > "$smoke_cache/cold.out" 2> "$smoke_cache/cold.err"
DRBW_RUNCACHE_DIR="$smoke_cache" ./target/release/table1_features \
    > "$smoke_cache/warm.out" 2> "$smoke_cache/warm.err"
diff "$smoke_cache/cold.out" "$smoke_cache/warm.out"
warm_hits=$(sed -n 's/.*runcache: hits=\([0-9]*\).*/\1/p' "$smoke_cache/warm.err")
if [ -z "${warm_hits}" ] || [ "${warm_hits}" -eq 0 ]; then
    echo "run-cache smoke: warm pass reported no cache hits" >&2
    exit 1
fi
echo "    warm hits: ${warm_hits}, stdout byte-identical"
rm -rf "$smoke_cache"

echo "==> autotune smoke (closed-loop example, cold->warm on one cache)"
cargo build --release --example autotune
tune_cache=$(mktemp -d)
DRBW_RUNCACHE_DIR="$tune_cache" ./target/release/examples/autotune Streamcluster 32 4 \
    > "$tune_cache/cold.out" 2>/dev/null
warm_start=$SECONDS
DRBW_RUNCACHE_DIR="$tune_cache" ./target/release/examples/autotune Streamcluster 32 4 \
    > "$tune_cache/warm.out" 2>/dev/null
warm_secs=$((SECONDS - warm_start))
# A non-empty TuneReport: candidates evaluated and a verified verdict line.
grep -q '^autotune: evaluated [1-9][0-9]* candidate' "$tune_cache/warm.out" || {
    echo "autotune smoke: no candidate evaluations in the report" >&2
    exit 1
}
diff "$tune_cache/cold.out" "$tune_cache/warm.out"
if [ "$warm_secs" -ge 10 ]; then
    echo "autotune smoke: warm pass took ${warm_secs}s (budget < 10s)" >&2
    exit 1
fi
echo "    warm pass ${warm_secs}s, $(grep '^autotune:' "$tune_cache/warm.out")"
rm -rf "$tune_cache"

echo "==> serve smoke matrix (50 concurrent sessions; block/per-sample/no-SIMD arms)"
serve_cache=$(mktemp -d)
# Three arms over one warm run cache: the columnar block path (default),
# the same with SIMD kernels ablated, and the legacy per-sample offer
# shim. The binary hard-asserts >=1 rmc verdict per contended session,
# zero drops, block-vs-per-sample bit identity, and version-stamped
# windows; here we only gate the budget and sanity-check the snapshots.
for arm in "block:" "block_no_simd:DRBW_NO_SIMD=1" "per_sample:--per-sample"; do
    name=${arm%%:*}
    opt=${arm#*:}
    extra_env=""
    extra_flag=""
    case "$opt" in
        *=*) extra_env=$opt ;;
        --*) extra_flag=$opt ;;
    esac
    serve_start=$SECONDS
    env DRBW_RUNCACHE_DIR="$serve_cache" $extra_env ./target/release/serve_load --smoke $extra_flag \
        --out "$serve_cache/BENCH_serve_$name.json" > "$serve_cache/$name.out"
    serve_secs=$((SECONDS - serve_start))
    grep -q '"samples_dropped": 0' "$serve_cache/BENCH_serve_$name.json" || {
        echo "serve smoke ($name): snapshot reports dropped samples" >&2
        exit 1
    }
    grep -q '"sessions_closed": 50' "$serve_cache/BENCH_serve_$name.json" || {
        echo "serve smoke ($name): snapshot did not close all 50 sessions" >&2
        exit 1
    }
    grep -q '"bit_identity": true' "$serve_cache/BENCH_serve_$name.json" || {
        echo "serve smoke ($name): snapshot missing the block bit-identity attestation" >&2
        exit 1
    }
    if [ "$serve_secs" -ge 15 ]; then
        echo "serve smoke ($name): took ${serve_secs}s (budget < 15s)" >&2
        exit 1
    fi
    echo "    ${name}: ${serve_secs}s, $(grep -o '"verdicts": [0-9]*' "$serve_cache/BENCH_serve_$name.json") across 50 sessions, zero drops"
done
rm -rf "$serve_cache"

echo "==> multi-tenant smoke (victim/aggressor through the discrete-event scheduler)"
tenant_cache=$(mktemp -d)
tenant_start=$SECONDS
DRBW_RUNCACHE_DIR="$tenant_cache" ./target/release/scenario_tenants \
    > "$tenant_cache/smoke.out" 2>/dev/null
tenant_secs=$((SECONDS - tenant_start))
# The binary hard-asserts the control stays good and the contended run
# raises rmc on the victim's 0->1 channel; here we gate the budget and
# sanity-check the verdict lines it printed.
grep -q 'verdict: rmc on 0->1' "$tenant_cache/smoke.out" || {
    echo "multi-tenant smoke: no rmc verdict on the victim's channel" >&2
    exit 1
}
grep -q 'control verdict: good; contended verdict: rmc (detected)' "$tenant_cache/smoke.out" || {
    echo "multi-tenant smoke: summary line missing or wrong" >&2
    exit 1
}
if [ "$tenant_secs" -ge 15 ]; then
    echo "multi-tenant smoke: took ${tenant_secs}s (budget < 15s)" >&2
    exit 1
fi
echo "    ${tenant_secs}s, $(grep 'victim slowdown' "$tenant_cache/smoke.out")"
rm -rf "$tenant_cache"

# Surface the recorded engine speedups so perf regressions are visible
# in CI logs (BENCH_engine.json is refreshed by
# crates/bench/src/bin/bench_engine.rs, not by this script).
if [ -f BENCH_engine.json ]; then
    walk=$(sed -n 's/.*"walk_share": \([0-9.]*\).*/\1/p' BENCH_engine.json)
    fused=$(sed -n 's/.*"fused_s": \([0-9.]*\).*/\1/p' BENCH_engine.json)
    unfused=$(sed -n 's/.*"unfused_s": \([0-9.]*\).*/\1/p' BENCH_engine.json)
    echo "==> recorded walk ablation: fused ${fused:-?}s vs unfused ${unfused:-?}s (walk share ${walk:-?})"
    speedup=$(grep -A5 '"analyze_batch_1thread"' BENCH_engine.json | sed -n 's/.*"speedup": \([0-9.]*\).*/\1/p')
    simd=$(sed -n 's/.*"simd_vs_scalar": \([0-9.]*\).*/\1/p' BENCH_engine.json)
    shard41=$(sed -n 's/.*"shards_4_vs_1": \([0-9.]*\).*/\1/p' BENCH_engine.json)
    echo "==> recorded speedups: analyze_batch_1thread ${speedup:-?}x vs reference, simd vs scalar ${simd:-?}x, shards 4-vs-1 ${shard41:-?}x"
fi

# Surface the recorded 21-program tuned-speedup summary (BENCH_tune.json
# is refreshed by crates/bench/src/bin/table_tune.rs, not by this script).
if [ -f BENCH_tune.json ]; then
    echo "==> recorded autotune summary: $(grep -o '"summary": {[^}]*}' BENCH_tune.json)"
fi

echo "==> ci.sh: all green"

//! Differential tests for the discrete-event scheduler: a scenario whose
//! tenants jointly hold the threads of a single-workload phase — in the
//! same global order, all arriving at time 0, with no bursts or
//! migrations — must reproduce [`ExecMode::Reference`] *bit-for-bit*:
//! `RunStats` (including per-channel bytes), the PEBS sample log, and
//! every sampler counter. No float tolerances anywhere in this file.
//!
//! Only *contiguous, order-preserving* tenant splits are bit-identical:
//! the sampler's latency jitter is salted on the global observed-access
//! counter, so any reordering of threads reorders observation and changes
//! which samples are suppressed. The proptest therefore ranges over
//! arbitrary split masks, not arbitrary permutations.

use numasim::access::{AccessMix, AccessStream, BlockCyclicStream, ChainStream, SeqStream, WithMlp};
use numasim::config::{ExecMode, MachineConfig};
use numasim::engine::{Engine, ThreadSpec};
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::sched::{ScenarioEngine, TenantRun};
use numasim::stats::RunStats;
use numasim::topology::CoreId;
use pebs::sample::MemSample;
use pebs::sampler::{AddressSampler, SamplerConfig};
use proptest::prelude::*;

/// The differential phase of `tests/differential.rs`: write mixes, reps
/// (LFB events), per-segment compute, an MLP override, first-touch and
/// interleaved placement, across all four sockets.
fn make_threads(cfg: &MachineConfig, mm: &mut MemoryMap) -> Vec<ThreadSpec> {
    let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(cfg.topology.num_nodes()));
    let nthreads = 8u64;
    let binding = cfg.topology.bind_threads(nthreads as usize, cfg.topology.num_nodes());
    binding
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let share = a.size / nthreads;
            let seq = SeqStream::new(a.base + i as u64 * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            ThreadSpec::new(i as u32, *core, chain)
        })
        .collect()
}

fn sampler() -> AddressSampler {
    AddressSampler::new(SamplerConfig {
        period: 23,
        latency_threshold: 150.0,
        latency_jitter: 0.3,
        per_sample_cost: 40.0,
    })
}

/// Everything observable from one run: engine stats plus sampler state.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: RunStats,
    samples: Vec<MemSample>,
    observed: u64,
    suppressed: u64,
}

fn run_reference() -> Outcome {
    let mut cfg = MachineConfig::scaled();
    cfg.engine.exec = ExecMode::Reference;
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm);
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase(threads);
    let (_, s) = eng.into_parts();
    Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

/// Partition `threads` into contiguous tenant groups of the given sizes
/// (order preserved) and run them through the scheduler.
fn run_scheduled(cfg: &MachineConfig, mm: MemoryMap, threads: Vec<ThreadSpec>, split: &[usize]) -> Outcome {
    assert_eq!(split.iter().sum::<usize>(), threads.len(), "split must cover every thread");
    let mut tenants = Vec::new();
    let mut iter = threads.into_iter();
    for (tid, &n) in split.iter().enumerate() {
        tenants.push(TenantRun::new(tid as u32, iter.by_ref().take(n).collect()));
    }
    let mut eng = ScenarioEngine::new(cfg, mm, sampler());
    let stats = eng.run(tenants);
    let (_, s) = eng.into_parts();
    Outcome {
        stats: stats.run,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

/// The tentpole guarantee at the facade level: a single-tenant scenario —
/// and any fixed contiguous multi-tenant split — reproduces the reference
/// engine exactly, with a live PEBS sampler attached.
#[test]
fn scheduler_reproduces_reference_bit_for_bit() {
    let reference = run_reference();
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    assert!(reference.suppressed > 0, "threshold must actually suppress");
    let splits: [&[usize]; 5] = [&[8], &[4, 4], &[1, 7], &[2, 3, 3], &[1, 1, 1, 1, 1, 1, 1, 1]];
    for split in splits {
        let cfg = MachineConfig::scaled();
        let mut mm = MemoryMap::new(&cfg);
        let threads = make_threads(&cfg, &mut mm);
        let scheduled = run_scheduled(&cfg, mm, threads, split);
        assert_eq!(scheduled, reference, "scheduled run (split {split:?}) diverged");
    }
}

/// Closing the triangle across execution strategies: the discrete-event
/// scheduler facade, the node-sharded batched engine, and the reference
/// engine all produce the same bits for the same phase — so any pair of
/// them may be differentially tested against each other in the future.
#[test]
fn scheduler_and_sharded_engine_agree() {
    let reference = run_reference();
    let mut cfg = MachineConfig::scaled();
    cfg.engine.exec = ExecMode::Batched;
    cfg.engine.shards = 4;
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm);
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase_auto(threads);
    let (_, s) = eng.into_parts();
    let sharded = Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    };
    assert_eq!(sharded, reference, "sharded engine diverged from reference");
    let cfg = MachineConfig::scaled();
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm);
    let scheduled = run_scheduled(&cfg, mm, threads, &[4, 4]);
    assert_eq!(scheduled, reference, "scheduler diverged from reference");
}

/// Per-tenant rollups must partition the global counts: no access is lost
/// or double-counted across tenant boundaries.
#[test]
fn tenant_rollups_partition_the_global_counts() {
    let cfg = MachineConfig::scaled();
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm);
    let mut tenants = Vec::new();
    let mut iter = threads.into_iter();
    for (tid, n) in [(0u32, 3usize), (1, 5)] {
        tenants.push(TenantRun::new(tid, iter.by_ref().take(n).collect()));
    }
    let mut eng = ScenarioEngine::new(&cfg, mm, numasim::engine::NullObserver);
    let stats = eng.run(tenants);
    let mut rollup = numasim::stats::AccessCounts::default();
    for t in &stats.tenants {
        rollup.merge(&t.counts);
    }
    assert_eq!(rollup, stats.run.counts);
    let max_finish = stats.tenants.iter().map(|t| t.finish_cycles).fold(0.0f64, f64::max);
    assert_eq!(max_finish, stats.run.cycles);
}

/// Smaller machine for the property test so 64 cases stay cheap.
fn make_tiny_threads(mm: &mut MemoryMap) -> Vec<ThreadSpec> {
    let a = mm.alloc("a", 256 << 10, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 128 << 10, PlacementPolicy::interleave_all(2));
    (0..4u64)
        .map(|i| {
            let share = a.size / 4;
            let seq = SeqStream::new(a.base + i * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 4, i, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            ThreadSpec::new(i as u32, CoreId((i % 4) as u32), chain)
        })
        .collect()
}

fn tiny_reference() -> &'static Outcome {
    static REF: std::sync::OnceLock<Outcome> = std::sync::OnceLock::new();
    REF.get_or_init(|| {
        let mut cfg = MachineConfig::tiny();
        cfg.engine.exec = ExecMode::Reference;
        let mut mm = MemoryMap::new(&cfg);
        let threads = make_tiny_threads(&mut mm);
        let mut eng = Engine::new(&cfg, mm, sampler());
        let stats = eng.run_phase(threads);
        let (_, s) = eng.into_parts();
        Outcome {
            stats,
            observed: s.observed_accesses(),
            suppressed: s.suppressed_samples(),
            samples: s.samples().to_vec(),
        }
    })
}

/// A split mask over 4 threads: bit `i` set means "start a new tenant
/// before thread `i+1`", covering every contiguous partition from one
/// 4-thread tenant to four singletons.
fn split_from_mask(mask: u8) -> Vec<usize> {
    let mut split = vec![1usize];
    for i in 0..3 {
        if mask & (1 << i) != 0 {
            split.push(1);
        } else {
            *split.last_mut().unwrap() += 1;
        }
    }
    split
}

proptest! {
    #[test]
    fn arbitrary_tenant_splits_match_reference(mask in 0u8..8) {
        let split = split_from_mask(mask);
        let cfg = MachineConfig::tiny();
        let mut mm = MemoryMap::new(&cfg);
        let threads = make_tiny_threads(&mut mm);
        let scheduled = run_scheduled(&cfg, mm, threads, &split);
        prop_assert_eq!(&scheduled, tiny_reference(), "split {:?} diverged", split);
    }
}

//! The run cache's bit-identity contract, tested from the outside:
//! cache-served results must be indistinguishable from fresh
//! `ExecMode::Batched` simulation under both sampling paths, arbitrary
//! sample logs must survive the columnar codec, and damaged or
//! stale-schema entries must fall back to recomputation with the right
//! miss accounting.

use numasim::config::{ExecMode, MachineConfig};
use numasim::hierarchy::DataSource;
use numasim::topology::{CoreId, NodeId, ThreadId};
use pebs::ring::SampleRing;
use pebs::sample::MemSample;
use pebs::sampler::SamplerConfig;
use pebs::stream::StreamingSampler;
use proptest::prelude::*;
use runcache::{codec, run_memo, RunCache, RunKey};
use workloads::config::{Input, RunConfig, Variant};
use workloads::micro::Sumv;
use workloads::runner::{run, run_observed};
use workloads::spec::Workload;

fn tmp_cache(tag: &str) -> (std::path::PathBuf, RunCache) {
    let dir = std::env::temp_dir().join(format!("drbw_runcache_it_{tag}_{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let cache = RunCache::open(&dir).expect("open temp run cache");
    (dir, cache)
}

fn batched() -> MachineConfig {
    let mut m = MachineConfig::scaled();
    m.engine.exec = ExecMode::Batched;
    m
}

/// Cache-served profiled runs are bit-identical to a fresh batched
/// simulation under the batch-pipeline `AddressSampler`.
#[test]
fn warm_entries_match_fresh_batched_simulation_address_sampler() {
    let (dir, cache) = tmp_cache("addr");
    let mcfg = batched();
    let rcfg = RunConfig::new(16, 4, Input::Medium);
    let scfg = SamplerConfig::default();

    let fresh = run(&Sumv, &mcfg, &rcfg, Some(scfg));
    let cold = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
    let warm = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
    let m = cache.metrics();
    assert_eq!((m.hits, m.misses, m.stores), (1, 1, 1), "second lookup must hit: {m}");

    for outcome in [&cold, &warm] {
        assert_eq!(outcome.samples, fresh.samples, "sample log diverged");
        assert_eq!(outcome.observed_accesses, fresh.observed_accesses);
        assert_eq!(outcome.phases.len(), fresh.phases.len());
        for (a, b) in outcome.phases.iter().zip(&fresh.phases) {
            assert_eq!(a.name, b.name);
            assert_eq!(a.warmup, b.warmup);
            assert_eq!(a.stats, b.stats, "phase {} RunStats diverged", a.name);
        }
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// The same contract through the streaming path: a `StreamingSampler`
/// with a loss-free ring observes the identical sample stream, and that
/// ring-drained log survives the columnar codec bit-exactly.
#[test]
fn warm_entries_match_streaming_sampler_log() {
    let (dir, cache) = tmp_cache("stream");
    let mcfg = batched();
    let rcfg = RunConfig::new(16, 4, Input::Medium);
    let scfg = SamplerConfig::default();

    let warm = {
        let _populate = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
        run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg))
    };
    assert_eq!(cache.metrics().hits, 1);

    let (phases, _tracker, sampler) =
        run_observed(&Sumv, &mcfg, &rcfg, StreamingSampler::new(scfg, SampleRing::new(1 << 20)));
    let mut ring = sampler.into_ring();
    let mut streamed = Vec::with_capacity(ring.len());
    while let Some(s) = ring.pop() {
        streamed.push(s);
    }
    assert_eq!(warm.samples, streamed, "cache-served log diverged from the streaming sampler's ring");
    for (a, b) in warm.phases.iter().zip(&phases) {
        assert_eq!(a.stats, b.stats, "phase {} RunStats diverged from the streaming run", a.name);
    }

    let mut encoded = Vec::new();
    codec::encode_samples(&mut encoded, &streamed);
    let mut r = codec::Reader::new(&encoded);
    let decoded = codec::decode_samples(&mut r).expect("ring-drained log must decode");
    r.expect_end().expect("no trailing bytes");
    assert_eq!(decoded, streamed, "codec roundtrip of the streamed log diverged");
    std::fs::remove_dir_all(&dir).ok();
}

/// Unprofiled runs (the ground-truth probes) memoize under their own
/// keys and come back bit-identical too.
#[test]
fn unprofiled_probe_runs_memoize_bit_identically() {
    let (dir, cache) = tmp_cache("probe");
    let mcfg = batched();
    let rcfg = RunConfig::new(16, 4, Input::Medium).with_variant(Variant::InterleaveAll);

    let fresh = run(&Sumv, &mcfg, &rcfg, None);
    let _cold = run_memo(&cache, &Sumv, &mcfg, &rcfg, None);
    let warm = run_memo(&cache, &Sumv, &mcfg, &rcfg, None);
    assert_eq!(cache.metrics().hits, 1);
    assert!(warm.samples.is_empty());
    assert_eq!(warm.cycles(), fresh.cycles());
    for (a, b) in warm.phases.iter().zip(&fresh.phases) {
        assert_eq!(a.stats, b.stats);
    }
    std::fs::remove_dir_all(&dir).ok();
}

/// Every single-byte corruption of a stored entry is rejected at lookup
/// and transparently recomputed, counted as a corrupt miss — never
/// served, never a panic.
#[test]
fn corrupted_entries_recompute_with_miss_accounting() {
    let (dir, cache) = tmp_cache("corrupt");
    let mcfg = batched();
    let rcfg = RunConfig::new(8, 2, Input::Small);
    let scfg = SamplerConfig::default();

    let baseline = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
    let key = RunKey::for_run(&mcfg, Sumv.name(), &rcfg, Some(&scfg));
    let path = dir.join(key.file_name());
    let good = std::fs::read(&path).expect("entry exists after a store");

    // Flip one byte at a spread of offsets, including the version word,
    // the key echo, the checksum, and payload bytes.
    let offsets = [0, 8, 11, 12, 27, 28, 35, 36, 43, 44, good.len() / 2, good.len() - 1];
    let mut corrupt_seen = 0;
    let mut version_seen = 0;
    for (i, &off) in offsets.iter().enumerate() {
        let mut bad = good.clone();
        bad[off] ^= 0x01;
        std::fs::write(&path, &bad).expect("plant corrupted entry");
        let before = cache.metrics();
        let recomputed = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
        let after = cache.metrics();
        assert_eq!(after.hits, before.hits, "corrupted byte {off} was served as a hit");
        assert_eq!(after.misses, before.misses + 1, "corruption at {off} must count as a miss");
        corrupt_seen += (after.corrupt - before.corrupt) as usize;
        version_seen += (after.version_mismatch - before.version_mismatch) as usize;
        assert_eq!(recomputed.samples, baseline.samples, "iteration {i}: recompute diverged");
        // The store path repairs the entry; verify it serves again.
        let healed = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
        assert_eq!(healed.samples, baseline.samples);
    }
    assert_eq!(corrupt_seen + version_seen, offsets.len(), "every flip must be rejected");
    assert!(version_seen >= 1, "flips inside the version word must count as version mismatches");
    std::fs::remove_dir_all(&dir).ok();
}

/// Truncated entries (torn writes) are rejected the same way.
#[test]
fn truncated_entries_recompute() {
    let (dir, cache) = tmp_cache("trunc");
    let mcfg = batched();
    let rcfg = RunConfig::new(8, 2, Input::Small);
    let scfg = SamplerConfig::default();

    let baseline = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
    let key = RunKey::for_run(&mcfg, Sumv.name(), &rcfg, Some(&scfg));
    let path = dir.join(key.file_name());
    let good = std::fs::read(&path).expect("entry exists");
    for cut in [0, 7, 20, 43, good.len() / 2, good.len() - 1] {
        std::fs::write(&path, &good[..cut]).expect("plant truncated entry");
        let before = cache.metrics();
        let recomputed = run_memo(&cache, &Sumv, &mcfg, &rcfg, Some(scfg));
        assert_eq!(cache.metrics().corrupt, before.corrupt + 1, "cut at {cut} must be corrupt");
        assert_eq!(recomputed.samples, baseline.samples);
    }
    std::fs::remove_dir_all(&dir).ok();
}

fn arb_source() -> impl Strategy<Value = DataSource> {
    prop_oneof![
        Just(DataSource::L1),
        Just(DataSource::L2),
        Just(DataSource::L3),
        Just(DataSource::Lfb),
        Just(DataSource::LocalDram),
        Just(DataSource::RemoteDram),
    ]
}

/// Arbitrary samples for the codec: unlike the simulator's output these
/// have unordered times, adversarial latencies, and arbitrary addresses,
/// so the delta columns see every sign pattern.
fn arb_codec_sample(nodes: u8) -> impl Strategy<Value = MemSample> {
    (
        (0..nodes, proptest::option::of(0..nodes), arb_source()),
        // Floats come from raw bit patterns so NaNs, infinities, and
        // subnormals all hit the delta columns.
        (any::<u64>(), any::<u64>(), any::<u64>()),
        (any::<u32>(), any::<u32>(), any::<bool>()),
    )
        .prop_map(move |((node, home, source), (time_bits, lat_bits, addr), (cpu, thread, is_write))| MemSample {
            time: f64::from_bits(time_bits),
            addr,
            cpu: CoreId(cpu),
            thread: ThreadId(thread),
            node: NodeId(node),
            source,
            home: home.map(NodeId),
            latency: f64::from_bits(lat_bits),
            is_write,
        })
}

proptest! {
    /// `decode(encode(log)) == log` for arbitrary sample logs, including
    /// NaN/infinite floats (bit-pattern deltas) and unsorted timestamps.
    #[test]
    fn codec_roundtrips_arbitrary_logs(samples in proptest::collection::vec(arb_codec_sample(4), 0..300)) {
        let mut buf = Vec::new();
        codec::encode_samples(&mut buf, &samples);
        let mut r = codec::Reader::new(&buf);
        let decoded = codec::decode_samples(&mut r).expect("encoded log must decode");
        prop_assert!(r.expect_end().is_ok(), "no trailing bytes after a clean encode");
        // MemSample has no PartialEq over NaN latencies; compare bit patterns.
        prop_assert_eq!(decoded.len(), samples.len());
        for (d, s) in decoded.iter().zip(&samples) {
            prop_assert_eq!(d.time.to_bits(), s.time.to_bits());
            prop_assert_eq!(d.latency.to_bits(), s.latency.to_bits());
            prop_assert_eq!(d.addr, s.addr);
            prop_assert_eq!(d.cpu, s.cpu);
            prop_assert_eq!(d.thread, s.thread);
            prop_assert_eq!(d.node, s.node);
            prop_assert_eq!(d.source, s.source);
            prop_assert_eq!(d.home, s.home);
            prop_assert_eq!(d.is_write, s.is_write);
        }
    }

    /// Appending garbage after a valid log must fail decoding (strict
    /// framing), and decoding any strict prefix must never succeed with
    /// the original log's content.
    #[test]
    fn codec_rejects_trailing_garbage(
        samples in proptest::collection::vec(arb_codec_sample(4), 1..50),
        garbage in proptest::collection::vec(any::<u8>(), 1..16),
    ) {
        let mut buf = Vec::new();
        codec::encode_samples(&mut buf, &samples);
        buf.extend_from_slice(&garbage);
        let mut r = codec::Reader::new(&buf);
        let strict = codec::decode_samples(&mut r).and_then(|log| r.expect_end().map(|()| log));
        prop_assert!(strict.is_err(), "trailing bytes must be rejected");
    }
}

//! Cross-crate integration tests: the full DR-BW pipeline
//! (simulate → sample → associate → classify → diagnose → optimize)
//! exercised end to end on the public API.

use drbw::core::classifier::ContentionClassifier;
use drbw::core::{diagnose, profile, training};
use drbw::prelude::*;
use mldt::tree::TrainConfig;
use workloads::runner::run;
use workloads::suite::by_name;

fn machine() -> MachineConfig {
    MachineConfig::scaled()
}

fn quick_classifier(mcfg: &MachineConfig) -> ContentionClassifier {
    let data = training::quick_training_set(mcfg);
    ContentionClassifier::train(&data, TrainConfig::default())
}

#[test]
fn contended_case_detected_diagnosed_and_fixed() {
    let mcfg = machine();
    let clf = quick_classifier(&mcfg);
    let w = by_name("Streamcluster").unwrap();
    let rcfg = RunConfig::new(32, 4, Input::Native);

    // Detect.
    let p = profile(w, &mcfg, &rcfg);
    let det = clf.classify_case(&p, 4);
    assert_eq!(det.mode(), Mode::Rmc, "streamcluster native at T32-N4 must be flagged");
    assert!(!det.contended_channels.is_empty());
    // All contended channels point into node 0, where block lives.
    for ch in &det.contended_channels {
        assert_eq!(ch.dst.0, 0, "contention must target the master node, got {ch}");
    }

    // Diagnose: block is the top object, block + point.p dominate.
    let diag = diagnose(&p, &det.contended_channels);
    assert_eq!(diag.top_object().unwrap().label, "block");
    assert!(diag.cf_of("block") + diag.cf_of("point.p") > 0.9);
    let total: f64 = diag.overall.iter().map(|o| o.cf).sum();
    assert!((total - 1.0).abs() < 1e-9, "CF must sum to 1");

    // Fix: replication of the diagnosed object speeds the program up.
    let base = run(w, &mcfg, &rcfg, None);
    let repl = run(w, &mcfg, &rcfg.with_variant(Variant::Replicate), None);
    assert!(repl.speedup_over(&base) > 1.2, "got {}", repl.speedup_over(&base));
}

#[test]
fn clean_case_stays_clean_end_to_end() {
    let mcfg = machine();
    let clf = quick_classifier(&mcfg);
    let w = by_name("Swaptions").unwrap();
    let p = profile(w, &mcfg, &RunConfig::new(64, 4, Input::Native));
    let det = clf.classify_case(&p, 4);
    assert_eq!(det.mode(), Mode::Good);
    let diag = diagnose(&p, &det.contended_channels);
    assert!(diag.overall.is_empty(), "no contended channels, no diagnosis");
}

#[test]
fn detection_tracks_ground_truth_on_a_mixed_set() {
    // A miniature Table V: a handful of cases with known ground truth.
    let mcfg = machine();
    let clf = quick_classifier(&mcfg);
    let cases = [
        ("Streamcluster", 64, 4, Input::Native, true),
        ("IRSmk", 64, 4, Input::Large, true),
        ("AMG2006", 32, 4, Input::Medium, true),
        ("Blackscholes", 64, 4, Input::Native, false),
        ("EP", 32, 4, Input::Large, false),
        ("MG", 64, 4, Input::Large, false),
    ];
    for (name, t, n, input, expect_rmc) in cases {
        let w = by_name(name).unwrap();
        let p = profile(w, &mcfg, &RunConfig::new(t, n, input));
        let got = clf.classify_case(&p, 4).mode() == Mode::Rmc;
        assert_eq!(got, expect_rmc, "{name} T{t}-N{n}");
    }
}

#[test]
fn profile_is_deterministic_across_calls() {
    let mcfg = machine();
    let w = by_name("NW").unwrap();
    let rcfg = RunConfig::new(16, 4, Input::Medium);
    let p1 = profile(w, &mcfg, &rcfg);
    let p2 = profile(w, &mcfg, &rcfg);
    assert_eq!(p1.samples.len(), p2.samples.len());
    assert_eq!(p1.duration_cycles(), p2.duration_cycles());
    assert_eq!(p1.samples.first().map(|s| s.addr), p2.samples.first().map(|s| s.addr));
}

#[test]
fn drbw_facade_full_pipeline() {
    // The DrBw convenience type, with a quick classifier injected.
    let mcfg = machine();
    let tool = DrBw::new(quick_classifier(&mcfg));
    let w = by_name("AMG2006").unwrap();
    let analysis = tool.analyze(w, &RunConfig::new(32, 4, Input::Medium));
    assert_eq!(analysis.detection.mode(), Mode::Rmc);
    assert_eq!(analysis.diagnosis().top_object().unwrap().label, "RAP_diag_j");
    let rendered = drbw::core::report::render("amg", &analysis.profile, &analysis.detection, &analysis.diagnosis());
    assert!(rendered.contains("RAP_diag_j"));
    assert!(rendered.contains("verdict: rmc"));
}

#[test]
fn interleave_ground_truth_rule_is_usable_from_outside() {
    let mcfg = machine();
    let gt =
        workloads::ground_truth::actual_contention(by_name("SP").unwrap(), &mcfg, &RunConfig::new(64, 4, Input::Large));
    assert!(gt.is_rmc);
    let gt2 =
        workloads::ground_truth::actual_contention(by_name("LU").unwrap(), &mcfg, &RunConfig::new(64, 4, Input::Large));
    assert!(!gt2.is_rmc);
}

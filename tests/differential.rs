//! Differential tests for the run-batched engine: [`ExecMode::Batched`]
//! must reproduce [`ExecMode::Reference`] *bit-for-bit* — `RunStats`
//! (including per-channel bytes), the PEBS sample log, and every sampler
//! counter — for any interleaving of `next_run` sizes. No float
//! tolerances anywhere in this file.

use numasim::access::{Access, AccessMix, AccessRun, AccessStream, BlockCyclicStream, ChainStream, SeqStream, WithMlp};
use numasim::config::{ExecMode, MachineConfig};
use numasim::engine::{Engine, ThreadSpec};
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::stats::RunStats;
use pebs::ring::SampleRing;
use pebs::sample::MemSample;
use pebs::sampler::{AddressSampler, SamplerConfig};
use pebs::stream::StreamingSampler;
use proptest::prelude::*;

/// Wraps a stream and clips each `next_run` request to a cycling schedule
/// of caps, so a single phase exercises many run-boundary shapes (and, via
/// `u64::MAX` entries, the engine's own cap).
struct ScheduledRuns {
    inner: Box<dyn AccessStream>,
    schedule: Vec<u64>,
    next: usize,
}

impl ScheduledRuns {
    fn new(inner: Box<dyn AccessStream>, schedule: Vec<u64>) -> Self {
        assert!(!schedule.is_empty() && schedule.iter().all(|&c| c >= 1));
        Self { inner, schedule, next: 0 }
    }
}

impl AccessStream for ScheduledRuns {
    fn next_access(&mut self) -> Option<Access> {
        self.inner.next_access()
    }

    fn compute_cycles(&self) -> f64 {
        self.inner.compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.inner.mlp()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        let cap = self.schedule[self.next].min(max);
        self.next = (self.next + 1) % self.schedule.len();
        self.inner.next_run(cap)
    }
}

/// A contended multi-thread phase mixing everything the batcher has to get
/// right: write mixes, reps (LFB events), per-segment compute (the
/// headline bug), an MLP override, first-touch and interleaved placement.
fn make_threads(cfg: &MachineConfig, mm: &mut MemoryMap, schedule: Option<&[u64]>) -> Vec<ThreadSpec> {
    let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(cfg.topology.num_nodes()));
    let nthreads = 8u64;
    let binding = cfg.topology.bind_threads(nthreads as usize, cfg.topology.num_nodes());
    binding
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let share = a.size / nthreads;
            let seq = SeqStream::new(a.base + i as u64 * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            let stream: Box<dyn AccessStream> = match schedule {
                Some(s) => Box::new(ScheduledRuns::new(chain, s.to_vec())),
                None => chain,
            };
            ThreadSpec::new(i as u32, *core, stream)
        })
        .collect()
}

/// A sampler aggressive enough to take many samples, suppress some below
/// the (jittered) threshold, and perturb thread clocks per sample.
fn sampler() -> AddressSampler {
    AddressSampler::new(SamplerConfig {
        period: 23,
        latency_threshold: 150.0,
        latency_jitter: 0.3,
        per_sample_cost: 40.0,
    })
}

/// Everything observable from one run: engine stats plus sampler state.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: RunStats,
    samples: Vec<MemSample>,
    observed: u64,
    suppressed: u64,
}

fn run_sampled(exec: ExecMode, schedule: Option<&[u64]>) -> Outcome {
    let mut cfg = MachineConfig::scaled();
    cfg.engine.exec = exec;
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm, schedule);
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase(threads);
    let (_, s) = eng.into_parts();
    Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

/// The tentpole guarantee: batched == reference, bit for bit, with a live
/// PEBS sampler attached — `RunStats` (hence channel bytes), the full
/// sample log, the observed-access counter (which salts latency jitter),
/// and the suppression counter.
#[test]
fn batched_reproduces_reference_bit_for_bit() {
    let reference = run_sampled(ExecMode::Reference, None);
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    assert!(reference.suppressed > 0, "threshold must actually suppress");
    let schedules: [Option<&[u64]>; 5] = [None, Some(&[1]), Some(&[7]), Some(&[64]), Some(&[1, 7, 64, u64::MAX])];
    for schedule in schedules {
        let batched = run_sampled(ExecMode::Batched, schedule);
        assert_eq!(batched, reference, "batched run (schedule {schedule:?}) diverged");
    }
}

/// Same guarantee through the streaming adapter: the ring's drained
/// contents and overflow accounting match per-event delivery exactly.
#[test]
fn streaming_sampler_ring_is_identical_across_modes() {
    let run = |exec: ExecMode| {
        let mut cfg = MachineConfig::scaled();
        cfg.engine.exec = exec;
        let mut mm = MemoryMap::new(&cfg);
        let threads = make_threads(&cfg, &mut mm, None);
        let obs = StreamingSampler::new(
            SamplerConfig { period: 23, latency_threshold: 150.0, latency_jitter: 0.3, per_sample_cost: 40.0 },
            SampleRing::new(1 << 16),
        );
        let mut eng = Engine::new(&cfg, mm, obs);
        let stats = eng.run_phase(threads);
        let (_, s) = eng.into_parts();
        let observed = s.observed_accesses();
        let mut ring = s.into_ring();
        let mut drained = Vec::new();
        while let Some(sample) = ring.pop() {
            drained.push(sample);
        }
        (stats, observed, ring.dropped(), drained)
    };
    let reference = run(ExecMode::Reference);
    let batched = run(ExecMode::Batched);
    assert!(!reference.3.is_empty(), "ring must carry samples");
    assert_eq!(batched, reference);
}

/// Property: *any* interleaving of run sizes — including ones that chop
/// runs mid-line-group or span segment boundaries — reproduces the
/// reference access-for-access. Smaller machine so 64 cases stay cheap.
fn run_tiny(exec: ExecMode, schedule: Option<&[u64]>) -> Outcome {
    let mut cfg = MachineConfig::tiny();
    cfg.engine.exec = exec;
    let mut mm = MemoryMap::new(&cfg);
    let a = mm.alloc("a", 256 << 10, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 128 << 10, PlacementPolicy::interleave_all(2));
    let threads = (0..4u64)
        .map(|i| {
            let share = a.size / 4;
            let seq = SeqStream::new(a.base + i * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 4, i, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            let stream: Box<dyn AccessStream> = match schedule {
                Some(s) => Box::new(ScheduledRuns::new(chain, s.to_vec())),
                None => chain,
            };
            ThreadSpec::new(i as u32, numasim::topology::CoreId((i % 4) as u32), stream)
        })
        .collect();
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase(threads);
    let (_, s) = eng.into_parts();
    Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

fn tiny_reference() -> &'static Outcome {
    static REF: std::sync::OnceLock<Outcome> = std::sync::OnceLock::new();
    REF.get_or_init(|| run_tiny(ExecMode::Reference, None))
}

fn arb_cap() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(7), Just(64), Just(u64::MAX), 1u64..97]
}

proptest! {
    #[test]
    fn arbitrary_run_schedules_match_reference(
        schedule in proptest::collection::vec(arb_cap(), 1..6),
    ) {
        let batched = run_tiny(ExecMode::Batched, Some(&schedule));
        prop_assert_eq!(&batched, tiny_reference(), "schedule {:?} diverged", schedule);
    }
}

//! Differential tests for the run-batched engine: [`ExecMode::Batched`]
//! must reproduce [`ExecMode::Reference`] *bit-for-bit* — `RunStats`
//! (including per-channel bytes), the PEBS sample log, and every sampler
//! counter — for any interleaving of `next_run` sizes. No float
//! tolerances anywhere in this file.

use numasim::access::{Access, AccessMix, AccessRun, AccessStream, BlockCyclicStream, ChainStream, SeqStream, WithMlp};
use numasim::cache::{Cache, CacheStats};
use numasim::config::{ExecMode, MachineConfig};
use numasim::engine::{Engine, ThreadSpec};
use numasim::hierarchy::Hierarchy;
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::stats::RunStats;
use numasim::topology::CoreId;
use pebs::ring::SampleRing;
use pebs::sample::MemSample;
use pebs::sampler::{AddressSampler, SamplerConfig};
use pebs::stream::StreamingSampler;
use proptest::prelude::*;

/// Wraps a stream and clips each `next_run` request to a cycling schedule
/// of caps, so a single phase exercises many run-boundary shapes (and, via
/// `u64::MAX` entries, the engine's own cap).
struct ScheduledRuns {
    inner: Box<dyn AccessStream>,
    schedule: Vec<u64>,
    next: usize,
}

impl ScheduledRuns {
    fn new(inner: Box<dyn AccessStream>, schedule: Vec<u64>) -> Self {
        assert!(!schedule.is_empty() && schedule.iter().all(|&c| c >= 1));
        Self { inner, schedule, next: 0 }
    }
}

impl AccessStream for ScheduledRuns {
    fn next_access(&mut self) -> Option<Access> {
        self.inner.next_access()
    }

    fn compute_cycles(&self) -> f64 {
        self.inner.compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.inner.mlp()
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        let cap = self.schedule[self.next].min(max);
        self.next = (self.next + 1) % self.schedule.len();
        self.inner.next_run(cap)
    }
}

/// A contended multi-thread phase mixing everything the batcher has to get
/// right: write mixes, reps (LFB events), per-segment compute (the
/// headline bug), an MLP override, first-touch and interleaved placement.
fn make_threads(cfg: &MachineConfig, mm: &mut MemoryMap, schedule: Option<&[u64]>) -> Vec<ThreadSpec> {
    let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(cfg.topology.num_nodes()));
    let nthreads = 8u64;
    let binding = cfg.topology.bind_threads(nthreads as usize, cfg.topology.num_nodes());
    binding
        .iter()
        .enumerate()
        .map(|(i, core)| {
            let share = a.size / nthreads;
            let seq = SeqStream::new(a.base + i as u64 * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            let stream: Box<dyn AccessStream> = match schedule {
                Some(s) => Box::new(ScheduledRuns::new(chain, s.to_vec())),
                None => chain,
            };
            ThreadSpec::new(i as u32, *core, stream)
        })
        .collect()
}

/// A sampler aggressive enough to take many samples, suppress some below
/// the (jittered) threshold, and perturb thread clocks per sample.
fn sampler() -> AddressSampler {
    AddressSampler::new(SamplerConfig {
        period: 23,
        latency_threshold: 150.0,
        latency_jitter: 0.3,
        per_sample_cost: 40.0,
    })
}

/// Everything observable from one run: engine stats plus sampler state.
#[derive(Debug, PartialEq)]
struct Outcome {
    stats: RunStats,
    samples: Vec<MemSample>,
    observed: u64,
    suppressed: u64,
}

fn run_sampled(exec: ExecMode, schedule: Option<&[u64]>) -> Outcome {
    run_sampled_sharded(exec, schedule, 1)
}

fn run_sampled_sharded(exec: ExecMode, schedule: Option<&[u64]>, shards: usize) -> Outcome {
    let mut cfg = MachineConfig::scaled();
    cfg.engine.exec = exec;
    cfg.engine.shards = shards;
    let mut mm = MemoryMap::new(&cfg);
    let threads = make_threads(&cfg, &mut mm, schedule);
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase_auto(threads);
    let (_, s) = eng.into_parts();
    Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

/// The tentpole guarantee: batched == reference, bit for bit, with a live
/// PEBS sampler attached — `RunStats` (hence channel bytes), the full
/// sample log, the observed-access counter (which salts latency jitter),
/// and the suppression counter.
#[test]
fn batched_reproduces_reference_bit_for_bit() {
    let reference = run_sampled(ExecMode::Reference, None);
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    assert!(reference.suppressed > 0, "threshold must actually suppress");
    let schedules: [Option<&[u64]>; 5] = [None, Some(&[1]), Some(&[7]), Some(&[64]), Some(&[1, 7, 64, u64::MAX])];
    for schedule in schedules {
        let batched = run_sampled(ExecMode::Batched, schedule);
        assert_eq!(batched, reference, "batched run (schedule {schedule:?}) diverged");
    }
}

/// The sharding guarantee (ISSUE 9 acceptance): partitioning one
/// simulation's nodes over N host threads reproduces the single-threaded
/// reference **bit for bit** — `RunStats` (hence channel bytes), the full
/// sample log (whose jitter is salted on the *global* observed counter),
/// and both sampler counters — for every N, including N beyond the node
/// count (clamped) and N=1 (delegates to the classic loop).
#[test]
fn sharded_runs_reproduce_reference_bit_for_bit() {
    let reference = run_sampled(ExecMode::Reference, None);
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    for shards in [1usize, 2, 3, 4, 8] {
        let sharded = run_sampled_sharded(ExecMode::Batched, None, shards);
        assert_eq!(sharded, reference, "sharded run (shards={shards}) diverged");
    }
}

/// Sharding composes with run-schedule chopping: boundary-desynchronized
/// slices inside each shard still merge back to the reference.
#[test]
fn sharded_runs_with_schedules_reproduce_reference() {
    let reference = run_sampled(ExecMode::Reference, None);
    let schedules: [&[u64]; 3] = [&[1], &[7], &[1, 7, 64, u64::MAX]];
    for schedule in schedules {
        for shards in [2usize, 4] {
            let sharded = run_sampled_sharded(ExecMode::Batched, Some(schedule), shards);
            assert_eq!(sharded, reference, "shards={shards} schedule {schedule:?} diverged");
        }
    }
}

/// Same guarantee through the streaming adapter: the ring's drained
/// contents and overflow accounting match per-event delivery exactly.
#[test]
fn streaming_sampler_ring_is_identical_across_modes() {
    let run = |exec: ExecMode| {
        let mut cfg = MachineConfig::scaled();
        cfg.engine.exec = exec;
        let mut mm = MemoryMap::new(&cfg);
        let threads = make_threads(&cfg, &mut mm, None);
        let obs = StreamingSampler::new(
            SamplerConfig { period: 23, latency_threshold: 150.0, latency_jitter: 0.3, per_sample_cost: 40.0 },
            SampleRing::new(1 << 16),
        );
        let mut eng = Engine::new(&cfg, mm, obs);
        let stats = eng.run_phase(threads);
        let (_, s) = eng.into_parts();
        let observed = s.observed_accesses();
        let mut ring = s.into_ring();
        let mut drained = Vec::new();
        while let Some(sample) = ring.pop() {
            drained.push(sample);
        }
        (stats, observed, ring.dropped(), drained)
    };
    let reference = run(ExecMode::Reference);
    let batched = run(ExecMode::Batched);
    assert!(!reference.3.is_empty(), "ring must carry samples");
    assert_eq!(batched, reference);
}

/// Property: *any* interleaving of run sizes — including ones that chop
/// runs mid-line-group or span segment boundaries — reproduces the
/// reference access-for-access. Smaller machine so 64 cases stay cheap.
fn run_tiny(exec: ExecMode, schedule: Option<&[u64]>) -> Outcome {
    run_tiny_sharded(exec, schedule, 1)
}

fn run_tiny_sharded(exec: ExecMode, schedule: Option<&[u64]>, shards: usize) -> Outcome {
    let mut cfg = MachineConfig::tiny();
    cfg.engine.exec = exec;
    cfg.engine.shards = shards;
    let mut mm = MemoryMap::new(&cfg);
    let a = mm.alloc("a", 256 << 10, PlacementPolicy::FirstTouch);
    let b = mm.alloc("b", 128 << 10, PlacementPolicy::interleave_all(2));
    let threads = (0..4u64)
        .map(|i| {
            let share = a.size / 4;
            let seq = SeqStream::new(a.base + i * share, share, 1, AccessMix::write_every(3))
                .with_compute(0.5 * i as f64)
                .with_reps(4);
            let blk = BlockCyclicStream::new(b.base, b.size, 4096, 4, i, 1, AccessMix::read_only());
            let chain: Box<dyn AccessStream> =
                Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
            let stream: Box<dyn AccessStream> = match schedule {
                Some(s) => Box::new(ScheduledRuns::new(chain, s.to_vec())),
                None => chain,
            };
            ThreadSpec::new(i as u32, numasim::topology::CoreId((i % 4) as u32), stream)
        })
        .collect();
    let mut eng = Engine::new(&cfg, mm, sampler());
    let stats = eng.run_phase_auto(threads);
    let (_, s) = eng.into_parts();
    Outcome {
        stats,
        observed: s.observed_accesses(),
        suppressed: s.suppressed_samples(),
        samples: s.samples().to_vec(),
    }
}

fn tiny_reference() -> &'static Outcome {
    static REF: std::sync::OnceLock<Outcome> = std::sync::OnceLock::new();
    REF.get_or_init(|| run_tiny(ExecMode::Reference, None))
}

fn arb_cap() -> impl Strategy<Value = u64> {
    prop_oneof![Just(1u64), Just(7), Just(64), Just(u64::MAX), 1u64..97]
}

proptest! {
    #[test]
    fn arbitrary_run_schedules_match_reference(
        schedule in proptest::collection::vec(arb_cap(), 1..6),
    ) {
        let batched = run_tiny(ExecMode::Batched, Some(&schedule));
        prop_assert_eq!(&batched, tiny_reference(), "schedule {:?} diverged", schedule);
    }

    /// Property: any shard count × any span-chopping schedule still merges
    /// back to the reference bit for bit.
    #[test]
    fn arbitrary_shard_counts_and_splits_match_reference(
        shards in 1usize..6,
        schedule in proptest::collection::vec(arb_cap(), 1..6),
    ) {
        let sharded = run_tiny_sharded(ExecMode::Batched, Some(&schedule), shards);
        prop_assert_eq!(&sharded, tiny_reference(), "shards {} schedule {:?} diverged", shards, schedule);
    }
}

/// A fused-walk-heavy phase: line-stride read-only streams (maximal span
/// fusion, LFB reps inside spans) over first-touch and interleaved
/// placement, with the live sampler chopping spans at every sample point.
/// Reference, fused-batched, and fusion-ablated batched must agree on
/// everything observable.
#[test]
fn fused_streaming_phase_matches_reference_under_sampling() {
    let run = |exec: ExecMode, fusion: bool| {
        let mut cfg = MachineConfig::scaled();
        cfg.engine.exec = exec;
        cfg.engine.span_fusion = fusion;
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
        let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(cfg.topology.num_nodes()));
        let binding = cfg.topology.bind_threads(8, cfg.topology.num_nodes());
        let threads: Vec<ThreadSpec> = binding
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let share = a.size / 8;
                let seq = SeqStream::new(a.base + i as u64 * share, share, 1, AccessMix::read_only())
                    .with_compute(0.5 * i as f64)
                    .with_reps(4);
                let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
                let chain: Box<dyn AccessStream> =
                    Box::new(ChainStream::new(vec![Box::new(seq), Box::new(WithMlp::new(blk, 2.0))]));
                ThreadSpec::new(i as u32, *core, chain)
            })
            .collect();
        let mut eng = Engine::new(&cfg, mm, sampler());
        let stats = eng.run_phase(threads);
        let (_, s) = eng.into_parts();
        Outcome {
            stats,
            observed: s.observed_accesses(),
            suppressed: s.suppressed_samples(),
            samples: s.samples().to_vec(),
        }
    };
    let reference = run(ExecMode::Reference, true);
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    let fused = run(ExecMode::Batched, true);
    let unfused = run(ExecMode::Batched, false);
    assert_eq!(fused, reference, "fused batched run diverged");
    assert_eq!(unfused, reference, "fusion-ablated batched run diverged");
}

/// Zip-heavy phase (dotv-shaped): multi-lane `ZipStream`s whose `next_run`
/// degrades to length-1 runs, so batched throughput rides on `next_zip` +
/// the interleaved replay. Interleaved placement makes home segments end
/// mid-span (segment-flush accounting), a shorter write lane drains early
/// (live-set shrink mid-phase), and the sampler chops spans at every
/// sample point. Reference, fused, and fusion-ablated must agree exactly.
#[test]
fn zipped_streams_match_reference_under_sampling() {
    let run = |exec: ExecMode, fusion: bool| {
        let mut cfg = MachineConfig::scaled();
        cfg.engine.exec = exec;
        cfg.engine.span_fusion = fusion;
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 4 << 20, PlacementPolicy::FirstTouch);
        let b = mm.alloc("b", 4 << 20, PlacementPolicy::interleave_all(cfg.topology.num_nodes()));
        let c = mm.alloc("c", 1 << 20, PlacementPolicy::interleave_all(2));
        let binding = cfg.topology.bind_threads(8, cfg.topology.num_nodes());
        let threads: Vec<ThreadSpec> = binding
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let (sa, sb, sc) = (a.size / 8, b.size / 8, c.size / 8);
                let lanes: Vec<Box<dyn AccessStream>> = vec![
                    Box::new(
                        SeqStream::new(a.base + i as u64 * sa, sa, 2, AccessMix::read_only())
                            .with_compute(0.25 * i as f64)
                            .with_reps(4),
                    ),
                    Box::new(SeqStream::new(b.base + i as u64 * sb, sb, 2, AccessMix::read_only()).with_reps(4)),
                    Box::new(SeqStream::new(c.base + i as u64 * sc, sc, 2, AccessMix::write_every(1)).with_reps(2)),
                ];
                ThreadSpec::new(i as u32, *core, Box::new(numasim::access::ZipStream::new(lanes)))
            })
            .collect();
        // A longer period than `sampler()` so the observer's quiet budget
        // lets interleaved spans commit (and cross the 4 KiB interleave
        // boundary mid-span), while still sampling often enough to chop
        // spans at many distinct points.
        let obs = AddressSampler::new(SamplerConfig {
            period: 997,
            latency_threshold: 150.0,
            latency_jitter: 0.3,
            per_sample_cost: 40.0,
        });
        let mut eng = Engine::new(&cfg, mm, obs);
        let stats = eng.run_phase(threads);
        let (_, s) = eng.into_parts();
        Outcome {
            stats,
            observed: s.observed_accesses(),
            suppressed: s.suppressed_samples(),
            samples: s.samples().to_vec(),
        }
    };
    let reference = run(ExecMode::Reference, true);
    assert!(!reference.samples.is_empty(), "phase must actually sample");
    let fused = run(ExecMode::Batched, true);
    let unfused = run(ExecMode::Batched, false);
    assert_eq!(fused, reference, "fused batched zip run diverged");
    assert_eq!(unfused, reference, "fusion-ablated batched zip run diverged");
}

/// Cache-layer differential oracle: `access_span` must equal per-line
/// `access` — identical hit/miss deltas *and* identical tag/head state —
/// over streaming, cyclic-rescan, random-single, and arbitrary mixed span
/// patterns, on geometries from degenerate (one set) to L3-like.
fn arb_span_pattern() -> impl Strategy<Value = Vec<(u64, u64)>> {
    let span = prop_oneof![
        (0u64..64, 1u64..260),      // arbitrary span, often over-capacity
        (0u64..512, Just(1u64)),    // single random lines
        Just((0u64, 96u64)),        // cyclic rescan of one fixed range
        (1000u64..1004, 32u64..70), // disjoint streaming region
    ];
    proptest::collection::vec(span, 1..12)
}

proptest! {
    #[test]
    fn cache_span_walk_matches_per_line_oracle(
        geometry in prop_oneof![Just((1, 4)), Just((4, 2)), Just((8, 4)), Just((16, 8)), Just((64, 8))],
        spans in arb_span_pattern(),
    ) {
        let (sets, assoc) = geometry;
        let mut oracle = Cache::new(sets, assoc);
        let mut subject = oracle.clone();
        for &(first, n) in &spans {
            let mut want = CacheStats::default();
            for line in first..first + n {
                if oracle.access(line) {
                    want.hits += 1;
                } else {
                    want.misses += 1;
                }
            }
            let got = subject.access_span(first, n);
            prop_assert_eq!(got, want, "span ({}, {}) stats diverged", first, n);
            prop_assert_eq!(&oracle, &subject, "span ({}, {}) left different cache state", first, n);
        }
    }

    /// Same oracle one layer up: the three-level span walk driven the way
    /// the engine drives it (prove, install, fall back per line), with
    /// spans interleaved across cores sharing an L3.
    #[test]
    fn hierarchy_span_walk_matches_per_line_oracle(
        ops in proptest::collection::vec((0u32..4, 0u64..800, 1u64..200), 1..10),
    ) {
        let cfg = MachineConfig::tiny();
        let mut oracle = Hierarchy::new(&cfg);
        let mut subject = Hierarchy::new(&cfg);
        for &(core, first, n) in &ops {
            for line in first..first + n {
                oracle.cache_access(CoreId(core), line * 64);
            }
            let mut cc = subject.core_caches(CoreId(core));
            let mut cur = first;
            let mut rem = n;
            while rem > 0 {
                let k = cc.span_miss_prefix(cur, rem);
                if k > 0 {
                    cc.install_span(cur, k);
                    cur += k;
                    rem -= k;
                } else {
                    cc.access(cur * 64);
                    cur += 1;
                    rem -= 1;
                }
            }
            // Tag/head state and per-level counters both sit behind
            // `Hierarchy`'s equality, so any classification difference —
            // not just a residency difference — fails here.
            prop_assert_eq!(&oracle, &subject, "op ({}, {}, {}) diverged", core, first, n);
        }
    }
}

//! Integration tests for the batch-analysis engine: parallel-vs-serial
//! determinism of training-set generation, model persistence, and the
//! `DrBw` builder's error surface.

use drbw::core::training;
use drbw::prelude::*;
use workloads::suite::by_name;

fn scratch_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("drbw_engine_{tag}_{}", std::process::id()))
}

#[test]
fn parallel_full_training_set_is_bit_identical_to_serial() {
    // Every simulation seeds its own RNG from its RunConfig, so the
    // parallel grid must reproduce the serial one instance for instance —
    // the contract documented on `training::collect_training_set`.
    let mcfg = MachineConfig::scaled();
    let specs = training::training_specs();
    let serial = training::collect_training_set_serial(&mcfg, &specs);
    let parallel = training::full_training_set(&mcfg);
    assert_eq!(serial.len(), parallel.len());
    assert_eq!(serial.len(), 192, "Table II total");
    for i in 0..serial.len() {
        assert_eq!(serial.label(i), parallel.label(i), "label of instance {i}");
        assert_eq!(serial.row(i), parallel.row(i), "features of instance {i}");
    }
}

#[test]
fn save_load_roundtrip_classifies_identically() {
    let tool = DrBw::builder().training_set(TrainingSet::Quick).build().expect("quick grid trains");
    let dir = scratch_dir("roundtrip");
    let path = dir.join("models/drbw.model");
    tool.save(&path).expect("save creates parent directories");
    let loaded = DrBw::load(&path).expect("load what save wrote");
    assert_eq!(tool.classifier().render_tree(), loaded.classifier().render_tree(), "same tree and feature names");
    let w = by_name("AMG2006").unwrap();
    let rcfg = RunConfig::new(32, 4, Input::Medium);
    let a = tool.analyze(w, &rcfg);
    let b = loaded.analyze(w, &rcfg);
    assert_eq!(a.detection.mode(), b.detection.mode());
    assert_eq!(a.detection.contended_channels, b.detection.contended_channels);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn analyze_batch_matches_single_analyses_in_order() {
    let tool = DrBw::builder().training_set(TrainingSet::Quick).threads(2).build().expect("quick grid trains");
    let sc = by_name("Streamcluster").unwrap();
    let sw = by_name("Swaptions").unwrap();
    let r1 = RunConfig::new(32, 4, Input::Medium);
    let r2 = RunConfig::new(16, 2, Input::Medium);
    let cases = [Case::new(sc, &r1), Case::new(sw, &r2), Case::new(sc, &r2)];
    let batch = tool.analyze_batch(&cases);
    assert_eq!(batch.len(), cases.len());
    for (case, got) in cases.iter().zip(&batch) {
        let solo = tool.analyze(case.workload, case.rcfg);
        assert_eq!(got.profile.samples.len(), solo.profile.samples.len());
        assert_eq!(got.detection.mode(), solo.detection.mode());
        assert_eq!(got.detection.contended_channels, solo.detection.contended_channels);
        assert_eq!(got.diagnosis().overall.len(), solo.diagnosis().overall.len());
    }
}

#[test]
fn builder_caches_model_and_reloads_it() {
    let dir = scratch_dir("cache");
    let path = dir.join("cache/drbw.model");
    let t1 =
        DrBw::builder().training_set(TrainingSet::Quick).model_cache(path.clone()).build().expect("train and cache");
    assert!(path.exists(), "build() must write the cache");
    // An empty custom grid cannot train, so this build succeeding proves
    // the model came from the cache.
    let t2 = DrBw::builder()
        .training_set(TrainingSet::Custom(vec![]))
        .model_cache(path.clone())
        .build()
        .expect("load from cache");
    assert_eq!(t1.classifier().render_tree(), t2.classifier().render_tree());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn malformed_input_surfaces_typed_errors_not_panics() {
    let dir = scratch_dir("errors");
    std::fs::create_dir_all(&dir).unwrap();
    let bad = dir.join("bad.model");
    std::fs::write(&bad, "not a model").unwrap();
    assert!(matches!(DrBw::load(&bad), Err(DrbwError::ModelFormat(_))));
    assert!(matches!(
        DrBw::builder().training_set(TrainingSet::Quick).model_cache(bad.clone()).build(),
        Err(DrbwError::ModelFormat(_))
    ));
    assert!(matches!(DrBw::load(dir.join("absent.model")), Err(DrbwError::Io(_))));
    std::fs::write(&bad, "drbw-classifier v1\nfeature x\n").unwrap();
    assert!(matches!(DrBw::load(&bad), Err(DrbwError::FeatureArity { expected: 13, got: 1 })));
    assert!(matches!(
        DrBw::builder().training_set(TrainingSet::Custom(vec![])).build(),
        Err(DrbwError::EmptyTrainingSet)
    ));
    assert!(matches!(Mode::try_from(9), Err(DrbwError::InvalidClassIndex(9))));
    std::fs::remove_dir_all(&dir).ok();
}

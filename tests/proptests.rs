//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use drbw::core::channels::ChannelBatches;
use drbw::core::features::{selected_features, FeatureCtx, NUM_SELECTED};
use mldt::dataset::Dataset;
use mldt::tree::{DecisionTree, TrainConfig};
use numasim::cache::Cache;
use numasim::config::MachineConfig;
use numasim::hierarchy::DataSource;
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::topology::{CoreId, NodeId, ThreadId, Topology};
use pebs::alloc::AllocationTracker;
use pebs::sample::MemSample;
use proptest::prelude::*;

fn arb_source() -> impl Strategy<Value = DataSource> {
    prop_oneof![
        Just(DataSource::L1),
        Just(DataSource::L2),
        Just(DataSource::L3),
        Just(DataSource::Lfb),
        Just(DataSource::LocalDram),
        Just(DataSource::RemoteDram),
    ]
}

fn arb_sample(nodes: u8) -> impl Strategy<Value = MemSample> {
    (0..nodes, proptest::option::of(0..nodes), arb_source(), 1.0..2000.0f64, any::<u32>(), any::<bool>()).prop_map(
        move |(node, home, source, latency, addr, is_write)| {
            // DRAM/LFB samples carry a home; cache hits do not.
            let home = match source {
                DataSource::LocalDram => Some(NodeId(node)),
                DataSource::RemoteDram => Some(NodeId(home.unwrap_or((node + 1) % nodes))),
                DataSource::Lfb => home.map(NodeId),
                _ => None,
            };
            MemSample {
                time: 0.0,
                addr: addr as u64 * 64,
                cpu: CoreId(node as u32 * 8),
                thread: ThreadId(0),
                node: NodeId(node),
                source,
                home,
                latency,
                is_write,
            }
        },
    )
}

prop_compose! {
    fn arb_node(nodes: u8)(n in 0..nodes) -> NodeId { NodeId(n) }
}

proptest! {
    /// LRU cache: after any access sequence, the most recent access is
    /// always resident, and stats add up.
    #[test]
    fn cache_most_recent_always_resident(lines in proptest::collection::vec(0u64..10_000, 1..400)) {
        let mut c = Cache::new(16, 4);
        for &l in &lines {
            c.access(l);
            prop_assert!(c.probe(l), "line {l} must be resident immediately after access");
        }
        prop_assert_eq!(c.stats().accesses(), lines.len() as u64);
    }

    /// Cache capacity: no more than `sets * assoc` distinct lines resident.
    #[test]
    fn cache_respects_capacity(lines in proptest::collection::vec(0u64..100_000, 1..600)) {
        let (sets, assoc) = (8usize, 2usize);
        let mut c = Cache::new(sets, assoc);
        let mut touched: Vec<u64> = Vec::new();
        for &l in &lines {
            c.access(l);
            if !touched.contains(&l) {
                touched.push(l);
            }
        }
        let resident = touched.iter().filter(|&&l| c.probe(l)).count();
        prop_assert!(resident <= sets * assoc);
    }

    /// Placement policies partition pages deterministically: the home node
    /// reported twice is identical, and within [0, nodes).
    #[test]
    fn placement_is_deterministic_and_in_range(
        size in 4096u64..(1 << 22),
        offsets in proptest::collection::vec(0.0f64..1.0, 1..50),
        policy_pick in 0..4usize,
    ) {
        let cfg = MachineConfig::scaled();
        let mut mm = MemoryMap::new(&cfg);
        let policy = match policy_pick {
            0 => PlacementPolicy::Bind(NodeId(2)),
            1 => PlacementPolicy::interleave_all(4),
            2 => PlacementPolicy::colocate_even(size, 4),
            _ => PlacementPolicy::FirstTouch,
        };
        let h = mm.alloc("x", size, policy);
        for f in offsets {
            let addr = h.base + ((f * (size - 1) as f64) as u64);
            let n1 = mm.home_node(addr, NodeId(1));
            let n2 = mm.home_node(addr, NodeId(3)); // second accessor
            prop_assert_eq!(n1, n2, "home must not move after first touch");
            prop_assert!((n1.0 as usize) < 4);
        }
    }

    /// Channel association: remote samples land on exactly one channel;
    /// non-remote samples appear once per outgoing channel of their node;
    /// nothing is lost.
    #[test]
    fn channel_batches_conserve_samples(samples in proptest::collection::vec(arb_sample(4), 0..200)) {
        let nodes = 4usize;
        let b = ChannelBatches::split(&samples, nodes);
        let total_batched: usize = b.iter().map(|(_, batch)| batch.len()).sum();
        let expected: usize = samples
            .iter()
            .map(|s| if s.is_remote() { 1 } else { nodes - 1 })
            .sum();
        prop_assert_eq!(total_batched, expected);
        let remote_total: usize = b
            .iter()
            .map(|(ch, _)| b.remote_samples(ch).count())
            .sum();
        prop_assert_eq!(remote_total, samples.iter().filter(|s| s.is_remote()).count());
    }

    /// Feature extraction invariants: ratios in [0,1] and nested, counts
    /// non-negative, per-mille features bounded by 1000.
    #[test]
    fn features_are_well_formed(samples in proptest::collection::vec(arb_sample(4), 0..300)) {
        let ctx = FeatureCtx { duration_cycles: 1e6 };
        let f = selected_features(&samples, &ctx);
        prop_assert_eq!(f.len(), NUM_SELECTED);
        for v in f {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
        for w in 0..4 {
            prop_assert!(f[w] <= f[w + 1] + 1e-12, "latency ratios must nest");
            prop_assert!(f[w] <= 1.0);
        }
        prop_assert!(f[5] <= 1000.0 && f[7] <= 1000.0 && f[11] <= 1000.0);
    }

    /// Allocation tracker: any address attributes to at most one live
    /// allocation, and that allocation contains it.
    #[test]
    fn attribution_is_consistent(
        sizes in proptest::collection::vec(64u64..4096, 1..30),
        probes in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut t = AllocationTracker::new();
        let site = t.intern_site("x", 1);
        let mut base = 0x1000u64;
        let mut ranges = Vec::new();
        for s in sizes {
            t.record_alloc(site, base, s);
            ranges.push((base, s));
            base += s + 64; // gap between allocations
        }
        for p in probes {
            let addr = 0x1000 + p % (base - 0x1000);
            match t.attribute(addr) {
                Some(id) => {
                    let a = t.allocation(id);
                    prop_assert!(addr >= a.base && addr < a.base + a.size);
                }
                None => {
                    prop_assert!(
                        !ranges.iter().any(|&(b, s)| addr >= b && addr < b + s),
                        "address {addr:#x} inside an allocation must attribute"
                    );
                }
            }
        }
    }

    /// Decision trees never predict a class absent from training, and
    /// training is invariant to... at minimum, predictions are total.
    #[test]
    fn tree_predictions_are_valid_classes(
        rows in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0..2usize), 8..100),
        probes in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..20),
    ) {
        let mut d = Dataset::binary(vec!["a".into(), "b".into()]);
        for (x, y, l) in rows {
            d.push(vec![x, y], l);
        }
        let t = DecisionTree::train(&d, TrainConfig::default());
        for (x, y) in probes {
            prop_assert!(t.predict(&[x, y]) < 2);
        }
    }

    /// Topology thread binding: every thread gets a valid core on the
    /// correct node; threads are spread evenly across nodes.
    #[test]
    fn binding_is_even_and_valid(n in 1usize..5, per in 1usize..17) {
        let topo = Topology::new(4, 8, 2);
        let t = n * per;
        if per <= 16 {
            let binding = topo.bind_threads(t, n);
            prop_assert_eq!(binding.len(), t);
            for (tid, core) in binding.iter().enumerate() {
                prop_assert!(topo.core_in_range(*core));
                let expected_node = tid / per;
                prop_assert_eq!(topo.node_of_core(*core), NodeId(expected_node as u8));
            }
        }
    }
}

//! Property-based tests (proptest) on the core data structures and
//! invariants, spanning crates.

use drbw::core::channels::ChannelBatches;
use drbw::core::classifier::ContentionClassifier;
use drbw::core::features::{selected_features, selected_names, FeatureAccumulator, FeatureCtx, NUM_SELECTED};
use drbw::stream::{StreamConfig, StreamingDetector, WindowConfig};
use mldt::dataset::Dataset;
use mldt::tree::{DecisionTree, TrainConfig};
use numasim::cache::Cache;
use numasim::config::MachineConfig;
use numasim::hierarchy::DataSource;
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::sched::TenantId;
use numasim::topology::{CoreId, NodeId, ThreadId, Topology};
use pebs::alloc::{AllocationTracker, SiteId};
use pebs::ring::{BlockRing, Offer, OverflowPolicy};
use pebs::sample::MemSample;
use pebs::tenant::TenantMap;
use pebs::SampleBlock;
use proptest::prelude::*;
use std::sync::OnceLock;

fn arb_source() -> impl Strategy<Value = DataSource> {
    prop_oneof![
        Just(DataSource::L1),
        Just(DataSource::L2),
        Just(DataSource::L3),
        Just(DataSource::Lfb),
        Just(DataSource::LocalDram),
        Just(DataSource::RemoteDram),
    ]
}

fn arb_sample(nodes: u8) -> impl Strategy<Value = MemSample> {
    (0..nodes, proptest::option::of(0..nodes), arb_source(), 1.0..2000.0f64, any::<u32>(), any::<bool>()).prop_map(
        move |(node, home, source, latency, addr, is_write)| {
            // DRAM/LFB samples carry a home; cache hits do not.
            let home = match source {
                DataSource::LocalDram => Some(NodeId(node)),
                DataSource::RemoteDram => Some(NodeId(home.unwrap_or((node + 1) % nodes))),
                DataSource::Lfb => home.map(NodeId),
                _ => None,
            };
            MemSample {
                time: 0.0,
                addr: addr as u64 * 64,
                cpu: CoreId(node as u32 * 8),
                thread: ThreadId(0),
                node: NodeId(node),
                source,
                home,
                latency,
                is_write,
            }
        },
    )
}

prop_compose! {
    fn arb_node(nodes: u8)(n in 0..nodes) -> NodeId { NodeId(n) }
}

/// A shared tiny classifier for the detector differential properties
/// (training once keeps the 64-case runs cheap; the split the tree learns
/// is irrelevant to chunk-invisibility, only that verdicts can flip).
fn shared_classifier() -> &'static ContentionClassifier {
    static CLF: OnceLock<ContentionClassifier> = OnceLock::new();
    CLF.get_or_init(|| {
        let mut d = Dataset::binary(selected_names().iter().map(|s| s.to_string()).collect());
        for i in 0..64 {
            let mut row = vec![0.0; NUM_SELECTED];
            let rmc = i % 2 == 0;
            row[5] = if rmc { 500.0 } else { 30.0 };
            row[6] = if rmc { 800.0 + i as f64 } else { 290.0 };
            d.push(row, rmc as usize);
        }
        ContentionClassifier::train(&d, TrainConfig::default())
    })
}

/// Pack `stream` into blocks whose capacities cycle through `caps` — the
/// adversarial chunking the block pipeline must be invisible under.
fn blocks_with_caps(stream: &[(MemSample, Option<SiteId>)], caps: &[usize]) -> Vec<SampleBlock> {
    let mut blocks = Vec::new();
    let mut i = 0;
    let mut pick = 0;
    while i < stream.len() {
        let cap = caps[pick % caps.len()];
        pick += 1;
        let mut b = SampleBlock::with_capacity(cap);
        for (s, site) in &stream[i..(i + cap).min(stream.len())] {
            assert!(b.push(s, *site), "block has room by construction");
        }
        i += cap;
        blocks.push(b);
    }
    blocks
}

proptest! {
    /// LRU cache: after any access sequence, the most recent access is
    /// always resident, and stats add up.
    #[test]
    fn cache_most_recent_always_resident(lines in proptest::collection::vec(0u64..10_000, 1..400)) {
        let mut c = Cache::new(16, 4);
        for &l in &lines {
            c.access(l);
            prop_assert!(c.probe(l), "line {l} must be resident immediately after access");
        }
        prop_assert_eq!(c.stats().accesses(), lines.len() as u64);
    }

    /// Cache capacity: no more than `sets * assoc` distinct lines resident.
    #[test]
    fn cache_respects_capacity(lines in proptest::collection::vec(0u64..100_000, 1..600)) {
        let (sets, assoc) = (8usize, 2usize);
        let mut c = Cache::new(sets, assoc);
        let mut touched: Vec<u64> = Vec::new();
        for &l in &lines {
            c.access(l);
            if !touched.contains(&l) {
                touched.push(l);
            }
        }
        let resident = touched.iter().filter(|&&l| c.probe(l)).count();
        prop_assert!(resident <= sets * assoc);
    }

    /// Placement policies partition pages deterministically: the home node
    /// reported twice is identical, and within [0, nodes).
    #[test]
    fn placement_is_deterministic_and_in_range(
        size in 4096u64..(1 << 22),
        offsets in proptest::collection::vec(0.0f64..1.0, 1..50),
        policy_pick in 0..4usize,
    ) {
        let cfg = MachineConfig::scaled();
        let mut mm = MemoryMap::new(&cfg);
        let policy = match policy_pick {
            0 => PlacementPolicy::Bind(NodeId(2)),
            1 => PlacementPolicy::interleave_all(4),
            2 => PlacementPolicy::colocate_even(size, 4),
            _ => PlacementPolicy::FirstTouch,
        };
        let h = mm.alloc("x", size, policy);
        for f in offsets {
            let addr = h.base + ((f * (size - 1) as f64) as u64);
            let n1 = mm.home_node(addr, NodeId(1));
            let n2 = mm.home_node(addr, NodeId(3)); // second accessor
            prop_assert_eq!(n1, n2, "home must not move after first touch");
            prop_assert!((n1.0 as usize) < 4);
        }
    }

    /// Channel association: remote samples land on exactly one channel;
    /// non-remote samples appear once per outgoing channel of their node;
    /// nothing is lost.
    #[test]
    fn channel_batches_conserve_samples(samples in proptest::collection::vec(arb_sample(4), 0..200)) {
        let nodes = 4usize;
        let b = ChannelBatches::split(&samples, nodes);
        let total_batched: usize = b.iter().map(|(_, batch)| batch.len()).sum();
        let expected: usize = samples
            .iter()
            .map(|s| if s.is_remote() { 1 } else { nodes - 1 })
            .sum();
        prop_assert_eq!(total_batched, expected);
        let remote_total: usize = b
            .iter()
            .map(|(ch, _)| b.remote_samples(ch).count())
            .sum();
        prop_assert_eq!(remote_total, samples.iter().filter(|s| s.is_remote()).count());
    }

    /// Feature extraction invariants: ratios in [0,1] and nested, counts
    /// non-negative, per-mille features bounded by 1000.
    #[test]
    fn features_are_well_formed(samples in proptest::collection::vec(arb_sample(4), 0..300)) {
        let ctx = FeatureCtx { duration_cycles: 1e6 };
        let f = selected_features(&samples, &ctx);
        prop_assert_eq!(f.len(), NUM_SELECTED);
        for v in f {
            prop_assert!(v.is_finite() && v >= 0.0);
        }
        for w in 0..4 {
            prop_assert!(f[w] <= f[w + 1] + 1e-12, "latency ratios must nest");
            prop_assert!(f[w] <= 1.0);
        }
        prop_assert!(f[5] <= 1000.0 && f[7] <= 1000.0 && f[11] <= 1000.0);
    }

    /// Allocation tracker: any address attributes to at most one live
    /// allocation, and that allocation contains it.
    #[test]
    fn attribution_is_consistent(
        sizes in proptest::collection::vec(64u64..4096, 1..30),
        probes in proptest::collection::vec(any::<u64>(), 0..50),
    ) {
        let mut t = AllocationTracker::new();
        let site = t.intern_site("x", 1);
        let mut base = 0x1000u64;
        let mut ranges = Vec::new();
        for s in sizes {
            t.record_alloc(site, base, s);
            ranges.push((base, s));
            base += s + 64; // gap between allocations
        }
        for p in probes {
            let addr = 0x1000 + p % (base - 0x1000);
            match t.attribute(addr) {
                Some(id) => {
                    let a = t.allocation(id);
                    prop_assert!(addr >= a.base && addr < a.base + a.size);
                }
                None => {
                    prop_assert!(
                        !ranges.iter().any(|&(b, s)| addr >= b && addr < b + s),
                        "address {addr:#x} inside an allocation must attribute"
                    );
                }
            }
        }
    }

    /// Decision trees never predict a class absent from training, and
    /// training is invariant to... at minimum, predictions are total.
    #[test]
    fn tree_predictions_are_valid_classes(
        rows in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0, 0..2usize), 8..100),
        probes in proptest::collection::vec((0.0f64..100.0, 0.0f64..100.0), 1..20),
    ) {
        let mut d = Dataset::binary(vec!["a".into(), "b".into()]);
        for (x, y, l) in rows {
            d.push(vec![x, y], l);
        }
        let t = DecisionTree::train(&d, TrainConfig::default());
        for (x, y) in probes {
            prop_assert!(t.predict(&[x, y]) < 2);
        }
    }

    /// Topology thread binding: every thread gets a valid core on the
    /// correct node; threads are spread evenly across nodes.
    #[test]
    fn binding_is_even_and_valid(n in 1usize..5, per in 1usize..17) {
        let topo = Topology::new(4, 8, 2);
        let t = n * per;
        if per <= 16 {
            let binding = topo.bind_threads(t, n);
            prop_assert_eq!(binding.len(), t);
            for (tid, core) in binding.iter().enumerate() {
                prop_assert!(topo.core_in_range(*core));
                let expected_node = tid / per;
                prop_assert_eq!(topo.node_of_core(*core), NodeId(expected_node as u8));
            }
        }
    }

    /// Lane-batched feature accumulation is bit-identical to per-sample
    /// pushes under any chunking: the i128 exact sums, threshold counts,
    /// and per-route moments land on the same bits regardless of how the
    /// latency/source lanes are split.
    #[test]
    fn accumulator_lane_split_is_invisible(
        samples in proptest::collection::vec(arb_sample(4), 0..300),
        caps in proptest::collection::vec(1usize..64, 1..6),
    ) {
        let mut per_sample = FeatureAccumulator::new();
        for s in &samples {
            per_sample.push(s);
        }
        let lats: Vec<f64> = samples.iter().map(|s| s.latency).collect();
        let srcs: Vec<DataSource> = samples.iter().map(|s| s.source).collect();
        let mut lanes = FeatureAccumulator::new();
        let mut i = 0;
        let mut pick = 0;
        while i < samples.len() {
            let hi = (i + caps[pick % caps.len()]).min(samples.len());
            pick += 1;
            lanes.push_lanes(&lats[i..hi], &srcs[i..hi]);
            i = hi;
        }
        prop_assert_eq!(lanes, per_sample);
    }

    /// The block ring conserves samples under any offer/drain interleave:
    /// `offered == dropped + popped + len` at every step, and under
    /// `RejectNewest` the drained stream is exactly the accepted
    /// subsequence, sites riding along.
    #[test]
    fn block_ring_conserves_samples(
        samples in proptest::collection::vec(arb_sample(4), 0..300),
        capacity in 1usize..64,
        drain_every in 1usize..50,
        policy_pick in 0..2usize,
    ) {
        let policy = if policy_pick == 0 { OverflowPolicy::RejectNewest } else { OverflowPolicy::DropOldest };
        let mut ring = BlockRing::with_policy(capacity, policy);
        let mut accepted: Vec<(MemSample, Option<SiteId>)> = Vec::new();
        let mut drained: Vec<(MemSample, Option<SiteId>)> = Vec::new();
        let drain = |ring: &mut BlockRing, out: &mut Vec<(MemSample, Option<SiteId>)>| {
            while let Some((block, _)) = ring.pop_block() {
                for i in 0..block.len() {
                    out.push((block.get(i), block.site(i)));
                }
                ring.recycle(block);
            }
        };
        for (i, s) in samples.iter().enumerate() {
            let site = (i % 3 == 0).then_some(SiteId(i as u32));
            if ring.offer(*s, site) == Offer::Accepted && policy == OverflowPolicy::RejectNewest {
                accepted.push((*s, site));
            }
            let c = ring.counters();
            prop_assert_eq!(c.offered, c.dropped + c.popped + c.len as u64);
            if i % drain_every == drain_every - 1 {
                drain(&mut ring, &mut drained);
            }
        }
        drain(&mut ring, &mut drained);
        let c = ring.counters();
        prop_assert_eq!(c.len, 0);
        prop_assert_eq!(c.offered, samples.len() as u64);
        prop_assert_eq!(c.dropped + c.popped, c.offered);
        if policy == OverflowPolicy::RejectNewest {
            prop_assert_eq!(drained, accepted);
        }
    }

    /// Chunk boundaries are invisible to the streaming detector: any
    /// blocking of a time-sorted stream yields bit-identical metrics,
    /// verdict events, recorded window features, hysteresis states, and
    /// top-K sketches to the per-sample path.
    #[test]
    fn detector_block_chunking_is_invisible(
        raw in proptest::collection::vec((arb_sample(4), 0.0f64..400.0), 20..200),
        caps in proptest::collection::vec(1usize..48, 1..5),
    ) {
        let cfg = StreamConfig {
            record_windows: true,
            sketch_capacity: 4,
            ..StreamConfig::new(4, WindowConfig::sliding(1000.0, 2))
        };
        let mut t = 0.0;
        let stream: Vec<(MemSample, Option<SiteId>)> = raw
            .into_iter()
            .enumerate()
            .map(|(i, (mut s, dt))| {
                t += dt;
                s.time = t;
                (s, (i % 3 == 0).then_some(SiteId((i % 6) as u32)))
            })
            .collect();
        let mut per_sample = StreamingDetector::new(shared_classifier().clone(), cfg);
        for (s, site) in &stream {
            per_sample.ingest(s, *site);
        }
        per_sample.flush();
        let mut blocked = StreamingDetector::new(shared_classifier().clone(), cfg);
        for block in blocks_with_caps(&stream, &caps) {
            blocked.ingest_block(&block);
        }
        blocked.flush();
        prop_assert_eq!(blocked.metrics(), per_sample.metrics());
        prop_assert_eq!(blocked.drain_events(), per_sample.drain_events());
        prop_assert_eq!(blocked.drain_windows(), per_sample.drain_windows());
        prop_assert_eq!(blocked.contended_channels(), per_sample.contended_channels());
        for i in 0..12 {
            let ch = drbw::core::channels::channel_at(4, i);
            prop_assert_eq!(blocked.live_top(ch, 4), per_sample.live_top(ch, 4));
        }
    }

    /// Columnar tenant partitioning routes every mapped sample exactly
    /// once, in order, with its site — flattening the per-tenant blocks
    /// reproduces the flat `partition`, and every non-tail output block
    /// is filled to the requested capacity.
    #[test]
    fn tenant_partition_blocks_matches_flat(
        owners in proptest::collection::vec(0u32..3, 1..12),
        samples in proptest::collection::vec(arb_sample(4), 0..200),
        threads in proptest::collection::vec(0u32..16, 0..200),
        in_caps in proptest::collection::vec(1usize..48, 1..5),
        out_cap in 1usize..32,
    ) {
        let mut map = TenantMap::new();
        for (t, &owner) in owners.iter().enumerate() {
            map.assign(ThreadId(t as u32), TenantId(owner));
        }
        let stream: Vec<(MemSample, Option<SiteId>)> = samples
            .into_iter()
            .zip(&threads)
            .enumerate()
            .map(|(i, (mut s, &t))| {
                s.thread = ThreadId(t);
                (s, (i % 2 == 0).then_some(SiteId(t)))
            })
            .collect();
        let flat: Vec<MemSample> = stream.iter().map(|(s, _)| *s).collect();
        let by_blocks = map.partition_blocks(&blocks_with_caps(&stream, &in_caps), out_cap);
        let by_flat = map.partition(&flat);
        prop_assert_eq!(by_blocks.len(), by_flat.len());
        for ((bt, blocks), (ft, want)) in by_blocks.iter().zip(&by_flat) {
            prop_assert_eq!(bt, ft);
            let got: Vec<(MemSample, Option<SiteId>)> =
                blocks.iter().flat_map(|b| (0..b.len()).map(move |i| (b.get(i), b.site(i)))).collect();
            let want_sites: Vec<(MemSample, Option<SiteId>)> = stream
                .iter()
                .filter(|(s, _)| map.tenant_of(s.thread) == Some(*ft))
                .cloned()
                .collect();
            prop_assert_eq!(got.len(), want.len());
            prop_assert_eq!(got, want_sites);
            for (i, b) in blocks.iter().enumerate() {
                prop_assert!(b.len() <= out_cap);
                if i + 1 < blocks.len() {
                    prop_assert_eq!(b.len(), out_cap, "only the tail block may be partial");
                }
            }
        }
    }
}

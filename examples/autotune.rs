//! Closed-loop guided optimization: DR-BW diagnoses a contended run, the
//! autotuner proposes placements for the ranked objects, re-simulates each
//! candidate, and keeps the best *verified* plan.
//!
//! ```text
//! cargo run --release --example autotune [benchmark] [threads] [nodes]
//! ```
//!
//! Defaults to Streamcluster on 32 threads / 4 nodes — the paper's §VIII.C
//! case study, where interleaving the diagnosed `block` array relieves the
//! contention. Set `DRBW_RUNCACHE_DIR=<dir>` to memoize the training grid
//! and every candidate re-simulation (the CI smoke test runs this example
//! twice against one cache directory; the warm pass replays from disk).

use drbw::prelude::*;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "Streamcluster".into());
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let workload = drbw::workloads::suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; try one of:");
        for w in drbw::workloads::suite::all_benchmarks() {
            eprintln!("  {}", w.name());
        }
        std::process::exit(1);
    });
    let input = *workload.inputs().last().unwrap();
    let rcfg = RunConfig::new(threads, nodes, input);

    println!("training classifier (quick subset)...");
    let mut builder = DrBw::builder().training_set(TrainingSet::Quick);
    if let Some(dir) = std::env::var_os("DRBW_RUNCACHE_DIR") {
        builder = builder.run_cache(std::path::PathBuf::from(dir));
    }
    let tool = builder.build().expect("the quick training grid always trains");

    println!("tuning {} at {} ({})...\n", workload.name(), rcfg.shape_label(), input.name());
    let report = tool.tune(workload, &rcfg, &TuneConfig::default());
    print!("{}", report.render());
    println!(
        "\nautotune: evaluated {} candidate(s), chose `{}`, x{:.3} verified speedup",
        report.trace.len(),
        report.plan.describe(),
        report.speedup()
    );
}

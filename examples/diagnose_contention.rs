//! Root-cause diagnosis scenario: a NUMA-oblivious application slows down
//! at scale; DR-BW names the arrays to fix.
//!
//! ```text
//! cargo run --release --example diagnose_contention [benchmark] [threads] [nodes]
//! ```
//!
//! Defaults to AMG2006 on 32 threads / 4 nodes — the paper's §VIII.A case
//! study. The example prints, per interconnect channel, the detection
//! verdict, then the ranked Contribution Fractions, and finally verifies
//! the guidance by applying the co-locate optimization and measuring the
//! speedup (and the drop in remote accesses), like Figures 4–5.

use drbw::prelude::*;
use workloads::runner::run;

fn main() {
    let mut args = std::env::args().skip(1);
    let name = args.next().unwrap_or_else(|| "AMG2006".into());
    let threads: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(32);
    let nodes: usize = args.next().and_then(|a| a.parse().ok()).unwrap_or(4);

    let machine = MachineConfig::scaled();
    let workload = drbw::workloads::suite::by_name(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name:?}; try one of:");
        for w in drbw::workloads::suite::all_benchmarks() {
            eprintln!("  {}", w.name());
        }
        std::process::exit(1);
    });
    let input = *workload.inputs().last().unwrap();
    let rcfg = RunConfig::new(threads, nodes, input);

    println!("training classifier (quick subset)...");
    let tool = DrBw::builder()
        .machine(machine.clone())
        .training_set(TrainingSet::Quick)
        .build()
        .expect("the quick training grid always trains");

    println!("profiling {} at {} ({})...", workload.name(), rcfg.shape_label(), input.name());
    let analysis = tool.analyze(workload, &rcfg);
    let detection = &analysis.detection;

    println!("\nper-channel verdicts:");
    for (ch, mode) in &detection.channel_modes {
        println!("  {ch}: {}", mode.name());
    }
    if detection.contended_channels.is_empty() {
        println!("\nno contention detected — nothing to optimize.");
        return;
    }

    println!("\nroot causes (cross-channel Contribution Fraction):");
    for o in analysis.diagnosis().overall.iter().take(8) {
        println!("  {:<22} line {:>5}  CF {:>6.2}%", o.label, o.line, o.cf * 100.0);
    }

    if !workload.supports(Variant::CoLocate) {
        println!("\n(this workload's hot data cannot be co-located; the paper applies");
        println!(" whole-program interleaving instead)");
        let base = run(workload, &machine, &rcfg, None);
        let inter = run(workload, &machine, &rcfg.with_variant(Variant::InterleaveAll), None);
        println!("interleave speedup: {:.2}x", inter.speedup_over(&base));
        return;
    }

    println!("\napplying the guidance: co-locating the diagnosed arrays...");
    let base = run(workload, &machine, &rcfg, None);
    let colo = run(workload, &machine, &rcfg.with_variant(Variant::CoLocate), None);
    let (rb, rc) = (base.total_counts().remote_dram, colo.total_counts().remote_dram);
    println!("speedup: {:.2}x", colo.speedup_over(&base));
    println!("remote DRAM accesses: {rb} -> {rc} ({:+.1}%)", (rc as f64 / rb.max(1) as f64 - 1.0) * 100.0);
}

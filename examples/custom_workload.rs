//! Bring-your-own-workload scenario: define a new program against the
//! `Workload` trait, run it on the simulated machine, and let DR-BW judge
//! and diagnose it — the path a user takes to study their *own*
//! application's NUMA behaviour.
//!
//! ```text
//! cargo run --release --example custom_workload
//! ```
//!
//! The example implements a tiny "graph analytics" kernel: a frontier
//! array partitioned across threads (fine) and one master-allocated edge
//! list every thread gathers from at random (the bug). DR-BW flags the
//! channels into node 0 and ranks `edges` first, after which re-placing
//! the edge list interleaved fixes the slowdown.

use drbw::core::classifier::ContentionClassifier;
use drbw::core::{diagnose, profile, training};
use drbw::prelude::*;
use mldt::tree::TrainConfig;
use numasim::access::{AccessMix, AccessStream, RandomStream, SeqStream, ZipStream};
use numasim::memmap::{MemoryMap, PlacementPolicy};
use pebs::alloc::AllocationTracker;
use pebs::numa_api::tracked_alloc_with;
use workloads::runner::run;
use workloads::spec::{BuiltWorkload, Phase, Suite};

/// A deliberately NUMA-oblivious graph kernel.
struct GraphKernel;

impl Workload for GraphKernel {
    fn name(&self) -> &'static str {
        "graph-kernel"
    }
    fn suite(&self) -> Suite {
        Suite::Micro
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, rcfg: &RunConfig) -> BuiltWorkload {
        let mut mm = MemoryMap::new(mcfg);
        let mut tracker = AllocationTracker::new();
        // The bug: the edge list is allocated (and first-touched) by the
        // master thread, so all of it lands on node 0.
        let edges = tracked_alloc_with(&mut mm, &mut tracker, "edges", 71, 12 << 20, PlacementPolicy::FirstTouch);
        let frontier = tracked_alloc_with(&mut mm, &mut tracker, "frontier", 85, 2 << 20, PlacementPolicy::FirstTouch);

        // Master loads the graph: one touch per page pins the pages.
        let page = mcfg.mem.page_size;
        let load = SeqStream::new(edges.handle.base, edges.handle.size, 1, AccessMix::write_only())
            .with_stride(page)
            .with_compute(1.0);
        let load_phase = Phase::new(
            "load_graph",
            vec![numasim::engine::ThreadSpec::new(0, numasim::topology::CoreId(0), Box::new(load))],
        );

        // Traversal: threads sweep their own frontier slice and gather
        // edges at random — from everyone, into node 0.
        let binding = mcfg.topology.bind_threads(rcfg.threads, rcfg.nodes);
        let threads = binding
            .iter()
            .enumerate()
            .map(|(t, core)| {
                let share = frontier.handle.size / rcfg.threads as u64;
                let fbase = frontier.handle.base + t as u64 * share;
                let local = SeqStream::new(fbase, share, 6, AccessMix::write_every(4)).with_reps(4).with_compute(3.0);
                let gather = RandomStream::new(
                    edges.handle.base,
                    edges.handle.size,
                    60_000,
                    rcfg.thread_seed(t),
                    AccessMix::read_only(),
                )
                .with_reps(2)
                .with_compute(2.0);
                numasim::engine::ThreadSpec::new(
                    t as u32,
                    *core,
                    Box::new(ZipStream::new(vec![Box::new(local) as Box<dyn AccessStream>, Box::new(gather)])),
                )
            })
            .collect();

        BuiltWorkload { mm, tracker, phases: vec![load_phase, Phase::new("traverse", threads)] }
    }
}

fn main() {
    let machine = MachineConfig::scaled();
    println!("training classifier (quick subset)...");
    let data = training::quick_training_set(&machine);
    let classifier = ContentionClassifier::train(&data, TrainConfig::default());

    let rcfg = RunConfig::new(32, 4, Input::Large);
    println!("profiling the custom graph kernel at {}...", rcfg.shape_label());
    let p = profile(&GraphKernel, &machine, &rcfg);
    let detection = classifier.classify_case(&p, 4);
    println!("verdict: {}", detection.mode().name());
    let diagnosis = diagnose(&p, &detection.contended_channels);
    for o in diagnosis.overall.iter().take(4) {
        println!("  {:<10} CF {:>6.2}%", o.label, o.cf * 100.0);
    }

    // Fix what DR-BW blames: interleave the edge list only.
    println!("\nre-placing `edges` interleaved (the fix DR-BW suggests)...");
    let base = run(&GraphKernel, &machine, &rcfg, None);
    // Rebuild with the fix applied by hand: same kernel, edges interleaved.
    struct Fixed;
    impl Workload for Fixed {
        fn name(&self) -> &'static str {
            "graph-kernel-fixed"
        }
        fn suite(&self) -> Suite {
            Suite::Micro
        }
        fn inputs(&self) -> Vec<Input> {
            vec![Input::Large]
        }
        fn build(&self, mcfg: &MachineConfig, rcfg: &RunConfig) -> BuiltWorkload {
            let mut built = GraphKernel.build(mcfg, rcfg);
            let edges = built.mm.objects().find(|(_, o)| o.label == "edges").map(|(id, _)| id).unwrap();
            built.mm.set_policy(edges, PlacementPolicy::interleave_all(mcfg.topology.num_nodes()));
            built
        }
    }
    let fixed = run(&Fixed, &machine, &rcfg, None);
    println!("speedup from the fix: {:.2}x", fixed.speedup_over(&base));
}

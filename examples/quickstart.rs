//! Quickstart: train DR-BW and analyze one contended program end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This trains the classifier on a reduced version of the paper's §V
//! mini-program grid (fast; the runs are simulated in parallel), profiles
//! Streamcluster with native input on 32 threads over 4 NUMA nodes,
//! detects the remote-bandwidth contention per interconnect channel, and
//! prints the Contribution-Fraction ranking of the responsible data
//! objects — DR-BW's optimization guidance. It then sweeps the remaining
//! run shapes in one parallel batch.

use drbw::core::report;
use drbw::prelude::*;

fn main() {
    println!("training on the mini-program grid (quick subset)...");
    let tool = DrBw::builder().training_set(TrainingSet::Quick).build().expect("the quick training grid always trains");
    println!("learned tree:\n{}", tool.classifier().render_tree());

    let workload = drbw::workloads::suite::by_name("Streamcluster").unwrap();
    let rcfg = RunConfig::new(32, 4, Input::Native);
    println!("profiling {} at {} (native input)...", workload.name(), rcfg.shape_label());
    let analysis = tool.analyze(workload, &rcfg);
    println!(
        "{}",
        report::render("streamcluster-native", &analysis.profile, &analysis.detection, &analysis.diagnosis())
    );

    // Batch mode: every shape of the scaling study, analyzed in parallel.
    let shapes: Vec<RunConfig> =
        [(8, 1), (16, 2), (32, 4), (64, 4)].iter().map(|&(t, n)| RunConfig::new(t, n, Input::Native)).collect();
    let cases: Vec<Case> = shapes.iter().map(|r| Case::new(workload, r)).collect();
    println!("sweeping {} shapes in one batch...", cases.len());
    for (rcfg, a) in shapes.iter().zip(tool.analyze_batch(&cases)) {
        println!(
            "  {:<8} verdict: {:<4}  contended channels: {}",
            rcfg.shape_label(),
            a.detection.mode().name(),
            a.detection.contended_channels.len()
        );
    }
}

//! Quickstart: train DR-BW and analyze one contended program end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! This trains the classifier on a reduced version of the paper's §V
//! mini-program grid (fast), profiles Streamcluster with native input on
//! 32 threads over 4 NUMA nodes, detects the remote-bandwidth contention
//! per interconnect channel, and prints the Contribution-Fraction ranking
//! of the responsible data objects — DR-BW's optimization guidance.

use drbw::core::classifier::ContentionClassifier;
use drbw::core::{diagnose, profile, report, training};
use drbw::prelude::*;
use mldt::tree::TrainConfig;

fn main() {
    let machine = MachineConfig::scaled();

    println!("training on the mini-program grid (quick subset)...");
    let data = training::quick_training_set(&machine);
    let classifier = ContentionClassifier::train(&data, TrainConfig::default());
    println!("learned tree:\n{}", classifier.render_tree());

    let workload = drbw::workloads::suite::by_name("Streamcluster").unwrap();
    let rcfg = RunConfig::new(32, 4, Input::Native);
    println!("profiling {} at {} (native input)...", workload.name(), rcfg.shape_label());
    let p = profile(workload, &machine, &rcfg);

    let detection = classifier.classify_case(&p, machine.topology.num_nodes());
    let diagnosis = diagnose(&p, &detection.contended_channels);
    println!("{}", report::render("streamcluster-native", &p, &detection, &diagnosis));
}

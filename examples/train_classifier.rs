//! Training scenario: build the full Table II training set, train the
//! decision tree, cross-validate it, and export the tree as Graphviz.
//!
//! ```text
//! cargo run --release --example train_classifier [--full]
//! ```
//!
//! With `--full` this runs the complete 192-run grid of the paper (§V,
//! Table II) — a few minutes of simulation; without it, a quick subset.
//! The dot output lands in `results/decision_tree.dot`
//! (`dot -Tpng results/decision_tree.dot -o tree.png` renders Figure 3).

use drbw::core::classifier::ContentionClassifier;
use drbw::core::training;
use drbw::prelude::*;
use mldt::crossval::stratified_kfold;
use mldt::tree::TrainConfig;

fn main() {
    let full = std::env::args().any(|a| a == "--full");
    let machine = MachineConfig::scaled();

    let specs = if full { training::training_specs() } else { training::quick_training_specs() };
    println!(
        "collecting {} training runs ({})...",
        specs.len(),
        if full { "full Table II grid" } else { "quick subset" }
    );
    let data = training::collect_training_set(&machine, &specs);
    println!(
        "dataset: {} instances ({} good, {} rmc), {} features",
        data.len(),
        data.class_counts()[0],
        data.class_counts()[1],
        data.num_features()
    );

    let cfg = TrainConfig::default();
    let classifier = ContentionClassifier::train(&data, cfg);
    println!("\nlearned tree:\n{}", classifier.render_tree());

    let k = if full { 10 } else { 4 };
    let cv = stratified_kfold(&data, k, 0xC4055, cfg);
    println!("stratified {k}-fold cross-validation: {:.1}% accuracy", cv.accuracy() * 100.0);
    print!("{}", cv.confusion.to_table());

    std::fs::create_dir_all("results").ok();
    std::fs::write("results/decision_tree.dot", classifier.render_dot()).expect("write dot file");
    println!("\nGraphviz tree written to results/decision_tree.dot");
}

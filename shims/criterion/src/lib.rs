//! Offline stand-in for `criterion`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the criterion 0.5 API its benches use: `Criterion`,
//! benchmark groups, `bench_function` / `bench_with_input`, `Bencher::iter`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros. Measurement is a calibrated batch loop
//! reporting median / mean per-iteration time (no statistics engine, no
//! HTML reports). Swap the path dependency back to crates.io criterion on
//! a networked machine for the full harness; bench sources compile
//! unchanged.

#![warn(missing_docs)]

use std::fmt::Display;
use std::hint::black_box as std_black_box;
use std::time::{Duration, Instant};

/// Re-export of [`std::hint::black_box`] under criterion's name.
pub fn black_box<T>(x: T) -> T {
    std_black_box(x)
}

/// Throughput annotation for a group (printed alongside timings).
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier: function name plus an optional parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Into<String>, parameter: impl Display) -> Self {
        Self { id: format!("{}/{parameter}", name.into()) }
    }

    /// Just the parameter (for groups benchmarking one function over
    /// several inputs).
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self { id: parameter.to_string() }
    }
}

impl From<&str> for BenchmarkId {
    fn from(s: &str) -> Self {
        Self { id: s.to_string() }
    }
}

impl From<String> for BenchmarkId {
    fn from(s: String) -> Self {
        Self { id: s }
    }
}

/// Drives one benchmark's measurement loop.
pub struct Bencher {
    samples: usize,
    /// Per-iteration durations collected by [`Bencher::iter`].
    times: Vec<Duration>,
}

impl Bencher {
    /// Measure `f` repeatedly. Warmup runs calibrate an iteration batch so
    /// each timed sample is long enough for the clock to resolve.
    pub fn iter<R, F: FnMut() -> R>(&mut self, mut f: F) {
        // Warmup + batch calibration: aim for samples of >= 1ms.
        let t0 = Instant::now();
        std_black_box(f());
        let once = t0.elapsed().max(Duration::from_nanos(10));
        let batch = (Duration::from_millis(1).as_nanos() / once.as_nanos()).clamp(1, 1_000_000) as u32;
        for _ in 0..self.samples {
            let start = Instant::now();
            for _ in 0..batch {
                std_black_box(f());
            }
            self.times.push(start.elapsed() / batch);
        }
    }

    fn report(&self, id: &str, throughput: Option<Throughput>) {
        if self.times.is_empty() {
            println!("{id:<40} (no samples)");
            return;
        }
        let mut sorted = self.times.clone();
        sorted.sort_unstable();
        let median = sorted[sorted.len() / 2];
        let mean = sorted.iter().sum::<Duration>() / sorted.len() as u32;
        let rate = match throughput {
            Some(Throughput::Elements(n)) => {
                format!("  {:>12.0} elem/s", n as f64 / median.as_secs_f64())
            }
            Some(Throughput::Bytes(n)) => {
                format!("  {:>12.0} B/s", n as f64 / median.as_secs_f64())
            }
            None => String::new(),
        };
        println!("{id:<40} median {median:>12.3?}  mean {mean:>12.3?}{rate}");
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    throughput: Option<Throughput>,
    sample_size: usize,
    _criterion: &'a mut Criterion,
}

impl BenchmarkGroup<'_> {
    /// Annotate subsequent benchmarks with a throughput.
    pub fn throughput(&mut self, t: Throughput) -> &mut Self {
        self.throughput = Some(t);
        self
    }

    /// Number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Run one benchmark parameterized by an input.
    pub fn bench_with_input<I: ?Sized, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut b = Bencher { samples: self.sample_size, times: Vec::new() };
        f(&mut b, input);
        b.report(&format!("{}/{}", self.name, id.id), self.throughput);
        self
    }

    /// Finish the group (printing is eager; this is a no-op for
    /// compatibility).
    pub fn finish(&mut self) {}
}

/// The top-level harness handle.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Open a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        println!("== {name}");
        BenchmarkGroup { name, throughput: None, sample_size: 30, _criterion: self }
    }

    /// Run a standalone benchmark.
    pub fn bench_function<F>(&mut self, id: impl Into<BenchmarkId>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher { samples: 30, times: Vec::new() };
        f(&mut b);
        b.report(&id.id, None);
        self
    }
}

/// Declare a group of benchmark functions, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Declare the bench binary's `main`, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_collects_samples() {
        let mut b = Bencher { samples: 5, times: Vec::new() };
        let mut calls = 0u64;
        b.iter(|| {
            calls += 1;
            // Enough work that a sample is measurable; a single add can
            // round to zero at the clock's granularity in optimized builds.
            (0..10_000u64).fold(0, |a, i| a ^ black_box(i))
        });
        assert_eq!(b.times.len(), 5);
        assert!(calls >= 5, "closure ran {calls} times");
        assert!(b.times.iter().all(|t| *t > Duration::ZERO));
    }

    #[test]
    fn group_api_composes() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("shim");
        g.sample_size(3).throughput(Throughput::Elements(10));
        g.bench_function("noop", |b| b.iter(|| 1 + 1));
        g.bench_with_input(BenchmarkId::new("param", 7), &7u32, |b, &x| b.iter(|| x * 2));
        g.finish();
    }

    #[test]
    fn benchmark_ids_format() {
        assert_eq!(BenchmarkId::new("f", 32).id, "f/32");
        assert_eq!(BenchmarkId::from_parameter("seq").id, "seq");
    }
}

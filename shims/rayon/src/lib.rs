//! Offline stand-in for `rayon`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the rayon 1.x API that DR-BW's batch engine uses —
//! `par_iter()` / `into_par_iter()` / `map` / `collect`, plus
//! [`current_num_threads`] and a [`ThreadPoolBuilder`] whose pools scope a
//! thread-count override. It is a *real* data-parallel implementation:
//! items are dispatched to `std::thread::scope` workers through an atomic
//! work index (dynamic scheduling, so uneven simulation runs balance), and
//! results are returned **in input order**, which is what the
//! deterministic-training contract in `drbw-core::training` relies on.
//! Swap the path dependency back to crates.io rayon on a networked machine
//! and the workspace compiles unchanged.

#![warn(missing_docs)]

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

thread_local! {
    /// Thread-count override installed by [`ThreadPool::install`].
    static POOL_THREADS: Cell<Option<usize>> = const { Cell::new(None) };
}

/// The number of worker threads parallel iterators on this thread will
/// use: an installed pool's size, else `RAYON_NUM_THREADS`, else the
/// machine's available parallelism.
pub fn current_num_threads() -> usize {
    if let Some(n) = POOL_THREADS.with(|t| t.get()) {
        return n.max(1);
    }
    if let Some(n) = std::env::var("RAYON_NUM_THREADS").ok().and_then(|v| v.parse::<usize>().ok()) {
        if n > 0 {
            return n;
        }
    }
    std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
}

/// Error building a thread pool (kept for API compatibility; the shim
/// cannot actually fail).
#[derive(Debug)]
pub struct ThreadPoolBuildError(());

impl std::fmt::Display for ThreadPoolBuildError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "thread pool build error")
    }
}

impl std::error::Error for ThreadPoolBuildError {}

/// Builder for a scoped thread pool.
#[derive(Debug, Default)]
pub struct ThreadPoolBuilder {
    num_threads: Option<usize>,
}

impl ThreadPoolBuilder {
    /// A builder with default settings.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fix the pool's worker count (0 means "automatic", like rayon).
    pub fn num_threads(mut self, n: usize) -> Self {
        self.num_threads = (n > 0).then_some(n);
        self
    }

    /// Build the pool.
    pub fn build(self) -> Result<ThreadPool, ThreadPoolBuildError> {
        Ok(ThreadPool { num_threads: self.num_threads })
    }
}

/// A handle scoping parallel work to a fixed worker count.
#[derive(Debug)]
pub struct ThreadPool {
    num_threads: Option<usize>,
}

impl ThreadPool {
    /// Run `op` with this pool's thread count governing any parallel
    /// iterators it executes.
    pub fn install<OP, R>(&self, op: OP) -> R
    where
        OP: FnOnce() -> R,
    {
        let prev = POOL_THREADS.with(|t| t.replace(self.num_threads));
        // Restore on unwind too, so a panicking op doesn't leak the override.
        struct Restore(Option<usize>);
        impl Drop for Restore {
            fn drop(&mut self) {
                POOL_THREADS.with(|t| t.set(self.0));
            }
        }
        let _restore = Restore(prev);
        op()
    }

    /// The worker count parallel iterators will use under this pool.
    pub fn current_num_threads(&self) -> usize {
        self.num_threads.unwrap_or_else(current_num_threads)
    }
}

/// Apply `f` to every item on a scoped worker crew, returning results in
/// input order. Dynamic scheduling: workers pull the next unclaimed index.
fn par_apply<T, R, F>(items: Vec<T>, f: &F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    let n = items.len();
    let workers = current_num_threads().min(n);
    if workers <= 1 {
        return items.into_iter().map(f).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = items.into_iter().map(|t| Mutex::new(Some(t))).collect();
    let out: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= n {
                    break;
                }
                let item = slots[i].lock().unwrap().take().expect("each index claimed once");
                let r = f(item);
                *out[i].lock().unwrap() = Some(r);
            });
        }
    });
    out.into_iter().map(|m| m.into_inner().unwrap().expect("worker filled its slot")).collect()
}

/// A parallel iterator: a source of items plus a fused mapping stage.
pub trait ParallelIterator: Sized {
    /// The item type this iterator yields.
    type Item: Send;

    /// Materialize all items, in input order, running the mapped stages
    /// in parallel.
    fn exec(self) -> Vec<Self::Item>;

    /// Transform every item with `f` in parallel.
    fn map<R, F>(self, f: F) -> Map<Self, F>
    where
        R: Send,
        F: Fn(Self::Item) -> R + Sync + Send,
    {
        Map { base: self, f }
    }

    /// Collect the results (order-preserving).
    fn collect<C>(self) -> C
    where
        C: FromParallelIterator<Self::Item>,
    {
        C::from_par_vec(self.exec())
    }
}

/// Conversion from an ordered result vector, the collect target.
pub trait FromParallelIterator<T> {
    /// Build the collection from items in input order.
    fn from_par_vec(items: Vec<T>) -> Self;
}

impl<T> FromParallelIterator<T> for Vec<T> {
    fn from_par_vec(items: Vec<T>) -> Self {
        items
    }
}

/// A mapped parallel iterator.
pub struct Map<B, F> {
    base: B,
    f: F,
}

impl<B, R, F> ParallelIterator for Map<B, F>
where
    B: ParallelIterator,
    R: Send,
    F: Fn(B::Item) -> R + Sync + Send,
{
    type Item = R;

    fn exec(self) -> Vec<R> {
        par_apply(self.base.exec(), &self.f)
    }
}

/// Borrowing source over a slice.
pub struct SliceIter<'a, T> {
    slice: &'a [T],
}

impl<'a, T: Sync + 'a> ParallelIterator for SliceIter<'a, T> {
    type Item = &'a T;

    fn exec(self) -> Vec<&'a T> {
        self.slice.iter().collect()
    }
}

/// Owning source over a vector.
pub struct VecIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParallelIterator for VecIter<T> {
    type Item = T;

    fn exec(self) -> Vec<T> {
        self.items
    }
}

/// Types convertible into an owning parallel iterator.
pub trait IntoParallelIterator {
    /// Yielded item type.
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Convert.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = VecIter<T>;
    fn into_par_iter(self) -> VecIter<T> {
        VecIter { items: self }
    }
}

impl IntoParallelIterator for std::ops::Range<usize> {
    type Item = usize;
    type Iter = VecIter<usize>;
    fn into_par_iter(self) -> VecIter<usize> {
        VecIter { items: self.collect() }
    }
}

/// Types whose references iterate in parallel (`.par_iter()`).
pub trait IntoParallelRefIterator<'data> {
    /// Yielded item type (a reference).
    type Item: Send;
    /// The iterator type.
    type Iter: ParallelIterator<Item = Self::Item>;
    /// Borrowing conversion.
    fn par_iter(&'data self) -> Self::Iter;
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
    type Item = &'data T;
    type Iter = SliceIter<'data, T>;
    fn par_iter(&'data self) -> SliceIter<'data, T> {
        SliceIter { slice: self }
    }
}

/// The customary glob import.
pub mod prelude {
    pub use crate::{FromParallelIterator, IntoParallelIterator, IntoParallelRefIterator, ParallelIterator};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;
    use std::collections::HashSet;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn map_collect_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.par_iter().map(|&x| x * 2).collect();
        assert_eq!(out, (0..1000).map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn into_par_iter_owns_items() {
        let input: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let out: Vec<usize> = input.into_par_iter().map(|s| s.len()).collect();
        assert_eq!(out.len(), 100);
        assert_eq!(out[99], 2);
        let r: Vec<usize> = (0..10usize).into_par_iter().map(|i| i + 1).collect();
        assert_eq!(r, (1..11).collect::<Vec<_>>());
    }

    #[test]
    fn work_actually_spreads_across_threads() {
        if current_num_threads() < 2 {
            return; // single-core runner: nothing to assert
        }
        let ids = Mutex::new(HashSet::new());
        let _: Vec<()> = (0..64usize)
            .into_par_iter()
            .map(|_| {
                std::thread::sleep(std::time::Duration::from_millis(2));
                ids.lock().unwrap().insert(std::thread::current().id());
            })
            .collect();
        assert!(ids.lock().unwrap().len() > 1, "expected more than one worker thread");
    }

    #[test]
    fn pool_install_scopes_thread_count() {
        let pool = ThreadPoolBuilder::new().num_threads(1).build().unwrap();
        assert_eq!(pool.current_num_threads(), 1);
        pool.install(|| {
            assert_eq!(current_num_threads(), 1);
            let ids = Mutex::new(HashSet::new());
            let _: Vec<()> = (0..16usize)
                .into_par_iter()
                .map(|_| {
                    ids.lock().unwrap().insert(std::thread::current().id());
                })
                .collect();
            assert_eq!(ids.lock().unwrap().len(), 1, "pool of one must not spawn workers");
        });
        assert_eq!(POOL_THREADS.with(|t| t.get()), None, "override restored");
    }

    #[test]
    fn nested_maps_fuse_correctly() {
        let out: Vec<usize> = (0..50usize).into_par_iter().map(|i| i + 1).map(|i| i * 10).collect();
        assert_eq!(out[0], 10);
        assert_eq!(out[49], 500);
    }

    #[test]
    fn every_item_processed_exactly_once() {
        let count = AtomicUsize::new(0);
        let out: Vec<usize> = (0..777usize)
            .into_par_iter()
            .map(|i| {
                count.fetch_add(1, Ordering::Relaxed);
                i
            })
            .collect();
        assert_eq!(count.load(Ordering::Relaxed), 777);
        assert_eq!(out, (0..777).collect::<Vec<_>>());
    }
}

//! Offline stand-in for the `rand` crate.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the *subset* of `rand 0.8` the simulator actually uses: a seedable,
//! cloneable [`rngs::StdRng`], [`Rng::gen_range`] over integer ranges,
//! and [`seq::SliceRandom::shuffle`]. The generator is xoshiro256++
//! seeded through SplitMix64 — statistically strong, deterministic, and
//! stable across platforms, which is all the deterministic simulation
//! contract requires (DESIGN.md §7). Swap this path dependency back to
//! crates.io `rand` on a networked machine and everything still compiles;
//! the concrete pseudo-random streams (not their distributions) differ.

#![warn(missing_docs)]

/// Seedable random-number generators.
pub trait SeedableRng: Sized {
    /// Build a generator whose entire stream is determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Uniform sampling from a range, the only `Rng` surface DR-BW uses.
pub trait Rng {
    /// The generator's native 64-bit output.
    fn next_u64(&mut self) -> u64;

    /// A uniform sample from `range` (`a..b` or `a..=b`).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample(self)
    }
}

/// Ranges that can be sampled uniformly. Implemented for the integer
/// `Range`/`RangeInclusive` types the simulator draws from.
pub trait SampleRange<T> {
    /// Draw one uniform sample.
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> T;
}

/// Debiased uniform draw in `[0, n)` by rejection (Lemire's method needs
/// 128-bit widening; plain rejection is simpler and branch-predictable
/// for the small moduli used here).
fn uniform_below<G: Rng + ?Sized>(rng: &mut G, n: u64) -> u64 {
    debug_assert!(n > 0);
    if n.is_power_of_two() {
        return rng.next_u64() & (n - 1);
    }
    let zone = u64::MAX - (u64::MAX % n);
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + uniform_below(rng, span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return start + rng.next_u64() as $t;
                }
                start + uniform_below(rng, span + 1) as $t
            }
        }
    )*};
}

impl_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample<G: Rng + ?Sized>(self, rng: &mut G) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        // 53 mantissa bits of uniformity in [0, 1).
        let unit = (rng.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        self.start + unit * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{Rng, SeedableRng};

    /// The workspace's standard seeded generator: xoshiro256++ with a
    /// SplitMix64-expanded seed (the xoshiro authors' recommended
    /// seeding). Deterministic, cloneable, platform-independent.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            Self { s: [splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm), splitmix64(&mut sm)] }
        }
    }

    impl Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let out = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            out
        }
    }
}

/// Sequence helpers.
pub mod seq {
    use super::Rng;

    /// Slice shuffling (the only `seq` API the workspace uses).
    pub trait SliceRandom {
        /// Uniform in-place Fisher–Yates shuffle.
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<G: Rng + ?Sized>(&mut self, rng: &mut G) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..=i);
                self.swap(i, j);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn clone_preserves_state() {
        let mut a = StdRng::seed_from_u64(7);
        a.next_u64();
        let mut b = a.clone();
        assert_eq!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds_and_cover() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v: usize = rng.gen_range(0..10usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 0..10 hit in 1000 draws");
        for _ in 0..1000 {
            let v = rng.gen_range(5u64..=6);
            assert!((5..=6).contains(&v));
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
    }

    #[test]
    fn range_distribution_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(99);
        let mut counts = [0u32; 7];
        for _ in 0..70_000 {
            counts[rng.gen_range(0..7u64) as usize] += 1;
        }
        for &c in &counts {
            assert!((9000..11000).contains(&c), "bucket count {c} far from 10000");
        }
    }

    #[test]
    fn shuffle_permutes_deterministically() {
        let orig: Vec<u32> = (0..50).collect();
        let mut a = orig.clone();
        let mut b = orig.clone();
        a.shuffle(&mut StdRng::seed_from_u64(5));
        b.shuffle(&mut StdRng::seed_from_u64(5));
        assert_eq!(a, b, "same seed, same permutation");
        assert_ne!(a, orig, "50 elements virtually never shuffle to identity");
        let mut sorted = a.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, orig, "shuffle is a permutation");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(0);
        let _: u64 = rng.gen_range(5..5u64);
    }
}

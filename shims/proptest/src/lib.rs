//! Offline stand-in for `proptest`.
//!
//! The build container has no crates.io access, so the workspace vendors
//! the subset of the proptest 1.x API its property tests use: the
//! [`strategy::Strategy`] trait with `prop_map`, range / `Just` / tuple /
//! [`collection::vec`] / [`option::of`] strategies, `any::<T>()`, and the
//! `proptest!`, `prop_compose!`, `prop_oneof!`, `prop_assert!`,
//! `prop_assert_eq!` macros. Each `proptest!` test runs its body over
//! [`CASES`] deterministically seeded random inputs (seeded from the test
//! name, so failures reproduce); there is no shrinking. Swap the path
//! dependency back to crates.io proptest on a networked machine and the
//! test sources compile unchanged.

#![warn(missing_docs)]

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Number of random cases each `proptest!` test runs.
pub const CASES: u64 = 64;

/// Deterministic per-test RNG: seed derived from the test's name and the
/// case number (FNV-1a over the name).
fn case_rng(name: &str, case: u64) -> StdRng {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x1000_0000_01b3);
    }
    StdRng::seed_from_u64(h ^ case.wrapping_mul(0x9E37_79B9_7F4A_7C15))
}

/// Test-runner entry used by the `proptest!` macro: run `body` once per
/// case with a fresh deterministically seeded RNG.
pub fn run_proptest<F: FnMut(&mut StdRng)>(name: &str, mut body: F) {
    for case in 0..CASES {
        let mut rng = case_rng(name, case);
        body(&mut rng);
    }
}

/// Input-generation strategies.
pub mod strategy {
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A generator of random values of one type.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn sample(&self, rng: &mut StdRng) -> Self::Value;

        /// Transform generated values.
        fn prop_map<T, F>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
            F: Fn(Self::Value) -> T,
        {
            Map { base: self, f }
        }

        /// Type-erase (used by `prop_oneof!`).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            BoxedStrategy(Box::new(self))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn sample(&self, _rng: &mut StdRng) -> T {
            self.0.clone()
        }
    }

    /// Mapped strategy (`prop_map`).
    pub struct Map<B, F> {
        base: B,
        f: F,
    }

    impl<B, T, F> Strategy for Map<B, F>
    where
        B: Strategy,
        F: Fn(B::Value) -> T,
    {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            (self.f)(self.base.sample(rng))
        }
    }

    /// A type-erased strategy.
    pub struct BoxedStrategy<T>(Box<dyn Strategy<Value = T>>);

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            self.0.sample(rng)
        }
    }

    /// Uniform choice among type-erased strategies (`prop_oneof!`).
    pub struct Union<T>(Vec<BoxedStrategy<T>>);

    impl<T> Union<T> {
        /// Build from the `prop_oneof!` arms.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one arm");
            Self(options)
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            let i = rng.gen_range(0..self.0.len());
            self.0[i].sample(rng)
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn sample(&self, rng: &mut StdRng) -> $t {
                    rng.gen_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;
        fn sample(&self, rng: &mut StdRng) -> f64 {
            rng.gen_range(self.clone())
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn sample(&self, rng: &mut StdRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.sample(rng),)+)
                }
            }
        };
    }

    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
}

/// `any::<T>()` support.
pub mod arbitrary {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Types with a default full-range strategy.
    pub trait Arbitrary {
        /// Draw an unconstrained value.
        fn arbitrary(rng: &mut StdRng) -> Self;
    }

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut StdRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    macro_rules! impl_arbitrary_uint {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut StdRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    impl_arbitrary_uint!(u8, u16, u32, u64, usize);

    /// The strategy returned by [`any`].
    pub struct AnyStrategy<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for AnyStrategy<T> {
        type Value = T;
        fn sample(&self, rng: &mut StdRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// The full-range strategy for `T`.
    pub fn any<T: Arbitrary>() -> AnyStrategy<T> {
        AnyStrategy(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`vec()`].
    pub struct VecStrategy<S> {
        element: S,
        len: core::ops::Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let n = rng.gen_range(self.len.clone());
            (0..n).map(|_| self.element.sample(rng)).collect()
        }
    }

    /// Vectors of `element` values with a length drawn from `len`.
    pub fn vec<S: Strategy>(element: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, len }
    }
}

/// Option strategies.
pub mod option {
    use super::strategy::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// The strategy returned by [`of`].
    pub struct OptionStrategy<S>(S);

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn sample(&self, rng: &mut StdRng) -> Option<S::Value> {
            (rng.next_u64() & 1 == 1).then(|| self.0.sample(rng))
        }
    }

    /// `Some` of the inner strategy half the time, `None` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy(inner)
    }
}

/// Assert inside a property (alias for `assert!`; no shrinking, so a plain
/// panic carries the failing case).
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// Equality assert inside a property (alias for `assert_eq!`).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// Uniform choice among strategies of one value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![$($crate::strategy::Strategy::boxed($arm)),+])
    };
}

/// Define a function returning a composed strategy:
/// `fn name(args..)(bindings in strategies..) -> T { body }`.
#[macro_export]
macro_rules! prop_compose {
    ($(#[$meta:meta])* $vis:vis fn $name:ident($($arg:ident: $argty:ty),* $(,)?)($($var:ident in $strat:expr),+ $(,)?) -> $ret:ty $body:block) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::Strategy::prop_map(($($strat,)+), move |($($var,)+)| $body)
        }
    };
}

/// Define `#[test]` functions whose arguments are drawn from strategies,
/// run over [`CASES`] deterministic cases each.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($var:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                $crate::run_proptest(stringify!($name), |rng| {
                    $(let $var = $crate::strategy::Strategy::sample(&($strat), rng);)*
                    $body
                });
            }
        )*
    };
}

/// The customary glob import.
pub mod prelude {
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_compose, prop_oneof, proptest};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn strategies_sample_within_shape() {
        super::run_proptest("shape", |rng| {
            let v: u64 = (10u64..20).sample(rng);
            assert!((10..20).contains(&v));
            let f: f64 = (0.5f64..1.5).sample(rng);
            assert!((0.5..1.5).contains(&f));
            let j = Just(7u8).sample(rng);
            assert_eq!(j, 7);
            let t = (0u8..4, 100u64..200).sample(rng);
            assert!(t.0 < 4 && (100..200).contains(&t.1));
            let vs = super::collection::vec(0u32..5, 2..6).sample(rng);
            assert!((2..6).contains(&vs.len()));
            assert!(vs.iter().all(|&x| x < 5));
            let o = super::option::of(1u8..3).sample(rng);
            assert!(o.is_none() || o == Some(1) || o == Some(2));
        });
    }

    #[test]
    fn oneof_covers_all_arms() {
        let s = prop_oneof![Just(1u8), Just(2u8), Just(3u8)];
        let mut seen = [false; 4];
        super::run_proptest("oneof", |rng| {
            seen[s.sample(rng) as usize] = true;
        });
        assert!(seen[1] && seen[2] && seen[3]);
    }

    prop_compose! {
        fn arb_pair(hi: u8)(a in 0..hi, b in 0..hi) -> (u8, u8) { (a, b) }
    }

    proptest! {
        #[test]
        fn composed_strategies_work(p in arb_pair(9), xs in super::collection::vec(any::<u32>(), 0..4)) {
            prop_assert!(p.0 < 9 && p.1 < 9);
            prop_assert_eq!(xs.len() < 4, true);
        }

        #[test]
        fn mapped_values_transform(v in (0u8..5).prop_map(|x| x * 10)) {
            prop_assert!(v % 10 == 0 && v < 50);
        }
    }

    #[test]
    fn cases_are_deterministic() {
        let mut a = Vec::new();
        let mut b = Vec::new();
        super::run_proptest("det", |rng| a.push((0u64..1000).sample(rng)));
        super::run_proptest("det", |rng| b.push((0u64..1000).sample(rng)));
        assert_eq!(a, b);
        assert_eq!(a.len(), super::CASES as usize);
    }
}

//! `drbw` — the command-line front end of the DR-BW reproduction.
//!
//! ```text
//! drbw train [--quick] [--out PATH]      train the classifier, save the model
//! drbw analyze BENCH [-t T] [-n N] [-i INPUT] [--model PATH]
//!                                        detect + diagnose one case
//! drbw list                              list the available benchmarks
//! drbw tree [--model PATH]               print the learned decision tree
//! drbw help                              this text
//! ```
//!
//! The model file defaults to `results/drbw.model`; `analyze` trains a
//! quick model on the fly when none exists.

use drbw::core::report;
use drbw::prelude::*;
use std::process::ExitCode;

const DEFAULT_MODEL: &str = "results/drbw.model";

fn usage() -> ExitCode {
    eprintln!(
        "usage:\n  drbw train [--quick] [--out PATH] [-j THREADS]\n  drbw analyze BENCH [-t THREADS] [-n NODES] [-i small|medium|large|native] [--model PATH]\n  drbw list\n  drbw tree [--model PATH]"
    );
    ExitCode::from(2)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter().position(|a| a == flag).and_then(|i| args.get(i + 1).cloned())
}

fn load_or_train(path: &str) -> DrBw {
    match DrBw::load(path) {
        Ok(tool) => {
            eprintln!("loaded model from {path}");
            return tool;
        }
        Err(DrbwError::Io(_)) => {
            eprintln!("no model at {path}; training a quick one (use `drbw train` for the full grid)")
        }
        Err(e) => eprintln!("ignoring unreadable model {path}: {e}"),
    }
    DrBw::builder().training_set(TrainingSet::Quick).build().expect("the quick grid always trains")
}

fn cmd_train(args: &[String]) -> ExitCode {
    let quick = args.iter().any(|a| a == "--quick");
    let out = flag_value(args, "--out").unwrap_or_else(|| DEFAULT_MODEL.into());
    let set = if quick { TrainingSet::Quick } else { TrainingSet::Full };
    let mut builder = DrBw::builder().training_set(set);
    if let Some(j) = flag_value(args, "-j").and_then(|v| v.parse().ok()) {
        builder = builder.threads(j);
    }
    eprintln!("running the {} training simulations...", if quick { "quick (24)" } else { "full (192)" });
    let tool = match builder.build() {
        Ok(tool) => tool,
        Err(e) => {
            eprintln!("training failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    println!("{}", tool.classifier().render_tree());
    match tool.save(&out) {
        Ok(()) => {
            println!("model written to {out}");
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("cannot write {out}: {e}");
            ExitCode::FAILURE
        }
    }
}

fn cmd_analyze(args: &[String]) -> ExitCode {
    let Some(name) = args.first().filter(|a| !a.starts_with('-')) else {
        return usage();
    };
    let Some(workload) = drbw::workloads::suite::by_name(name) else {
        eprintln!("unknown benchmark {name:?}; `drbw list` shows the options");
        return ExitCode::FAILURE;
    };
    let threads = flag_value(args, "-t").and_then(|v| v.parse().ok()).unwrap_or(32);
    let nodes = flag_value(args, "-n").and_then(|v| v.parse().ok()).unwrap_or(4);
    let input = match flag_value(args, "-i").as_deref() {
        Some("small") => Input::Small,
        Some("medium") => Input::Medium,
        Some("large") => Input::Large,
        Some("native") => Input::Native,
        None => *workload.inputs().last().unwrap(),
        Some(other) => {
            eprintln!("unknown input {other:?}");
            return ExitCode::FAILURE;
        }
    };
    if !workload.inputs().contains(&input) {
        eprintln!("{name} defines inputs {:?}", workload.inputs().iter().map(|i| i.name()).collect::<Vec<_>>());
        return ExitCode::FAILURE;
    }
    let model_path = flag_value(args, "--model").unwrap_or_else(|| DEFAULT_MODEL.into());
    let tool = load_or_train(&model_path);

    let rcfg = RunConfig::new(threads, nodes, input);
    eprintln!("profiling {name} at {} ({})...", rcfg.shape_label(), input.name());
    let a = tool.analyze(workload, &rcfg);
    print!("{}", report::render(&format!("{name} {}", rcfg.shape_label()), &a.profile, &a.detection, &a.diagnosis()));
    ExitCode::SUCCESS
}

fn cmd_list() -> ExitCode {
    println!("{:<16} {:<9} inputs", "benchmark", "suite");
    for w in drbw::workloads::suite::all_benchmarks() {
        let inputs: Vec<&str> = w.inputs().iter().map(|i| i.name()).collect();
        println!("{:<16} {:<9?} {}", w.name(), w.suite(), inputs.join(", "));
    }
    ExitCode::SUCCESS
}

fn cmd_tree(args: &[String]) -> ExitCode {
    let model_path = flag_value(args, "--model").unwrap_or_else(|| DEFAULT_MODEL.into());
    let tool = load_or_train(&model_path);
    print!("{}", tool.classifier().render_tree());
    ExitCode::SUCCESS
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("train") => cmd_train(&args[1..]),
        Some("analyze") => cmd_analyze(&args[1..]),
        Some("list") => cmd_list(),
        Some("tree") => cmd_tree(&args[1..]),
        _ => usage(),
    }
}

//! # drbw — DR-BW: Identifying Bandwidth Contention in NUMA Architectures
//! with Supervised Learning
//!
//! A full Rust reproduction of the IPDPS 2017 paper by Xu, Wen, Gimenez,
//! Gamblin, and Liu. This facade crate re-exports the workspace:
//!
//! * [`numasim`] — the simulated 4-socket NUMA machine (topology, caches,
//!   page placement, bandwidth contention, execution engine);
//! * [`pebs`] — PEBS-style address sampling and malloc interception;
//! * [`mldt`] — decision trees, cross-validation, confusion matrices;
//! * [`core`] — DR-BW itself: profiler, channel association, Table I
//!   features, the contention classifier, and the CF diagnoser;
//! * [`workloads`] — the training mini-programs and analogs of the 23
//!   evaluated benchmarks, with the co-locate / interleave / replicate
//!   optimizations.
//!
//! ## Quickstart
//!
//! ```no_run
//! use drbw::prelude::*;
//!
//! let machine = MachineConfig::scaled();
//! // Train the classifier on the §V mini-program grid (192 runs).
//! let tool = DrBw::train(&machine);
//! // Analyze a benchmark case end to end.
//! let workload = drbw::workloads::suite::by_name("Streamcluster").unwrap();
//! let analysis = tool.analyze(workload, &machine, &RunConfig::new(32, 4, Input::Native));
//! println!("{}", drbw::core::report::render("streamcluster", &analysis.profile,
//!     &analysis.detection, &analysis.diagnosis));
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the binaries regenerating every table and figure of the paper.

pub use drbw_core as core;
pub use mldt;
pub use numasim;
pub use pebs;
pub use workloads;

/// The most common imports for using DR-BW end to end.
pub mod prelude {
    pub use drbw_core::{diagnose, profile, Analysis, CaseResult, ContentionClassifier, Diagnosis, DrBw, Mode, Profile};
    pub use numasim::config::MachineConfig;
    pub use workloads::config::{Input, RunConfig, Variant};
    pub use workloads::spec::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_line_up() {
        let cfg = crate::prelude::MachineConfig::scaled();
        assert_eq!(cfg.topology.num_nodes(), 4);
        assert!(crate::workloads::suite::by_name("IRSmk").is_some());
        assert_eq!(crate::core::features::NUM_SELECTED, 13);
    }
}

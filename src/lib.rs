//! # drbw — DR-BW: Identifying Bandwidth Contention in NUMA Architectures
//! with Supervised Learning
//!
//! A full Rust reproduction of the IPDPS 2017 paper by Xu, Wen, Gimenez,
//! Gamblin, and Liu. This facade crate re-exports the workspace:
//!
//! * [`numasim`] — the simulated 4-socket NUMA machine (topology, caches,
//!   page placement, bandwidth contention, execution engine);
//! * [`pebs`] — PEBS-style address sampling and malloc interception;
//! * [`mldt`] — decision trees, cross-validation, confusion matrices;
//! * [`core`] — DR-BW itself: profiler, channel association, Table I
//!   features, the contention classifier, and the CF diagnoser;
//! * [`workloads`] — the training mini-programs and analogs of the 23
//!   evaluated benchmarks, with the co-locate / interleave / replicate
//!   optimizations;
//! * [`stream`] — the online counterpart of the batch pipeline: windowed
//!   streaming ingestion, incremental feature extraction, live contention
//!   verdicts with hysteresis, and top-K Contribution-Fraction sketches;
//! * [`runcache`] — content-addressed on-disk memoization of simulated
//!   runs (columnar sample-log codec, hash-verified reads), so repeated
//!   grids and regeneration loops read results instead of re-simulating;
//! * [`tune`] — the guided-optimization autotuner: the closed diagnose →
//!   plan → apply-placement → re-simulate → verify loop, with
//!   weighted-interleave weight search over measured per-node pressure;
//! * [`serve`] — the deployment shape: a sharded, concurrent analysis
//!   service multiplexing many profiling sessions over the streaming
//!   pipeline, with atomic model hot-swap and a concurrent run cache.
//!
//! ## Quickstart
//!
//! ```no_run
//! use drbw::prelude::*;
//!
//! // Train on the §V mini-program grid (192 parallel simulations),
//! // caching the model so later runs load instead of retraining.
//! let tool = DrBw::builder()
//!     .model_cache("results/drbw.model")
//!     .build()
//!     .expect("train or load the DR-BW model");
//! // Analyze a benchmark case end to end.
//! let workload = drbw::workloads::suite::by_name("Streamcluster").unwrap();
//! let analysis = tool.analyze(workload, &RunConfig::new(32, 4, Input::Native));
//! println!("{}", drbw::core::report::render("streamcluster", &analysis.profile,
//!     &analysis.detection, &analysis.diagnosis()));
//! // Or sweep many cases at once on all cores:
//! let shapes = [RunConfig::new(16, 2, Input::Large), RunConfig::new(64, 4, Input::Native)];
//! let cases: Vec<Case> = shapes.iter().map(|r| Case::new(workload, r)).collect();
//! for a in tool.analyze_batch(&cases) {
//!     println!("{}", a.detection.mode().name());
//! }
//! ```
//!
//! See `examples/` for runnable end-to-end scenarios and `crates/bench`
//! for the binaries regenerating every table and figure of the paper.

pub use drbw_core as core;
pub use drbw_serve as serve;
pub use drbw_stream as stream;
pub use drbw_tune as tune;
pub use mldt;
pub use numasim;
pub use pebs;
pub use runcache;
pub use workloads;

pub mod prelude {
    //! The most common imports for using DR-BW end to end.
    //!
    //! One `use drbw::prelude::*;` brings in:
    //!
    //! * the engine — [`DrBw`], [`DrBwBuilder`], [`TrainingSet`], batch
    //!   analysis via [`Case`] / [`DrBw::analyze_batch`], and the [`Analysis`]
    //!   bundle it returns;
    //! * the pipeline pieces for à-la-carte use — [`profile`],
    //!   [`ContentionClassifier`], [`diagnose`], with their [`Profile`],
    //!   [`CaseResult`], [`Mode`], and [`Diagnosis`] types;
    //! * every error the public surface reports, as [`DrbwError`];
    //! * the configuration types those entry points take —
    //!   [`MachineConfig`], [`RunConfig`] ([`Input`], [`Variant`]),
    //!   [`SamplerConfig`], [`TrainConfig`] — and the [`Workload`] trait
    //!   implemented by every profiled program;
    //! * the streaming detector — [`StreamingDetector`], its
    //!   [`StreamConfig`] / [`WindowConfig`], and the [`VerdictEvent`]s it
    //!   emits;
    //! * the autotuner — the [`Tune`] extension trait (adding
    //!   [`Tune::tune`] to [`DrBw`]), its [`TuneConfig`], the
    //!   [`TuneReport`] it returns, and the [`PlacementPlan`] /
    //!   [`PlanAction`] placement vocabulary plans are written in;
    //! * the analysis service — [`AnalysisServer`] with its
    //!   [`ServerConfig`], the per-session [`SessionHandle`] /
    //!   [`SessionReport`], the [`ServeMetrics`] snapshot, and the
    //!   [`ModelRegistry`] / [`ModelReader`] hot-swap pair.
    //!
    //! Anything rarer (feature indices, report rendering, heuristic
    //! baselines, the training grid) stays behind the full module paths,
    //! e.g. [`crate::core::training`].
    pub use drbw_core::registry::{ModelHandle, ModelReader, ModelRegistry};
    pub use drbw_core::{
        diagnose, profile, Analysis, Case, CaseResult, ContentionClassifier, Diagnosis, DrBw, DrBwBuilder, DrbwError,
        Mode, Profile, TrainingSet,
    };
    pub use drbw_serve::{AnalysisServer, ServeError, ServeMetrics, ServerConfig, SessionHandle, SessionReport};
    pub use drbw_stream::{StreamConfig, StreamingDetector, VerdictEvent, WindowConfig};
    pub use drbw_tune::{Tune, TuneConfig, TuneReport};
    pub use mldt::tree::TrainConfig;
    pub use numasim::config::MachineConfig;
    pub use pebs::sampler::SamplerConfig;
    pub use workloads::config::{Input, RunConfig, Variant};
    pub use workloads::plan::{PlacementPlan, PlanAction};
    pub use workloads::spec::Workload;
}

#[cfg(test)]
mod tests {
    #[test]
    fn facade_reexports_line_up() {
        let cfg = crate::prelude::MachineConfig::scaled();
        assert_eq!(cfg.topology.num_nodes(), 4);
        assert!(crate::workloads::suite::by_name("IRSmk").is_some());
        assert_eq!(crate::core::features::NUM_SELECTED, 13);
        assert_eq!(crate::prelude::WindowConfig::tumbling(1000.0).panes(), 1);
    }
}

//! Small statistics helpers for feature selection.
//!
//! The paper selects a feature when its statistics differ *significantly*
//! between the `good` and `rmc` runs of a majority of mini-programs
//! (§V.B). We quantify "significantly" with Welch's t statistic and
//! Cohen's d effect size over the two groups.

/// Sample mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

/// Unbiased sample variance; 0 with fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    if xs.len() < 2 {
        return 0.0;
    }
    let m = mean(xs);
    xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / (xs.len() - 1) as f64
}

/// Welch's t statistic between two samples (unequal variances).
/// Returns 0 when either sample has fewer than two points or both
/// variances vanish with equal means; returns infinity when variances
/// vanish but means differ.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let se2 = variance(a) / a.len() as f64 + variance(b) / b.len() as f64;
    if se2 == 0.0 {
        return if ma == mb { 0.0 } else { f64::INFINITY.copysign(ma - mb) };
    }
    (ma - mb) / se2.sqrt()
}

/// Cohen's d effect size (pooled standard deviation).
/// Same degenerate-case conventions as [`welch_t`].
pub fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled = (((na - 1.0) * variance(a) + (nb - 1.0) * variance(b)) / (na + nb - 2.0)).sqrt();
    let diff = mean(a) - mean(b);
    if pooled == 0.0 {
        return if diff == 0.0 { 0.0 } else { f64::INFINITY.copysign(diff) };
    }
    diff / pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[2.0, 4.0]), 2.0);
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn welch_detects_separation() {
        let good = [1.0, 1.1, 0.9, 1.05, 0.95];
        let rmc = [10.0, 10.2, 9.8, 10.1, 9.9];
        let t = welch_t(&good, &rmc).abs();
        assert!(t > 50.0, "clear separation gives a large statistic, got {t}");
    }

    #[test]
    fn welch_near_zero_for_same_distribution() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.0];
        assert!(welch_t(&a, &b).abs() < 1.0);
    }

    #[test]
    fn welch_degenerate_cases() {
        assert_eq!(welch_t(&[1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(welch_t(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
        assert_eq!(welch_t(&[2.0, 2.0], &[3.0, 3.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn cohens_d_sign_and_magnitude() {
        let a = [1.0, 1.2, 0.8];
        let b = [5.0, 5.2, 4.8];
        let d = cohens_d(&a, &b);
        assert!(d < -10.0, "large negative effect, got {d}");
        assert!(cohens_d(&b, &a) > 10.0);
    }
}

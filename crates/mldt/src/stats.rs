//! Small statistics helpers for feature selection, plus the workspace's
//! one mergeable running-moment accumulator.
//!
//! The paper selects a feature when its statistics differ *significantly*
//! between the `good` and `rmc` runs of a majority of mini-programs
//! (§V.B). We quantify "significantly" with Welch's t statistic and
//! Cohen's d effect size over the two groups.
//!
//! [`Welford`] is the single shared implementation of running
//! mean/variance: the slice helpers here delegate to it, and the streaming
//! detector's per-window accumulators (`drbw-stream`) reuse it rather than
//! keeping a second copy of the moment math.

/// Mergeable running mean and variance (Welford's online algorithm, with
/// Chan et al.'s pairwise update for [`Welford::merge`]).
///
/// Numerically stable single-pass moments: push values one at a time, or
/// combine two accumulators built over disjoint sub-streams. Merging is
/// exact for the counts and agrees with sequential pushing up to
/// floating-point rounding for the moments.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate every value of a slice.
    pub fn from_slice(xs: &[f64]) -> Self {
        let mut w = Self::new();
        for &x in xs {
            w.push(x);
        }
        w
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
    }

    /// Fold another accumulator (built over a disjoint sub-stream) into
    /// this one.
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = *other;
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        self.mean += delta * other.n as f64 / n as f64;
        self.m2 += other.m2 + delta * delta * (self.n as f64 * other.n as f64 / n as f64);
        self.n = n;
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean; 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Unbiased sample variance; 0 with fewer than two observations.
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            // Rounding can leave a tiny negative m2 on near-constant data.
            (self.m2 / (self.n - 1) as f64).max(0.0)
        }
    }
}

/// Sample mean; 0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    Welford::from_slice(xs).mean()
}

/// Unbiased sample variance; 0 with fewer than two points.
pub fn variance(xs: &[f64]) -> f64 {
    Welford::from_slice(xs).variance()
}

/// Welch's t statistic between two samples (unequal variances).
/// Returns 0 when either sample has fewer than two points or both
/// variances vanish with equal means; returns infinity when variances
/// vanish but means differ.
pub fn welch_t(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (ma, mb) = (mean(a), mean(b));
    let se2 = variance(a) / a.len() as f64 + variance(b) / b.len() as f64;
    if se2 == 0.0 {
        return if ma == mb { 0.0 } else { f64::INFINITY.copysign(ma - mb) };
    }
    (ma - mb) / se2.sqrt()
}

/// Cohen's d effect size (pooled standard deviation).
/// Same degenerate-case conventions as [`welch_t`].
pub fn cohens_d(a: &[f64], b: &[f64]) -> f64 {
    if a.len() < 2 || b.len() < 2 {
        return 0.0;
    }
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let pooled = (((na - 1.0) * variance(a) + (nb - 1.0) * variance(b)) / (na + nb - 2.0)).sqrt();
    let diff = mean(a) - mean(b);
    if pooled == 0.0 {
        return if diff == 0.0 { 0.0 } else { f64::INFINITY.copysign(diff) };
    }
    diff / pooled
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_variance() {
        assert_eq!(mean(&[]), 0.0);
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(variance(&[5.0]), 0.0);
        assert_eq!(variance(&[2.0, 4.0]), 2.0);
        assert_eq!(variance(&[3.0, 3.0, 3.0]), 0.0);
    }

    #[test]
    fn welch_detects_separation() {
        let good = [1.0, 1.1, 0.9, 1.05, 0.95];
        let rmc = [10.0, 10.2, 9.8, 10.1, 9.9];
        let t = welch_t(&good, &rmc).abs();
        assert!(t > 50.0, "clear separation gives a large statistic, got {t}");
    }

    #[test]
    fn welch_near_zero_for_same_distribution() {
        let a = [1.0, 2.0, 3.0, 4.0, 5.0];
        let b = [1.1, 1.9, 3.1, 3.9, 5.0];
        assert!(welch_t(&a, &b).abs() < 1.0);
    }

    #[test]
    fn welch_degenerate_cases() {
        assert_eq!(welch_t(&[1.0], &[2.0, 3.0]), 0.0);
        assert_eq!(welch_t(&[2.0, 2.0], &[2.0, 2.0]), 0.0);
        assert_eq!(welch_t(&[2.0, 2.0], &[3.0, 3.0]), f64::NEG_INFINITY);
    }

    #[test]
    fn welford_matches_two_pass_helpers() {
        let xs = [3.0, 1.5, 9.25, -2.0, 7.125, 0.5];
        let w = Welford::from_slice(&xs);
        assert_eq!(w.count(), xs.len() as u64);
        assert!((w.mean() - mean(&xs)).abs() < 1e-12);
        let two_pass = xs.iter().map(|x| (x - mean(&xs)).powi(2)).sum::<f64>() / (xs.len() - 1) as f64;
        assert!((w.variance() - two_pass).abs() < 1e-9);
        assert_eq!(Welford::new().mean(), 0.0);
        assert_eq!(Welford::from_slice(&[7.0]).variance(), 0.0);
    }

    #[test]
    fn welford_merge_agrees_with_sequential() {
        let xs = [10.0, -4.0, 2.5, 2.5, 100.0, 0.125, 3.0];
        for split in 0..=xs.len() {
            let mut a = Welford::from_slice(&xs[..split]);
            let b = Welford::from_slice(&xs[split..]);
            a.merge(&b);
            let seq = Welford::from_slice(&xs);
            assert_eq!(a.count(), seq.count());
            assert!((a.mean() - seq.mean()).abs() < 1e-9, "split {split}");
            assert!((a.variance() - seq.variance()).abs() < 1e-9, "split {split}");
        }
        // Merging into/with an empty accumulator is the identity.
        let mut e = Welford::new();
        e.merge(&Welford::from_slice(&xs));
        assert_eq!(e, Welford::from_slice(&xs));
    }

    #[test]
    fn cohens_d_sign_and_magnitude() {
        let a = [1.0, 1.2, 0.8];
        let b = [5.0, 5.2, 4.8];
        let d = cohens_d(&a, &b);
        assert!(d < -10.0, "large negative effect, got {d}");
        assert!(cohens_d(&b, &a) > 10.0);
    }
}

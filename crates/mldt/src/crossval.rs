//! Stratified k-fold cross-validation (the paper's §V.D validation).

use crate::dataset::Dataset;
use crate::metrics::ConfusionMatrix;
use crate::tree::{DecisionTree, TrainConfig};

/// Result of a cross-validation run.
#[derive(Debug, Clone)]
pub struct CrossValResult {
    /// Confusion matrix accumulated over all held-out folds.
    pub confusion: ConfusionMatrix,
    /// Per-fold accuracies, in fold order.
    pub fold_accuracies: Vec<f64>,
}

impl CrossValResult {
    /// Overall accuracy across all held-out predictions.
    pub fn accuracy(&self) -> f64 {
        self.confusion.accuracy()
    }
}

/// Stratified k-fold cross-validation of a CART tree on `data`.
///
/// Each fold is held out once; a tree is trained on the remaining rows and
/// evaluated on the fold. Deterministic under `seed`.
///
/// # Panics
/// Panics if `k < 2` or a class has fewer rows than `k`.
pub fn stratified_kfold(data: &Dataset, k: usize, seed: u64, cfg: TrainConfig) -> CrossValResult {
    let folds = data.stratified_folds(k, seed);
    let mut confusion = ConfusionMatrix::new(data.class_names().to_vec());
    let mut fold_accuracies = Vec::with_capacity(k);
    for held_out in &folds {
        let train_idx: Vec<usize> = folds.iter().filter(|f| !std::ptr::eq(*f, held_out)).flatten().copied().collect();
        let train = data.subset(&train_idx);
        let tree = DecisionTree::train(&train, cfg);
        let mut fold_cm = ConfusionMatrix::new(data.class_names().to_vec());
        for &i in held_out {
            fold_cm.record(data.label(i), tree.predict(data.row(i)));
        }
        fold_accuracies.push(fold_cm.accuracy());
        confusion.merge(&fold_cm);
    }
    CrossValResult { confusion, fold_accuracies }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn separable(n: usize) -> Dataset {
        let mut d = Dataset::binary(vec!["f".into()]);
        for i in 0..n {
            d.push(vec![i as f64], 0);
            d.push(vec![1000.0 + i as f64], 1);
        }
        d
    }

    #[test]
    fn separable_data_validates_perfectly() {
        let d = separable(30);
        let r = stratified_kfold(&d, 10, 0, TrainConfig::default());
        assert_eq!(r.accuracy(), 1.0);
        assert_eq!(r.fold_accuracies.len(), 10);
        assert!(r.fold_accuracies.iter().all(|&a| a == 1.0));
        assert_eq!(r.confusion.total() as usize, d.len(), "every row predicted exactly once");
    }

    #[test]
    fn noisy_data_degrades_gracefully() {
        let mut d = separable(30);
        // Inject label noise: a few rmc rows that look good.
        for i in 0..4 {
            d.push(vec![i as f64 + 0.5], 1);
        }
        let r = stratified_kfold(&d, 4, 1, TrainConfig::default());
        assert!(r.accuracy() < 1.0, "noise must cost accuracy");
        assert!(r.accuracy() > 0.8, "but the signal dominates");
    }

    #[test]
    fn deterministic_under_seed() {
        let d = separable(20);
        let r1 = stratified_kfold(&d, 5, 9, TrainConfig::default());
        let r2 = stratified_kfold(&d, 5, 9, TrainConfig::default());
        assert_eq!(r1.confusion, r2.confusion);
        assert_eq!(r1.fold_accuracies, r2.fold_accuracies);
    }

    #[test]
    #[should_panic(expected = "at least two folds")]
    fn k_must_be_at_least_two() {
        stratified_kfold(&separable(10), 1, 0, TrainConfig::default());
    }
}

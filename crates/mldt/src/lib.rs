//! # mldt — decision-tree supervised learning
//!
//! The machine-learning substrate of the DR-BW reproduction. The paper
//! trains its bandwidth-contention classifier with the decision-tree
//! algorithm of MATLAB 2016a's Statistics and Machine Learning toolbox and
//! validates it with stratified 10-fold cross-validation (§V.C–D); this
//! crate provides the same pieces, written from scratch:
//!
//! * [`dataset::Dataset`] — named features, rows, class labels, stratified
//!   splitting;
//! * [`tree::DecisionTree`] — CART with Gini impurity, depth/leaf-size
//!   controls, deterministic tie-breaking;
//! * [`metrics::ConfusionMatrix`] — accuracy, false-positive/negative
//!   rates (Table III / Table VI of the paper);
//! * [`crossval`] — stratified k-fold cross-validation;
//! * [`export`] — text and Graphviz renderings of a trained tree
//!   (Figure 3);
//! * [`stats`] — Welch's t statistic and effect sizes, used by the
//!   feature-selection step (§V.B), plus [`stats::Welford`], the
//!   workspace's shared mergeable running-moment accumulator (also used by
//!   the `drbw-stream` window accumulators).
//!
//! Fallible operations return [`error::MldtError`] (a `std::error::Error`),
//! never a bare `String`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod crossval;
pub mod dataset;
pub mod error;
pub mod export;
pub mod metrics;
pub mod serialize;
pub mod stats;
pub mod tree;

pub use crossval::stratified_kfold;
pub use dataset::Dataset;
pub use error::MldtError;
pub use metrics::ConfusionMatrix;
pub use stats::Welford;
pub use tree::{DecisionTree, TrainConfig};

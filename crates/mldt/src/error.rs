//! Typed errors for model parsing, tree reconstruction, and export.
//!
//! Everything fallible in this crate reports an [`MldtError`] instead of a
//! bare `String`, so downstream crates (notably `drbw-core`'s `DrbwError`)
//! can convert with `From` and callers can match on the failure class.

/// Errors produced by the decision-tree library.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MldtError {
    /// The serialized model text is malformed (bad header, truncated
    /// fields, unparsable numbers).
    Parse(String),
    /// A node arena does not form a proper binary tree (cycles, orphans,
    /// out-of-range children or features).
    InvalidTree(String),
    /// A render was asked to label more features/classes than names were
    /// provided for.
    MissingNames {
        /// What kind of name ran short (`"feature"` or `"class"`).
        kind: &'static str,
        /// How many names the tree requires.
        required: usize,
        /// How many names the caller supplied.
        supplied: usize,
    },
}

impl std::fmt::Display for MldtError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MldtError::Parse(msg) => write!(f, "model parse error: {msg}"),
            MldtError::InvalidTree(msg) => write!(f, "invalid tree: {msg}"),
            MldtError::MissingNames { kind, required, supplied } => {
                write!(f, "missing {kind} names: tree needs {required}, got {supplied}")
            }
        }
    }
}

impl std::error::Error for MldtError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_states_the_failure_class() {
        assert!(MldtError::Parse("x".into()).to_string().contains("parse error"));
        assert!(MldtError::InvalidTree("orphan".into()).to_string().contains("invalid tree: orphan"));
        let e = MldtError::MissingNames { kind: "feature", required: 13, supplied: 2 };
        assert_eq!(e.to_string(), "missing feature names: tree needs 13, got 2");
    }

    #[test]
    fn is_a_std_error() {
        let e: Box<dyn std::error::Error> = Box::new(MldtError::Parse("x".into()));
        assert!(e.to_string().contains("x"));
    }
}

//! Render trained trees as text or Graphviz — the reproduction of the
//! paper's Figure 3, which shows the learned decision tree with feature
//! numbers on internal nodes and `good`/`rmc` on leaves.

use crate::tree::{DecisionTree, Node};

/// Indented text rendering. Feature and class names are taken from the
/// slices provided (use the training dataset's names).
///
/// # Panics
/// Panics if the name slices are shorter than the tree's feature/class
/// counts.
pub fn to_text(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> String {
    assert!(feature_names.len() >= tree.num_features(), "missing feature names");
    assert!(class_names.len() >= tree.num_classes(), "missing class names");
    let mut out = String::new();
    render_text(tree, 0, 0, feature_names, class_names, &mut out, "");
    out
}

fn render_text(
    tree: &DecisionTree,
    node: usize,
    depth: usize,
    features: &[String],
    classes: &[String],
    out: &mut String,
    edge: &str,
) {
    let pad = "  ".repeat(depth);
    match &tree.nodes()[node] {
        Node::Leaf { label, counts } => {
            let total: usize = counts.iter().sum();
            out.push_str(&format!("{pad}{edge}[{}] (n={total})\n", classes[*label]));
        }
        Node::Split { feature, threshold, left, right } => {
            out.push_str(&format!("{pad}{edge}{} <= {threshold:.4} ?\n", features[*feature]));
            render_text(tree, *left, depth + 1, features, classes, out, "yes: ");
            render_text(tree, *right, depth + 1, features, classes, out, "no:  ");
        }
    }
}

/// Graphviz `dot` rendering.
pub fn to_dot(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> String {
    assert!(feature_names.len() >= tree.num_features(), "missing feature names");
    assert!(class_names.len() >= tree.num_classes(), "missing class names");
    let mut out = String::from("digraph decision_tree {\n  node [shape=box];\n");
    for (i, node) in tree.nodes().iter().enumerate() {
        match node {
            Node::Leaf { label, counts } => {
                let total: usize = counts.iter().sum();
                out.push_str(&format!(
                    "  n{i} [label=\"{}\\nn={total}\", style=filled, fillcolor=\"{}\"];\n",
                    class_names[*label],
                    if *label == 0 { "palegreen" } else { "lightcoral" }
                ));
            }
            Node::Split { feature, threshold, left, right } => {
                out.push_str(&format!("  n{i} [label=\"{} <= {threshold:.4}\"];\n", feature_names[*feature]));
                out.push_str(&format!("  n{i} -> n{left} [label=\"yes\"];\n"));
                out.push_str(&format!("  n{i} -> n{right} [label=\"no\"];\n"));
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::TrainConfig;

    fn tree_and_names() -> (DecisionTree, Vec<String>, Vec<String>) {
        let mut d = Dataset::binary(vec!["remote_count".into(), "remote_latency".into()]);
        for i in 0..10 {
            d.push(vec![i as f64, 50.0], 0);
            d.push(vec![100.0 + i as f64, 900.0], 1);
        }
        let t = DecisionTree::train(&d, TrainConfig::default());
        (t, d.feature_names().to_vec(), d.class_names().to_vec())
    }

    #[test]
    fn text_contains_feature_and_classes() {
        let (t, f, c) = tree_and_names();
        let s = to_text(&t, &f, &c);
        assert!(s.contains("remote_count"), "{s}");
        assert!(s.contains("[good]"));
        assert!(s.contains("[rmc]"));
        assert!(s.contains("yes: "));
    }

    #[test]
    fn dot_is_well_formed() {
        let (t, f, c) = tree_and_names();
        let s = to_dot(&t, &f, &c);
        assert!(s.starts_with("digraph"));
        assert!(s.ends_with("}\n"));
        assert_eq!(s.matches("->").count(), 2, "one split, two edges");
        assert!(s.contains("palegreen") && s.contains("lightcoral"));
    }

    #[test]
    #[should_panic(expected = "missing feature names")]
    fn text_checks_names() {
        let (t, _, c) = tree_and_names();
        to_text(&t, &[], &c);
    }
}

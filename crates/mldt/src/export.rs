//! Render trained trees as text or Graphviz — the reproduction of the
//! paper's Figure 3, which shows the learned decision tree with feature
//! numbers on internal nodes and `good`/`rmc` on leaves.

use crate::error::MldtError;
use crate::tree::{DecisionTree, Node};

/// Check that the caller supplied enough feature and class names for this
/// tree (shared guard of the fallible render entry points).
fn check_names(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> Result<(), MldtError> {
    if feature_names.len() < tree.num_features() {
        return Err(MldtError::MissingNames {
            kind: "feature",
            required: tree.num_features(),
            supplied: feature_names.len(),
        });
    }
    if class_names.len() < tree.num_classes() {
        return Err(MldtError::MissingNames {
            kind: "class",
            required: tree.num_classes(),
            supplied: class_names.len(),
        });
    }
    Ok(())
}

/// Indented text rendering. Feature and class names are taken from the
/// slices provided (use the training dataset's names).
///
/// # Errors
/// Fails if the name slices are shorter than the tree's feature/class
/// counts.
pub fn try_to_text(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> Result<String, MldtError> {
    check_names(tree, feature_names, class_names)?;
    let mut out = String::new();
    render_text(tree, 0, 0, feature_names, class_names, &mut out, "");
    Ok(out)
}

/// Indented text rendering (see [`try_to_text`]).
///
/// # Panics
/// Panics if the name slices are shorter than the tree's feature/class
/// counts.
pub fn to_text(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> String {
    try_to_text(tree, feature_names, class_names).expect("missing feature names or class names")
}

fn render_text(
    tree: &DecisionTree,
    node: usize,
    depth: usize,
    features: &[String],
    classes: &[String],
    out: &mut String,
    edge: &str,
) {
    let pad = "  ".repeat(depth);
    match &tree.nodes()[node] {
        Node::Leaf { label, counts } => {
            let total: usize = counts.iter().sum();
            out.push_str(&format!("{pad}{edge}[{}] (n={total})\n", classes[*label]));
        }
        Node::Split { feature, threshold, left, right } => {
            out.push_str(&format!("{pad}{edge}{} <= {threshold:.4} ?\n", features[*feature]));
            render_text(tree, *left, depth + 1, features, classes, out, "yes: ");
            render_text(tree, *right, depth + 1, features, classes, out, "no:  ");
        }
    }
}

/// Graphviz `dot` rendering.
///
/// # Errors
/// Fails if the name slices are shorter than the tree's feature/class
/// counts.
pub fn try_to_dot(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> Result<String, MldtError> {
    check_names(tree, feature_names, class_names)?;
    let mut out = String::from("digraph decision_tree {\n  node [shape=box];\n");
    for (i, node) in tree.nodes().iter().enumerate() {
        match node {
            Node::Leaf { label, counts } => {
                let total: usize = counts.iter().sum();
                out.push_str(&format!(
                    "  n{i} [label=\"{}\\nn={total}\", style=filled, fillcolor=\"{}\"];\n",
                    class_names[*label],
                    if *label == 0 { "palegreen" } else { "lightcoral" }
                ));
            }
            Node::Split { feature, threshold, left, right } => {
                out.push_str(&format!("  n{i} [label=\"{} <= {threshold:.4}\"];\n", feature_names[*feature]));
                out.push_str(&format!("  n{i} -> n{left} [label=\"yes\"];\n"));
                out.push_str(&format!("  n{i} -> n{right} [label=\"no\"];\n"));
            }
        }
    }
    out.push_str("}\n");
    Ok(out)
}

/// Graphviz `dot` rendering (see [`try_to_dot`]).
///
/// # Panics
/// Panics if the name slices are shorter than the tree's feature/class
/// counts.
pub fn to_dot(tree: &DecisionTree, feature_names: &[String], class_names: &[String]) -> String {
    try_to_dot(tree, feature_names, class_names).expect("missing feature names or class names")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::TrainConfig;

    fn tree_and_names() -> (DecisionTree, Vec<String>, Vec<String>) {
        let mut d = Dataset::binary(vec!["remote_count".into(), "remote_latency".into()]);
        for i in 0..10 {
            d.push(vec![i as f64, 50.0], 0);
            d.push(vec![100.0 + i as f64, 900.0], 1);
        }
        let t = DecisionTree::train(&d, TrainConfig::default());
        (t, d.feature_names().to_vec(), d.class_names().to_vec())
    }

    #[test]
    fn text_contains_feature_and_classes() {
        let (t, f, c) = tree_and_names();
        let s = to_text(&t, &f, &c);
        assert!(s.contains("remote_count"), "{s}");
        assert!(s.contains("[good]"));
        assert!(s.contains("[rmc]"));
        assert!(s.contains("yes: "));
    }

    #[test]
    fn dot_is_well_formed() {
        let (t, f, c) = tree_and_names();
        let s = to_dot(&t, &f, &c);
        assert!(s.starts_with("digraph"));
        assert!(s.ends_with("}\n"));
        assert_eq!(s.matches("->").count(), 2, "one split, two edges");
        assert!(s.contains("palegreen") && s.contains("lightcoral"));
    }

    #[test]
    #[should_panic(expected = "missing feature names")]
    fn text_checks_names() {
        let (t, _, c) = tree_and_names();
        to_text(&t, &[], &c);
    }

    #[test]
    fn fallible_renders_report_which_names_ran_short() {
        use crate::error::MldtError;
        let (t, f, c) = tree_and_names();
        assert_eq!(try_to_text(&t, &f, &c).unwrap(), to_text(&t, &f, &c));
        assert_eq!(try_to_dot(&t, &f, &c).unwrap(), to_dot(&t, &f, &c));
        match try_to_text(&t, &[], &c) {
            Err(MldtError::MissingNames { kind: "feature", supplied: 0, .. }) => {}
            other => panic!("expected MissingNames for features, got {other:?}"),
        }
        match try_to_dot(&t, &f, &[]) {
            Err(MldtError::MissingNames { kind: "class", supplied: 0, .. }) => {}
            other => panic!("expected MissingNames for classes, got {other:?}"),
        }
    }
}

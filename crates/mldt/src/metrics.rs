//! Classification metrics: confusion matrices, accuracy, error rates.
//!
//! The paper reports a confusion matrix over the training data (Table III)
//! and, for the benchmark sweep, overall correctness with false-positive
//! and false-negative rates (Table VI). Rates follow the paper's
//! definitions: with `rmc` as the positive class,
//! `FPR = FP / (FP + TN)` and `FNR = FN / (FN + TP)`.

/// A square confusion matrix: `counts[actual][predicted]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ConfusionMatrix {
    class_names: Vec<String>,
    counts: Vec<Vec<u64>>,
}

impl ConfusionMatrix {
    /// An all-zero matrix over the given classes.
    ///
    /// # Panics
    /// Panics with fewer than two classes.
    pub fn new(class_names: Vec<String>) -> Self {
        assert!(class_names.len() >= 2, "need at least two classes");
        let n = class_names.len();
        Self { class_names, counts: vec![vec![0; n]; n] }
    }

    /// Record one prediction.
    ///
    /// # Panics
    /// Panics on out-of-range class indices.
    pub fn record(&mut self, actual: usize, predicted: usize) {
        self.counts[actual][predicted] += 1;
    }

    /// Merge another matrix into this one (fold accumulation).
    ///
    /// # Panics
    /// Panics if the class sets differ.
    pub fn merge(&mut self, other: &ConfusionMatrix) {
        assert_eq!(self.class_names, other.class_names, "incompatible matrices");
        for (a, row) in other.counts.iter().enumerate() {
            for (p, &c) in row.iter().enumerate() {
                self.counts[a][p] += c;
            }
        }
    }

    /// Count at `(actual, predicted)`.
    pub fn count(&self, actual: usize, predicted: usize) -> u64 {
        self.counts[actual][predicted]
    }

    /// Total predictions recorded.
    pub fn total(&self) -> u64 {
        self.counts.iter().flatten().sum()
    }

    /// Fraction of predictions on the diagonal.
    pub fn accuracy(&self) -> f64 {
        let total = self.total();
        if total == 0 {
            return 0.0;
        }
        let correct: u64 = (0..self.counts.len()).map(|i| self.counts[i][i]).sum();
        correct as f64 / total as f64
    }

    /// Precision of class `c`: TP / (TP + FP); 1.0 when nothing was
    /// predicted as `c` (vacuous).
    pub fn precision(&self, c: usize) -> f64 {
        let tp = self.counts[c][c];
        let predicted: u64 = self.counts.iter().map(|row| row[c]).sum();
        if predicted == 0 {
            1.0
        } else {
            tp as f64 / predicted as f64
        }
    }

    /// Recall of class `c`: TP / (TP + FN); 1.0 when class `c` never
    /// occurred.
    pub fn recall(&self, c: usize) -> f64 {
        let tp = self.counts[c][c];
        let actual: u64 = self.counts[c].iter().sum();
        if actual == 0 {
            1.0
        } else {
            tp as f64 / actual as f64
        }
    }

    /// False-positive rate treating class `positive` as positive:
    /// `FP / (FP + TN)` — the paper's Table VI definition.
    pub fn false_positive_rate(&self, positive: usize) -> f64 {
        let mut fp = 0;
        let mut tn = 0;
        for (a, row) in self.counts.iter().enumerate() {
            if a == positive {
                continue;
            }
            for (p, &c) in row.iter().enumerate() {
                if p == positive {
                    fp += c;
                } else {
                    tn += c;
                }
            }
        }
        if fp + tn == 0 {
            0.0
        } else {
            fp as f64 / (fp + tn) as f64
        }
    }

    /// False-negative rate treating class `positive` as positive:
    /// `FN / (FN + TP)`.
    pub fn false_negative_rate(&self, positive: usize) -> f64 {
        let row = &self.counts[positive];
        let tp = row[positive];
        let fn_: u64 = row.iter().enumerate().filter(|(p, _)| *p != positive).map(|(_, &c)| c).sum();
        if tp + fn_ == 0 {
            0.0
        } else {
            fn_ as f64 / (tp + fn_) as f64
        }
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// Render as an aligned text table (rows = actual, columns = predicted).
    pub fn to_table(&self) -> String {
        let mut out = String::new();
        let width = self
            .class_names
            .iter()
            .map(|n| n.len())
            .chain(self.counts.iter().flatten().map(|c| c.to_string().len()))
            .max()
            .unwrap()
            .max(9);
        out.push_str(&format!("{:>w$} |", "actual\\pred", w = width + 2));
        for n in &self.class_names {
            out.push_str(&format!(" {n:>width$}"));
        }
        out.push('\n');
        for (a, row) in self.counts.iter().enumerate() {
            out.push_str(&format!("{:>w$} |", self.class_names[a], w = width + 2));
            for &c in row {
                out.push_str(&format!(" {c:>width$}"));
            }
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The paper's Table III: actual good (118 correct, 2 as rmc),
    /// actual rmc (3 as good, 69 correct).
    fn table_iii() -> ConfusionMatrix {
        let mut m = ConfusionMatrix::new(vec!["good".into(), "rmc".into()]);
        for _ in 0..118 {
            m.record(0, 0);
        }
        for _ in 0..2 {
            m.record(0, 1);
        }
        for _ in 0..3 {
            m.record(1, 0);
        }
        for _ in 0..69 {
            m.record(1, 1);
        }
        m
    }

    #[test]
    fn accuracy_matches_paper_table_iii() {
        let m = table_iii();
        assert_eq!(m.total(), 192);
        assert!((m.accuracy() - 187.0 / 192.0).abs() < 1e-12, "97.4% success rate");
    }

    /// The paper's Table VI: 63 TP, 0 FN, 19 FP, 430 TN.
    #[test]
    fn rates_match_paper_table_vi() {
        let mut m = ConfusionMatrix::new(vec!["good".into(), "rmc".into()]);
        for _ in 0..430 {
            m.record(0, 0);
        }
        for _ in 0..19 {
            m.record(0, 1);
        }
        for _ in 0..63 {
            m.record(1, 1);
        }
        assert!((m.accuracy() - 493.0 / 512.0).abs() < 1e-12, "96.3% correctness");
        assert!((m.false_positive_rate(1) - 19.0 / 449.0).abs() < 1e-12, "4.2% FPR");
        assert_eq!(m.false_negative_rate(1), 0.0, "0% FNR");
    }

    #[test]
    fn precision_recall() {
        let m = table_iii();
        assert!((m.recall(1) - 69.0 / 72.0).abs() < 1e-12);
        assert!((m.precision(1) - 69.0 / 71.0).abs() < 1e-12);
        assert!((m.recall(0) - 118.0 / 120.0).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = table_iii();
        let b = table_iii();
        a.merge(&b);
        assert_eq!(a.total(), 384);
        assert_eq!(a.count(1, 1), 138);
    }

    #[test]
    fn empty_matrix_is_defined() {
        let m = ConfusionMatrix::new(vec!["good".into(), "rmc".into()]);
        assert_eq!(m.accuracy(), 0.0);
        assert_eq!(m.false_positive_rate(1), 0.0);
        assert_eq!(m.false_negative_rate(1), 0.0);
        assert_eq!(m.precision(1), 1.0);
        assert_eq!(m.recall(1), 1.0);
    }

    #[test]
    fn table_rendering_contains_counts() {
        let m = table_iii();
        let t = m.to_table();
        assert!(t.contains("118"));
        assert!(t.contains("69"));
        assert!(t.contains("good"));
        assert!(t.contains("rmc"));
    }

    #[test]
    #[should_panic(expected = "incompatible")]
    fn merge_rejects_different_classes() {
        let mut a = ConfusionMatrix::new(vec!["good".into(), "rmc".into()]);
        let b = ConfusionMatrix::new(vec!["x".into(), "y".into()]);
        a.merge(&b);
    }
}

//! CART decision trees with Gini impurity.
//!
//! The algorithm is the classic one: at each node, scan every feature for
//! the threshold that minimises the weighted Gini impurity of the two
//! children; recurse until a stopping rule fires (pure node, depth limit,
//! minimum leaf size, or no split gains at least `min_gain`). Ties are
//! broken deterministically (lower feature index, then lower threshold), so
//! training is reproducible.
//!
//! The paper's learned tree (Figure 3) is small — it splits on two features
//! (remote-DRAM sample count and average remote-DRAM latency) — so depth
//! limits around 3–4 match it well.

use crate::dataset::Dataset;
use crate::error::MldtError;

/// Stopping rules and regularisation for training.
#[derive(Debug, Clone, Copy)]
pub struct TrainConfig {
    /// Maximum tree depth (root = depth 0).
    pub max_depth: usize,
    /// Minimum rows in each child of a split.
    pub min_samples_leaf: usize,
    /// Minimum rows required to consider splitting a node.
    pub min_samples_split: usize,
    /// Minimum Gini improvement for a split to be kept.
    pub min_gain: f64,
}

impl Default for TrainConfig {
    fn default() -> Self {
        // Conservative defaults matched to DR-BW's ~200-instance training
        // sets: leaves below 8 rows tend to be label noise there, and
        // letting them carve out regions produces exactly the kind of
        // overfit rescue-branches a contention classifier cannot afford
        // (a 3-row leaf can flip a whole family of benchmark cases).
        Self { max_depth: 3, min_samples_leaf: 8, min_samples_split: 16, min_gain: 1e-4 }
    }
}

/// A node of the flattened tree.
#[derive(Debug, Clone, PartialEq)]
pub enum Node {
    /// Terminal node predicting `label`; `counts` holds the training-row
    /// distribution that reached it.
    Leaf {
        /// Predicted class.
        label: usize,
        /// Training rows per class at this leaf.
        counts: Vec<usize>,
    },
    /// Internal split: rows with `features[feature] <= threshold` go to
    /// `left`, others to `right` (indices into the node arena).
    Split {
        /// Feature index tested.
        feature: usize,
        /// Decision threshold.
        threshold: f64,
        /// Arena index of the ≤ branch.
        left: usize,
        /// Arena index of the > branch.
        right: usize,
    },
}

/// A trained CART classifier.
#[derive(Debug, Clone)]
pub struct DecisionTree {
    nodes: Vec<Node>,
    num_features: usize,
    num_classes: usize,
}

fn gini(counts: &[usize], total: usize) -> f64 {
    if total == 0 {
        return 0.0;
    }
    let t = total as f64;
    1.0 - counts.iter().map(|&c| (c as f64 / t).powi(2)).sum::<f64>()
}

struct BestSplit {
    feature: usize,
    threshold: f64,
    gain: f64,
}

impl DecisionTree {
    /// Train on every row of `data`.
    ///
    /// # Panics
    /// Panics if the dataset is empty.
    pub fn train(data: &Dataset, cfg: TrainConfig) -> Self {
        assert!(!data.is_empty(), "cannot train on an empty dataset");
        let indices: Vec<usize> = (0..data.len()).collect();
        let mut tree = Self { nodes: Vec::new(), num_features: data.num_features(), num_classes: data.num_classes() };
        tree.build(data, indices, 0, &cfg);
        tree
    }

    fn class_counts(data: &Dataset, idx: &[usize], num_classes: usize) -> Vec<usize> {
        let mut counts = vec![0; num_classes];
        for &i in idx {
            counts[data.label(i)] += 1;
        }
        counts
    }

    fn make_leaf(&mut self, counts: Vec<usize>) -> usize {
        // Deterministic argmax: first class with the maximal count.
        let label = counts.iter().enumerate().max_by(|a, b| a.1.cmp(b.1).then(b.0.cmp(&a.0))).map(|(i, _)| i).unwrap();
        self.nodes.push(Node::Leaf { label, counts });
        self.nodes.len() - 1
    }

    fn build(&mut self, data: &Dataset, mut idx: Vec<usize>, depth: usize, cfg: &TrainConfig) -> usize {
        let counts = Self::class_counts(data, &idx, self.num_classes);
        let total = idx.len();
        let node_gini = gini(&counts, total);
        let pure = counts.iter().filter(|&&c| c > 0).count() <= 1;
        if pure || depth >= cfg.max_depth || total < cfg.min_samples_split {
            return self.make_leaf(counts);
        }
        let Some(best) = self.best_split(data, &idx, &counts, node_gini, cfg) else {
            return self.make_leaf(counts);
        };
        let (left_idx, right_idx): (Vec<usize>, Vec<usize>) =
            idx.drain(..).partition(|&i| data.row(i)[best.feature] <= best.threshold);
        debug_assert!(left_idx.len() >= cfg.min_samples_leaf && right_idx.len() >= cfg.min_samples_leaf);
        // Reserve this node's slot before recursing so the root is node 0.
        let slot = self.nodes.len();
        self.nodes.push(Node::Leaf { label: 0, counts: Vec::new() }); // placeholder
        let left = self.build(data, left_idx, depth + 1, cfg);
        let right = self.build(data, right_idx, depth + 1, cfg);
        self.nodes[slot] = Node::Split { feature: best.feature, threshold: best.threshold, left, right };
        slot
    }

    fn best_split(
        &self,
        data: &Dataset,
        idx: &[usize],
        counts: &[usize],
        node_gini: f64,
        cfg: &TrainConfig,
    ) -> Option<BestSplit> {
        let total = idx.len();
        let mut best: Option<BestSplit> = None;
        let mut order: Vec<usize> = idx.to_vec();
        for f in 0..self.num_features {
            order.sort_unstable_by(|&a, &b| data.row(a)[f].partial_cmp(&data.row(b)[f]).unwrap());
            let mut left_counts = vec![0usize; self.num_classes];
            for w in 0..total - 1 {
                left_counts[data.label(order[w])] += 1;
                let v = data.row(order[w])[f];
                let v_next = data.row(order[w + 1])[f];
                if v == v_next {
                    continue; // cannot split between equal values
                }
                let n_left = w + 1;
                let n_right = total - n_left;
                if n_left < cfg.min_samples_leaf || n_right < cfg.min_samples_leaf {
                    continue;
                }
                let right_counts: Vec<usize> = counts.iter().zip(&left_counts).map(|(&c, &l)| c - l).collect();
                let child_gini = (n_left as f64 * gini(&left_counts, n_left)
                    + n_right as f64 * gini(&right_counts, n_right))
                    / total as f64;
                let gain = node_gini - child_gini;
                let threshold = 0.5 * (v + v_next);
                let better = match &best {
                    None => true,
                    Some(b) => {
                        gain > b.gain + 1e-12
                            || ((gain - b.gain).abs() <= 1e-12
                                && (f < b.feature || (f == b.feature && threshold < b.threshold)))
                    }
                };
                if better && gain >= cfg.min_gain {
                    best = Some(BestSplit { feature: f, threshold, gain });
                }
            }
        }
        best
    }

    /// Rebuild a tree from a node arena (deserialization). Validates that
    /// every node is reachable from the root exactly once (a proper binary
    /// tree: no cycles, no sharing, no orphans).
    pub fn from_parts(nodes: Vec<Node>, num_features: usize, num_classes: usize) -> Result<Self, MldtError> {
        let invalid = |msg: String| MldtError::InvalidTree(msg);
        if nodes.is_empty() {
            return Err(invalid("empty node arena".into()));
        }
        let mut seen = vec![false; nodes.len()];
        let mut stack = vec![0usize];
        while let Some(i) = stack.pop() {
            if seen[i] {
                return Err(invalid(format!("node {i} reachable twice (cycle or sharing)")));
            }
            seen[i] = true;
            if let Node::Split { left, right, feature, .. } = &nodes[i] {
                if *feature >= num_features {
                    return Err(invalid(format!("feature {feature} out of range at node {i}")));
                }
                stack.push(*left);
                stack.push(*right);
            }
        }
        if let Some(orphan) = seen.iter().position(|&s| !s) {
            return Err(invalid(format!("node {orphan} unreachable from the root")));
        }
        Ok(Self { nodes, num_features, num_classes })
    }

    /// Predict the class of a feature vector.
    ///
    /// # Panics
    /// Panics on arity mismatch.
    pub fn predict(&self, row: &[f64]) -> usize {
        assert_eq!(row.len(), self.num_features, "feature arity mismatch");
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                Node::Leaf { label, .. } => return *label,
                Node::Split { feature, threshold, left, right } => {
                    i = if row[*feature] <= *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Predict every row of a dataset.
    pub fn predict_dataset(&self, data: &Dataset) -> Vec<usize> {
        (0..data.len()).map(|i| self.predict(data.row(i))).collect()
    }

    /// The node arena (root is node 0).
    pub fn nodes(&self) -> &[Node] {
        &self.nodes
    }

    /// Number of features the tree was trained with.
    pub fn num_features(&self) -> usize {
        self.num_features
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.num_classes
    }

    /// Distinct features actually used by splits, in ascending order —
    /// the paper reports its tree uses only features 6 and 7.
    pub fn features_used(&self) -> Vec<usize> {
        let mut fs: Vec<usize> = self
            .nodes
            .iter()
            .filter_map(|n| match n {
                Node::Split { feature, .. } => Some(*feature),
                _ => None,
            })
            .collect();
        fs.sort_unstable();
        fs.dedup();
        fs
    }

    /// Depth of the tree (a lone leaf has depth 0).
    pub fn depth(&self) -> usize {
        fn depth_of(nodes: &[Node], i: usize) -> usize {
            match &nodes[i] {
                Node::Leaf { .. } => 0,
                Node::Split { left, right, .. } => 1 + depth_of(nodes, *left).max(depth_of(nodes, *right)),
            }
        }
        depth_of(&self.nodes, 0)
    }

    /// Number of leaves.
    pub fn num_leaves(&self) -> usize {
        self.nodes.iter().filter(|n| matches!(n, Node::Leaf { .. })).count()
    }

    /// A stable 64-bit structural fingerprint of the tree: FNV-1a over the
    /// arena in index order (split feature/threshold bits/children, leaf
    /// labels and class counts). Two trees predict identically whenever
    /// their fingerprints match, so a model registry can use it as a
    /// content-derived version tag that survives save/load round-trips.
    pub fn fingerprint(&self) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        let mut mix = |v: u64| {
            for b in v.to_le_bytes() {
                h = (h ^ b as u64).wrapping_mul(0x100_0000_01b3);
            }
        };
        mix(self.num_features as u64);
        mix(self.num_classes as u64);
        for node in &self.nodes {
            match node {
                Node::Leaf { label, counts } => {
                    mix(0);
                    mix(*label as u64);
                    mix(counts.len() as u64);
                    for &c in counts {
                        mix(c as u64);
                    }
                }
                Node::Split { feature, threshold, left, right } => {
                    mix(1);
                    mix(*feature as u64);
                    mix(threshold.to_bits());
                    mix(*left as u64);
                    mix(*right as u64);
                }
            }
        }
        h
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// good: f0 small; rmc: f0 large. One split suffices.
    fn separable() -> Dataset {
        let mut d = Dataset::binary(vec!["f0".into(), "noise".into()]);
        for i in 0..20 {
            d.push(vec![i as f64, (i % 3) as f64], 0);
            d.push(vec![100.0 + i as f64, (i % 3) as f64], 1);
        }
        d
    }

    #[test]
    fn fingerprint_is_stable_and_structure_sensitive() {
        let d = separable();
        let t = DecisionTree::train(&d, TrainConfig::default());
        assert_eq!(t.fingerprint(), t.clone().fingerprint(), "fingerprint is a pure function of structure");
        assert_eq!(t.fingerprint(), DecisionTree::train(&d, TrainConfig::default()).fingerprint());
        // A structurally different tree (deeper data) fingerprints apart.
        let mut d2 = Dataset::binary(vec!["f0".into(), "noise".into()]);
        for i in 0..20 {
            d2.push(vec![i as f64, (i % 7) as f64], (i % 2) as usize);
        }
        let t2 = DecisionTree::train(&d2, TrainConfig::default());
        assert_ne!(t.fingerprint(), t2.fingerprint());
    }

    #[test]
    fn perfectly_separable_is_learned_exactly() {
        let d = separable();
        let t = DecisionTree::train(&d, TrainConfig::default());
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), d.label(i));
        }
        assert_eq!(t.features_used(), vec![0], "noise feature must not be used");
        assert_eq!(t.depth(), 1);
        assert_eq!(t.num_leaves(), 2);
    }

    #[test]
    fn threshold_is_midpoint() {
        let d = separable();
        let t = DecisionTree::train(&d, TrainConfig::default());
        match &t.nodes()[0] {
            Node::Split { feature, threshold, .. } => {
                assert_eq!(*feature, 0);
                assert!((*threshold - 59.5).abs() < 1e-9, "midpoint of 19 and 100, got {threshold}");
            }
            _ => panic!("root should be a split"),
        }
    }

    #[test]
    fn xor_needs_depth_two() {
        // Class = f0 XOR f1: not separable by one axis split.
        let mut d = Dataset::binary(vec!["f0".into(), "f1".into()]);
        for _ in 0..10 {
            d.push(vec![0.0, 0.0], 0);
            d.push(vec![1.0, 1.0], 0);
            d.push(vec![0.0, 1.0], 1);
            d.push(vec![1.0, 0.0], 1);
        }
        // XOR's first split has zero Gini gain; allow it with min_gain 0.
        let t = DecisionTree::train(
            &d,
            TrainConfig { min_samples_leaf: 1, min_samples_split: 2, min_gain: 0.0, ..Default::default() },
        );
        for i in 0..d.len() {
            assert_eq!(t.predict(d.row(i)), d.label(i));
        }
        assert_eq!(t.depth(), 2);
    }

    #[test]
    fn max_depth_zero_yields_majority_leaf() {
        let mut d = Dataset::binary(vec!["f0".into()]);
        for i in 0..10 {
            d.push(vec![i as f64], usize::from(i >= 7));
        }
        let t = DecisionTree::train(&d, TrainConfig { max_depth: 0, ..Default::default() });
        assert_eq!(t.num_leaves(), 1);
        assert_eq!(t.predict(&[0.0]), 0, "majority class wins");
        assert_eq!(t.predict(&[9.0]), 0);
    }

    #[test]
    fn min_samples_leaf_respected() {
        let mut d = Dataset::binary(vec!["f0".into()]);
        // One outlier of class 1 among 20 of class 0: a split isolating it
        // would leave a 1-row leaf.
        for i in 0..20 {
            d.push(vec![i as f64], 0);
        }
        d.push(vec![100.0], 1);
        let t = DecisionTree::train(&d, TrainConfig { min_samples_leaf: 3, ..Default::default() });
        // The outlier cannot be isolated in a 1-row leaf: every leaf holds
        // at least min_samples_leaf rows, so the outlier is outvoted and
        // the whole feature range predicts class 0.
        for n in t.nodes() {
            if let Node::Leaf { counts, .. } = n {
                assert!(counts.iter().sum::<usize>() >= 3, "leaf smaller than min_samples_leaf");
            }
        }
        assert_eq!(t.predict(&[100.0]), 0);
    }

    #[test]
    fn training_is_deterministic() {
        let d = separable();
        let t1 = DecisionTree::train(&d, TrainConfig::default());
        let t2 = DecisionTree::train(&d, TrainConfig::default());
        assert_eq!(t1.nodes(), t2.nodes());
    }

    #[test]
    fn equal_feature_values_never_split() {
        let mut d = Dataset::binary(vec!["constant".into()]);
        for i in 0..10 {
            d.push(vec![5.0], usize::from(i % 2 == 0));
        }
        let t = DecisionTree::train(&d, TrainConfig::default());
        assert_eq!(t.num_leaves(), 1, "constant feature admits no split");
    }

    #[test]
    fn multiclass() {
        let mut d = Dataset::new(vec!["f".into()], vec!["a".into(), "b".into(), "c".into()]);
        for i in 0..12 {
            d.push(vec![i as f64], (i / 4) as usize);
        }
        let t =
            DecisionTree::train(&d, TrainConfig { min_samples_leaf: 2, min_samples_split: 4, ..Default::default() });
        assert_eq!(t.predict(&[1.0]), 0);
        assert_eq!(t.predict(&[5.0]), 1);
        assert_eq!(t.predict(&[11.0]), 2);
    }

    #[test]
    fn gini_bounds() {
        assert_eq!(gini(&[10, 0], 10), 0.0);
        assert!((gini(&[5, 5], 10) - 0.5).abs() < 1e-12);
        assert_eq!(gini(&[], 0), 0.0);
    }

    #[test]
    #[should_panic(expected = "empty dataset")]
    fn empty_training_rejected() {
        let d = Dataset::binary(vec!["f".into()]);
        DecisionTree::train(&d, TrainConfig::default());
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn predict_arity_checked() {
        let t = DecisionTree::train(&separable(), TrainConfig::default());
        t.predict(&[1.0, 2.0, 3.0]);
    }
}

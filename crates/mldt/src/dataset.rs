//! Feature datasets with class labels.

use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::SeedableRng;

/// A table of feature vectors with class labels.
///
/// Rows are dense `f64` vectors; labels are small dense class indices with
/// human-readable names (the paper's classes are `good` and `rmc`).
#[derive(Debug, Clone)]
pub struct Dataset {
    feature_names: Vec<String>,
    class_names: Vec<String>,
    rows: Vec<Vec<f64>>,
    labels: Vec<usize>,
}

impl Dataset {
    /// An empty dataset with the given feature and class names.
    ///
    /// # Panics
    /// Panics if either name list is empty.
    pub fn new(feature_names: Vec<String>, class_names: Vec<String>) -> Self {
        assert!(!feature_names.is_empty(), "dataset needs at least one feature");
        assert!(class_names.len() >= 2, "dataset needs at least two classes");
        Self { feature_names, class_names, rows: Vec::new(), labels: Vec::new() }
    }

    /// Convenience: a binary `good`/`rmc` dataset, the paper's setting.
    pub fn binary(feature_names: Vec<String>) -> Self {
        Self::new(feature_names, vec!["good".into(), "rmc".into()])
    }

    /// Append a labelled row.
    ///
    /// # Panics
    /// Panics on arity mismatch, out-of-range label, or non-finite values.
    pub fn push(&mut self, row: Vec<f64>, label: usize) {
        assert_eq!(row.len(), self.feature_names.len(), "feature arity mismatch");
        assert!(label < self.class_names.len(), "label {label} out of range");
        assert!(row.iter().all(|v| v.is_finite()), "non-finite feature value");
        self.rows.push(row);
        self.labels.push(label);
    }

    /// Number of rows.
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether the dataset has no rows.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Number of features.
    pub fn num_features(&self) -> usize {
        self.feature_names.len()
    }

    /// Number of classes.
    pub fn num_classes(&self) -> usize {
        self.class_names.len()
    }

    /// Feature names.
    pub fn feature_names(&self) -> &[String] {
        &self.feature_names
    }

    /// Class names.
    pub fn class_names(&self) -> &[String] {
        &self.class_names
    }

    /// A row's features.
    pub fn row(&self, i: usize) -> &[f64] {
        &self.rows[i]
    }

    /// A row's label.
    pub fn label(&self, i: usize) -> usize {
        self.labels[i]
    }

    /// Rows per class.
    pub fn class_counts(&self) -> Vec<usize> {
        let mut counts = vec![0; self.class_names.len()];
        for &l in &self.labels {
            counts[l] += 1;
        }
        counts
    }

    /// A new dataset containing the rows at `indices` (cloned).
    pub fn subset(&self, indices: &[usize]) -> Dataset {
        let mut d = Dataset::new(self.feature_names.clone(), self.class_names.clone());
        for &i in indices {
            d.push(self.rows[i].clone(), self.labels[i]);
        }
        d
    }

    /// Values of one feature restricted to one class — the raw material of
    /// the paper's feature-selection step.
    pub fn feature_by_class(&self, feature: usize, class: usize) -> Vec<f64> {
        self.rows.iter().zip(&self.labels).filter(|(_, &l)| l == class).map(|(r, _)| r[feature]).collect()
    }

    /// Project the dataset onto a subset of features (in the given order).
    pub fn select_features(&self, features: &[usize]) -> Dataset {
        let names = features.iter().map(|&f| self.feature_names[f].clone()).collect();
        let mut d = Dataset::new(names, self.class_names.clone());
        for (row, &label) in self.rows.iter().zip(&self.labels) {
            d.push(features.iter().map(|&f| row[f]).collect(), label);
        }
        d
    }

    /// Stratified k-fold partition: returns `k` disjoint index sets whose
    /// union is `0..len`, each with (as close as possible) the overall
    /// class proportions. Deterministic under `seed`.
    ///
    /// # Panics
    /// Panics if `k < 2` or `k` exceeds the smallest class count.
    pub fn stratified_folds(&self, k: usize, seed: u64) -> Vec<Vec<usize>> {
        assert!(k >= 2, "need at least two folds");
        let counts = self.class_counts();
        for (c, &n) in counts.iter().enumerate() {
            assert!(n == 0 || n >= k, "class {c} has {n} rows, fewer than {k} folds");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let mut folds = vec![Vec::new(); k];
        for class in 0..self.num_classes() {
            let mut idx: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            idx.shuffle(&mut rng);
            for (j, i) in idx.into_iter().enumerate() {
                folds[j % k].push(i);
            }
        }
        for f in &mut folds {
            f.sort_unstable();
        }
        folds
    }

    /// Stratified train/test split with `test_frac` of each class held
    /// out. Returns `(train_indices, test_indices)`.
    ///
    /// # Panics
    /// Panics unless `0 < test_frac < 1`.
    pub fn stratified_split(&self, test_frac: f64, seed: u64) -> (Vec<usize>, Vec<usize>) {
        assert!(test_frac > 0.0 && test_frac < 1.0, "test fraction must be in (0, 1)");
        let mut rng = StdRng::seed_from_u64(seed);
        let (mut train, mut test) = (Vec::new(), Vec::new());
        for class in 0..self.num_classes() {
            let mut idx: Vec<usize> = (0..self.len()).filter(|&i| self.labels[i] == class).collect();
            idx.shuffle(&mut rng);
            let n_test = ((idx.len() as f64) * test_frac).round() as usize;
            test.extend_from_slice(&idx[..n_test]);
            train.extend_from_slice(&idx[n_test..]);
        }
        train.sort_unstable();
        test.sort_unstable();
        (train, test)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toy(n_good: usize, n_rmc: usize) -> Dataset {
        let mut d = Dataset::binary(vec!["f0".into(), "f1".into()]);
        for i in 0..n_good {
            d.push(vec![i as f64, 0.0], 0);
        }
        for i in 0..n_rmc {
            d.push(vec![i as f64, 1.0], 1);
        }
        d
    }

    #[test]
    fn push_and_accessors() {
        let d = toy(3, 2);
        assert_eq!(d.len(), 5);
        assert_eq!(d.num_features(), 2);
        assert_eq!(d.class_counts(), vec![3, 2]);
        assert_eq!(d.label(4), 1);
        assert_eq!(d.row(0), &[0.0, 0.0]);
        assert_eq!(d.class_names(), &["good".to_string(), "rmc".to_string()]);
    }

    #[test]
    #[should_panic(expected = "arity mismatch")]
    fn arity_checked() {
        let mut d = toy(1, 1);
        d.push(vec![1.0], 0);
    }

    #[test]
    #[should_panic(expected = "non-finite")]
    fn nan_rejected() {
        let mut d = toy(1, 1);
        d.push(vec![f64::NAN, 0.0], 0);
    }

    #[test]
    fn folds_partition_and_stratify() {
        let d = toy(20, 10);
        let folds = d.stratified_folds(5, 42);
        assert_eq!(folds.len(), 5);
        let mut all: Vec<usize> = folds.iter().flatten().copied().collect();
        all.sort_unstable();
        assert_eq!(all, (0..30).collect::<Vec<_>>(), "folds must partition the dataset");
        for f in &folds {
            let rmc = f.iter().filter(|&&i| d.label(i) == 1).count();
            assert_eq!(f.len(), 6);
            assert_eq!(rmc, 2, "each fold keeps the 2:1 class ratio");
        }
    }

    #[test]
    fn folds_deterministic_under_seed() {
        let d = toy(20, 10);
        assert_eq!(d.stratified_folds(5, 1), d.stratified_folds(5, 1));
        assert_ne!(d.stratified_folds(5, 1), d.stratified_folds(5, 2));
    }

    #[test]
    fn split_fractions() {
        let d = toy(20, 10);
        let (train, test) = d.stratified_split(0.2, 7);
        assert_eq!(test.len(), 6);
        assert_eq!(train.len(), 24);
        let rmc_test = test.iter().filter(|&&i| d.label(i) == 1).count();
        assert_eq!(rmc_test, 2);
    }

    #[test]
    fn subset_preserves_rows() {
        let d = toy(3, 3);
        let s = d.subset(&[0, 5]);
        assert_eq!(s.len(), 2);
        assert_eq!(s.label(0), 0);
        assert_eq!(s.label(1), 1);
        assert_eq!(s.row(1), d.row(5));
    }

    #[test]
    fn feature_by_class_filters() {
        let d = toy(2, 3);
        assert_eq!(d.feature_by_class(1, 0), vec![0.0, 0.0]);
        assert_eq!(d.feature_by_class(1, 1), vec![1.0, 1.0, 1.0]);
    }

    #[test]
    fn select_features_projects() {
        let d = toy(2, 2);
        let p = d.select_features(&[1]);
        assert_eq!(p.num_features(), 1);
        assert_eq!(p.feature_names(), &["f1".to_string()]);
        assert_eq!(p.row(3), &[1.0]);
    }

    #[test]
    #[should_panic(expected = "fewer than")]
    fn folds_reject_tiny_classes() {
        let d = toy(20, 3);
        d.stratified_folds(5, 0);
    }
}

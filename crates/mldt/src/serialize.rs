//! Plain-text model persistence for trained trees.
//!
//! A released profiler ships its pretrained classifier so users do not
//! rerun the training grid; DR-BW's GitHub release does the same. The
//! format is a deliberately simple line-oriented text file (no external
//! dependencies, stable across versions, human-diffable):
//!
//! ```text
//! drbw-tree v1
//! features 13
//! classes 2
//! nodes 3
//! split 0 6 312.5 1 2        # node 0: feature 6, threshold, left, right
//! leaf 1 0 117 2             # node 1: label 0, per-class counts
//! leaf 2 1 3 69
//! ```

use crate::error::MldtError;
use crate::tree::{DecisionTree, Node};
use std::fmt::Write as _;

/// Serialize a trained tree.
pub fn tree_to_string(tree: &DecisionTree) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "drbw-tree v1");
    let _ = writeln!(out, "features {}", tree.num_features());
    let _ = writeln!(out, "classes {}", tree.num_classes());
    let _ = writeln!(out, "nodes {}", tree.nodes().len());
    for (i, node) in tree.nodes().iter().enumerate() {
        match node {
            Node::Split { feature, threshold, left, right } => {
                // {:e} keeps full f64 precision without locale issues.
                let _ = writeln!(out, "split {i} {feature} {threshold:e} {left} {right}");
            }
            Node::Leaf { label, counts } => {
                let _ = write!(out, "leaf {i} {label}");
                for c in counts {
                    let _ = write!(out, " {c}");
                }
                out.push('\n');
            }
        }
    }
    out
}

fn err(msg: impl Into<String>) -> MldtError {
    MldtError::Parse(msg.into())
}

/// Parse a tree serialized by [`tree_to_string`]. Validates structure:
/// node ids dense and in order, children in range, labels within the
/// class count.
pub fn tree_from_string(text: &str) -> Result<DecisionTree, MldtError> {
    let mut lines = text.lines().filter(|l| !l.trim().is_empty());
    let header = lines.next().ok_or_else(|| err("empty input"))?;
    if header.trim() != "drbw-tree v1" {
        return Err(err(format!("bad header {header:?}")));
    }
    let mut field = |name: &str| -> Result<usize, MldtError> {
        let line = lines.next().ok_or_else(|| err(format!("missing {name}")))?;
        let mut it = line.split_whitespace();
        if it.next() != Some(name) {
            return Err(err(format!("expected {name}, got {line:?}")));
        }
        it.next().ok_or_else(|| err(format!("{name}: missing value")))?.parse().map_err(|e| err(format!("{name}: {e}")))
    };
    let num_features = field("features")?;
    let num_classes = field("classes")?;
    let num_nodes = field("nodes")?;
    if num_features == 0 || num_classes < 2 || num_nodes == 0 {
        return Err(err("degenerate dimensions"));
    }
    let mut nodes = Vec::with_capacity(num_nodes);
    for (expect_id, line) in lines.enumerate() {
        let mut it = line.split_whitespace();
        let kind = it.next().ok_or_else(|| err("empty node line"))?;
        let id: usize =
            it.next().ok_or_else(|| err("missing node id"))?.parse().map_err(|e| err(format!("id: {e}")))?;
        if id != expect_id {
            return Err(err(format!("node ids must be dense and ordered, got {id} at position {expect_id}")));
        }
        match kind {
            "split" => {
                let feature: usize = it
                    .next()
                    .ok_or_else(|| err("split: feature"))?
                    .parse()
                    .map_err(|e| err(format!("feature: {e}")))?;
                let threshold: f64 = it
                    .next()
                    .ok_or_else(|| err("split: threshold"))?
                    .parse()
                    .map_err(|e| err(format!("threshold: {e}")))?;
                let left: usize =
                    it.next().ok_or_else(|| err("split: left"))?.parse().map_err(|e| err(format!("left: {e}")))?;
                let right: usize =
                    it.next().ok_or_else(|| err("split: right"))?.parse().map_err(|e| err(format!("right: {e}")))?;
                if feature >= num_features {
                    return Err(err(format!("feature {feature} out of range")));
                }
                if left >= num_nodes || right >= num_nodes || left == id || right == id {
                    return Err(err(format!("child out of range at node {id}")));
                }
                if !threshold.is_finite() {
                    return Err(err("non-finite threshold"));
                }
                nodes.push(Node::Split { feature, threshold, left, right });
            }
            "leaf" => {
                let label: usize =
                    it.next().ok_or_else(|| err("leaf: label"))?.parse().map_err(|e| err(format!("label: {e}")))?;
                if label >= num_classes {
                    return Err(err(format!("label {label} out of range")));
                }
                let counts: Result<Vec<usize>, _> = it.map(|t| t.parse()).collect();
                nodes.push(Node::Leaf { label, counts: counts.map_err(|e| err(format!("counts: {e}")))? });
            }
            other => return Err(err(format!("unknown node kind {other:?}"))),
        }
    }
    if nodes.len() != num_nodes {
        return Err(err(format!("expected {num_nodes} nodes, got {}", nodes.len())));
    }
    DecisionTree::from_parts(nodes, num_features, num_classes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dataset::Dataset;
    use crate::tree::TrainConfig;

    fn trained() -> DecisionTree {
        let mut d = Dataset::binary(vec!["f0".into(), "f1".into()]);
        for i in 0..20 {
            d.push(vec![i as f64, 0.0], 0);
            d.push(vec![100.0 + i as f64, 1.0], 1);
        }
        DecisionTree::train(&d, TrainConfig::default())
    }

    #[test]
    fn roundtrip_preserves_predictions() {
        let t = trained();
        let text = tree_to_string(&t);
        let t2 = tree_from_string(&text).unwrap();
        assert_eq!(t.nodes(), t2.nodes());
        for x in [0.0, 5.0, 59.0, 60.0, 119.0, 500.0] {
            assert_eq!(t.predict(&[x, 0.5]), t2.predict(&[x, 0.5]));
        }
    }

    #[test]
    fn threshold_precision_survives() {
        let t = trained();
        let t2 = tree_from_string(&tree_to_string(&t)).unwrap();
        // Probe exactly at the learned threshold boundary.
        if let Node::Split { threshold, .. } = &t.nodes()[0] {
            assert_eq!(t.predict(&[*threshold, 0.0]), t2.predict(&[*threshold, 0.0]));
            let eps = threshold * 1e-15;
            assert_eq!(t.predict(&[threshold + eps, 0.0]), t2.predict(&[threshold + eps, 0.0]));
        }
    }

    #[test]
    fn rejects_garbage() {
        assert!(tree_from_string("").is_err());
        assert!(tree_from_string("not-a-model").is_err());
        assert!(tree_from_string("drbw-tree v1\nfeatures 0\nclasses 2\nnodes 1\nleaf 0 0 1").is_err());
        // Out-of-range child.
        let bad = "drbw-tree v1\nfeatures 2\nclasses 2\nnodes 1\nsplit 0 0 1.0 5 6";
        assert!(tree_from_string(bad).is_err());
        // Out-of-range label.
        let bad = "drbw-tree v1\nfeatures 2\nclasses 2\nnodes 1\nleaf 0 7 1";
        assert!(tree_from_string(bad).is_err());
        // Non-dense ids.
        let bad = "drbw-tree v1\nfeatures 2\nclasses 2\nnodes 2\nleaf 1 0 1\nleaf 0 0 1";
        assert!(tree_from_string(bad).is_err());
    }

    #[test]
    fn error_display() {
        let e = tree_from_string("nope").unwrap_err();
        assert!(e.to_string().contains("parse error"));
    }
}

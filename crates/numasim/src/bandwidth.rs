//! Bandwidth accounting and the congestion model.
//!
//! Every DRAM access consumes capacity on up to two finite resources: the
//! **memory controller** of the page's home node, and — when the accessor
//! sits on a different node — the directed **interconnect channel** from
//! the accessing node to the home node.
//!
//! The engine runs in fixed-length rounds. Within a round the model
//! accumulates demanded bytes per resource; at the round boundary it
//! computes each resource's utilization `ρ = bytes / (bandwidth × round)`
//! and derives a latency inflation factor applied to the *service* portion
//! of DRAM latency in the next round:
//!
//! ```text
//! f(ρ) = 1                                  for ρ ≤ knee
//! f(ρ) = 1 + (ρ' − knee) / (2 (1 − ρ'))     for ρ > knee, ρ' = min(ρ, ρ_cap)
//! f is clamped to max_factor
//! ```
//!
//! This is the shape of M/D/1 queueing delay with a contention-free region
//! below the knee. On top of it, a multiplicative controller handles
//! *oversubscription* (measured ρ near or above 1): the factor for the next
//! round is
//!
//! ```text
//! f_next = clamp(max(f_base(ρ), f_prev · ρ / ctrl_target), 1, max_factor)
//! ```
//!
//! At steady state under saturation this converges to the fluid solution —
//! utilization settles at `ctrl_target` and latency is inflated by exactly
//! the oversubscription ratio — which is how a real memory controller
//! behaves: throughput caps at capacity and queueing delay absorbs the
//! excess demand. A naive open-loop `f(ρ)` oscillates (inflation starves
//! the next round's demand, the factor collapses, demand surges back); the
//! `f_prev · ρ` term is what damps that. This latency blow-up under load is
//! precisely the signal the DR-BW classifier learns (its two chosen
//! features are the remote-DRAM sample count and the average remote-DRAM
//! latency).

use crate::config::MachineConfig;
use crate::topology::NodeId;

/// A finite-bandwidth resource.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Resource {
    /// Directed interconnect channel, by dense channel index.
    Channel(usize),
    /// Memory controller of a node.
    MemCtrl(usize),
}

/// Per-resource running aggregates over a phase.
#[derive(Debug, Clone, Default)]
struct ResourceAgg {
    total_bytes: f64,
    max_rho: f64,
    rho_sum: f64,
}

/// Round-based bandwidth accounting for all channels and controllers.
#[derive(Debug, Clone)]
pub struct BandwidthModel {
    nodes: usize,
    round_cycles: f64,
    knee: f64,
    rho_cap: f64,
    max_factor: f64,
    ctrl_target: f64,
    saturation: f64,
    ch_bw: Vec<f64>,
    mc_bw: f64,
    /// Demand in the current round.
    ch_bytes: Vec<f64>,
    mc_bytes: Vec<f64>,
    /// Inflation factors derived from the previous round.
    ch_factor: Vec<f64>,
    mc_factor: Vec<f64>,
    ch_agg: Vec<ResourceAgg>,
    mc_agg: Vec<ResourceAgg>,
    rounds: u64,
}

impl BandwidthModel {
    /// Fresh accounting state for a machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        let nodes = cfg.topology.num_nodes();
        let nch = cfg.topology.num_channels();
        let ch_bw = (0..nch).map(|i| cfg.interconnect.bandwidth_of(i)).collect();
        Self {
            nodes,
            round_cycles: cfg.engine.round_cycles,
            knee: cfg.congestion.knee,
            rho_cap: cfg.congestion.rho_cap,
            max_factor: cfg.congestion.max_factor,
            ctrl_target: cfg.congestion.ctrl_target,
            saturation: cfg.congestion.saturation,
            ch_bw,
            mc_bw: cfg.mem.mc_bandwidth,
            ch_bytes: vec![0.0; nch],
            mc_bytes: vec![0.0; nodes],
            ch_factor: vec![1.0; nch],
            mc_factor: vec![1.0; nodes],
            ch_agg: vec![ResourceAgg::default(); nch],
            mc_agg: vec![ResourceAgg::default(); nodes],
            rounds: 0,
        }
    }

    /// Dense index of the directed channel `src → dst`.
    ///
    /// # Panics
    /// Debug-panics if `src == dst` (local accesses use no channel).
    #[inline]
    fn channel_index(&self, src: NodeId, dst: NodeId) -> usize {
        debug_assert_ne!(src, dst);
        let (s, d) = (src.0 as usize, dst.0 as usize);
        s * (self.nodes - 1) + if d > s { d - 1 } else { d }
    }

    /// Account one DRAM transfer of `bytes` from the accessor on `src` to
    /// memory homed on `home`.
    #[inline]
    pub fn record_dram(&mut self, src: NodeId, home: NodeId, bytes: f64) {
        self.mc_bytes[home.0 as usize] += bytes;
        if src != home {
            let idx = self.channel_index(src, home);
            self.ch_bytes[idx] += bytes;
        }
    }

    /// Account `n` identical DRAM transfers of `bytes` each from `src` to
    /// `home` — bit-identical to `n` sequential [`BandwidthModel::record_dram`]
    /// calls (the byte accumulators collapse the add chain only where that
    /// is exactly the same rounding; see [`crate::fp::bulk_add`]). The
    /// fused span walk uses this to commit a whole all-miss line span in
    /// O(1) instead of O(n) accumulator adds.
    #[inline]
    pub fn record_dram_n(&mut self, src: NodeId, home: NodeId, bytes: f64, n: u64) {
        let h = home.0 as usize;
        self.mc_bytes[h] = crate::fp::bulk_add(self.mc_bytes[h], bytes, n);
        if src != home {
            let idx = self.channel_index(src, home);
            self.ch_bytes[idx] = crate::fp::bulk_add(self.ch_bytes[idx], bytes, n);
        }
    }

    /// Latency inflation factor for a DRAM access from `src` to `home`,
    /// based on the previous round: the worse of the home controller and
    /// (for remote accesses) the channel.
    #[inline]
    pub fn factor_for(&self, src: NodeId, home: NodeId) -> f64 {
        let mc = self.mc_factor[home.0 as usize];
        if src == home {
            mc
        } else {
            let ch = self.ch_factor[self.channel_index(src, home)];
            mc.max(ch)
        }
    }

    fn factor_of_rho(&self, rho: f64) -> f64 {
        if rho <= self.knee {
            1.0
        } else {
            let r = rho.min(self.rho_cap);
            (1.0 + (r - self.knee) / (2.0 * (1.0 - r))).min(self.max_factor)
        }
    }

    /// Next-round factor combining the open-loop M/D/1 curve with the
    /// oversubscription controller (see module docs).
    fn next_factor(&self, prev: f64, rho: f64) -> f64 {
        let ctrl = prev * rho / self.ctrl_target;
        self.factor_of_rho(rho).max(ctrl).clamp(1.0, self.max_factor)
    }

    /// Fold another model's current-round byte demand into this one's
    /// (shard merge; see [`crate::shard`]). Exact, and therefore
    /// order-independent: the engine only ever records whole cache lines,
    /// so every accumulator holds an integer multiple of the line size —
    /// far below 2^53 — and each addition here is performed without
    /// rounding. Summing the shards' partial demands in any order yields
    /// the bit pattern the interleaved unsharded accumulation produces.
    ///
    /// # Panics
    /// Panics if the two models have different channel/controller counts.
    pub(crate) fn absorb_round_bytes(&mut self, other: &BandwidthModel) {
        assert_eq!(self.ch_bytes.len(), other.ch_bytes.len(), "channel count mismatch");
        assert_eq!(self.mc_bytes.len(), other.mc_bytes.len(), "controller count mismatch");
        for (a, b) in self.ch_bytes.iter_mut().zip(&other.ch_bytes) {
            *a += *b;
        }
        for (a, b) in self.mc_bytes.iter_mut().zip(&other.mc_bytes) {
            *a += *b;
        }
    }

    /// Close the current round: fold demand into aggregates and derive the
    /// factors for the next round.
    pub fn end_round(&mut self) {
        let denom_mc = self.mc_bw * self.round_cycles;
        for n in 0..self.nodes {
            let rho = self.mc_bytes[n] / denom_mc;
            self.mc_factor[n] = self.next_factor(self.mc_factor[n], rho);
            let agg = &mut self.mc_agg[n];
            agg.total_bytes += self.mc_bytes[n];
            agg.max_rho = agg.max_rho.max(rho);
            agg.rho_sum += rho;
            self.mc_bytes[n] = 0.0;
        }
        for c in 0..self.ch_bytes.len() {
            let rho = self.ch_bytes[c] / (self.ch_bw[c] * self.round_cycles);
            self.ch_factor[c] = self.next_factor(self.ch_factor[c], rho);
            let agg = &mut self.ch_agg[c];
            agg.total_bytes += self.ch_bytes[c];
            agg.max_rho = agg.max_rho.max(rho);
            agg.rho_sum += rho;
            self.ch_bytes[c] = 0.0;
        }
        self.rounds += 1;
    }

    /// Number of completed rounds.
    pub fn rounds(&self) -> u64 {
        self.rounds
    }

    /// Total bytes transferred so far on each directed channel
    /// (dense channel index order).
    pub fn channel_bytes(&self) -> Vec<f64> {
        self.ch_agg.iter().map(|a| a.total_bytes).collect()
    }

    /// Total bytes served by each memory controller.
    pub fn mc_bytes_total(&self) -> Vec<f64> {
        self.mc_agg.iter().map(|a| a.total_bytes).collect()
    }

    /// Peak per-round utilization of each channel.
    pub fn channel_max_rho(&self) -> Vec<f64> {
        self.ch_agg.iter().map(|a| a.max_rho).collect()
    }

    /// Peak per-round utilization of each memory controller.
    pub fn mc_max_rho(&self) -> Vec<f64> {
        self.mc_agg.iter().map(|a| a.max_rho).collect()
    }

    /// Time-averaged utilization of each channel.
    pub fn channel_avg_rho(&self) -> Vec<f64> {
        let r = self.rounds.max(1) as f64;
        self.ch_agg.iter().map(|a| a.rho_sum / r).collect()
    }

    /// Time-averaged utilization of each memory controller — the signal the
    /// guided-optimization weight search reads to size per-node headroom.
    pub fn mc_avg_rho(&self) -> Vec<f64> {
        let r = self.rounds.max(1) as f64;
        self.mc_agg.iter().map(|a| a.rho_sum / r).collect()
    }

    /// Channels whose peak utilization crossed the configured saturation
    /// threshold. **Reporting/debugging only** — the DR-BW classifier must
    /// detect contention from sample features, as on real hardware where no
    /// such oracle exists.
    pub fn saturated_channels(&self) -> Vec<usize> {
        self.ch_agg.iter().enumerate().filter(|(_, a)| a.max_rho >= self.saturation).map(|(i, _)| i).collect()
    }

    /// Reset all per-phase aggregates and factors (start of a new phase).
    pub fn reset(&mut self) {
        for b in self.ch_bytes.iter_mut().chain(self.mc_bytes.iter_mut()) {
            *b = 0.0;
        }
        for f in self.ch_factor.iter_mut().chain(self.mc_factor.iter_mut()) {
            *f = 1.0;
        }
        for a in self.ch_agg.iter_mut().chain(self.mc_agg.iter_mut()) {
            *a = ResourceAgg::default();
        }
        self.rounds = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn model() -> BandwidthModel {
        BandwidthModel::new(&MachineConfig::scaled())
    }

    #[test]
    fn idle_round_keeps_factors_at_one() {
        let mut m = model();
        m.end_round();
        assert_eq!(m.factor_for(NodeId(0), NodeId(1)), 1.0);
        assert_eq!(m.factor_for(NodeId(2), NodeId(2)), 1.0);
    }

    #[test]
    fn light_load_below_knee_uninflated() {
        let mut m = model();
        // Channel bandwidth 6 B/cyc × 20k cycles = 120 kB capacity.
        m.record_dram(NodeId(0), NodeId(1), 20_000.0);
        m.end_round();
        assert_eq!(m.factor_for(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn saturation_inflates_next_round() {
        let mut m = model();
        // Oversubscribe channel 0->1 (capacity 120 kB/round).
        m.record_dram(NodeId(0), NodeId(1), 500_000.0);
        m.end_round();
        let f = m.factor_for(NodeId(0), NodeId(1));
        assert!(f > 4.0, "expected strong inflation, got {f}");
        // The opposite direction is unaffected.
        assert_eq!(m.factor_for(NodeId(1), NodeId(0)), 1.0);
    }

    #[test]
    fn factor_monotone_in_load() {
        let mut prev = 0.0;
        for load in [50_000.0, 100_000.0, 150_000.0, 300_000.0, 1_000_000.0] {
            let mut m = model();
            m.record_dram(NodeId(0), NodeId(1), load);
            m.end_round();
            let f = m.factor_for(NodeId(0), NodeId(1));
            assert!(f >= prev, "factor must be monotone: {f} < {prev} at load {load}");
            prev = f;
        }
    }

    #[test]
    fn factor_capped() {
        let mut m = model();
        m.record_dram(NodeId(0), NodeId(1), 1e12);
        m.end_round();
        let cfg = MachineConfig::scaled();
        assert_eq!(m.factor_for(NodeId(0), NodeId(1)), cfg.congestion.max_factor);
    }

    /// `record_dram_n` must be bit-identical to the per-access loop —
    /// including the ragged byte totals repeated f64 adds produce — for
    /// local and remote traffic, interleaved with other recordings and
    /// across rounds.
    #[test]
    fn record_dram_n_matches_per_access_loop() {
        let mut a = model();
        let mut b = model();
        let batches: [(u8, u8, u64); 5] = [(0, 1, 1000), (0, 0, 4097), (2, 1, 1), (0, 1, 63), (3, 3, 77)];
        for _round in 0..3 {
            for &(src, home, n) in &batches {
                for _ in 0..n {
                    a.record_dram(NodeId(src), NodeId(home), 64.0);
                }
                b.record_dram_n(NodeId(src), NodeId(home), 64.0, n);
            }
            a.end_round();
            b.end_round();
        }
        assert_eq!(a.channel_bytes(), b.channel_bytes());
        assert_eq!(a.mc_bytes_total(), b.mc_bytes_total());
        assert_eq!(a.factor_for(NodeId(0), NodeId(1)), b.factor_for(NodeId(0), NodeId(1)));
    }

    #[test]
    fn local_access_loads_controller_not_channel() {
        let mut m = model();
        m.record_dram(NodeId(1), NodeId(1), 1e9);
        m.end_round();
        // Remote access into node 1 sees the hot controller...
        assert!(m.factor_for(NodeId(0), NodeId(1)) > 1.0);
        // ...but traffic between other nodes is clean.
        assert_eq!(m.factor_for(NodeId(0), NodeId(2)), 1.0);
        assert!(m.saturated_channels().is_empty());
    }

    #[test]
    fn aggregates_accumulate_across_rounds() {
        let mut m = model();
        m.record_dram(NodeId(0), NodeId(1), 1000.0);
        m.end_round();
        m.record_dram(NodeId(0), NodeId(1), 500.0);
        m.end_round();
        let idx = 0; // channel 0->1 is dense index 0
        assert_eq!(m.channel_bytes()[idx], 1500.0);
        assert_eq!(m.mc_bytes_total()[1], 1500.0);
        assert_eq!(m.rounds(), 2);
    }

    #[test]
    fn saturated_channels_reports_hot_links() {
        let mut m = model();
        m.record_dram(NodeId(2), NodeId(0), 1e9);
        m.end_round();
        let sat = m.saturated_channels();
        assert_eq!(sat.len(), 1);
        // Verify it is the 2->0 channel via max-rho position.
        let rho = m.channel_max_rho();
        assert!(rho[sat[0]] > 1.0);
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = model();
        m.record_dram(NodeId(0), NodeId(1), 1e9);
        m.end_round();
        m.reset();
        assert_eq!(m.rounds(), 0);
        assert_eq!(m.factor_for(NodeId(0), NodeId(1)), 1.0);
        assert!(m.channel_bytes().iter().all(|&b| b == 0.0));
    }

    #[test]
    fn controller_converges_to_fluid_steady_state() {
        // Offered load = 3x a channel's capacity, fully memory bound: the
        // served demand each round is offered/f. The factor should settle
        // near 3/ctrl_target ~ 3.26 with utilization near ctrl_target.
        let mut m = model();
        let capacity = 6.0 * 20_000.0;
        let offered = 3.0 * capacity;
        let mut f = 1.0;
        for _ in 0..20 {
            m.record_dram(NodeId(0), NodeId(1), offered / f);
            m.end_round();
            f = m.factor_for(NodeId(0), NodeId(1));
        }
        assert!((f - 3.0 / 0.92).abs() < 0.4, "factor {f} should settle near fluid solution");
        // Served utilization in the final round is near the target.
        let served_rho = (offered / f) / capacity;
        assert!((served_rho - 0.92).abs() < 0.15, "utilization {served_rho} should hover near target");
    }

    #[test]
    fn controller_decays_when_load_vanishes() {
        let mut m = model();
        m.record_dram(NodeId(0), NodeId(1), 1e9);
        m.end_round();
        assert!(m.factor_for(NodeId(0), NodeId(1)) > 1.0);
        for _ in 0..5 {
            m.end_round(); // idle rounds
        }
        assert_eq!(m.factor_for(NodeId(0), NodeId(1)), 1.0);
    }

    #[test]
    fn avg_rho_is_time_average() {
        let mut m = model();
        m.record_dram(NodeId(0), NodeId(1), 120_000.0); // rho = 1.0
        m.end_round();
        m.end_round(); // idle round, rho = 0
        let avg = m.channel_avg_rho()[0];
        assert!((avg - 0.5).abs() < 1e-9, "got {avg}");
        // The loaded controller (node 1) shows the same time average at its
        // own capacity scale; every other controller stays at zero.
        let mc = m.mc_avg_rho();
        assert!((mc[1] - 120_000.0 / (20.0 * 20_000.0) / 2.0).abs() < 1e-9, "got {}", mc[1]);
        assert_eq!(mc[0], 0.0);
    }
}

//! Deterministic intra-run sharding: one simulation's per-core state
//! partitioned across host threads, bit-identical to the
//! single-host-thread batched walk for every shard count.
//!
//! ## Why sharding can be exact
//!
//! The batched engine's unit of work is a *thread slice*: one simulated
//! thread advanced to the round boundary
//! (`engine::run_thread_slice`). Within a round, slices of
//! different threads interact only through four channels, and each one
//! either cannot observe intra-round ordering or can be replayed:
//!
//! 1. **Caches.** L1/L2 are per core and the L3 is per node, so threads
//!    on different NUMA nodes share *no* cache. Each shard owns a set of
//!    nodes and runs their threads against a private [`Hierarchy`]
//!    clone; at phase end the canonical hierarchy adopts each owned
//!    node's caches back (`Hierarchy::adopt_node_from`).
//! 2. **Bandwidth accounting.** Within a round the engine only *reads*
//!    congestion factors (they change exclusively at
//!    [`BandwidthModel::end_round`]) and *accumulates* byte demand. The
//!    demand accumulators only ever receive whole cache lines, so every
//!    partial sum is an exact integer and summing the shards' demands is
//!    order-independent (`BandwidthModel::absorb_round_bytes`).
//! 3. **First-touch placement.** Shard-private [`MemoryMap`] clones log
//!    every placement they establish (`FirstTouchClaim`); the merge
//!    re-establishes the union everywhere. Two shards touching the same
//!    page from different nodes in one round is a genuine ordering race
//!    the unsharded engine would resolve by global event order — that
//!    case panics instead of silently diverging (real workloads
//!    establish placement in a single-threaded init phase, like the
//!    paper's master-alloc pattern, and never race).
//! 4. **The observer.** Each shard drives a `ShardScribe`: a clone of
//!    the real observer that answers `on_access`/`run_hint` from
//!    shard-local state while logging the full call sequence. At each
//!    round boundary the logs are replayed into the *canonical* observer
//!    in global registration order, which reproduces exactly the call
//!    sequence — and therefore the samples, counters, and jitter salts —
//!    of the unsharded run. The clone's own recorded artifacts are
//!    discarded.
//!
//! ## The observer contract
//!
//! Replay is sound for observers whose *feedback into the engine* — the
//! `on_access` perturbation cost and the `run_hint` budget — depends
//! only on per-thread state and the event itself. Globally-salted state
//! (e.g. the PEBS sampler's latency jitter over its `observed` counter)
//! may shape *recorded artifacts* freely: those are produced by the
//! replay, which sees the global order. Every replayed call asserts that
//! the canonical observer answers bit-identically to what the shard's
//! clone returned, so a violating observer fails loudly rather than
//! silently diverging.
//!
//! ## Round protocol
//!
//! Shards run under `std::thread::scope` with the caller's thread acting
//! as shard 0's runner and the merger. Two barriers frame each round:
//! after `start` every shard runs its threads' slices for the round;
//! after `done` the merger (alone — the workers are parked at the next
//! `start`) replays observer logs in registration order, folds byte
//! demand into the canonical bandwidth model, closes the round, and
//! redistributes the post-round model and first-touch claims to every
//! shard. Node→shard assignment is a pure function of the thread specs
//! (distinct nodes in ascending order, round-robin over shards), so runs
//! are reproducible regardless of host scheduling.

use crate::bandwidth::BandwidthModel;
use crate::config::MachineConfig;
use crate::engine::{
    collect_run_stats, run_thread_slice, AccessEvent, Engine, Observer, SliceConsts, ThreadCtx, ThreadSpec,
};
use crate::hierarchy::Hierarchy;
use crate::memmap::{FirstTouchClaim, MemoryMap};
use crate::stats::{AccessCounts, RunStats};
use crate::topology::{NodeId, ThreadId};
use std::ops::Range;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Barrier, Mutex};

/// One logged observer call (see [`ShardScribe`]). The scribe records
/// the full call sequence so the round merge can replay it into the
/// canonical observer verbatim.
enum ObsRec {
    /// An `on_access` delivery and the perturbation cost the shard's
    /// clone returned (asserted against the canonical replay).
    Ev { ev: AccessEvent, cost: f64 },
    /// A `run_hint` query and the budget the clone granted.
    Hint { thread: ThreadId, hint: u64 },
    /// An `on_run` bulk commit of `n` skipped events.
    Run { thread: ThreadId, n: u64 },
}

/// Shard-local observer: a clone of the real observer that supplies the
/// engine's feedback (costs, budgets) from shard-local per-thread state
/// while logging every call for the round merge's global-order replay.
struct ShardScribe<O: Observer> {
    inner: O,
    recs: Vec<ObsRec>,
}

impl<O: Observer> Observer for ShardScribe<O> {
    #[inline]
    fn on_access(&mut self, ev: &AccessEvent) -> f64 {
        let cost = self.inner.on_access(ev);
        self.recs.push(ObsRec::Ev { ev: *ev, cost });
        cost
    }

    #[inline]
    fn run_hint(&mut self, thread: ThreadId) -> u64 {
        let hint = self.inner.run_hint(thread);
        self.recs.push(ObsRec::Hint { thread, hint });
        hint
    }

    #[inline]
    fn on_run(&mut self, thread: ThreadId, n: u64) {
        self.inner.on_run(thread, n);
        self.recs.push(ObsRec::Run { thread, n });
    }

    // `on_phase_end` and `set_enabled` are never routed through a scribe:
    // the engine calls them on the canonical observer only.
}

/// Everything one shard owns: its threads (tagged with their global
/// registration index), private clones of the mutable machine state, and
/// the round's observer log.
struct ShardState<O: Observer> {
    /// `(global registration index, context)` in registration order.
    ctxs: Vec<(usize, ThreadCtx)>,
    hierarchy: Hierarchy,
    bw: BandwidthModel,
    memmap: MemoryMap,
    scribe: ShardScribe<O>,
    counts: AccessCounts,
    /// Threads of this shard still running.
    live: usize,
    /// This shard's copy of the round boundary — the same `+= round`
    /// recurrence as the unsharded loop, so the values are bit-identical.
    round_end: f64,
    /// This round's per-slice log extents, in execution order.
    slices: Vec<(usize, Range<usize>)>,
    /// NUMA nodes this shard owns (for the phase-end cache adoption).
    nodes: Vec<NodeId>,
}

/// Run one round of a shard: every live thread gets one slice against
/// the shard-private state, logging its observer traffic.
fn run_shard_round<O: Observer>(cfg: &MachineConfig, sc: &SliceConsts, s: &mut ShardState<O>, round: f64) {
    let ShardState { ctxs, hierarchy, bw, memmap, scribe, counts, live, round_end, slices, .. } = s;
    for (gidx, t) in ctxs.iter_mut() {
        if t.done {
            continue;
        }
        let mark = scribe.recs.len();
        let finished = run_thread_slice(cfg, sc, hierarchy, bw, memmap, scribe, counts, t, *round_end);
        if finished {
            *live -= 1;
        }
        if scribe.recs.len() > mark {
            slices.push((*gidx, mark..scribe.recs.len()));
        }
    }
    *round_end += round;
}

/// Replay one slice's observer log into the canonical observer,
/// asserting that it answers exactly as the shard's clone did.
fn replay<O: Observer>(observer: &mut O, recs: &[ObsRec]) {
    for rec in recs {
        match rec {
            ObsRec::Ev { ev, cost } => {
                let c = observer.on_access(ev);
                assert!(
                    c.to_bits() == cost.to_bits(),
                    "observer broke the shard-local determinism contract: \
                     perturbation {c} on replay vs {cost} in the shard"
                );
            }
            ObsRec::Hint { thread, hint } => {
                let h = observer.run_hint(*thread);
                assert_eq!(
                    h, *hint,
                    "observer broke the shard-local determinism contract: \
                     run_hint differs between replay and shard"
                );
            }
            ObsRec::Run { thread, n } => observer.on_run(*thread, *n),
        }
    }
}

/// Lock ignoring poisoning: a panic in a shard is recorded and re-raised
/// by the round protocol itself, after which no shard state is trusted
/// anyway.
fn lock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The sharded phase driver behind `Engine::run_phase_sharded`. See the
/// module docs for the protocol.
pub(crate) fn run_phase_sharded<O: Observer + Clone + Send>(
    eng: &mut Engine<O>,
    threads: Vec<ThreadSpec>,
    shards: usize,
) -> RunStats {
    assert!(shards >= 1, "shards must be at least 1");
    // Node→shard assignment: distinct nodes with threads, ascending,
    // round-robin over the effective shard count. A pure function of the
    // specs, so identical runs shard identically.
    let mut nodes: Vec<NodeId> = threads.iter().map(|s| eng.cfg.topology.node_of_core(s.core)).collect();
    nodes.sort_unstable_by_key(|n| n.0);
    nodes.dedup();
    let eff = shards.min(nodes.len());
    if eff <= 1 {
        // One shard is definitionally the unsharded walk.
        return eng.run_phase(threads);
    }

    let ctxs = eng.make_ctxs(threads);
    let nthreads = ctxs.len();
    eng.bw.reset();
    let round = eng.cfg.engine.round_cycles;
    let consts = SliceConsts::new(&eng.cfg, eng.max_run);

    // Split field borrows: workers share the config read-only while the
    // merger mutates the canonical bandwidth model, memory map, and
    // observer between rounds.
    let cfg = &eng.cfg;
    let hierarchy = &mut eng.hierarchy;
    let bw = &mut eng.bw;
    let memmap = &mut eng.memmap;
    let observer = &mut eng.observer;

    let mut states: Vec<ShardState<O>> = (0..eff)
        .map(|i| ShardState {
            ctxs: Vec::new(),
            hierarchy: hierarchy.clone(),
            bw: bw.clone(),
            memmap: {
                let mut m = memmap.clone();
                m.set_claim_tracking(true);
                m
            },
            scribe: ShardScribe { inner: observer.clone(), recs: Vec::new() },
            counts: AccessCounts::default(),
            live: 0,
            round_end: round,
            slices: Vec::new(),
            nodes: nodes.iter().copied().enumerate().filter(|(p, _)| p % eff == i).map(|(_, n)| n).collect(),
        })
        .collect();
    for (gidx, t) in ctxs.into_iter().enumerate() {
        let si = nodes.iter().position(|&n| n == t.node).expect("ctx node is in the node list") % eff;
        states[si].live += 1;
        states[si].ctxs.push((gidx, t));
    }

    let slots: Vec<Mutex<ShardState<O>>> = states.into_iter().map(Mutex::new).collect();
    let start = Barrier::new(eff);
    let done = Barrier::new(eff);
    let stop = AtomicBool::new(false);
    // A panic anywhere — a shard's stream, the merge's replay asserts,
    // the designed first-touch conflict — must not strand the barrier
    // protocol. The panicking side records its payload, every side keeps
    // hitting its barriers, and the merger re-raises after releasing the
    // workers.
    let failure: Mutex<Option<Box<dyn std::any::Any + Send>>> = Mutex::new(None);
    let record_failure = |p: Box<dyn std::any::Any + Send>| {
        lock(&failure).get_or_insert(p);
    };
    let run_round = |slot: &Mutex<ShardState<O>>| {
        // Uncontended by protocol; the lock exists so the merger's
        // access between rounds is compiler-checked.
        let r = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            run_shard_round(cfg, &consts, &mut lock(slot), round);
        }));
        if let Err(p) = r {
            record_failure(p);
        }
    };
    std::thread::scope(|scope| {
        for slot in slots.iter().skip(1) {
            let (run_round, start, done, stop) = (&run_round, &start, &done, &stop);
            scope.spawn(move || loop {
                start.wait();
                if stop.load(Ordering::Acquire) {
                    break;
                }
                run_round(slot);
                done.wait();
            });
        }
        loop {
            start.wait();
            run_round(&slots[0]);
            done.wait();
            // ---- merge: workers are parked at the next `start` ----
            let merge = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                let mut guards: Vec<_> = slots.iter().map(lock).collect();
                let mut live_total = 0usize;
                let mut claims: Vec<FirstTouchClaim> = Vec::new();
                let mut merged: Vec<(usize, usize, Range<usize>)> = Vec::new();
                for (si, g) in guards.iter_mut().enumerate() {
                    live_total += g.live;
                    for (gidx, range) in g.slices.drain(..) {
                        merged.push((gidx, si, range));
                    }
                    claims.extend(g.memmap.take_claims());
                    // Exact integer sums: order-independent, so shard
                    // order reproduces the interleaved accumulation.
                    bw.absorb_round_bytes(&g.bw);
                }
                // Global registration order — each live thread ran
                // exactly one slice, so this is the unsharded visit
                // order.
                merged.sort_unstable_by_key(|&(gidx, _, _)| gidx);
                for &(_, si, ref range) in &merged {
                    replay(observer, &guards[si].scribe.recs[range.clone()]);
                }
                // First-touch union: idempotent on the claiming shard,
                // panics on a genuine same-round cross-shard race.
                for c in &claims {
                    memmap.establish_first_touch(*c);
                    for g in guards.iter_mut() {
                        g.memmap.establish_first_touch(*c);
                    }
                }
                bw.end_round();
                for g in guards.iter_mut() {
                    g.scribe.recs.clear();
                    g.bw.clone_from(bw);
                }
                live_total
            }));
            let live_total = match merge {
                Ok(n) => n,
                Err(p) => {
                    record_failure(p);
                    0
                }
            };
            if live_total == 0 || lock(&failure).is_some() {
                stop.store(true, Ordering::Release);
                start.wait();
                break;
            }
        }
    });
    if let Some(p) = failure.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner) {
        std::panic::resume_unwind(p);
    }

    // Phase assembly: adopt each shard's owned caches, collect clocks by
    // registration index, and sum the (exact, commutative) event counts.
    let mut clocks = vec![0.0f64; nthreads];
    let mut counts = AccessCounts::default();
    for slot in slots {
        let s = slot.into_inner().unwrap_or_else(std::sync::PoisonError::into_inner);
        for &n in &s.nodes {
            hierarchy.adopt_node_from(&s.hierarchy, n);
        }
        for (gidx, t) in &s.ctxs {
            clocks[*gidx] = t.clock;
        }
        counts.l1 += s.counts.l1;
        counts.l2 += s.counts.l2;
        counts.l3 += s.counts.l3;
        counts.lfb += s.counts.lfb;
        counts.local_dram += s.counts.local_dram;
        counts.remote_dram += s.counts.remote_dram;
    }
    let stats = collect_run_stats(bw, clocks, counts);
    observer.on_phase_end(&stats);
    stats
}

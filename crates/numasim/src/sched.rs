//! Discrete-event multi-tenant scheduler: co-resident workloads on one
//! simulated machine.
//!
//! The closed-loop engine ([`crate::engine`]) advances one workload's
//! threads round by round in a fixed nested loop. This module rebuilds
//! that loop as a discrete-event scheduler so *several* independent thread
//! groups ("tenants") can share the machine with staggered arrival times,
//! bursty on/off phases, and mid-run core migration — the cross-tenant
//! contention regime that hyperscale memory-subsystem studies report and
//! that DR-BW's single-workload evaluation never sees.
//!
//! ## Component model
//!
//! A [`Component`] exposes [`Component::next_tick`] — the simulated time
//! at which it next has work, or `None` once finished — and
//! [`Component::tick`], which performs that work against the shared
//! machine state carried in [`SchedCtx`]. The [`Scheduler`] repeatedly
//! scans for the minimum pending wake time, advances the global clock to
//! it, and fires every component whose wake time equals that minimum, in
//! registration order (the deterministic tie-break). Two component kinds
//! reproduce the engine's round model:
//!
//! * [`IssueUnit`] — one per software thread, bound to a core. At each
//!   wake (a round boundary) it issues accesses until its private clock
//!   crosses the boundary, exactly like one iteration of the reference
//!   loop's `while clock < round_end` slice.
//! * [`RoundBus`] — the memory-controller/channel aggregation. The
//!   per-channel and per-controller byte counters live in
//!   [`BandwidthModel`]; the bus fires at every round boundary *after*
//!   all issue units and closes the accounting round
//!   ([`BandwidthModel::end_round`]), deriving the congestion factors the
//!   next round's accesses will observe.
//!
//! ## Clock discipline
//!
//! All wake times live on one grid: the left fold `b += round_cycles`
//! starting from `round_cycles`, exactly the `round_end += round` sequence
//! the engine computes. Every component derives its wake time by stepping
//! that same fold from a value already on the grid, so equal boundaries
//! are equal *bitwise* and the scheduler's `==` tie-match is exact — no
//! epsilon comparisons anywhere. An issue unit whose clock overshot
//! several rounds simply sleeps through the intervening boundaries (where
//! the reference loop would test `clock < round_end` and do nothing), and
//! the bus alone keeps the round accounting advancing.
//!
//! ## Single-tenant oracle
//!
//! A scenario with one tenant (arrival 0, no bursts, no migrations)
//! issues the same access sequence, in the same order, with the same
//! floating-point arithmetic as [`crate::config::ExecMode::Reference`] —
//! the per-access body is literally the same function
//! (`engine::step_single_access`). The differential suites
//! (`tests/scheduler.rs` at the workspace root and the unit tests below)
//! hold the scheduler to bit-for-bit equality on stats *and* sampled
//! events.

use std::cell::Cell;
use std::rc::Rc;

use crate::access::AccessStream;
use crate::bandwidth::BandwidthModel;
use crate::config::MachineConfig;
use crate::engine::{collect_run_stats, step_single_access, MachineMut, Observer, ThreadSpec};
use crate::hierarchy::Hierarchy;
use crate::memmap::MemoryMap;
use crate::stats::{AccessCounts, RunStats};
use crate::topology::{CoreId, NodeId, ThreadId};

/// Identifies a tenant — an independently arriving workload — within a
/// scenario.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TenantId(pub u32);

/// On/off duty cycle for a bursty tenant, relative to its arrival time:
/// the tenant issues for `on_cycles`, idles for `off_cycles`, and repeats.
#[derive(Debug, Clone, Copy)]
pub struct BurstConfig {
    /// Length of each issuing window, in cycles (must be positive).
    pub on_cycles: f64,
    /// Length of each idle window between bursts, in cycles.
    pub off_cycles: f64,
}

/// A scheduled mid-run core migration: at simulated time `at_cycles`,
/// `thread` rebinds to core `to` (and to that core's NUMA node). Caches on
/// the new core are whatever earlier residents left — a migrated thread
/// starts cold, as on real hardware.
#[derive(Debug, Clone, Copy)]
pub struct Migration {
    /// Simulated time at which the rebind takes effect.
    pub at_cycles: f64,
    /// The thread to rebind.
    pub thread: ThreadId,
    /// Destination core.
    pub to: CoreId,
}

/// One tenant: a group of threads plus its arrival/burst/migration
/// schedule. Thread ids must be unique across the whole scenario.
pub struct TenantRun {
    /// Tenant identity, stamped on per-tenant statistics.
    pub tenant: TenantId,
    /// The tenant's threads (cores, streams).
    pub threads: Vec<ThreadSpec>,
    /// Simulated time at which the tenant starts issuing.
    pub arrival_cycles: f64,
    /// Optional on/off duty cycle (applies to all the tenant's threads).
    pub burst: Option<BurstConfig>,
    /// Scheduled core migrations for this tenant's threads.
    pub migrations: Vec<Migration>,
}

impl TenantRun {
    /// A tenant arriving at time 0 with no bursts or migrations.
    pub fn new(tenant: u32, threads: Vec<ThreadSpec>) -> Self {
        Self { tenant: TenantId(tenant), threads, arrival_cycles: 0.0, burst: None, migrations: Vec::new() }
    }

    /// Stagger the tenant's arrival to `cycles`.
    #[must_use]
    pub fn arriving_at(mut self, cycles: f64) -> Self {
        self.arrival_cycles = cycles;
        self
    }

    /// Give the tenant an on/off duty cycle.
    #[must_use]
    pub fn bursty(mut self, on_cycles: f64, off_cycles: f64) -> Self {
        self.burst = Some(BurstConfig { on_cycles, off_cycles });
        self
    }

    /// Schedule a core migration for one of the tenant's threads.
    #[must_use]
    pub fn migrate(mut self, at_cycles: f64, thread: u32, to: CoreId) -> Self {
        self.migrations.push(Migration { at_cycles, thread: ThreadId(thread), to });
        self
    }
}

/// The shared machine state a [`Component`] ticks against: split mutable
/// borrows of the configuration, cache hierarchy, bandwidth model, memory
/// map, and the phase observer.
pub struct SchedCtx<'a> {
    /// Machine configuration (read-only).
    pub cfg: &'a MachineConfig,
    /// Cache hierarchy (per-core L1/L2, per-node L3).
    pub hierarchy: &'a mut Hierarchy,
    /// Bandwidth accounting and congestion factors.
    pub bw: &'a mut BandwidthModel,
    /// Page placement / first-touch state.
    pub memmap: &'a mut MemoryMap,
    /// The phase observer (e.g. a PEBS sampler).
    pub observer: &'a mut dyn Observer,
}

/// A discrete-event participant. See the [module docs](self) for the
/// clock discipline components must follow: every wake time returned from
/// [`Component::next_tick`] must lie on the round grid, computed by
/// stepping `w += round_cycles` from a value already on it.
pub trait Component {
    /// The simulated time of this component's next tick, or `None` once it
    /// has no further work.
    fn next_tick(&self) -> Option<f64>;

    /// Perform the work due at `now` (which equals the value `next_tick`
    /// returned). Must advance `next_tick` strictly past `now` or return
    /// `None` afterwards.
    fn tick(&mut self, now: f64, ctx: &mut SchedCtx<'_>);
}

/// The discrete-event scheduler: a global simulated clock plus a min-scan
/// over component wake times, firing ties in registration order.
#[derive(Debug, Default)]
pub struct Scheduler {
    now: f64,
    ticks: u64,
}

impl Scheduler {
    /// A scheduler with its clock at 0.
    pub fn new() -> Self {
        Self::default()
    }

    /// The global simulated clock (the time of the last fired event).
    pub fn now(&self) -> f64 {
        self.now
    }

    /// Total component ticks fired so far.
    pub fn ticks(&self) -> u64 {
        self.ticks
    }

    /// Run components to completion: repeatedly find the minimum pending
    /// wake time, advance the clock, and fire every component whose wake
    /// equals it, in slice order. Returns the number of ticks fired.
    ///
    /// Equality matching on `f64` wake times is deliberate and exact: all
    /// participants compute wake times on the same additive grid (see the
    /// [module docs](self)).
    pub fn run(&mut self, components: &mut [&mut dyn Component], ctx: &mut SchedCtx<'_>) -> u64 {
        let fired_before = self.ticks;
        loop {
            let mut t_min = f64::INFINITY;
            let mut pending = false;
            for c in components.iter() {
                if let Some(t) = c.next_tick() {
                    pending = true;
                    if t < t_min {
                        t_min = t;
                    }
                }
            }
            if !pending {
                return self.ticks - fired_before;
            }
            debug_assert!(t_min >= self.now, "scheduler time went backwards: {t_min} < {}", self.now);
            self.now = t_min;
            for c in components.iter_mut() {
                if c.next_tick() == Some(t_min) {
                    c.tick(t_min, ctx);
                    self.ticks += 1;
                }
            }
        }
    }
}

/// Per-thread issue unit: replays one thread's slice of the engine's
/// reference loop at each round boundary it is awake for, with optional
/// burst gating and scheduled migrations applied between accesses.
pub struct IssueUnit {
    tenant: TenantId,
    thread: ThreadId,
    core: CoreId,
    node: NodeId,
    stream: Box<dyn AccessStream>,
    clock: f64,
    wake: Option<f64>,
    round: f64,
    burst: Option<BurstConfig>,
    /// End of the current "on" window (start of the next idle window).
    burst_off_at: f64,
    /// This thread's migrations, sorted by time, and the next to apply.
    migrations: Vec<Migration>,
    mig_next: usize,
    counts: AccessCounts,
    live: Rc<Cell<usize>>,
}

/// Everything beyond the `ThreadSpec` that shapes one issue unit: which
/// tenant it belongs to, where it starts, and its scheduled dynamics.
struct UnitSetup {
    tenant: TenantId,
    node: NodeId,
    arrival: f64,
    burst: Option<BurstConfig>,
    migrations: Vec<Migration>,
}

impl IssueUnit {
    fn new(spec: ThreadSpec, setup: UnitSetup, round: f64, live: Rc<Cell<usize>>) -> Self {
        let UnitSetup { tenant, node, arrival, burst, migrations } = setup;
        // First wake: the first grid boundary strictly past the arrival
        // clock, stepped on the same `+= round` fold the bus uses.
        let mut w = round;
        while w <= arrival {
            w += round;
        }
        let burst_off_at = arrival + burst.map_or(f64::INFINITY, |b| b.on_cycles);
        Self {
            tenant,
            thread: spec.thread,
            core: spec.core,
            node,
            stream: spec.stream,
            clock: arrival,
            wake: Some(w),
            round,
            burst,
            burst_off_at,
            migrations,
            mig_next: 0,
            counts: AccessCounts::default(),
            live,
        }
    }

    /// The tenant this unit belongs to.
    pub fn tenant(&self) -> TenantId {
        self.tenant
    }

    /// The unit's thread id.
    pub fn thread(&self) -> ThreadId {
        self.thread
    }

    /// The unit's private clock (final finish time once done).
    pub fn clock(&self) -> f64 {
        self.clock
    }

    /// Events this unit has issued, by data source.
    pub fn counts(&self) -> &AccessCounts {
        &self.counts
    }
}

impl Component for IssueUnit {
    fn next_tick(&self) -> Option<f64> {
        self.wake
    }

    fn tick(&mut self, now: f64, ctx: &mut SchedCtx<'_>) {
        loop {
            // Scenario gates; both reduce to no-ops for a plain tenant, so
            // the single-tenant loop below is exactly the reference slice.
            if let Some(b) = self.burst {
                while self.clock >= self.burst_off_at {
                    let idle_end = self.burst_off_at + b.off_cycles;
                    if self.clock < idle_end {
                        self.clock = idle_end;
                    }
                    self.burst_off_at += b.on_cycles + b.off_cycles;
                }
            }
            while self.mig_next < self.migrations.len() && self.migrations[self.mig_next].at_cycles <= self.clock {
                let to = self.migrations[self.mig_next].to;
                self.core = to;
                self.node = ctx.cfg.topology.node_of_core(to);
                self.mig_next += 1;
            }
            if self.clock >= now {
                break;
            }
            let Some(run) = self.stream.next_run(1) else {
                self.wake = None;
                self.live.set(self.live.get() - 1);
                return;
            };
            let mut m = MachineMut { cfg: ctx.cfg, hierarchy: ctx.hierarchy, bw: ctx.bw, memmap: ctx.memmap };
            step_single_access(
                &mut m,
                ctx.observer,
                &mut self.counts,
                self.thread,
                self.core,
                self.node,
                &mut self.clock,
                &run,
            );
        }
        // Next boundary strictly past the clock, stepped on the grid from
        // the boundary just processed.
        let mut w = now;
        while w <= self.clock {
            w += self.round;
        }
        self.wake = Some(w);
    }
}

/// The memory-controller/channel component: closes the bandwidth
/// accounting round at every boundary (after all issue units have run
/// their slices), and retires once no issue unit remains live — firing
/// one final time in the boundary where the last unit finished, exactly
/// like the reference loop's trailing `end_round`.
pub struct RoundBus {
    boundary: f64,
    round: f64,
    live: Rc<Cell<usize>>,
    done: bool,
}

impl RoundBus {
    fn new(round: f64, live: Rc<Cell<usize>>) -> Self {
        Self { boundary: round, round, live, done: false }
    }
}

impl Component for RoundBus {
    fn next_tick(&self) -> Option<f64> {
        if self.done {
            None
        } else {
            Some(self.boundary)
        }
    }

    fn tick(&mut self, now: f64, ctx: &mut SchedCtx<'_>) {
        debug_assert_eq!(now, self.boundary);
        ctx.bw.end_round();
        self.boundary = now + self.round;
        if self.live.get() == 0 {
            self.done = true;
        }
    }
}

/// Per-tenant slice of a scenario's statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct TenantStats {
    /// Which tenant.
    pub tenant: TenantId,
    /// Events issued by this tenant's threads, by data source.
    pub counts: AccessCounts,
    /// When the tenant's last thread finished (includes its arrival
    /// offset and any idle burst windows).
    pub finish_cycles: f64,
    /// Final clock of each of the tenant's threads, in spec order.
    pub thread_cycles: Vec<f64>,
}

/// A completed scenario: machine-wide [`RunStats`] (bit-identical to the
/// reference engine for a single plain tenant) plus per-tenant slices.
#[derive(Debug, Clone, PartialEq)]
pub struct ScenarioStats {
    /// Machine-wide statistics over all tenants.
    pub run: RunStats,
    /// Per-tenant statistics, in scenario order.
    pub tenants: Vec<TenantStats>,
}

/// Drives multi-tenant scenarios through the discrete-event scheduler.
/// Owns the same machine state as [`crate::engine::Engine`] and persists
/// it across scenarios (caches, first-touch placement), mirroring the
/// engine's phase semantics.
pub struct ScenarioEngine<O: Observer> {
    cfg: MachineConfig,
    hierarchy: Hierarchy,
    bw: BandwidthModel,
    memmap: MemoryMap,
    observer: O,
}

impl<O: Observer> ScenarioEngine<O> {
    /// Build a scenario engine for `cfg` over an allocated `memmap`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &MachineConfig, memmap: MemoryMap, observer: O) -> Self {
        cfg.validate();
        Self { cfg: cfg.clone(), hierarchy: Hierarchy::new(cfg), bw: BandwidthModel::new(cfg), memmap, observer }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Read access to the memory map.
    pub fn memmap(&self) -> &MemoryMap {
        &self.memmap
    }

    /// Mutable access to the memory map (e.g. to re-place objects between
    /// scenarios).
    pub fn memmap_mut(&mut self) -> &mut MemoryMap {
        &mut self.memmap
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer (e.g. to drain collected samples).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Flush all caches (cold-start the next scenario).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush();
    }

    /// Tear down, returning the memory map and observer.
    pub fn into_parts(self) -> (MemoryMap, O) {
        (self.memmap, self.observer)
    }

    /// Run one scenario to completion: every tenant's threads to stream
    /// exhaustion. Bandwidth aggregates are reset at scenario start;
    /// cache and placement state persist, as across engine phases.
    ///
    /// # Panics
    /// Panics if the scenario is malformed: no tenants, a tenant with no
    /// threads, out-of-range cores, duplicate thread ids across the
    /// scenario, non-finite or negative arrivals, a non-positive burst
    /// `on_cycles` or negative `off_cycles`, or a migration naming a
    /// thread outside its tenant or an out-of-range core.
    pub fn run(&mut self, tenants: Vec<TenantRun>) -> ScenarioStats {
        assert!(!tenants.is_empty(), "scenario needs at least one tenant");
        let topo = &self.cfg.topology;
        let round = self.cfg.engine.round_cycles;
        let n_units: usize = tenants.iter().map(|t| t.threads.len()).sum();
        let live = Rc::new(Cell::new(n_units));

        let mut units: Vec<IssueUnit> = Vec::with_capacity(n_units);
        // (unit range, tenant id) per tenant, for the per-tenant rollup.
        let mut tenant_ranges: Vec<(TenantId, usize, usize)> = Vec::with_capacity(tenants.len());
        for run in tenants {
            assert!(!run.threads.is_empty(), "tenant {:?} has no threads", run.tenant);
            assert!(
                run.arrival_cycles.is_finite() && run.arrival_cycles >= 0.0,
                "tenant {:?} has invalid arrival {}",
                run.tenant,
                run.arrival_cycles
            );
            if let Some(b) = run.burst {
                assert!(
                    b.on_cycles.is_finite() && b.on_cycles > 0.0 && b.off_cycles.is_finite() && b.off_cycles >= 0.0,
                    "tenant {:?} has invalid burst config {:?}",
                    run.tenant,
                    b
                );
            }
            for m in &run.migrations {
                assert!(
                    m.at_cycles.is_finite() && m.at_cycles >= 0.0,
                    "migration of {:?} at invalid time {}",
                    m.thread,
                    m.at_cycles
                );
                assert!(topo.core_in_range(m.to), "migration of {:?} to invalid {:?}", m.thread, m.to);
                assert!(
                    run.threads.iter().any(|s| s.thread == m.thread),
                    "migration names {:?}, not a thread of tenant {:?}",
                    m.thread,
                    run.tenant
                );
            }
            let start = units.len();
            for spec in run.threads {
                assert!(topo.core_in_range(spec.core), "thread {:?} bound to invalid {:?}", spec.thread, spec.core);
                let node = topo.node_of_core(spec.core);
                let mut migs: Vec<Migration> =
                    run.migrations.iter().copied().filter(|m| m.thread == spec.thread).collect();
                migs.sort_by(|a, b| a.at_cycles.total_cmp(&b.at_cycles));
                let setup = UnitSetup {
                    tenant: run.tenant,
                    node,
                    arrival: run.arrival_cycles,
                    burst: run.burst,
                    migrations: migs,
                };
                units.push(IssueUnit::new(spec, setup, round, Rc::clone(&live)));
            }
            tenant_ranges.push((run.tenant, start, units.len()));
        }
        {
            let mut ids: Vec<u32> = units.iter().map(|u| u.thread.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), units.len(), "duplicate thread ids in scenario");
        }

        self.bw.reset();
        let mut bus = RoundBus::new(round, Rc::clone(&live));
        {
            let mut components: Vec<&mut dyn Component> = units.iter_mut().map(|u| u as &mut dyn Component).collect();
            components.push(&mut bus);
            let mut ctx = SchedCtx {
                cfg: &self.cfg,
                hierarchy: &mut self.hierarchy,
                bw: &mut self.bw,
                memmap: &mut self.memmap,
                observer: &mut self.observer,
            };
            let mut sched = Scheduler::new();
            sched.run(&mut components, &mut ctx);
        }

        let mut total = AccessCounts::default();
        for u in &units {
            total.merge(&u.counts);
        }
        let run = collect_run_stats(&self.bw, units.iter().map(|u| u.clock).collect(), total);
        let tenants = tenant_ranges
            .into_iter()
            .map(|(tenant, start, end)| {
                let slice = &units[start..end];
                let mut counts = AccessCounts::default();
                for u in slice {
                    counts.merge(&u.counts);
                }
                TenantStats {
                    tenant,
                    counts,
                    finish_cycles: slice.iter().map(|u| u.clock).fold(0.0, f64::max),
                    thread_cycles: slice.iter().map(|u| u.clock).collect(),
                }
            })
            .collect();
        self.observer.on_phase_end(&run);
        ScenarioStats { run, tenants }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMix, ChainStream, RandomStream, SeqStream};
    use crate::config::ExecMode;
    use crate::engine::{Engine, NullObserver};
    use crate::memmap::PlacementPolicy;

    fn scaled() -> MachineConfig {
        MachineConfig::scaled()
    }

    /// A moderately irregular multi-thread workload over one memory map:
    /// sequential writers chained with random readers, mixed reps/compute.
    fn build_threads(mm: &mut MemoryMap, cfg: &MachineConfig, base_thread: u32, n: usize) -> Vec<ThreadSpec> {
        let a = mm.alloc(if base_thread == 0 { "a" } else { "a2" }, 4 << 20, PlacementPolicy::FirstTouch);
        let b = mm.alloc(
            if base_thread == 0 { "b" } else { "b2" },
            1 << 20,
            PlacementPolicy::interleave_all(cfg.topology.num_nodes()),
        );
        let binding = cfg.topology.bind_threads(n, 4);
        binding
            .iter()
            .enumerate()
            .map(|(i, core)| {
                let share = a.size / n as u64;
                let seq = SeqStream::new(a.base + i as u64 * share, share, 2, AccessMix::write_every(3))
                    .with_compute(0.5 + i as f64)
                    .with_reps(3);
                let rnd = RandomStream::new(b.base, b.size, 5_000, i as u64, AccessMix::read_only());
                let chain = ChainStream::new(vec![Box::new(seq), Box::new(rnd)]);
                ThreadSpec::new(base_thread + i as u32, *core, Box::new(chain))
            })
            .collect()
    }

    /// The tentpole acceptance property, stats half: one plain tenant
    /// through the scheduler reproduces `ExecMode::Reference` bit-for-bit
    /// (the sampled-events half lives in `tests/scheduler.rs`).
    #[test]
    fn single_tenant_matches_reference_bit_for_bit() {
        let mut cfg = scaled();
        cfg.engine.exec = ExecMode::Reference;
        let mut mm_ref = MemoryMap::new(&cfg);
        let threads_ref = build_threads(&mut mm_ref, &cfg, 0, 8);
        let mut eng = Engine::new(&cfg, mm_ref, NullObserver);
        let reference = eng.run_phase(threads_ref);

        let mut mm = MemoryMap::new(&cfg);
        let threads = build_threads(&mut mm, &cfg, 0, 8);
        let mut sceng = ScenarioEngine::new(&cfg, mm, NullObserver);
        let scenario = sceng.run(vec![TenantRun::new(0, threads)]);

        assert_eq!(scenario.run, reference, "scheduler diverged from the reference engine");
        assert_eq!(scenario.tenants.len(), 1);
        assert_eq!(scenario.tenants[0].counts, reference.counts);
        assert_eq!(scenario.tenants[0].thread_cycles, reference.thread_cycles);
    }

    /// Two co-resident tenants: runs are deterministic, the global stats
    /// roll up exactly from the per-tenant slices, and round accounting
    /// stays consistent.
    #[test]
    fn two_tenants_are_deterministic_and_roll_up() {
        let cfg = scaled();
        let run = || {
            let mut mm = MemoryMap::new(&cfg);
            let t0 = build_threads(&mut mm, &cfg, 0, 4);
            let t1 = build_threads(&mut mm, &cfg, 100, 4);
            let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
            eng.run(vec![TenantRun::new(0, t0), TenantRun::new(1, t1).arriving_at(50_000.0)])
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1, s2, "scenario runs are not deterministic");
        let mut rolled = AccessCounts::default();
        for t in &s1.tenants {
            rolled.merge(&t.counts);
        }
        assert_eq!(rolled, s1.run.counts);
        assert_eq!(s1.run.thread_cycles.len(), 8);
        assert!(s1.run.rounds > 0);
        // The late tenant cannot finish before it arrives.
        assert!(s1.tenants[1].finish_cycles >= 50_000.0);
    }

    /// A bursty tenant does the same work but takes longer wall-clock than
    /// the same tenant running unthrottled.
    #[test]
    fn bursty_tenant_finishes_later_with_equal_work() {
        let cfg = scaled();
        let run = |burst: Option<(f64, f64)>| {
            let mut mm = MemoryMap::new(&cfg);
            let threads = build_threads(&mut mm, &cfg, 0, 4);
            let mut tenant = TenantRun::new(0, threads);
            if let Some((on, off)) = burst {
                tenant = tenant.bursty(on, off);
            }
            let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
            eng.run(vec![tenant])
        };
        let steady = run(None);
        let bursty = run(Some((40_000.0, 40_000.0)));
        assert_eq!(steady.run.counts, bursty.run.counts, "burst gating changed the work done");
        assert!(
            bursty.run.cycles > steady.run.cycles * 1.3,
            "idle windows should stretch the run: bursty {} vs steady {}",
            bursty.run.cycles,
            steady.run.cycles
        );
    }

    /// A mid-run migration from a local to a remote core flips the
    /// locality of the tail of the scan.
    #[test]
    fn migration_moves_traffic_remote() {
        let cfg = scaled();
        let run = |migrate: bool| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 8 << 20, PlacementPolicy::Bind(NodeId(0)));
            let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
            let mut tenant = TenantRun::new(0, vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
            if migrate {
                // Node 1's first core, partway through the scan.
                let remote_core = CoreId(cfg.topology.cores_per_node() as u32);
                tenant = tenant.migrate(100_000.0, 0, remote_core);
            }
            let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
            eng.run(vec![tenant])
        };
        let pinned = run(false);
        let migrated = run(true);
        assert_eq!(pinned.run.counts.remote_dram, 0);
        assert!(migrated.run.counts.remote_dram > 0, "post-migration accesses should be remote");
        assert!(migrated.run.counts.local_dram > 0, "pre-migration accesses stay local");
        assert!(migrated.run.cycles > pinned.run.cycles, "remote tail should cost cycles");
    }

    /// Cross-tenant contention: a victim sharing channels with a
    /// bandwidth-hog aggressor slows down relative to running alone.
    #[test]
    fn aggressor_tenant_slows_the_victim() {
        let cfg = scaled();
        let victim_tenant = |mm: &mut MemoryMap| {
            let v = mm.alloc("victim", 4 << 20, PlacementPolicy::Bind(NodeId(0)));
            let stream = SeqStream::new(v.base, v.size, 2, AccessMix::read_only()).with_compute(2.0);
            TenantRun::new(0, vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))])
        };
        let alone = {
            let mut mm = MemoryMap::new(&cfg);
            let t = victim_tenant(&mut mm);
            let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
            eng.run(vec![t])
        };
        let contended = {
            let mut mm = MemoryMap::new(&cfg);
            let t = victim_tenant(&mut mm);
            let a = mm.alloc("aggressor", 48 << 20, PlacementPolicy::Bind(NodeId(0)));
            let nthreads = 24usize;
            let threads: Vec<ThreadSpec> = (0..nthreads)
                .map(|i| {
                    let share = a.size / nthreads as u64;
                    let s = SeqStream::new(a.base + i as u64 * share, share, 4, AccessMix::read_only());
                    // Aggressor cores on nodes 1..3: all their traffic is
                    // remote into the victim's node-0 memory controller.
                    let core = CoreId((cfg.topology.cores_per_node() * (1 + i / 8)) as u32 + (i % 8) as u32);
                    ThreadSpec::new(100 + i as u32, core, Box::new(s))
                })
                .collect();
            let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
            eng.run(vec![t, TenantRun::new(1, threads)])
        };
        let slowdown = contended.tenants[0].finish_cycles / alone.tenants[0].finish_cycles;
        assert_eq!(alone.tenants[0].counts, contended.tenants[0].counts, "victim's work changed");
        assert!(slowdown > 1.2, "aggressor should slow the victim, got {slowdown}x");
    }

    #[test]
    #[should_panic(expected = "duplicate thread ids")]
    fn duplicate_thread_ids_across_tenants_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let mk = || -> Box<dyn AccessStream> { Box::new(SeqStream::new(a.base, a.size, 1, AccessMix::read_only())) };
        let t0 = TenantRun::new(0, vec![ThreadSpec::new(0, CoreId(0), mk())]);
        let t1 = TenantRun::new(1, vec![ThreadSpec::new(0, CoreId(1), mk())]);
        let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
        eng.run(vec![t0, t1]);
    }

    #[test]
    #[should_panic(expected = "not a thread of tenant")]
    fn migration_of_foreign_thread_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let tenant =
            TenantRun::new(0, vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]).migrate(1_000.0, 7, CoreId(1));
        let mut eng = ScenarioEngine::new(&cfg, mm, NullObserver);
        eng.run(vec![tenant]);
    }
}

//! The full cache hierarchy: per-core L1/L2, per-node shared L3, and the
//! line-fill-buffer behaviour PEBS observes on streaming code.
//!
//! A lookup walks L1 → L2 → L3(node) → DRAM(home node) and returns the
//! [`DataSource`] that satisfied the access — the same classification the
//! paper's PEBS samples carry (`L1/L2/L3 Hit`, `LFB`, `local DRAM`,
//! `remote DRAM`). Lines are installed into every level on the way back
//! (inclusive fill), so temporal locality is modelled naturally.
//!
//! **Line-fill buffers.** On real hardware a 64-byte line is fetched once
//! while the remaining loads to that line complete from the line-fill
//! buffer; PEBS attributes those loads to the LFB with a latency between L3
//! and DRAM. Workload streams declare how many loads they issue per line
//! (`reps`, e.g. 8 for an 8-byte-element sequential scan); the hierarchy
//! resolves the first load, and the engine classifies the remaining
//! `reps - 1` loads of a DRAM-filled line as [`DataSource::Lfb`].

use crate::cache::{Cache, CacheStats};
use crate::config::MachineConfig;
use crate::topology::{CoreId, NodeId};

/// Where a memory access was satisfied. Mirrors the data-source field of a
/// PEBS memory sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Hit in the core's L1 data cache.
    L1,
    /// Hit in the core's L2.
    L2,
    /// Hit in the node's shared L3.
    L3,
    /// Satisfied by a line-fill buffer (miss to the same line in flight).
    Lfb,
    /// Served by the memory controller of the accessing core's own node.
    LocalDram,
    /// Served by a remote node's memory controller, over the interconnect.
    RemoteDram,
}

impl DataSource {
    /// True for the two DRAM sources.
    #[inline]
    pub fn is_dram(self) -> bool {
        matches!(self, DataSource::LocalDram | DataSource::RemoteDram)
    }

    /// All six sources, in hierarchy order.
    pub const ALL: [DataSource; 6] = [
        DataSource::L1,
        DataSource::L2,
        DataSource::L3,
        DataSource::Lfb,
        DataSource::LocalDram,
        DataSource::RemoteDram,
    ];
}

impl std::fmt::Display for DataSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataSource::L1 => "L1",
            DataSource::L2 => "L2",
            DataSource::L3 => "L3",
            DataSource::Lfb => "LFB",
            DataSource::LocalDram => "LocalDRAM",
            DataSource::RemoteDram => "RemoteDRAM",
        };
        f.write_str(s)
    }
}

/// The machine's cache hierarchy state.
///
/// Equality compares every cache's full replacement state and counters
/// (see [`Cache`]); the span-walk differential tests use it to prove the
/// fused walk leaves residency bit-identical to the per-line walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    cores_per_node: usize,
    line_shift: u32,
}

impl Hierarchy {
    /// Build cold caches for every core and node of `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let ls = cfg.cache.line_size;
        let cores = cfg.topology.num_cores();
        let nodes = cfg.topology.num_nodes();
        let mk = |geo: crate::config::CacheGeometry, count: usize| -> Vec<Cache> {
            (0..count).map(|_| Cache::new(geo.num_sets(ls), geo.assoc as usize)).collect()
        };
        Self {
            l1: mk(cfg.cache.l1, cores),
            l2: mk(cfg.cache.l2, cores),
            l3: mk(cfg.cache.l3, nodes),
            cores_per_node: cfg.topology.cores_per_node(),
            line_shift: ls.trailing_zeros(),
        }
    }

    /// Cache line number of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Walk the cache levels for one load/store issued by `core`.
    ///
    /// Returns `Some(level)` if a cache satisfied the access, or `None` if
    /// the line had to be fetched from DRAM — in which case it has already
    /// been installed into L1/L2/L3 and the caller classifies the access as
    /// local or remote DRAM using the page's home node. Deferring the home
    /// lookup to misses keeps cache hits (the common case) off the memory
    /// map entirely.
    #[inline]
    pub fn cache_access(&mut self, core: CoreId, addr: u64) -> Option<DataSource> {
        // One walk, two entry points: delegate to the per-core handle so
        // this path can never diverge from the fused span walk built on it.
        self.core_caches(core).access(addr)
    }

    /// Walk the hierarchy for one load/store issued by `core` to a line
    /// homed on `home`. Installs the line on a miss and returns the source
    /// that satisfied the access.
    #[inline]
    pub fn lookup(&mut self, core: CoreId, home: NodeId, addr: u64) -> DataSource {
        match self.cache_access(core, addr) {
            Some(src) => src,
            None => {
                let node = core.0 as usize / self.cores_per_node;
                if home.0 as usize == node {
                    DataSource::LocalDram
                } else {
                    DataSource::RemoteDram
                }
            }
        }
    }

    /// Borrow the three caches `core` can reach as one handle, so a hot
    /// loop resolves the per-core indices once per thread slice instead of
    /// once per access. Only the hierarchy is borrowed, leaving sibling
    /// engine state (bandwidth model, memory map, observer) free.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    #[inline]
    pub fn core_caches(&mut self, core: CoreId) -> CoreCaches<'_> {
        let c = core.0 as usize;
        let node = c / self.cores_per_node;
        let (l1, l2, l3) = (&mut self.l1[c], &mut self.l2[c], &mut self.l3[node]);
        CoreCaches { l1, l2, l3, line_shift: self.line_shift }
    }

    /// The node a core belongs to (duplicated from [`crate::topology`] for
    /// hot-path use without a topology borrow).
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        NodeId((core.0 as usize / self.cores_per_node) as u8)
    }

    /// Overwrite this hierarchy's caches for `node` (its shared L3 and the
    /// L1/L2 of every core on it) with `src`'s. The sharded batched loop
    /// runs each NUMA node's caches in a private [`Hierarchy`] clone —
    /// nothing off-node ever touches them — and merges the owned nodes
    /// back at phase end through this (see [`crate::shard`]).
    ///
    /// # Panics
    /// Panics if the two hierarchies have different geometry or `node` is
    /// out of range.
    pub(crate) fn adopt_node_from(&mut self, src: &Hierarchy, node: NodeId) {
        assert_eq!(self.cores_per_node, src.cores_per_node, "geometry mismatch");
        assert_eq!(self.l1.len(), src.l1.len(), "geometry mismatch");
        let n = node.0 as usize;
        self.l3[n].clone_from(&src.l3[n]);
        for c in n * self.cores_per_node..(n + 1) * self.cores_per_node {
            self.l1[c].clone_from(&src.l1[c]);
            self.l2[c].clone_from(&src.l2[c]);
        }
    }

    /// Flush every cache (used between independent runs sharing a machine).
    pub fn flush(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()).chain(self.l3.iter_mut()) {
            c.flush();
        }
    }

    /// Aggregate hit/miss stats for a level: 0 = L1, 1 = L2, 2 = L3.
    ///
    /// # Panics
    /// Panics if `level > 2`.
    pub fn level_stats(&self, level: usize) -> CacheStats {
        let caches = match level {
            0 => &self.l1,
            1 => &self.l2,
            2 => &self.l3,
            _ => panic!("no such cache level {level}"),
        };
        caches.iter().fold(CacheStats::default(), |acc, c| CacheStats {
            hits: acc.hits + c.stats().hits,
            misses: acc.misses + c.stats().misses,
        })
    }
}

/// Mutable view of one core's reachable caches (its L1/L2 and its node's
/// L3), handed out by [`Hierarchy::core_caches`].
#[derive(Debug)]
pub struct CoreCaches<'a> {
    l1: &'a mut Cache,
    l2: &'a mut Cache,
    l3: &'a mut Cache,
    line_shift: u32,
}

impl CoreCaches<'_> {
    /// Same walk as [`Hierarchy::cache_access`], with the per-core cache
    /// resolution already done.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Option<DataSource> {
        let line = addr >> self.line_shift;
        if self.l1.access(line) {
            return Some(DataSource::L1);
        }
        if self.l2.access(line) {
            return Some(DataSource::L2);
        }
        if self.l3.access(line) {
            return Some(DataSource::L3);
        }
        None
    }

    /// Cache line number of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Longest prefix of the consecutive-line span `[first_line,
    /// first_line + n)` that provably misses *all three levels* — the
    /// fused-walk counterpart of [`CoreCaches::access`] returning `None`
    /// for every line. Read-only; see [`Cache::span_miss_prefix`].
    ///
    /// Each level's proof window is narrowed to the previous level's
    /// prefix: within the result every line misses L1 (so reaches L2),
    /// misses L2 (so reaches L3), and misses L3 — exactly the lines the
    /// per-line walk would send to DRAM. Narrowing is what keeps each
    /// level's survival predicate valid: it assumes every span line in its
    /// window actually looks the level up, which holds because all those
    /// lines missed the levels above.
    pub fn span_miss_prefix(&self, first_line: u64, n: u64) -> u64 {
        let k = self.l1.span_miss_prefix(first_line, n);
        if k == 0 {
            return 0;
        }
        let k = self.l2.span_miss_prefix(first_line, k);
        if k == 0 {
            return 0;
        }
        self.l3.span_miss_prefix(first_line, k)
    }

    /// Install epochs of the three levels, oldest-first. A span proven
    /// absent while the epochs read some value stays absent for as long
    /// as they are unchanged: installs are the only mutation that can add
    /// a cache member (see `Cache::installs`). [`MissProofMemo`] keys on
    /// this to resume scanning from a cached frontier.
    #[inline]
    pub fn install_epochs(&self) -> [u64; 3] {
        [self.l1.installs(), self.l2.installs(), self.l3.installs()]
    }

    /// Memo-assisted [`CoreCaches::span_miss_prefix`]: the same composed
    /// prefix, but each level reuses its cached absence frontier and
    /// scans only the window beyond it — proving up to `ahead` lines
    /// past `first_line` when it scans at all, so one pass over the tag
    /// array amortises across the many commits that stream through it.
    ///
    /// Every level's memo is re-keyed to its current epoch on the way
    /// through (with an empty range when absence was refuted), so after
    /// this call the whole memo is valid *now* — the precondition for
    /// [`MissProofMemo::retire`] after the caller commits its installs.
    pub fn span_miss_prefix_memo(&self, first_line: u64, n: u64, ahead: [u64; 3], memo: &mut MissProofMemo) -> u64 {
        let mut k = n;
        let levels: [&Cache; 3] = [self.l1, self.l2, self.l3];
        for (l, c) in levels.into_iter().enumerate() {
            let cur = c.installs();
            let covered = memo.snap[l] == cur && first_line >= memo.start[l] && first_line < memo.end[l];
            let proven = if covered { memo.end[l] - first_line } else { 0 };
            if proven >= k {
                continue;
            }
            // Certify absence over exactly the needed window first (the
            // scan the memo-less proof would do), then extend the
            // frontier with a *separate* probe of the lines ahead — so a
            // refuted extension never costs the needed certificate, and
            // each line's tags are scanned at most once between them.
            if c.span_absent(first_line + proven, k - proven) {
                let mut end = first_line + k;
                let ext = ahead[l].saturating_sub(k);
                // A refuted extension leaves a sticky frontier: a tag sat
                // somewhere in the probed range, so re-probing before the
                // window has moved past it would mostly refute again.
                if ext > 0 && first_line >= memo.ext_skip[l] {
                    if c.span_absent(first_line + k, ext) {
                        end = first_line + k + ext;
                    } else {
                        memo.ext_skip[l] = first_line + ahead[l];
                    }
                }
                memo.snap[l] = cur;
                memo.start[l] = if covered { memo.start[l] } else { first_line };
                memo.end[l] = end;
                continue;
            }
            // Absence refuted: exact prefix over the remaining window.
            // Survival-based claims are recency-sensitive (a hit could
            // invalidate one without moving any install epoch), so they
            // are never memoised — the level keeps an empty, freshly
            // keyed range instead.
            let ki = proven + c.span_miss_prefix(first_line + proven, k - proven);
            memo.snap[l] = cur;
            memo.start[l] = first_line + proven;
            memo.end[l] = first_line + proven;
            k = ki;
            if k == 0 {
                break;
            }
        }
        k
    }

    /// Commit a proven all-miss span into all three levels (inclusive
    /// fill), in closed form — bit-identical to `n` per-line DRAM-miss
    /// walks. See [`Cache::install_span`].
    pub fn install_span(&mut self, first_line: u64, n: u64) {
        self.l1.install_span(first_line, n);
        self.l2.install_span(first_line, n);
        self.l3.install_span(first_line, n);
    }

    /// Longest prefix of the consecutive-line span `[first_line,
    /// first_line + n)` that provably resolves at one single cache level
    /// for *every* line — the hit-side counterpart of
    /// [`CoreCaches::span_miss_prefix`]. Returns the level and the prefix
    /// length, or `None` when even the first line's level cannot be
    /// proven uniform. Read-only.
    ///
    /// The composition narrows exactly like the miss proof: an L2-hit
    /// prefix must first miss L1 (so the L2 window is L1's miss prefix),
    /// an L3-hit prefix must miss L1 and L2. Each returned prefix is
    /// exact *per level* — it ends at `n` or at the first line that
    /// behaves differently at that level — so a warm rescan alternating
    /// L1 hits and L2 hits still commits in closed-form pieces.
    pub fn span_hit_prefix(&self, first_line: u64, n: u64) -> Option<(DataSource, u64)> {
        let h1 = self.l1.span_hit_prefix(first_line, n);
        if h1 > 0 {
            return Some((DataSource::L1, h1));
        }
        // Line 0 misses L1 (the hit proof is exact), so the miss window
        // below is non-empty whenever n > 0.
        let m1 = self.l1.span_miss_prefix(first_line, n);
        let h2 = self.l2.span_hit_prefix(first_line, m1);
        if h2 > 0 {
            return Some((DataSource::L2, h2));
        }
        let m2 = self.l2.span_miss_prefix(first_line, m1);
        let h3 = self.l3.span_hit_prefix(first_line, m2);
        if h3 > 0 {
            return Some((DataSource::L3, h3));
        }
        None
    }

    /// Commit a span proven by [`CoreCaches::span_hit_prefix`] to resolve
    /// wholly at `src`, bit-identical to `n` per-line walks: levels above
    /// the hit install the line (inclusive fill, exactly the miss arm the
    /// per-line walk runs), the hit level promotes, and levels below are
    /// untouched. The caches are disjoint, so replaying each level's whole
    /// span at once equals the per-line interleaving.
    ///
    /// # Panics
    /// Panics if `src` is not one of the three cache levels.
    pub fn commit_hit_span(&mut self, src: DataSource, first_line: u64, n: u64) {
        match src {
            DataSource::L1 => self.l1.promote_span(first_line, n),
            DataSource::L2 => {
                self.l1.install_span(first_line, n);
                self.l2.promote_span(first_line, n);
            }
            DataSource::L3 => {
                self.l1.install_span(first_line, n);
                self.l2.install_span(first_line, n);
                self.l3.promote_span(first_line, n);
            }
            other => panic!("commit_hit_span on non-cache source {other}"),
        }
    }

    /// Commit a single proven-miss line into all three levels (inclusive
    /// fill) — the one-line counterpart of [`CoreCaches::install_span`],
    /// used where proven misses arrive interleaved rather than as one
    /// consecutive span. See [`Cache::install_line`].
    #[inline]
    pub fn install_line(&mut self, line: u64) {
        self.l1.install_line(line);
        self.l2.install_line(line);
        self.l3.install_line(line);
    }

    /// [`CoreCaches::install_line`] with the three per-level miss counters
    /// deferred: the interleaved replay in the engine commits one line at
    /// a time but knows the total up front, so it charges stats once per
    /// span via [`CoreCaches::charge_misses`] instead of three
    /// read-modify-writes per line. Counters are integers — bulk-charging
    /// is exactly `n` deferred increments.
    #[inline]
    pub(crate) fn install_line_deferred(&mut self, line: u64) {
        self.l1.install_line_deferred(line);
        self.l2.install_line_deferred(line);
        self.l3.install_line_deferred(line);
    }

    /// Charge `n` misses per level deferred by
    /// [`CoreCaches::install_line_deferred`].
    #[inline]
    pub(crate) fn charge_misses(&mut self, n: u64) {
        self.l1.charge_misses(n);
        self.l2.charge_misses(n);
        self.l3.charge_misses(n);
    }
}

/// Per-level memo of pure-absence miss proofs: lines `[start[l], end[l])`
/// were proven absent from cache level `l` (see `Cache::span_absent`)
/// while its install epoch read `snap[l]`. Absence is insensitive to
/// recency — hits reorder, evictions remove, flushes clear — so the
/// claim stays valid exactly until the level *installs*, and a thread
/// whose own installs all land below the frontier can carry the claim
/// across its commits via [`MissProofMemo::retire`]. Shared levels
/// invalidate naturally: a sibling core's install moves the L3 epoch and
/// only that level re-scans.
#[derive(Debug, Clone, Copy)]
pub struct MissProofMemo {
    /// Install epoch each range was proven under; `u64::MAX` matches no
    /// cache, so a fresh memo is invalid everywhere.
    snap: [u64; 3],
    start: [u64; 3],
    end: [u64; 3],
    /// Extension probes are skipped while the window start sits below
    /// this line — set when a probe was refuted, so the (purely
    /// advisory) widening is not re-attempted every commit against the
    /// same resident tag.
    ext_skip: [u64; 3],
}

impl Default for MissProofMemo {
    fn default() -> Self {
        Self::new()
    }
}

impl MissProofMemo {
    /// A memo with no valid claims.
    pub const fn new() -> Self {
        Self { snap: [u64::MAX; 3], start: [0; 3], end: [0; 3], ext_skip: [0; 3] }
    }

    /// Advance the frontiers past a just-committed span ending at `below`
    /// and re-key to the post-commit epochs `snap`.
    ///
    /// Sound only when (a) the memo was re-keyed by
    /// [`CoreCaches::span_miss_prefix_memo`] since any foreign install,
    /// and (b) every install since then lies below `below` or beyond
    /// `horizon` — the fused paths' own commits satisfy (b) with
    /// `horizon = u64::MAX`; the interleaved path passes the bound its
    /// lane-disjointness check actually covered.
    pub fn retire(&mut self, snap: [u64; 3], below: u64, horizon: u64) {
        for (l, &s) in snap.iter().enumerate() {
            self.snap[l] = s;
            self.start[l] = self.start[l].max(below);
            self.end[l] = self.end[l].min(horizon).max(self.start[l]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn hier() -> Hierarchy {
        Hierarchy::new(&MachineConfig::tiny())
    }

    #[test]
    fn cold_access_is_dram_then_l1() {
        let mut h = hier();
        let src = h.lookup(CoreId(0), NodeId(0), 0x1000);
        assert_eq!(src, DataSource::LocalDram);
        let src = h.lookup(CoreId(0), NodeId(0), 0x1000);
        assert_eq!(src, DataSource::L1);
    }

    #[test]
    fn remote_home_is_remote_dram() {
        let mut h = hier();
        // tiny: 2 cores per node; core 2 is on node 1.
        let src = h.lookup(CoreId(2), NodeId(0), 0x2000);
        assert_eq!(src, DataSource::RemoteDram);
    }

    #[test]
    fn l3_shared_within_node() {
        let mut h = hier();
        // Core 0 pulls the line into node 0's L3; core 1 (same node) should
        // find it there (its private L1/L2 are cold).
        h.lookup(CoreId(0), NodeId(0), 0x3000);
        let src = h.lookup(CoreId(1), NodeId(0), 0x3000);
        assert_eq!(src, DataSource::L3);
    }

    #[test]
    fn l3_not_shared_across_nodes() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x4000);
        let src = h.lookup(CoreId(2), NodeId(0), 0x4000);
        assert_eq!(src, DataSource::RemoteDram);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = MachineConfig::tiny();
        let mut h = Hierarchy::new(&cfg);
        // L1 tiny preset: 1 KiB, 4-way, 64B lines -> 16 lines, 4 sets.
        // Touch line 0, then 4 more lines in the same L1 set to evict it.
        let line_sz = cfg.cache.line_size;
        let l1_sets = cfg.cache.l1.num_sets(line_sz) as u64;
        h.lookup(CoreId(0), NodeId(0), 0);
        for i in 1..=4 {
            h.lookup(CoreId(0), NodeId(0), i * l1_sets * line_sz);
        }
        let src = h.lookup(CoreId(0), NodeId(0), 0);
        assert_eq!(src, DataSource::L2, "line should have fallen back to L2");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x5000);
        h.flush();
        assert_eq!(h.lookup(CoreId(0), NodeId(0), 0x5000), DataSource::LocalDram);
    }

    #[test]
    fn level_stats_accumulate() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x100);
        h.lookup(CoreId(0), NodeId(0), 0x100);
        let l1 = h.level_stats(0);
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
    }

    #[test]
    fn core_caches_matches_cache_access() {
        let mut a = hier();
        let mut b = hier();
        // Mixed cores and re-touches: both walks must agree event by event
        // and leave identical residency behind.
        let pattern: Vec<(u32, u64)> = (0u64..200).map(|i| ((i % 3) as u32, (i * 137) % 50 * 64)).collect();
        for &(core, addr) in &pattern {
            let via_handle = b.core_caches(CoreId(core)).access(addr);
            assert_eq!(a.cache_access(CoreId(core), addr), via_handle);
        }
        for lvl in 0..3 {
            assert_eq!(a.level_stats(lvl), b.level_stats(lvl));
        }
    }

    /// The fused span walk must leave all three levels bit-identical to
    /// the per-line walk, across warm L2/L3 state (re-scan after L1-sized
    /// eviction) and sibling-core sharing.
    #[test]
    fn span_walk_matches_per_line_walk() {
        let mut a = hier();
        let mut b = hier();
        let spans: [(u32, u64, u64); 6] =
            [(0, 0, 200), (1, 100, 64), (0, 0, 200), (2, 300, 512), (0, 150, 33), (1, 0, 1)];
        for &(core, first, n) in &spans {
            for line in first..first + n {
                a.cache_access(CoreId(core), line * 64);
            }
            let mut cc = b.core_caches(CoreId(core));
            let mut cur = first;
            let mut rem = n;
            // The engine's consumption pattern: closed-form where provable,
            // per-line otherwise.
            while rem > 0 {
                let k = cc.span_miss_prefix(cur, rem);
                if k > 0 {
                    cc.install_span(cur, k);
                    cur += k;
                    rem -= k;
                } else {
                    cc.access(cur * 64);
                    cur += 1;
                    rem -= 1;
                }
            }
        }
        assert_eq!(a, b, "span walk diverged from per-line walk");
    }

    /// The hit-side closed form: spans resolving wholly in L1, L2 (after
    /// L1-capacity eviction), and L3 (sibling-core sharing) must be
    /// recognised at the right level, and committing them must leave all
    /// three levels bit-identical to the per-line walk.
    #[test]
    fn hit_span_walk_matches_per_line_walk() {
        let cfg = MachineConfig::tiny();
        // tiny L1: 16 lines; L2: 128 lines; L3: 1024 lines.
        let l1_lines = cfg.cache.l1.size / cfg.cache.line_size;
        let l2_lines = cfg.cache.l2.size / cfg.cache.line_size;

        // Drive both twins through the same schedule; b uses the proof +
        // commit path wherever it fires.
        let mut a = hier();
        let mut b = hier();
        let drive = |a: &mut Hierarchy, b: &mut Hierarchy, core: u32, first: u64, n: u64, want: Option<DataSource>| {
            for line in first..first + n {
                a.cache_access(CoreId(core), line * 64);
            }
            let mut cc = b.core_caches(CoreId(core));
            let mut cur = first;
            let mut rem = n;
            while rem > 0 {
                if let Some((src, k)) = cc.span_hit_prefix(cur, rem) {
                    if let Some(w) = want {
                        assert_eq!(src, w, "span [{cur}, +{rem}) proved at wrong level");
                    }
                    cc.commit_hit_span(src, cur, k);
                    cur += k;
                    rem -= k;
                    continue;
                }
                let k = cc.span_miss_prefix(cur, rem);
                if k > 0 {
                    cc.install_span(cur, k);
                    cur += k;
                    rem -= k;
                } else {
                    cc.access(cur * 64);
                    cur += 1;
                    rem -= 1;
                }
            }
        };

        // Warm an L1-sized set, rescan: pure L1 hits.
        drive(&mut a, &mut b, 0, 0, l1_lines, None);
        drive(&mut a, &mut b, 0, 0, l1_lines, Some(DataSource::L1));
        // Warm an L2-sized footprint (evicts L1), rescan: L2 hits with a
        // leading stretch of L1 hits from the tail of the warmup.
        drive(&mut a, &mut b, 0, 0, l2_lines, None);
        drive(&mut a, &mut b, 0, 0, l2_lines / 2, Some(DataSource::L2));
        // A sibling core on the same node reads what core 0 pulled into
        // the shared L3: its private levels are cold, so L3 hits.
        drive(&mut a, &mut b, 1, 0, l2_lines / 2, Some(DataSource::L3));
        assert_eq!(a, b, "hit-span walk diverged from per-line walk");

        // And an adversarial mixed schedule with no level expectations:
        // overlapping spans from three cores across both nodes.
        for &(core, first, n) in
            &[(0u32, 0u64, 300u64), (1, 100, 64), (2, 0, 200), (0, 0, 300), (1, 90, 80), (2, 0, 200), (0, 5, 17)]
        {
            drive(&mut a, &mut b, core, first, n, None);
        }
        assert_eq!(a, b, "mixed hit/miss walk diverged from per-line walk");
    }

    #[test]
    fn data_source_display_and_flags() {
        assert_eq!(DataSource::RemoteDram.to_string(), "RemoteDRAM");
        assert!(DataSource::LocalDram.is_dram());
        assert!(!DataSource::Lfb.is_dram());
        assert_eq!(DataSource::ALL.len(), 6);
    }
}

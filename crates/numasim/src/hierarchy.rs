//! The full cache hierarchy: per-core L1/L2, per-node shared L3, and the
//! line-fill-buffer behaviour PEBS observes on streaming code.
//!
//! A lookup walks L1 → L2 → L3(node) → DRAM(home node) and returns the
//! [`DataSource`] that satisfied the access — the same classification the
//! paper's PEBS samples carry (`L1/L2/L3 Hit`, `LFB`, `local DRAM`,
//! `remote DRAM`). Lines are installed into every level on the way back
//! (inclusive fill), so temporal locality is modelled naturally.
//!
//! **Line-fill buffers.** On real hardware a 64-byte line is fetched once
//! while the remaining loads to that line complete from the line-fill
//! buffer; PEBS attributes those loads to the LFB with a latency between L3
//! and DRAM. Workload streams declare how many loads they issue per line
//! (`reps`, e.g. 8 for an 8-byte-element sequential scan); the hierarchy
//! resolves the first load, and the engine classifies the remaining
//! `reps - 1` loads of a DRAM-filled line as [`DataSource::Lfb`].

use crate::cache::{Cache, CacheStats};
use crate::config::MachineConfig;
use crate::topology::{CoreId, NodeId};

/// Where a memory access was satisfied. Mirrors the data-source field of a
/// PEBS memory sample.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum DataSource {
    /// Hit in the core's L1 data cache.
    L1,
    /// Hit in the core's L2.
    L2,
    /// Hit in the node's shared L3.
    L3,
    /// Satisfied by a line-fill buffer (miss to the same line in flight).
    Lfb,
    /// Served by the memory controller of the accessing core's own node.
    LocalDram,
    /// Served by a remote node's memory controller, over the interconnect.
    RemoteDram,
}

impl DataSource {
    /// True for the two DRAM sources.
    #[inline]
    pub fn is_dram(self) -> bool {
        matches!(self, DataSource::LocalDram | DataSource::RemoteDram)
    }

    /// All six sources, in hierarchy order.
    pub const ALL: [DataSource; 6] = [
        DataSource::L1,
        DataSource::L2,
        DataSource::L3,
        DataSource::Lfb,
        DataSource::LocalDram,
        DataSource::RemoteDram,
    ];
}

impl std::fmt::Display for DataSource {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            DataSource::L1 => "L1",
            DataSource::L2 => "L2",
            DataSource::L3 => "L3",
            DataSource::Lfb => "LFB",
            DataSource::LocalDram => "LocalDRAM",
            DataSource::RemoteDram => "RemoteDRAM",
        };
        f.write_str(s)
    }
}

/// The machine's cache hierarchy state.
///
/// Equality compares every cache's full replacement state and counters
/// (see [`Cache`]); the span-walk differential tests use it to prove the
/// fused walk leaves residency bit-identical to the per-line walk.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Hierarchy {
    l1: Vec<Cache>,
    l2: Vec<Cache>,
    l3: Vec<Cache>,
    cores_per_node: usize,
    line_shift: u32,
}

impl Hierarchy {
    /// Build cold caches for every core and node of `cfg`.
    pub fn new(cfg: &MachineConfig) -> Self {
        let ls = cfg.cache.line_size;
        let cores = cfg.topology.num_cores();
        let nodes = cfg.topology.num_nodes();
        let mk = |geo: crate::config::CacheGeometry, count: usize| -> Vec<Cache> {
            (0..count).map(|_| Cache::new(geo.num_sets(ls), geo.assoc as usize)).collect()
        };
        Self {
            l1: mk(cfg.cache.l1, cores),
            l2: mk(cfg.cache.l2, cores),
            l3: mk(cfg.cache.l3, nodes),
            cores_per_node: cfg.topology.cores_per_node(),
            line_shift: ls.trailing_zeros(),
        }
    }

    /// Cache line number of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Walk the cache levels for one load/store issued by `core`.
    ///
    /// Returns `Some(level)` if a cache satisfied the access, or `None` if
    /// the line had to be fetched from DRAM — in which case it has already
    /// been installed into L1/L2/L3 and the caller classifies the access as
    /// local or remote DRAM using the page's home node. Deferring the home
    /// lookup to misses keeps cache hits (the common case) off the memory
    /// map entirely.
    #[inline]
    pub fn cache_access(&mut self, core: CoreId, addr: u64) -> Option<DataSource> {
        // One walk, two entry points: delegate to the per-core handle so
        // this path can never diverge from the fused span walk built on it.
        self.core_caches(core).access(addr)
    }

    /// Walk the hierarchy for one load/store issued by `core` to a line
    /// homed on `home`. Installs the line on a miss and returns the source
    /// that satisfied the access.
    #[inline]
    pub fn lookup(&mut self, core: CoreId, home: NodeId, addr: u64) -> DataSource {
        match self.cache_access(core, addr) {
            Some(src) => src,
            None => {
                let node = core.0 as usize / self.cores_per_node;
                if home.0 as usize == node {
                    DataSource::LocalDram
                } else {
                    DataSource::RemoteDram
                }
            }
        }
    }

    /// Borrow the three caches `core` can reach as one handle, so a hot
    /// loop resolves the per-core indices once per thread slice instead of
    /// once per access. Only the hierarchy is borrowed, leaving sibling
    /// engine state (bandwidth model, memory map, observer) free.
    ///
    /// # Panics
    /// Panics if `core` is out of range.
    #[inline]
    pub fn core_caches(&mut self, core: CoreId) -> CoreCaches<'_> {
        let c = core.0 as usize;
        let node = c / self.cores_per_node;
        let (l1, l2, l3) = (&mut self.l1[c], &mut self.l2[c], &mut self.l3[node]);
        CoreCaches { l1, l2, l3, line_shift: self.line_shift }
    }

    /// The node a core belongs to (duplicated from [`crate::topology`] for
    /// hot-path use without a topology borrow).
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        NodeId((core.0 as usize / self.cores_per_node) as u8)
    }

    /// Flush every cache (used between independent runs sharing a machine).
    pub fn flush(&mut self) {
        for c in self.l1.iter_mut().chain(self.l2.iter_mut()).chain(self.l3.iter_mut()) {
            c.flush();
        }
    }

    /// Aggregate hit/miss stats for a level: 0 = L1, 1 = L2, 2 = L3.
    ///
    /// # Panics
    /// Panics if `level > 2`.
    pub fn level_stats(&self, level: usize) -> CacheStats {
        let caches = match level {
            0 => &self.l1,
            1 => &self.l2,
            2 => &self.l3,
            _ => panic!("no such cache level {level}"),
        };
        caches.iter().fold(CacheStats::default(), |acc, c| CacheStats {
            hits: acc.hits + c.stats().hits,
            misses: acc.misses + c.stats().misses,
        })
    }
}

/// Mutable view of one core's reachable caches (its L1/L2 and its node's
/// L3), handed out by [`Hierarchy::core_caches`].
#[derive(Debug)]
pub struct CoreCaches<'a> {
    l1: &'a mut Cache,
    l2: &'a mut Cache,
    l3: &'a mut Cache,
    line_shift: u32,
}

impl CoreCaches<'_> {
    /// Same walk as [`Hierarchy::cache_access`], with the per-core cache
    /// resolution already done.
    #[inline]
    pub fn access(&mut self, addr: u64) -> Option<DataSource> {
        let line = addr >> self.line_shift;
        if self.l1.access(line) {
            return Some(DataSource::L1);
        }
        if self.l2.access(line) {
            return Some(DataSource::L2);
        }
        if self.l3.access(line) {
            return Some(DataSource::L3);
        }
        None
    }

    /// Cache line number of a byte address.
    #[inline]
    pub fn line_of(&self, addr: u64) -> u64 {
        addr >> self.line_shift
    }

    /// Longest prefix of the consecutive-line span `[first_line,
    /// first_line + n)` that provably misses *all three levels* — the
    /// fused-walk counterpart of [`CoreCaches::access`] returning `None`
    /// for every line. Read-only; see [`Cache::span_miss_prefix`].
    ///
    /// Each level's proof window is narrowed to the previous level's
    /// prefix: within the result every line misses L1 (so reaches L2),
    /// misses L2 (so reaches L3), and misses L3 — exactly the lines the
    /// per-line walk would send to DRAM. Narrowing is what keeps each
    /// level's survival predicate valid: it assumes every span line in its
    /// window actually looks the level up, which holds because all those
    /// lines missed the levels above.
    pub fn span_miss_prefix(&self, first_line: u64, n: u64) -> u64 {
        let k = self.l1.span_miss_prefix(first_line, n);
        if k == 0 {
            return 0;
        }
        let k = self.l2.span_miss_prefix(first_line, k);
        if k == 0 {
            return 0;
        }
        self.l3.span_miss_prefix(first_line, k)
    }

    /// Commit a proven all-miss span into all three levels (inclusive
    /// fill), in closed form — bit-identical to `n` per-line DRAM-miss
    /// walks. See [`Cache::install_span`].
    pub fn install_span(&mut self, first_line: u64, n: u64) {
        self.l1.install_span(first_line, n);
        self.l2.install_span(first_line, n);
        self.l3.install_span(first_line, n);
    }

    /// Commit a single proven-miss line into all three levels (inclusive
    /// fill) — the one-line counterpart of [`CoreCaches::install_span`],
    /// used where proven misses arrive interleaved rather than as one
    /// consecutive span. See [`Cache::install_line`].
    #[inline]
    pub fn install_line(&mut self, line: u64) {
        self.l1.install_line(line);
        self.l2.install_line(line);
        self.l3.install_line(line);
    }

    /// [`CoreCaches::install_line`] with the three per-level miss counters
    /// deferred: the interleaved replay in the engine commits one line at
    /// a time but knows the total up front, so it charges stats once per
    /// span via [`CoreCaches::charge_misses`] instead of three
    /// read-modify-writes per line. Counters are integers — bulk-charging
    /// is exactly `n` deferred increments.
    #[inline]
    pub(crate) fn install_line_deferred(&mut self, line: u64) {
        self.l1.install_line_deferred(line);
        self.l2.install_line_deferred(line);
        self.l3.install_line_deferred(line);
    }

    /// Charge `n` misses per level deferred by
    /// [`CoreCaches::install_line_deferred`].
    #[inline]
    pub(crate) fn charge_misses(&mut self, n: u64) {
        self.l1.charge_misses(n);
        self.l2.charge_misses(n);
        self.l3.charge_misses(n);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn hier() -> Hierarchy {
        Hierarchy::new(&MachineConfig::tiny())
    }

    #[test]
    fn cold_access_is_dram_then_l1() {
        let mut h = hier();
        let src = h.lookup(CoreId(0), NodeId(0), 0x1000);
        assert_eq!(src, DataSource::LocalDram);
        let src = h.lookup(CoreId(0), NodeId(0), 0x1000);
        assert_eq!(src, DataSource::L1);
    }

    #[test]
    fn remote_home_is_remote_dram() {
        let mut h = hier();
        // tiny: 2 cores per node; core 2 is on node 1.
        let src = h.lookup(CoreId(2), NodeId(0), 0x2000);
        assert_eq!(src, DataSource::RemoteDram);
    }

    #[test]
    fn l3_shared_within_node() {
        let mut h = hier();
        // Core 0 pulls the line into node 0's L3; core 1 (same node) should
        // find it there (its private L1/L2 are cold).
        h.lookup(CoreId(0), NodeId(0), 0x3000);
        let src = h.lookup(CoreId(1), NodeId(0), 0x3000);
        assert_eq!(src, DataSource::L3);
    }

    #[test]
    fn l3_not_shared_across_nodes() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x4000);
        let src = h.lookup(CoreId(2), NodeId(0), 0x4000);
        assert_eq!(src, DataSource::RemoteDram);
    }

    #[test]
    fn l2_hit_after_l1_eviction() {
        let cfg = MachineConfig::tiny();
        let mut h = Hierarchy::new(&cfg);
        // L1 tiny preset: 1 KiB, 4-way, 64B lines -> 16 lines, 4 sets.
        // Touch line 0, then 4 more lines in the same L1 set to evict it.
        let line_sz = cfg.cache.line_size;
        let l1_sets = cfg.cache.l1.num_sets(line_sz) as u64;
        h.lookup(CoreId(0), NodeId(0), 0);
        for i in 1..=4 {
            h.lookup(CoreId(0), NodeId(0), i * l1_sets * line_sz);
        }
        let src = h.lookup(CoreId(0), NodeId(0), 0);
        assert_eq!(src, DataSource::L2, "line should have fallen back to L2");
    }

    #[test]
    fn flush_forgets_everything() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x5000);
        h.flush();
        assert_eq!(h.lookup(CoreId(0), NodeId(0), 0x5000), DataSource::LocalDram);
    }

    #[test]
    fn level_stats_accumulate() {
        let mut h = hier();
        h.lookup(CoreId(0), NodeId(0), 0x100);
        h.lookup(CoreId(0), NodeId(0), 0x100);
        let l1 = h.level_stats(0);
        assert_eq!(l1.hits, 1);
        assert_eq!(l1.misses, 1);
    }

    #[test]
    fn core_caches_matches_cache_access() {
        let mut a = hier();
        let mut b = hier();
        // Mixed cores and re-touches: both walks must agree event by event
        // and leave identical residency behind.
        let pattern: Vec<(u32, u64)> = (0u64..200).map(|i| ((i % 3) as u32, (i * 137) % 50 * 64)).collect();
        for &(core, addr) in &pattern {
            let via_handle = b.core_caches(CoreId(core)).access(addr);
            assert_eq!(a.cache_access(CoreId(core), addr), via_handle);
        }
        for lvl in 0..3 {
            assert_eq!(a.level_stats(lvl), b.level_stats(lvl));
        }
    }

    /// The fused span walk must leave all three levels bit-identical to
    /// the per-line walk, across warm L2/L3 state (re-scan after L1-sized
    /// eviction) and sibling-core sharing.
    #[test]
    fn span_walk_matches_per_line_walk() {
        let mut a = hier();
        let mut b = hier();
        let spans: [(u32, u64, u64); 6] =
            [(0, 0, 200), (1, 100, 64), (0, 0, 200), (2, 300, 512), (0, 150, 33), (1, 0, 1)];
        for &(core, first, n) in &spans {
            for line in first..first + n {
                a.cache_access(CoreId(core), line * 64);
            }
            let mut cc = b.core_caches(CoreId(core));
            let mut cur = first;
            let mut rem = n;
            // The engine's consumption pattern: closed-form where provable,
            // per-line otherwise.
            while rem > 0 {
                let k = cc.span_miss_prefix(cur, rem);
                if k > 0 {
                    cc.install_span(cur, k);
                    cur += k;
                    rem -= k;
                } else {
                    cc.access(cur * 64);
                    cur += 1;
                    rem -= 1;
                }
            }
        }
        assert_eq!(a, b, "span walk diverged from per-line walk");
    }

    #[test]
    fn data_source_display_and_flags() {
        assert_eq!(DataSource::RemoteDram.to_string(), "RemoteDRAM");
        assert!(DataSource::LocalDram.is_dram());
        assert!(!DataSource::Lfb.is_dram());
        assert_eq!(DataSource::ALL.len(), 6);
    }
}

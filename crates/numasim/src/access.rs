//! Memory access streams: the workload side of the simulator.
//!
//! A simulated thread is driven by an [`AccessStream`] — an iterator of
//! [`Access`]es at cache-line granularity. Streams carry two performance
//! attributes the engine consults:
//!
//! * `compute_cycles` — arithmetic work between memory operations
//!   (compute-bound codes like Blackscholes have high values; streaming
//!   kernels ~1–4 cycles);
//! * `mlp` — memory-level parallelism. Independent loads (array scans)
//!   overlap several outstanding misses; dependent loads (pointer chasing,
//!   as in the bandit micro-benchmark) expose the full miss latency.
//!
//! `reps` on an [`Access`] models multiple loads landing in the same cache
//! line (e.g. eight 8-byte elements per 64-byte line): the line is fetched
//! once and the remaining loads are satisfied by the line-fill buffer,
//! which is exactly how PEBS attributes them on real hardware.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory operation at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address touched.
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Number of element accesses this line-granular operation represents
    /// (≥ 1). Loads beyond the first hit the line-fill buffer when the
    /// first missed to DRAM.
    pub reps: u16,
}

/// Read/write composition of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessMix {
    /// Every `write_every`-th access is a write; 0 means read-only.
    pub write_every: u32,
}

impl AccessMix {
    /// All loads.
    pub fn read_only() -> Self {
        Self { write_every: 0 }
    }

    /// All stores.
    pub fn write_only() -> Self {
        Self { write_every: 1 }
    }

    /// One store per `n` accesses (n ≥ 1).
    ///
    /// # Panics
    /// Panics if `n == 0` (use [`AccessMix::read_only`] for no writes).
    pub fn write_every(n: u32) -> Self {
        assert!(n >= 1, "write_every(0) is ambiguous; use read_only()");
        Self { write_every: n }
    }

    #[inline]
    fn is_write(&self, counter: u64) -> bool {
        self.write_every != 0 && counter.is_multiple_of(self.write_every as u64)
    }

    /// Longest prefix of accesses with uniform write-ness, starting at
    /// counter value `counter + 1` (the value [`AccessMix::is_write`] sees
    /// for the next access) and capped at `max`. Returns `(len, is_write)`.
    #[inline]
    fn run_len(&self, counter: u64, max: u64) -> (u64, bool) {
        let we = self.write_every as u64;
        if we == 0 {
            return (max, false);
        }
        if we == 1 {
            return (max, true);
        }
        let next = counter + 1;
        let rem = next % we;
        if rem == 0 {
            (1, true)
        } else {
            ((we - rem).min(max), false)
        }
    }
}

/// A run of homogeneous accesses: `len` line-granular operations at
/// `base, base + stride, base + 2·stride, …`, all sharing the same
/// direction, `reps`, and — crucially — the *current* `compute`/`mlp` of
/// the producing stream. Runs are the unit of the engine's batched hot
/// path: an O(1) descriptor stands in for up to `len` virtual
/// [`AccessStream::next_access`] calls.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct AccessRun {
    /// Address of the first access.
    pub base: u64,
    /// Byte distance between consecutive accesses (ignored when `len == 1`).
    pub stride: u64,
    /// Number of accesses in the run (≥ 1).
    pub len: u64,
    /// Store (true) or load (false), uniform over the run.
    pub is_write: bool,
    /// Element accesses per line (see [`Access::reps`]), uniform over the run.
    pub reps: u16,
    /// Arithmetic cycles between memory operations for these accesses.
    pub compute: f64,
    /// Memory-level parallelism for these accesses; `None` uses the
    /// machine default.
    pub mlp: Option<f64>,
}

impl AccessRun {
    /// A single-access run with explicit cost attributes.
    #[inline]
    pub fn single(acc: Access, compute: f64, mlp: Option<f64>) -> Self {
        Self { base: acc.addr, stride: 0, len: 1, is_write: acc.is_write, reps: acc.reps, compute, mlp }
    }

    /// The `i`-th address of the run (`i < len`).
    #[inline]
    pub fn addr(&self, i: u64) -> u64 {
        debug_assert!(i < self.len);
        self.base + i * self.stride
    }
}

/// A source of memory accesses for one simulated thread.
///
/// Streams must be deterministic: all randomness is seeded.
pub trait AccessStream: Send {
    /// The next access, or `None` when the thread has finished its work.
    fn next_access(&mut self) -> Option<Access>;

    /// Arithmetic cycles between consecutive memory operations.
    fn compute_cycles(&self) -> f64 {
        2.0
    }

    /// Memory-level parallelism override; `None` uses the machine default.
    fn mlp(&self) -> Option<f64> {
        None
    }

    /// The next *run* of up to `max` accesses (`max ≥ 1`), or `None` when
    /// the thread has finished its work.
    ///
    /// Contract: interleaving `next_run` calls of arbitrary `max` values
    /// must reproduce exactly the access sequence `next_access` would
    /// yield, and the run's `compute`/`mlp` must be the values in effect
    /// for *those* accesses (not whatever a later segment would report).
    /// The default wraps `next_access` into single-access runs and is
    /// correct for any stream whose cost attributes are constant over its
    /// lifetime; streams that change `compute`/`mlp` mid-stream (chained
    /// or interleaved segments) must override it.
    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        debug_assert!(max >= 1, "next_run needs room for at least one access");
        let acc = self.next_access()?;
        Some(AccessRun::single(acc, self.compute_cycles(), self.mlp()))
    }

    /// True when the stream will certainly yield no further accesses.
    ///
    /// Advisory: combinators use it to avoid advertising the
    /// `compute_cycles`/`mlp` of a drained member. The conservative
    /// default (`false`, i.e. "unknown") is always safe.
    fn is_done(&self) -> bool {
        false
    }

    /// Peek the maximal run [`AccessStream::next_run`] would return for an
    /// unbounded `max`, without advancing any state; `None` when the
    /// stream is drained or cannot describe its future as one run.
    ///
    /// Contract: when `Some(w)` is returned, an immediate `next_run(k)`
    /// with `1 ≤ k ≤ w.len` must return exactly the first `k` accesses of
    /// `w`. Purely advisory — the conservative default (`None`) opts out
    /// of the engine's interleaved span fusion.
    fn seq_window(&self) -> Option<AccessRun> {
        None
    }

    /// Bulk-pull one *interleaved span*: `iters` whole round-robin
    /// iterations over ≥ 2 concurrently live sequential lanes, advancing
    /// the stream past all of them. On success, `lanes` holds one run per
    /// lane in issue order, each of length `iters` and stride `line_step`,
    /// and the return value is `iters`; the access sequence consumed is
    /// exactly `lanes[0][0], lanes[1][0], …, lanes[0][1], lanes[1][1], …`.
    /// Returns 0 — consuming nothing — when the stream is not an
    /// interleaving of sequential lanes (the default).
    fn next_zip(&mut self, _line_step: u64, _max_iters: u64, lanes: &mut Vec<AccessRun>) -> u64 {
        lanes.clear();
        0
    }
}

/// Sequential scan over `[base, base + len)` with a fixed stride,
/// repeated for a number of passes. The canonical streaming kernel
/// (sumv/dotv/countv shares, stencil sweeps).
#[derive(Debug, Clone)]
pub struct SeqStream {
    base: u64,
    len: u64,
    stride: u64,
    passes: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    mlp: Option<f64>,
    cursor: u64,
    start: u64,
    wrap_to: u64,
    steps_per_pass: u64,
    step: u64,
    pass: u64,
    counter: u64,
}

impl SeqStream {
    /// Scan `len` bytes starting at `base`, `passes` times, touching one
    /// line (64 bytes) per step.
    ///
    /// # Panics
    /// Panics if `len == 0` or `passes == 0`.
    pub fn new(base: u64, len: u64, passes: u64, mix: AccessMix) -> Self {
        assert!(len > 0 && passes > 0, "empty scan");
        let mut s = Self {
            base,
            len,
            stride: 64,
            passes,
            mix,
            reps: 1,
            compute: 2.0,
            mlp: None,
            cursor: 0,
            start: 0,
            wrap_to: 0,
            steps_per_pass: 0,
            step: 0,
            pass: 0,
            counter: 0,
        };
        s.recompute_steps();
        s
    }

    fn recompute_steps(&mut self) {
        // The phase within a stride is preserved across wraps, so a pass
        // visits the offsets `wrap_to, wrap_to + stride, …` below `len`.
        self.wrap_to = self.start % self.stride;
        self.cursor = self.start;
        self.steps_per_pass = (self.len - self.wrap_to).div_ceil(self.stride);
    }

    /// Set the step in bytes (defaults to one 64-byte line).
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0);
        self.stride = stride;
        self.recompute_steps();
        self
    }

    /// Start the traversal at byte offset `start` instead of 0, wrapping at
    /// the end. Two uses: rotating co-running threads' traversals so they
    /// do not move through memory in lockstep, and (with a stride larger
    /// than `start`) giving each thread its own disjoint interleaved line
    /// set — the sub-stride phase `start % stride` is preserved across
    /// wraps.
    ///
    /// # Panics
    /// Panics if `start >= len`.
    pub fn with_start(mut self, start: u64) -> Self {
        assert!(start < self.len, "start offset beyond scan length");
        self.start = start;
        self.recompute_steps();
        self
    }

    /// Set element accesses per line (see [`Access::reps`]).
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }

    /// Override memory-level parallelism.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0);
        self.mlp = Some(mlp);
        self
    }
}

impl AccessStream for SeqStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.pass == self.passes {
            return None;
        }
        let addr = self.base + self.cursor;
        self.cursor += self.stride;
        if self.cursor >= self.len {
            self.cursor = self.wrap_to;
        }
        self.step += 1;
        if self.step == self.steps_per_pass {
            self.step = 0;
            self.pass += 1;
        }
        self.counter += 1;
        Some(Access { addr, is_write: self.mix.is_write(self.counter), reps: self.reps })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        self.mlp
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        if self.pass == self.passes {
            return None;
        }
        // A run may not cross the wrap point (cursor reset), the pass
        // boundary (step reset), or a change of write-ness.
        let to_wrap = (self.len - self.cursor).div_ceil(self.stride);
        let to_pass_end = self.steps_per_pass - self.step;
        let cap = max.max(1).min(to_wrap).min(to_pass_end);
        let (len, is_write) = self.mix.run_len(self.counter, cap);
        let run = AccessRun {
            base: self.base + self.cursor,
            stride: self.stride,
            len,
            is_write,
            reps: self.reps,
            compute: self.compute,
            mlp: self.mlp,
        };
        self.cursor += len * self.stride;
        if self.cursor >= self.len {
            self.cursor = self.wrap_to;
        }
        self.step += len;
        if self.step == self.steps_per_pass {
            self.step = 0;
            self.pass += 1;
        }
        self.counter += len;
        Some(run)
    }

    fn is_done(&self) -> bool {
        self.pass == self.passes
    }

    fn seq_window(&self) -> Option<AccessRun> {
        if self.pass == self.passes {
            return None;
        }
        // Mirror of `next_run` with an unbounded `max`, minus the state
        // advance: the same wrap/pass/write-ness caps apply.
        let to_wrap = (self.len - self.cursor).div_ceil(self.stride);
        let to_pass_end = self.steps_per_pass - self.step;
        let (len, is_write) = self.mix.run_len(self.counter, to_wrap.min(to_pass_end));
        Some(AccessRun {
            base: self.base + self.cursor,
            stride: self.stride,
            len,
            is_write,
            reps: self.reps,
            compute: self.compute,
            mlp: self.mlp,
        })
    }
}

/// Boxed streams delegate every method — crucially including
/// [`AccessStream::next_run`], so boxing never silently downgrades an
/// overridden batched path back to the one-access default.
impl<S: AccessStream + ?Sized> AccessStream for Box<S> {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        (**self).next_access()
    }

    #[inline]
    fn compute_cycles(&self) -> f64 {
        (**self).compute_cycles()
    }

    #[inline]
    fn mlp(&self) -> Option<f64> {
        (**self).mlp()
    }

    #[inline]
    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        (**self).next_run(max)
    }

    #[inline]
    fn is_done(&self) -> bool {
        (**self).is_done()
    }

    #[inline]
    fn seq_window(&self) -> Option<AccessRun> {
        (**self).seq_window()
    }

    #[inline]
    fn next_zip(&mut self, line_step: u64, max_iters: u64, lanes: &mut Vec<AccessRun>) -> u64 {
        (**self).next_zip(line_step, max_iters, lanes)
    }
}

/// Alias emphasising a non-unit stride; construct via
/// [`SeqStream::with_stride`].
pub type StridedStream = SeqStream;

/// Uniform random line accesses within `[base, base + len)` — the pattern
/// of Streamcluster's distance computations over the shared `block` array.
#[derive(Debug, Clone)]
pub struct RandomStream {
    base: u64,
    lines: u64,
    remaining: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    mlp: Option<f64>,
    rng: StdRng,
    counter: u64,
}

impl RandomStream {
    /// `count` random line-granular accesses over `len` bytes at `base`,
    /// deterministic under `seed`.
    ///
    /// # Panics
    /// Panics if `len < 64` or `count == 0`.
    pub fn new(base: u64, len: u64, count: u64, seed: u64, mix: AccessMix) -> Self {
        assert!(len >= 64 && count > 0, "degenerate random stream");
        Self {
            base,
            lines: len / 64,
            remaining: count,
            mix,
            reps: 1,
            compute: 4.0,
            mlp: None,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Set element accesses per line.
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }

    /// Override memory-level parallelism.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0);
        self.mlp = Some(mlp);
        self
    }
}

impl AccessStream for RandomStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.counter += 1;
        let line = self.rng.gen_range(0..self.lines);
        Some(Access { addr: self.base + line * 64, is_write: self.mix.is_write(self.counter), reps: self.reps })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        self.mlp
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Dependent pointer chasing over a fixed set of conflicting lines — the
/// bandit micro-benchmark's engine. Every access conflicts with its
/// predecessors in the cache (same set), so each goes to memory, and the
/// chain dependency exposes full latency (`mlp == 1`).
#[derive(Debug, Clone)]
pub struct PointerChaseStream {
    /// Line addresses in chase order (a random cycle).
    ring: Vec<u64>,
    pos: usize,
    remaining: u64,
    compute: f64,
}

impl PointerChaseStream {
    /// Build a chase over `num_lines` lines spaced `stride` bytes apart
    /// starting at `base` (choose `stride = sets × 64` to land every line
    /// in one cache set), shuffled deterministically by `seed`, visited
    /// `count` times in total.
    ///
    /// # Panics
    /// Panics if `num_lines < 2` or `count == 0`.
    pub fn new(base: u64, num_lines: usize, stride: u64, count: u64, seed: u64) -> Self {
        assert!(num_lines >= 2 && count > 0, "degenerate pointer chase");
        let mut ring: Vec<u64> = (0..num_lines as u64).map(|i| base + i * stride).collect();
        // Fisher–Yates with a seeded RNG: a deterministic random cycle.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..ring.len()).rev() {
            ring.swap(i, rng.gen_range(0..=i));
        }
        Self { ring, pos: 0, remaining: count, compute: 1.0 }
    }

    /// Set compute cycles between chase steps.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }
}

impl AccessStream for PointerChaseStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.ring[self.pos];
        self.pos += 1;
        if self.pos == self.ring.len() {
            self.pos = 0;
        }
        Some(Access { addr, is_write: false, reps: 1 })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        Some(1.0) // dependent loads: no overlap
    }

    fn is_done(&self) -> bool {
        self.remaining == 0
    }
}

/// Round-robin interleaving of several streams — models loops touching
/// multiple arrays per iteration (dotv's `a[i] * b[i]`, IRSmk's 27-array
/// stencil update). Finishes when every sub-stream is exhausted.
pub struct ZipStream {
    streams: Vec<Box<dyn AccessStream>>,
    next: usize,
    exhausted: Vec<bool>,
    live: usize,
}

impl ZipStream {
    /// Interleave the given streams one access at a time.
    ///
    /// # Panics
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<Box<dyn AccessStream>>) -> Self {
        assert!(!streams.is_empty(), "ZipStream needs at least one stream");
        let n = streams.len();
        Self { streams, next: 0, exhausted: vec![false; n], live: n }
    }

    /// Index of the member that will produce the next access: the first
    /// non-drained stream at or after the round-robin cursor. Falls back
    /// to the cursor itself once everything is drained.
    fn live_index(&self) -> usize {
        let n = self.streams.len();
        for k in 0..n {
            let i = (self.next + k) % n;
            if !self.exhausted[i] && !self.streams[i].is_done() {
                return i;
            }
        }
        self.next
    }
}

impl AccessStream for ZipStream {
    fn next_access(&mut self) -> Option<Access> {
        let n = self.streams.len();
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if self.exhausted[i] {
                continue;
            }
            if let Some(a) = self.streams[i].next_access() {
                return Some(a);
            }
            self.exhausted[i] = true;
            self.live -= 1;
        }
        None
    }

    fn compute_cycles(&self) -> f64 {
        self.streams[self.live_index()].compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.streams[self.live_index()].mlp()
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        let n = self.streams.len();
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if self.exhausted[i] {
                continue;
            }
            // With several live members the interleaving itself limits a
            // run to one access; once only one member remains it may hand
            // out full runs.
            let cap = if self.live == 1 { max } else { 1 };
            if let Some(r) = self.streams[i].next_run(cap) {
                return Some(r);
            }
            self.exhausted[i] = true;
            self.live -= 1;
        }
        None
    }

    fn is_done(&self) -> bool {
        self.streams.iter().zip(&self.exhausted).all(|(s, &e)| e || s.is_done())
    }

    fn next_zip(&mut self, line_step: u64, max_iters: u64, lanes: &mut Vec<AccessRun>) -> u64 {
        lanes.clear();
        if self.live < 2 || max_iters == 0 {
            return 0;
        }
        let n = self.streams.len();
        // Peek pass: every live member must expose a line-strided window;
        // the span length is the shortest one. Nothing has advanced yet,
        // so any bail-out leaves the per-access interleaving untouched.
        let mut iters = max_iters;
        let mut idx = self.next;
        for _ in 0..n {
            let i = idx;
            idx = (idx + 1) % n;
            if self.exhausted[i] {
                continue;
            }
            let Some(w) = self.streams[i].seq_window() else {
                return 0;
            };
            if w.stride != line_step || w.len == 0 {
                return 0;
            }
            iters = iters.min(w.len);
        }
        // Below a handful of iterations the lane setup costs more than the
        // per-access path; the fallback is semantically identical.
        if iters < 4 {
            return 0;
        }
        // Commit pass: pull exactly `iters` lines from each live member in
        // rotation order. Consuming whole iterations starting at `next`
        // leaves the rotation cursor — and thus every future access —
        // where `iters × live` single-access pulls would have left it.
        let mut idx = self.next;
        for _ in 0..n {
            let i = idx;
            idx = (idx + 1) % n;
            if self.exhausted[i] {
                continue;
            }
            let r = self.streams[i].next_run(iters).expect("seq_window promised a non-empty run");
            debug_assert_eq!(r.len, iters, "seq_window window shrank under next_run");
            lanes.push(r);
        }
        iters
    }
}

/// Block-cyclic traversal: of the blocks of `block` bytes tiling
/// `[base, base + len)`, this stream visits blocks `phase, phase + way,
/// phase + 2·way, …`, scanning each block line by line. With `way` set to
/// the thread count and `phase` to the thread id, co-running threads cover
/// the whole range with disjoint line sets and no cache-set aliasing —
/// the shape of a wavefront sweep over a shared matrix.
#[derive(Debug, Clone)]
pub struct BlockCyclicStream {
    base: u64,
    len: u64,
    block: u64,
    way: u64,
    phase: u64,
    passes: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    /// Current block index and byte offset within it.
    cur_block: u64,
    cur_off: u64,
    pass: u64,
    counter: u64,
}

impl BlockCyclicStream {
    /// Build a block-cyclic stream.
    ///
    /// # Panics
    /// Panics if dimensions are degenerate, `phase >= way`, or the range
    /// has no block for this phase.
    pub fn new(base: u64, len: u64, block: u64, way: u64, phase: u64, passes: u64, mix: AccessMix) -> Self {
        assert!(len > 0 && block > 0 && passes > 0 && way > 0, "degenerate block-cyclic stream");
        assert!(phase < way, "phase must be below the way count");
        assert!(phase * block < len, "no block for this phase in the range");
        Self {
            base,
            len,
            block,
            way,
            phase,
            passes,
            mix,
            reps: 1,
            compute: 2.0,
            cur_block: phase,
            cur_off: 0,
            pass: 0,
            counter: 0,
        }
    }

    /// Set element accesses per line.
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }
}

impl AccessStream for BlockCyclicStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.pass == self.passes {
            return None;
        }
        let block_start = self.cur_block * self.block;
        let addr = self.base + block_start + self.cur_off;
        self.counter += 1;
        let acc = Access { addr, is_write: self.mix.is_write(self.counter), reps: self.reps };
        // Advance: next line in block, next owned block, or next pass.
        self.cur_off += 64;
        if self.cur_off >= self.block || block_start + self.cur_off >= self.len {
            self.cur_off = 0;
            self.cur_block += self.way;
            if self.cur_block * self.block >= self.len {
                self.cur_block = self.phase;
                self.pass += 1;
            }
        }
        Some(acc)
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        if self.pass == self.passes {
            return None;
        }
        let block_start = self.cur_block * self.block;
        // A run stays within the current block's in-range lines and must
        // have uniform write-ness.
        let in_block = (self.block - self.cur_off).div_ceil(64);
        let in_range = (self.len - block_start - self.cur_off).div_ceil(64);
        let cap = max.max(1).min(in_block).min(in_range);
        let (len, is_write) = self.mix.run_len(self.counter, cap);
        let run = AccessRun {
            base: self.base + block_start + self.cur_off,
            stride: 64,
            len,
            is_write,
            reps: self.reps,
            compute: self.compute,
            mlp: None,
        };
        self.counter += len;
        self.cur_off += 64 * len;
        if self.cur_off >= self.block || block_start + self.cur_off >= self.len {
            self.cur_off = 0;
            self.cur_block += self.way;
            if self.cur_block * self.block >= self.len {
                self.cur_block = self.phase;
                self.pass += 1;
            }
        }
        Some(run)
    }

    fn is_done(&self) -> bool {
        self.pass == self.passes
    }
}

/// Wraps a stream, overriding its memory-level parallelism — e.g. a bandit
/// instance running `k` independent pointer-chase streams keeps `k` misses
/// in flight even though each chain alone has `mlp == 1`.
pub struct WithMlp<S> {
    inner: S,
    mlp: f64,
}

impl<S: AccessStream> WithMlp<S> {
    /// Override `inner`'s MLP.
    ///
    /// # Panics
    /// Panics if `mlp < 1`.
    pub fn new(inner: S, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "mlp must be at least 1");
        Self { inner, mlp }
    }
}

impl<S: AccessStream> AccessStream for WithMlp<S> {
    fn next_access(&mut self) -> Option<Access> {
        self.inner.next_access()
    }

    fn compute_cycles(&self) -> f64 {
        self.inner.compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        Some(self.mlp)
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        let mut r = self.inner.next_run(max)?;
        r.mlp = Some(self.mlp);
        Some(r)
    }

    fn is_done(&self) -> bool {
        self.inner.is_done()
    }
}

/// Sequential composition of streams — phases within one thread.
pub struct ChainStream {
    streams: Vec<Box<dyn AccessStream>>,
    current: usize,
}

impl ChainStream {
    /// Run the given streams back to back.
    ///
    /// # Panics
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<Box<dyn AccessStream>>) -> Self {
        assert!(!streams.is_empty(), "ChainStream needs at least one stream");
        Self { streams, current: 0 }
    }

    /// Index of the segment that will produce the next access, skipping
    /// segments already known to be drained. Falls back to the last
    /// segment once the whole chain is done.
    fn live_index(&self) -> usize {
        let last = self.streams.len() - 1;
        let mut i = self.current.min(last);
        while i < last && self.streams[i].is_done() {
            i += 1;
        }
        i
    }
}

impl AccessStream for ChainStream {
    fn next_access(&mut self) -> Option<Access> {
        while self.current < self.streams.len() {
            if let Some(a) = self.streams[self.current].next_access() {
                return Some(a);
            }
            self.current += 1;
        }
        None
    }

    fn compute_cycles(&self) -> f64 {
        self.streams[self.live_index()].compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.streams[self.live_index()].mlp()
    }

    fn next_run(&mut self, max: u64) -> Option<AccessRun> {
        while self.current < self.streams.len() {
            if let Some(r) = self.streams[self.current].next_run(max) {
                return Some(r);
            }
            self.current += 1;
        }
        None
    }

    fn is_done(&self) -> bool {
        self.streams[self.current.min(self.streams.len() - 1)..].iter().all(|s| s.is_done())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl AccessStream) -> Vec<Access> {
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
            assert!(v.len() < 1_000_000, "stream failed to terminate");
        }
        v
    }

    #[test]
    fn seq_stream_visits_every_line_once_per_pass() {
        let accs = drain(SeqStream::new(0, 64 * 10, 2, AccessMix::read_only()));
        assert_eq!(accs.len(), 20);
        assert_eq!(accs[0].addr, 0);
        assert_eq!(accs[9].addr, 64 * 9);
        assert_eq!(accs[10].addr, 0, "second pass restarts");
        assert!(accs.iter().all(|a| !a.is_write));
    }

    #[test]
    fn seq_stream_stride_and_reps() {
        let accs = drain(SeqStream::new(0, 1024, 1, AccessMix::read_only()).with_stride(256).with_reps(8));
        assert_eq!(accs.len(), 4);
        assert!(accs.iter().all(|a| a.reps == 8));
        assert_eq!(accs[1].addr, 256);
    }

    #[test]
    fn write_mix_period() {
        let accs = drain(SeqStream::new(0, 64 * 8, 1, AccessMix::write_every(4)));
        let writes = accs.iter().filter(|a| a.is_write).count();
        assert_eq!(writes, 2);
        let all_writes = drain(SeqStream::new(0, 64 * 8, 1, AccessMix::write_only()));
        assert!(all_writes.iter().all(|a| a.is_write));
    }

    #[test]
    fn random_stream_in_bounds_and_deterministic() {
        let a1 = drain(RandomStream::new(4096, 64 * 100, 500, 42, AccessMix::read_only()));
        let a2 = drain(RandomStream::new(4096, 64 * 100, 500, 42, AccessMix::read_only()));
        assert_eq!(a1, a2, "same seed, same stream");
        assert_eq!(a1.len(), 500);
        for a in &a1 {
            assert!(a.addr >= 4096 && a.addr < 4096 + 6400);
            assert_eq!(a.addr % 64, 0);
        }
        let a3 = drain(RandomStream::new(4096, 64 * 100, 500, 43, AccessMix::read_only()));
        assert_ne!(a1, a3, "different seed, different stream");
    }

    #[test]
    fn pointer_chase_is_a_cycle_over_all_lines() {
        let n = 16;
        let accs = drain(PointerChaseStream::new(0, n, 4096, n as u64, 7));
        let mut addrs: Vec<u64> = accs.iter().map(|a| a.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), n, "one pass visits every line exactly once");
        // Dependent chain: mlp forced to 1.
        assert_eq!(PointerChaseStream::new(0, 4, 64, 1, 0).mlp(), Some(1.0));
    }

    #[test]
    fn pointer_chase_conflicting_stride() {
        // stride chosen so all lines share cache set 0 for a 64-set cache
        let accs = drain(PointerChaseStream::new(0, 8, 64 * 64, 8, 1));
        for a in &accs {
            assert_eq!((a.addr / 64) % 64, 0, "all lines map to set 0");
        }
    }

    #[test]
    fn zip_alternates() {
        let s1 = SeqStream::new(0, 64 * 2, 1, AccessMix::read_only());
        let s2 = SeqStream::new(1 << 20, 64 * 2, 1, AccessMix::read_only());
        let accs = drain(ZipStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 4);
        assert!(accs[0].addr < 1 << 20);
        assert!(accs[1].addr >= 1 << 20);
        assert!(accs[2].addr < 1 << 20);
    }

    #[test]
    fn zip_drains_uneven_streams() {
        let s1 = SeqStream::new(0, 64, 1, AccessMix::read_only()); // 1 access
        let s2 = SeqStream::new(1 << 20, 64 * 5, 1, AccessMix::read_only()); // 5
        let accs = drain(ZipStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 6);
    }

    #[test]
    fn chain_runs_phases_in_order() {
        let s1 = SeqStream::new(0, 64 * 3, 1, AccessMix::read_only());
        let s2 = SeqStream::new(1 << 20, 64 * 2, 1, AccessMix::read_only());
        let accs = drain(ChainStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 5);
        assert!(accs[..3].iter().all(|a| a.addr < 1 << 20));
        assert!(accs[3..].iter().all(|a| a.addr >= 1 << 20));
    }

    #[test]
    fn with_start_rotates_and_keeps_pass_length() {
        let accs = drain(SeqStream::new(0, 64 * 4, 2, AccessMix::read_only()).with_start(64 * 2));
        assert_eq!(accs.len(), 8, "rotation must not change total work");
        let addrs: Vec<u64> = accs.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, [128, 192, 0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn with_start_and_stride_gives_disjoint_phases() {
        // Four threads interleave-partitioning 16 lines: thread 1 touches
        // lines 1, 5, 9, 13 in every pass.
        let accs = drain(SeqStream::new(0, 64 * 16, 2, AccessMix::read_only()).with_stride(64 * 4).with_start(64));
        assert_eq!(accs.len(), 8);
        let addrs: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(addrs, [1, 5, 9, 13, 1, 5, 9, 13]);
    }

    #[test]
    #[should_panic(expected = "beyond scan length")]
    fn with_start_bounds_checked() {
        SeqStream::new(0, 64, 1, AccessMix::read_only()).with_start(64);
    }

    #[test]
    fn block_cyclic_visits_owned_blocks_line_by_line() {
        // 4 blocks of 2 lines; way 2, phase 1 => blocks 1 and 3.
        let accs = drain(BlockCyclicStream::new(0, 8 * 64, 128, 2, 1, 2, AccessMix::read_only()));
        let lines: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(lines, [2, 3, 6, 7, 2, 3, 6, 7]);
    }

    #[test]
    fn block_cyclic_partitions_are_disjoint_and_cover() {
        let way = 4u64;
        let mut all: Vec<u64> = Vec::new();
        for phase in 0..way {
            let accs = drain(BlockCyclicStream::new(0, 64 * 64, 256, way, phase, 1, AccessMix::read_only()));
            all.extend(accs.iter().map(|a| a.addr / 64));
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..64).collect();
        assert_eq!(all, expect, "phases must partition every line exactly once");
    }

    #[test]
    fn block_cyclic_handles_partial_tail_block() {
        // 3.5 blocks: the tail block is shorter but still visited.
        let accs = drain(BlockCyclicStream::new(0, 7 * 64, 128, 2, 1, 1, AccessMix::read_only()));
        let lines: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(lines, [2, 3, 6]);
    }

    #[test]
    #[should_panic(expected = "phase must be below")]
    fn block_cyclic_phase_bound() {
        BlockCyclicStream::new(0, 1024, 64, 2, 2, 1, AccessMix::read_only());
    }

    #[test]
    fn with_mlp_overrides_only_mlp() {
        let chase = PointerChaseStream::new(0, 4, 64, 8, 0).with_compute(3.0);
        let wrapped = WithMlp::new(chase, 6.0);
        assert_eq!(wrapped.mlp(), Some(6.0));
        assert_eq!(wrapped.compute_cycles(), 3.0);
        assert_eq!(drain(wrapped).len(), 8);
    }

    #[test]
    #[should_panic(expected = "mlp must be at least 1")]
    fn with_mlp_rejects_fractional() {
        WithMlp::new(SeqStream::new(0, 64, 1, AccessMix::read_only()), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty scan")]
    fn seq_rejects_zero_len() {
        SeqStream::new(0, 0, 1, AccessMix::read_only());
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn mix_rejects_zero_period() {
        AccessMix::write_every(0);
    }

    /// Drain a stream via `next_run`, cycling through a schedule of `max`
    /// caps, and expand every run back into individual accesses.
    fn drain_runs(s: &mut dyn AccessStream, schedule: &[u64]) -> Vec<(Access, f64, Option<f64>)> {
        let mut v = Vec::new();
        let mut k = 0;
        while let Some(r) = s.next_run(schedule[k % schedule.len()]) {
            k += 1;
            assert!(r.len >= 1, "empty run");
            assert!(r.len <= schedule[(k - 1) % schedule.len()].max(1), "run exceeds cap");
            for i in 0..r.len {
                v.push((Access { addr: r.addr(i), is_write: r.is_write, reps: r.reps }, r.compute, r.mlp));
                assert!(v.len() < 1_000_000, "stream failed to terminate");
            }
        }
        v
    }

    fn assert_runs_match_accesses(make: &dyn Fn() -> Box<dyn AccessStream>) {
        let expect = drain(make());
        for schedule in [&[1u64][..], &[7], &[64], &[u64::MAX], &[1, 7, 64, u64::MAX]] {
            let mut s = make();
            let got: Vec<Access> = drain_runs(s.as_mut(), schedule).into_iter().map(|(a, _, _)| a).collect();
            assert_eq!(got, expect, "schedule {schedule:?} diverged from next_access");
        }
    }

    #[test]
    fn next_run_expands_to_next_access_sequence() {
        let makers: Vec<Box<dyn Fn() -> Box<dyn AccessStream>>> = vec![
            Box::new(|| Box::new(SeqStream::new(0, 64 * 37, 3, AccessMix::write_every(4)))),
            Box::new(|| {
                Box::new(SeqStream::new(0, 64 * 16, 2, AccessMix::write_only()).with_stride(64 * 4).with_start(64))
            }),
            Box::new(|| Box::new(SeqStream::new(0, 1024, 2, AccessMix::write_every(1)).with_stride(256).with_reps(8))),
            Box::new(|| Box::new(BlockCyclicStream::new(0, 7 * 64, 128, 2, 1, 3, AccessMix::write_every(2)))),
            Box::new(|| Box::new(BlockCyclicStream::new(0, 64 * 64, 256, 4, 3, 2, AccessMix::read_only()))),
            Box::new(|| Box::new(RandomStream::new(0, 64 * 64, 100, 42, AccessMix::write_every(3)))),
            Box::new(|| Box::new(PointerChaseStream::new(0, 8, 4096, 20, 7))),
            Box::new(|| {
                Box::new(ZipStream::new(vec![
                    Box::new(SeqStream::new(0, 64 * 3, 1, AccessMix::read_only())),
                    Box::new(SeqStream::new(1 << 20, 64 * 9, 1, AccessMix::write_every(2))),
                ]))
            }),
            Box::new(|| {
                Box::new(ChainStream::new(vec![
                    Box::new(SeqStream::new(0, 64 * 5, 1, AccessMix::read_only())),
                    Box::new(BlockCyclicStream::new(1 << 20, 8 * 64, 128, 2, 0, 1, AccessMix::write_every(3))),
                ]))
            }),
            Box::new(|| Box::new(WithMlp::new(SeqStream::new(0, 64 * 11, 2, AccessMix::write_every(5)), 6.0))),
        ];
        for make in &makers {
            assert_runs_match_accesses(&|| make());
        }
    }

    #[test]
    fn chain_runs_carry_per_segment_costs() {
        let make = || {
            ChainStream::new(vec![
                Box::new(SeqStream::new(0, 64 * 3, 1, AccessMix::read_only()).with_compute(2.0))
                    as Box<dyn AccessStream>,
                Box::new(WithMlp::new(
                    SeqStream::new(1 << 20, 64 * 2, 1, AccessMix::read_only()).with_compute(9.0),
                    2.0,
                )),
            ])
        };
        for schedule in [&[1u64][..], &[u64::MAX]] {
            let mut s = make();
            let got = drain_runs(&mut s, schedule);
            assert_eq!(got.len(), 5);
            for (a, c, m) in &got[..3] {
                assert!(a.addr < 1 << 20);
                assert_eq!((*c, *m), (2.0, None), "first segment costs");
            }
            for (a, c, m) in &got[3..] {
                assert!(a.addr >= 1 << 20);
                assert_eq!((*c, *m), (9.0, Some(2.0)), "second segment costs");
            }
        }
    }

    #[test]
    fn zip_skips_exhausted_member_when_reporting_costs() {
        // One short expensive member, one long cheap member. After the
        // short member drains, the advertised cost must be the cheap one's.
        let mut zip = ZipStream::new(vec![
            Box::new(SeqStream::new(0, 64 * 2, 1, AccessMix::read_only()).with_compute(10.0)) as Box<dyn AccessStream>,
            Box::new(WithMlp::new(SeqStream::new(1 << 20, 64 * 6, 1, AccessMix::read_only()).with_compute(1.0), 3.0)),
        ]);
        // Interleaved prefix: short, long, short, long.
        for expect in [10.0, 1.0, 10.0, 1.0] {
            assert_eq!(zip.compute_cycles(), expect);
            zip.next_access().unwrap();
        }
        // The short member is exhausted (the zip just doesn't know yet):
        // the next access comes from the long member, so the advertised
        // cost must be the long member's, not the drained short one's.
        assert_eq!(zip.compute_cycles(), 1.0);
        assert_eq!(zip.mlp(), Some(3.0));
        let rest = drain(zip);
        assert_eq!(rest.len(), 4, "long member finishes");
    }

    #[test]
    fn zip_runs_carry_producing_member_costs() {
        let make = || {
            ZipStream::new(vec![
                Box::new(SeqStream::new(0, 64 * 2, 1, AccessMix::read_only()).with_compute(10.0))
                    as Box<dyn AccessStream>,
                Box::new(SeqStream::new(1 << 20, 64 * 5, 1, AccessMix::read_only()).with_compute(1.0)),
            ])
        };
        for schedule in [&[1u64][..], &[7], &[1, 7, 64, u64::MAX]] {
            let mut s = make();
            let got = drain_runs(&mut s, schedule);
            assert_eq!(got.len(), 7);
            for (a, c, _) in &got {
                let expect = if a.addr < 1 << 20 { 10.0 } else { 1.0 };
                assert_eq!(*c, expect, "run cost must come from the producing member");
            }
        }
    }

    #[test]
    fn zip_next_zip_reproduces_per_access_order() {
        // The interleaved-span contract: expanding the lanes returned by
        // `next_zip` as lane0[i], lane1[i], lane2[i], lane0[i+1], ... must
        // reproduce the per-access drain exactly — addresses, writeness,
        // and reps — including across window caps (the write boundary in
        // member c) and after the short member b drains.
        let make = || {
            ZipStream::new(vec![
                Box::new(SeqStream::new(0, 64 * 40, 2, AccessMix::read_only()).with_reps(4)) as Box<dyn AccessStream>,
                Box::new(SeqStream::new(1 << 20, 64 * 24, 1, AccessMix::read_only())),
                Box::new(SeqStream::new(2 << 20, 64 * 40, 2, AccessMix::write_every(9)).with_reps(2)),
            ])
        };
        let oracle: Vec<Access> = drain(make());
        let mut zip = make();
        let mut got: Vec<Access> = Vec::new();
        let mut lanes = Vec::new();
        loop {
            let iters = zip.next_zip(64, 7, &mut lanes);
            if iters > 0 {
                assert!(lanes.iter().all(|l| l.len == iters), "every lane spans the same iterations");
                for i in 0..iters {
                    for l in &lanes {
                        got.push(Access { addr: l.base + i * l.stride, is_write: l.is_write, reps: l.reps });
                    }
                }
            } else {
                let Some(a) = zip.next_access() else { break };
                got.push(a);
            }
            assert!(got.len() <= oracle.len(), "zip expansion overshot the oracle");
        }
        assert!(got
            .iter()
            .zip(&oracle)
            .all(|(g, o)| { g.addr == o.addr && g.is_write == o.is_write && g.reps == o.reps }));
        assert_eq!(got.len(), oracle.len());
    }

    #[test]
    fn mix_run_len_splits_at_write_boundaries() {
        let mix = AccessMix::write_every(4);
        // counter = 0: accesses 1, 2, 3 are reads, access 4 writes.
        assert_eq!(mix.run_len(0, 100), (3, false));
        assert_eq!(mix.run_len(3, 100), (1, true));
        assert_eq!(mix.run_len(4, 2), (2, false));
        assert_eq!(AccessMix::read_only().run_len(5, 9), (9, false));
        assert_eq!(AccessMix::write_only().run_len(5, 9), (9, true));
    }
}

//! Memory access streams: the workload side of the simulator.
//!
//! A simulated thread is driven by an [`AccessStream`] — an iterator of
//! [`Access`]es at cache-line granularity. Streams carry two performance
//! attributes the engine consults:
//!
//! * `compute_cycles` — arithmetic work between memory operations
//!   (compute-bound codes like Blackscholes have high values; streaming
//!   kernels ~1–4 cycles);
//! * `mlp` — memory-level parallelism. Independent loads (array scans)
//!   overlap several outstanding misses; dependent loads (pointer chasing,
//!   as in the bandit micro-benchmark) expose the full miss latency.
//!
//! `reps` on an [`Access`] models multiple loads landing in the same cache
//! line (e.g. eight 8-byte elements per 64-byte line): the line is fetched
//! once and the remaining loads are satisfied by the line-fill buffer,
//! which is exactly how PEBS attributes them on real hardware.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One memory operation at line granularity.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Access {
    /// Byte address touched.
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Number of element accesses this line-granular operation represents
    /// (≥ 1). Loads beyond the first hit the line-fill buffer when the
    /// first missed to DRAM.
    pub reps: u16,
}

/// Read/write composition of a stream.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AccessMix {
    /// Every `write_every`-th access is a write; 0 means read-only.
    pub write_every: u32,
}

impl AccessMix {
    /// All loads.
    pub fn read_only() -> Self {
        Self { write_every: 0 }
    }

    /// All stores.
    pub fn write_only() -> Self {
        Self { write_every: 1 }
    }

    /// One store per `n` accesses (n ≥ 1).
    ///
    /// # Panics
    /// Panics if `n == 0` (use [`AccessMix::read_only`] for no writes).
    pub fn write_every(n: u32) -> Self {
        assert!(n >= 1, "write_every(0) is ambiguous; use read_only()");
        Self { write_every: n }
    }

    #[inline]
    fn is_write(&self, counter: u64) -> bool {
        self.write_every != 0 && counter.is_multiple_of(self.write_every as u64)
    }
}

/// A source of memory accesses for one simulated thread.
///
/// Streams must be deterministic: all randomness is seeded.
pub trait AccessStream: Send {
    /// The next access, or `None` when the thread has finished its work.
    fn next_access(&mut self) -> Option<Access>;

    /// Arithmetic cycles between consecutive memory operations.
    fn compute_cycles(&self) -> f64 {
        2.0
    }

    /// Memory-level parallelism override; `None` uses the machine default.
    fn mlp(&self) -> Option<f64> {
        None
    }
}

/// Sequential scan over `[base, base + len)` with a fixed stride,
/// repeated for a number of passes. The canonical streaming kernel
/// (sumv/dotv/countv shares, stencil sweeps).
#[derive(Debug, Clone)]
pub struct SeqStream {
    base: u64,
    len: u64,
    stride: u64,
    passes: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    mlp: Option<f64>,
    cursor: u64,
    start: u64,
    wrap_to: u64,
    steps_per_pass: u64,
    step: u64,
    pass: u64,
    counter: u64,
}

impl SeqStream {
    /// Scan `len` bytes starting at `base`, `passes` times, touching one
    /// line (64 bytes) per step.
    ///
    /// # Panics
    /// Panics if `len == 0` or `passes == 0`.
    pub fn new(base: u64, len: u64, passes: u64, mix: AccessMix) -> Self {
        assert!(len > 0 && passes > 0, "empty scan");
        let mut s = Self {
            base,
            len,
            stride: 64,
            passes,
            mix,
            reps: 1,
            compute: 2.0,
            mlp: None,
            cursor: 0,
            start: 0,
            wrap_to: 0,
            steps_per_pass: 0,
            step: 0,
            pass: 0,
            counter: 0,
        };
        s.recompute_steps();
        s
    }

    fn recompute_steps(&mut self) {
        // The phase within a stride is preserved across wraps, so a pass
        // visits the offsets `wrap_to, wrap_to + stride, …` below `len`.
        self.wrap_to = self.start % self.stride;
        self.cursor = self.start;
        self.steps_per_pass = (self.len - self.wrap_to).div_ceil(self.stride);
    }

    /// Set the step in bytes (defaults to one 64-byte line).
    pub fn with_stride(mut self, stride: u64) -> Self {
        assert!(stride > 0);
        self.stride = stride;
        self.recompute_steps();
        self
    }

    /// Start the traversal at byte offset `start` instead of 0, wrapping at
    /// the end. Two uses: rotating co-running threads' traversals so they
    /// do not move through memory in lockstep, and (with a stride larger
    /// than `start`) giving each thread its own disjoint interleaved line
    /// set — the sub-stride phase `start % stride` is preserved across
    /// wraps.
    ///
    /// # Panics
    /// Panics if `start >= len`.
    pub fn with_start(mut self, start: u64) -> Self {
        assert!(start < self.len, "start offset beyond scan length");
        self.start = start;
        self.recompute_steps();
        self
    }

    /// Set element accesses per line (see [`Access::reps`]).
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }

    /// Override memory-level parallelism.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0);
        self.mlp = Some(mlp);
        self
    }
}

impl AccessStream for SeqStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.pass == self.passes {
            return None;
        }
        let addr = self.base + self.cursor;
        self.cursor += self.stride;
        if self.cursor >= self.len {
            self.cursor = self.wrap_to;
        }
        self.step += 1;
        if self.step == self.steps_per_pass {
            self.step = 0;
            self.pass += 1;
        }
        self.counter += 1;
        Some(Access { addr, is_write: self.mix.is_write(self.counter), reps: self.reps })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        self.mlp
    }
}

/// Alias emphasising a non-unit stride; construct via
/// [`SeqStream::with_stride`].
pub type StridedStream = SeqStream;

/// Uniform random line accesses within `[base, base + len)` — the pattern
/// of Streamcluster's distance computations over the shared `block` array.
#[derive(Debug, Clone)]
pub struct RandomStream {
    base: u64,
    lines: u64,
    remaining: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    mlp: Option<f64>,
    rng: StdRng,
    counter: u64,
}

impl RandomStream {
    /// `count` random line-granular accesses over `len` bytes at `base`,
    /// deterministic under `seed`.
    ///
    /// # Panics
    /// Panics if `len < 64` or `count == 0`.
    pub fn new(base: u64, len: u64, count: u64, seed: u64, mix: AccessMix) -> Self {
        assert!(len >= 64 && count > 0, "degenerate random stream");
        Self {
            base,
            lines: len / 64,
            remaining: count,
            mix,
            reps: 1,
            compute: 4.0,
            mlp: None,
            rng: StdRng::seed_from_u64(seed),
            counter: 0,
        }
    }

    /// Set element accesses per line.
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }

    /// Override memory-level parallelism.
    pub fn with_mlp(mut self, mlp: f64) -> Self {
        assert!(mlp >= 1.0);
        self.mlp = Some(mlp);
        self
    }
}

impl AccessStream for RandomStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.counter += 1;
        let line = self.rng.gen_range(0..self.lines);
        Some(Access { addr: self.base + line * 64, is_write: self.mix.is_write(self.counter), reps: self.reps })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        self.mlp
    }
}

/// Dependent pointer chasing over a fixed set of conflicting lines — the
/// bandit micro-benchmark's engine. Every access conflicts with its
/// predecessors in the cache (same set), so each goes to memory, and the
/// chain dependency exposes full latency (`mlp == 1`).
#[derive(Debug, Clone)]
pub struct PointerChaseStream {
    /// Line addresses in chase order (a random cycle).
    ring: Vec<u64>,
    pos: usize,
    remaining: u64,
    compute: f64,
}

impl PointerChaseStream {
    /// Build a chase over `num_lines` lines spaced `stride` bytes apart
    /// starting at `base` (choose `stride = sets × 64` to land every line
    /// in one cache set), shuffled deterministically by `seed`, visited
    /// `count` times in total.
    ///
    /// # Panics
    /// Panics if `num_lines < 2` or `count == 0`.
    pub fn new(base: u64, num_lines: usize, stride: u64, count: u64, seed: u64) -> Self {
        assert!(num_lines >= 2 && count > 0, "degenerate pointer chase");
        let mut ring: Vec<u64> = (0..num_lines as u64).map(|i| base + i * stride).collect();
        // Fisher–Yates with a seeded RNG: a deterministic random cycle.
        let mut rng = StdRng::seed_from_u64(seed);
        for i in (1..ring.len()).rev() {
            ring.swap(i, rng.gen_range(0..=i));
        }
        Self { ring, pos: 0, remaining: count, compute: 1.0 }
    }

    /// Set compute cycles between chase steps.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }
}

impl AccessStream for PointerChaseStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        let addr = self.ring[self.pos];
        self.pos += 1;
        if self.pos == self.ring.len() {
            self.pos = 0;
        }
        Some(Access { addr, is_write: false, reps: 1 })
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }

    fn mlp(&self) -> Option<f64> {
        Some(1.0) // dependent loads: no overlap
    }
}

/// Round-robin interleaving of several streams — models loops touching
/// multiple arrays per iteration (dotv's `a[i] * b[i]`, IRSmk's 27-array
/// stencil update). Finishes when every sub-stream is exhausted.
pub struct ZipStream {
    streams: Vec<Box<dyn AccessStream>>,
    next: usize,
}

impl ZipStream {
    /// Interleave the given streams one access at a time.
    ///
    /// # Panics
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<Box<dyn AccessStream>>) -> Self {
        assert!(!streams.is_empty(), "ZipStream needs at least one stream");
        Self { streams, next: 0 }
    }
}

impl AccessStream for ZipStream {
    fn next_access(&mut self) -> Option<Access> {
        let n = self.streams.len();
        for _ in 0..n {
            let i = self.next;
            self.next = (self.next + 1) % n;
            if let Some(a) = self.streams[i].next_access() {
                return Some(a);
            }
        }
        None
    }

    fn compute_cycles(&self) -> f64 {
        self.streams[self.next].compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.streams[self.next].mlp()
    }
}

/// Block-cyclic traversal: of the blocks of `block` bytes tiling
/// `[base, base + len)`, this stream visits blocks `phase, phase + way,
/// phase + 2·way, …`, scanning each block line by line. With `way` set to
/// the thread count and `phase` to the thread id, co-running threads cover
/// the whole range with disjoint line sets and no cache-set aliasing —
/// the shape of a wavefront sweep over a shared matrix.
#[derive(Debug, Clone)]
pub struct BlockCyclicStream {
    base: u64,
    len: u64,
    block: u64,
    way: u64,
    phase: u64,
    passes: u64,
    mix: AccessMix,
    reps: u16,
    compute: f64,
    /// Current block index and byte offset within it.
    cur_block: u64,
    cur_off: u64,
    pass: u64,
    counter: u64,
}

impl BlockCyclicStream {
    /// Build a block-cyclic stream.
    ///
    /// # Panics
    /// Panics if dimensions are degenerate, `phase >= way`, or the range
    /// has no block for this phase.
    pub fn new(base: u64, len: u64, block: u64, way: u64, phase: u64, passes: u64, mix: AccessMix) -> Self {
        assert!(len > 0 && block > 0 && passes > 0 && way > 0, "degenerate block-cyclic stream");
        assert!(phase < way, "phase must be below the way count");
        assert!(phase * block < len, "no block for this phase in the range");
        Self {
            base,
            len,
            block,
            way,
            phase,
            passes,
            mix,
            reps: 1,
            compute: 2.0,
            cur_block: phase,
            cur_off: 0,
            pass: 0,
            counter: 0,
        }
    }

    /// Set element accesses per line.
    pub fn with_reps(mut self, reps: u16) -> Self {
        assert!(reps >= 1);
        self.reps = reps;
        self
    }

    /// Set compute cycles between memory operations.
    pub fn with_compute(mut self, cycles: f64) -> Self {
        assert!(cycles >= 0.0);
        self.compute = cycles;
        self
    }
}

impl AccessStream for BlockCyclicStream {
    #[inline]
    fn next_access(&mut self) -> Option<Access> {
        if self.pass == self.passes {
            return None;
        }
        let block_start = self.cur_block * self.block;
        let addr = self.base + block_start + self.cur_off;
        self.counter += 1;
        let acc = Access { addr, is_write: self.mix.is_write(self.counter), reps: self.reps };
        // Advance: next line in block, next owned block, or next pass.
        self.cur_off += 64;
        if self.cur_off >= self.block || block_start + self.cur_off >= self.len {
            self.cur_off = 0;
            self.cur_block += self.way;
            if self.cur_block * self.block >= self.len {
                self.cur_block = self.phase;
                self.pass += 1;
            }
        }
        Some(acc)
    }

    fn compute_cycles(&self) -> f64 {
        self.compute
    }
}

/// Wraps a stream, overriding its memory-level parallelism — e.g. a bandit
/// instance running `k` independent pointer-chase streams keeps `k` misses
/// in flight even though each chain alone has `mlp == 1`.
pub struct WithMlp<S> {
    inner: S,
    mlp: f64,
}

impl<S: AccessStream> WithMlp<S> {
    /// Override `inner`'s MLP.
    ///
    /// # Panics
    /// Panics if `mlp < 1`.
    pub fn new(inner: S, mlp: f64) -> Self {
        assert!(mlp >= 1.0, "mlp must be at least 1");
        Self { inner, mlp }
    }
}

impl<S: AccessStream> AccessStream for WithMlp<S> {
    fn next_access(&mut self) -> Option<Access> {
        self.inner.next_access()
    }

    fn compute_cycles(&self) -> f64 {
        self.inner.compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        Some(self.mlp)
    }
}

/// Sequential composition of streams — phases within one thread.
pub struct ChainStream {
    streams: Vec<Box<dyn AccessStream>>,
    current: usize,
}

impl ChainStream {
    /// Run the given streams back to back.
    ///
    /// # Panics
    /// Panics if `streams` is empty.
    pub fn new(streams: Vec<Box<dyn AccessStream>>) -> Self {
        assert!(!streams.is_empty(), "ChainStream needs at least one stream");
        Self { streams, current: 0 }
    }
}

impl AccessStream for ChainStream {
    fn next_access(&mut self) -> Option<Access> {
        while self.current < self.streams.len() {
            if let Some(a) = self.streams[self.current].next_access() {
                return Some(a);
            }
            self.current += 1;
        }
        None
    }

    fn compute_cycles(&self) -> f64 {
        self.streams[self.current.min(self.streams.len() - 1)].compute_cycles()
    }

    fn mlp(&self) -> Option<f64> {
        self.streams[self.current.min(self.streams.len() - 1)].mlp()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(mut s: impl AccessStream) -> Vec<Access> {
        let mut v = Vec::new();
        while let Some(a) = s.next_access() {
            v.push(a);
            assert!(v.len() < 1_000_000, "stream failed to terminate");
        }
        v
    }

    #[test]
    fn seq_stream_visits_every_line_once_per_pass() {
        let accs = drain(SeqStream::new(0, 64 * 10, 2, AccessMix::read_only()));
        assert_eq!(accs.len(), 20);
        assert_eq!(accs[0].addr, 0);
        assert_eq!(accs[9].addr, 64 * 9);
        assert_eq!(accs[10].addr, 0, "second pass restarts");
        assert!(accs.iter().all(|a| !a.is_write));
    }

    #[test]
    fn seq_stream_stride_and_reps() {
        let accs = drain(SeqStream::new(0, 1024, 1, AccessMix::read_only()).with_stride(256).with_reps(8));
        assert_eq!(accs.len(), 4);
        assert!(accs.iter().all(|a| a.reps == 8));
        assert_eq!(accs[1].addr, 256);
    }

    #[test]
    fn write_mix_period() {
        let accs = drain(SeqStream::new(0, 64 * 8, 1, AccessMix::write_every(4)));
        let writes = accs.iter().filter(|a| a.is_write).count();
        assert_eq!(writes, 2);
        let all_writes = drain(SeqStream::new(0, 64 * 8, 1, AccessMix::write_only()));
        assert!(all_writes.iter().all(|a| a.is_write));
    }

    #[test]
    fn random_stream_in_bounds_and_deterministic() {
        let a1 = drain(RandomStream::new(4096, 64 * 100, 500, 42, AccessMix::read_only()));
        let a2 = drain(RandomStream::new(4096, 64 * 100, 500, 42, AccessMix::read_only()));
        assert_eq!(a1, a2, "same seed, same stream");
        assert_eq!(a1.len(), 500);
        for a in &a1 {
            assert!(a.addr >= 4096 && a.addr < 4096 + 6400);
            assert_eq!(a.addr % 64, 0);
        }
        let a3 = drain(RandomStream::new(4096, 64 * 100, 500, 43, AccessMix::read_only()));
        assert_ne!(a1, a3, "different seed, different stream");
    }

    #[test]
    fn pointer_chase_is_a_cycle_over_all_lines() {
        let n = 16;
        let accs = drain(PointerChaseStream::new(0, n, 4096, n as u64, 7));
        let mut addrs: Vec<u64> = accs.iter().map(|a| a.addr).collect();
        addrs.sort_unstable();
        addrs.dedup();
        assert_eq!(addrs.len(), n, "one pass visits every line exactly once");
        // Dependent chain: mlp forced to 1.
        assert_eq!(PointerChaseStream::new(0, 4, 64, 1, 0).mlp(), Some(1.0));
    }

    #[test]
    fn pointer_chase_conflicting_stride() {
        // stride chosen so all lines share cache set 0 for a 64-set cache
        let accs = drain(PointerChaseStream::new(0, 8, 64 * 64, 8, 1));
        for a in &accs {
            assert_eq!((a.addr / 64) % 64, 0, "all lines map to set 0");
        }
    }

    #[test]
    fn zip_alternates() {
        let s1 = SeqStream::new(0, 64 * 2, 1, AccessMix::read_only());
        let s2 = SeqStream::new(1 << 20, 64 * 2, 1, AccessMix::read_only());
        let accs = drain(ZipStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 4);
        assert!(accs[0].addr < 1 << 20);
        assert!(accs[1].addr >= 1 << 20);
        assert!(accs[2].addr < 1 << 20);
    }

    #[test]
    fn zip_drains_uneven_streams() {
        let s1 = SeqStream::new(0, 64, 1, AccessMix::read_only()); // 1 access
        let s2 = SeqStream::new(1 << 20, 64 * 5, 1, AccessMix::read_only()); // 5
        let accs = drain(ZipStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 6);
    }

    #[test]
    fn chain_runs_phases_in_order() {
        let s1 = SeqStream::new(0, 64 * 3, 1, AccessMix::read_only());
        let s2 = SeqStream::new(1 << 20, 64 * 2, 1, AccessMix::read_only());
        let accs = drain(ChainStream::new(vec![Box::new(s1), Box::new(s2)]));
        assert_eq!(accs.len(), 5);
        assert!(accs[..3].iter().all(|a| a.addr < 1 << 20));
        assert!(accs[3..].iter().all(|a| a.addr >= 1 << 20));
    }

    #[test]
    fn with_start_rotates_and_keeps_pass_length() {
        let accs = drain(SeqStream::new(0, 64 * 4, 2, AccessMix::read_only()).with_start(64 * 2));
        assert_eq!(accs.len(), 8, "rotation must not change total work");
        let addrs: Vec<u64> = accs.iter().map(|a| a.addr).collect();
        assert_eq!(addrs, [128, 192, 0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn with_start_and_stride_gives_disjoint_phases() {
        // Four threads interleave-partitioning 16 lines: thread 1 touches
        // lines 1, 5, 9, 13 in every pass.
        let accs = drain(SeqStream::new(0, 64 * 16, 2, AccessMix::read_only()).with_stride(64 * 4).with_start(64));
        assert_eq!(accs.len(), 8);
        let addrs: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(addrs, [1, 5, 9, 13, 1, 5, 9, 13]);
    }

    #[test]
    #[should_panic(expected = "beyond scan length")]
    fn with_start_bounds_checked() {
        SeqStream::new(0, 64, 1, AccessMix::read_only()).with_start(64);
    }

    #[test]
    fn block_cyclic_visits_owned_blocks_line_by_line() {
        // 4 blocks of 2 lines; way 2, phase 1 => blocks 1 and 3.
        let accs = drain(BlockCyclicStream::new(0, 8 * 64, 128, 2, 1, 2, AccessMix::read_only()));
        let lines: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(lines, [2, 3, 6, 7, 2, 3, 6, 7]);
    }

    #[test]
    fn block_cyclic_partitions_are_disjoint_and_cover() {
        let way = 4u64;
        let mut all: Vec<u64> = Vec::new();
        for phase in 0..way {
            let accs = drain(BlockCyclicStream::new(0, 64 * 64, 256, way, phase, 1, AccessMix::read_only()));
            all.extend(accs.iter().map(|a| a.addr / 64));
        }
        all.sort_unstable();
        let expect: Vec<u64> = (0..64).collect();
        assert_eq!(all, expect, "phases must partition every line exactly once");
    }

    #[test]
    fn block_cyclic_handles_partial_tail_block() {
        // 3.5 blocks: the tail block is shorter but still visited.
        let accs = drain(BlockCyclicStream::new(0, 7 * 64, 128, 2, 1, 1, AccessMix::read_only()));
        let lines: Vec<u64> = accs.iter().map(|a| a.addr / 64).collect();
        assert_eq!(lines, [2, 3, 6]);
    }

    #[test]
    #[should_panic(expected = "phase must be below")]
    fn block_cyclic_phase_bound() {
        BlockCyclicStream::new(0, 1024, 64, 2, 2, 1, AccessMix::read_only());
    }

    #[test]
    fn with_mlp_overrides_only_mlp() {
        let chase = PointerChaseStream::new(0, 4, 64, 8, 0).with_compute(3.0);
        let wrapped = WithMlp::new(chase, 6.0);
        assert_eq!(wrapped.mlp(), Some(6.0));
        assert_eq!(wrapped.compute_cycles(), 3.0);
        assert_eq!(drain(wrapped).len(), 8);
    }

    #[test]
    #[should_panic(expected = "mlp must be at least 1")]
    fn with_mlp_rejects_fractional() {
        WithMlp::new(SeqStream::new(0, 64, 1, AccessMix::read_only()), 0.5);
    }

    #[test]
    #[should_panic(expected = "empty scan")]
    fn seq_rejects_zero_len() {
        SeqStream::new(0, 0, 1, AccessMix::read_only());
    }

    #[test]
    #[should_panic(expected = "ambiguous")]
    fn mix_rejects_zero_period() {
        AccessMix::write_every(0);
    }
}

//! Run statistics reported by the engine.

use crate::hierarchy::DataSource;

/// Counts of access events by satisfying source.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AccessCounts {
    /// L1 hits.
    pub l1: u64,
    /// L2 hits.
    pub l2: u64,
    /// L3 hits.
    pub l3: u64,
    /// Line-fill-buffer hits.
    pub lfb: u64,
    /// Local DRAM accesses.
    pub local_dram: u64,
    /// Remote DRAM accesses.
    pub remote_dram: u64,
}

impl AccessCounts {
    /// Bump the counter for `source`.
    #[inline]
    pub fn record(&mut self, source: DataSource) {
        match source {
            DataSource::L1 => self.l1 += 1,
            DataSource::L2 => self.l2 += 1,
            DataSource::L3 => self.l3 += 1,
            DataSource::Lfb => self.lfb += 1,
            DataSource::LocalDram => self.local_dram += 1,
            DataSource::RemoteDram => self.remote_dram += 1,
        }
    }

    /// Bump the counter for `source` by `n` (bulk path for uniform runs).
    #[inline]
    pub fn record_n(&mut self, source: DataSource, n: u64) {
        match source {
            DataSource::L1 => self.l1 += n,
            DataSource::L2 => self.l2 += n,
            DataSource::L3 => self.l3 += n,
            DataSource::Lfb => self.lfb += n,
            DataSource::LocalDram => self.local_dram += n,
            DataSource::RemoteDram => self.remote_dram += n,
        }
    }

    /// Fold another set of counts into this one (per-tenant rollups).
    pub fn merge(&mut self, other: &AccessCounts) {
        self.l1 += other.l1;
        self.l2 += other.l2;
        self.l3 += other.l3;
        self.lfb += other.lfb;
        self.local_dram += other.local_dram;
        self.remote_dram += other.remote_dram;
    }

    /// Total events.
    pub fn total(&self) -> u64 {
        self.l1 + self.l2 + self.l3 + self.lfb + self.local_dram + self.remote_dram
    }

    /// All DRAM events (local + remote).
    pub fn dram(&self) -> u64 {
        self.local_dram + self.remote_dram
    }

    /// Fraction of DRAM accesses that were remote; 0 with no DRAM traffic.
    pub fn remote_fraction(&self) -> f64 {
        if self.dram() == 0 {
            0.0
        } else {
            self.remote_dram as f64 / self.dram() as f64
        }
    }
}

/// Result of executing one phase on the engine.
///
/// `PartialEq` compares every field exactly (no float tolerance): the
/// differential tests use it to prove the batched and reference execution
/// modes are bit-identical.
#[derive(Debug, Clone, PartialEq)]
pub struct RunStats {
    /// Simulated cycles: the finish time of the slowest thread.
    pub cycles: f64,
    /// Finish time per thread, indexed by thread position in the spec list.
    pub thread_cycles: Vec<f64>,
    /// Access counts by source.
    pub counts: AccessCounts,
    /// Total bytes per directed channel (dense channel index order).
    pub channel_bytes: Vec<f64>,
    /// Total bytes per memory controller.
    pub mc_bytes: Vec<f64>,
    /// Peak per-round utilization per channel.
    pub channel_max_rho: Vec<f64>,
    /// Peak per-round utilization per memory controller.
    pub mc_max_rho: Vec<f64>,
    /// Time-averaged utilization per channel.
    pub channel_avg_rho: Vec<f64>,
    /// Time-averaged utilization per memory controller.
    pub mc_avg_rho: Vec<f64>,
    /// Accounting rounds executed.
    pub rounds: u64,
}

impl RunStats {
    /// Mean access latency implied by counts and cycles is not tracked here;
    /// this helper gives throughput in access events per kilocycle.
    pub fn events_per_kcycle(&self) -> f64 {
        if self.cycles == 0.0 {
            0.0
        } else {
            self.counts.total() as f64 / self.cycles * 1000.0
        }
    }

    /// Speedup of `self` relative to a `baseline` run of the same work.
    pub fn speedup_over(&self, baseline: &RunStats) -> f64 {
        baseline.cycles / self.cycles
    }

    /// Inbound memory pressure per node: the worse of the node's own
    /// controller utilization and its most loaded *incoming* interconnect
    /// channel (time averages over the phase). This is what the guided
    /// weight search equalises — a node is a bad place for more pages if
    /// either the controller or any link feeding it is the bottleneck.
    ///
    /// Channels use the dense row-major `(src, dst)` order of
    /// `Topology::channel_index`; an empty result means the run recorded no
    /// per-controller aggregates.
    pub fn node_pressure(&self) -> Vec<f64> {
        let n = self.mc_avg_rho.len();
        let mut p = self.mc_avg_rho.clone();
        if n < 2 || self.channel_avg_rho.len() != n * (n - 1) {
            return p;
        }
        for s in 0..n {
            for d in (0..n).filter(|&d| d != s) {
                let idx = s * (n - 1) + if d > s { d - 1 } else { d };
                p[d] = p[d].max(self.channel_avg_rho[idx]);
            }
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counts_record_and_total() {
        let mut c = AccessCounts::default();
        for s in DataSource::ALL {
            c.record(s);
        }
        assert_eq!(c.total(), 6);
        assert_eq!(c.dram(), 2);
        assert_eq!(c.remote_fraction(), 0.5);
    }

    #[test]
    fn remote_fraction_no_dram() {
        let c = AccessCounts { l1: 10, ..Default::default() };
        assert_eq!(c.remote_fraction(), 0.0);
    }

    #[test]
    fn speedup() {
        let mk = |cycles| RunStats {
            cycles,
            thread_cycles: vec![],
            counts: AccessCounts::default(),
            channel_bytes: vec![],
            mc_bytes: vec![],
            channel_max_rho: vec![],
            mc_max_rho: vec![],
            channel_avg_rho: vec![],
            mc_avg_rho: vec![],
            rounds: 0,
        };
        let base = mk(1000.0);
        let opt = mk(250.0);
        assert_eq!(opt.speedup_over(&base), 4.0);
        assert_eq!(base.speedup_over(&base), 1.0);
    }

    #[test]
    fn node_pressure_folds_inbound_channels() {
        // 3 nodes, 6 channels in row-major (src, dst) order:
        // 0→1, 0→2, 1→0, 1→2, 2→0, 2→1.
        let s = RunStats {
            cycles: 1.0,
            thread_cycles: vec![],
            counts: AccessCounts::default(),
            channel_bytes: vec![],
            mc_bytes: vec![],
            channel_max_rho: vec![],
            mc_max_rho: vec![],
            channel_avg_rho: vec![0.9, 0.1, 0.2, 0.3, 0.1, 0.4],
            mc_avg_rho: vec![0.5, 0.6, 0.05],
            rounds: 1,
        };
        let p = s.node_pressure();
        // Node 0: mc 0.5 vs inbound {1→0: 0.2, 2→0: 0.1}.
        assert_eq!(p[0], 0.5);
        // Node 1: mc 0.6 vs inbound {0→1: 0.9, 2→1: 0.4} → the hot link.
        assert_eq!(p[1], 0.9);
        // Node 2: mc 0.05 vs inbound {0→2: 0.1, 1→2: 0.3}.
        assert_eq!(p[2], 0.3);
    }
}

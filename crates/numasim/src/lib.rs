//! # numasim — a discrete-time NUMA machine simulator
//!
//! This crate is the hardware substrate for the DR-BW reproduction. The
//! original paper ran on a 32-core, 4-socket Intel Xeon E5-4650 and relied
//! on PEBS address sampling; neither is available here, so we simulate the
//! parts of the machine that the DR-BW profiler actually observes:
//!
//! * a **topology** of fully connected NUMA nodes, each with its own cores,
//!   shared last-level cache, and memory controller ([`topology`]);
//! * a **cache hierarchy** (per-core L1/L2, per-node L3, line-fill buffers)
//!   that classifies every access into a [`DataSource`] ([`cache`],
//!   [`hierarchy`]);
//! * a **memory map** with page-granularity placement policies — first
//!   touch, bind, interleave, co-locate, replicate — exactly the
//!   vocabulary libnuma gives the paper's optimizations ([`memmap`]);
//! * a **bandwidth model** that accounts bytes per interconnect channel and
//!   per memory controller each round and inflates DRAM latency with an
//!   M/D/1-style queueing factor as utilization approaches saturation
//!   ([`bandwidth`]) — this is what produces *bandwidth contention*;
//! * an **execution engine** that advances simulated threads, bound to
//!   cores, through their memory [`access`] streams in deterministic
//!   round-robin rounds ([`engine`]);
//! * a **discrete-event scheduler** over the same machine state that
//!   co-schedules several independent tenants with staggered arrivals,
//!   bursty phases, and mid-run core migration ([`sched`]).
//!
//! Addresses are synthetic: the simulator models *where* data lives and
//! *how long* accesses take, not data values. Workloads are therefore
//! access-pattern generators (see the `drbw-workloads` crate).
//!
//! ## Example
//!
//! ```
//! use numasim::prelude::*;
//!
//! let cfg = MachineConfig::scaled();
//! let mut mm = MemoryMap::new(&cfg);
//! // One 1 MiB array, all pages bound to node 0 (like a master-thread
//! // first-touch allocation).
//! let obj = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
//!
//! // Eight threads on node 1 stream over the array remotely.
//! let mut threads = Vec::new();
//! for t in 0..8u32 {
//!     let stream = SeqStream::new(obj.base, obj.size, 2, AccessMix::read_only())
//!         .with_compute(4.0);
//!     threads.push(ThreadSpec::new(t, CoreId(8 + t), Box::new(stream)));
//! }
//! let mut engine = Engine::new(&cfg, mm, NullObserver);
//! let stats = engine.run_phase(threads);
//! assert!(stats.counts.remote_dram > 0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod access;
pub mod bandwidth;
pub mod cache;
pub mod config;
pub mod engine;
pub mod fp;
pub mod hierarchy;
pub mod memmap;
pub mod sched;
pub mod shard;
// The one crate module allowed to use `unsafe`: hand-written SIMD
// intrinsics, each block carrying a SAFETY proof and a scalar twin
// differential-tested against it.
#[allow(unsafe_code)]
pub mod simd;
pub mod stats;
pub mod topology;

/// Convenient re-exports of the types most users need.
pub mod prelude {
    pub use crate::access::{
        Access, AccessMix, AccessRun, AccessStream, BlockCyclicStream, ChainStream, PointerChaseStream, RandomStream,
        SeqStream, StridedStream, WithMlp, ZipStream,
    };
    pub use crate::bandwidth::{BandwidthModel, Resource};
    pub use crate::cache::CacheStats;
    pub use crate::config::{
        CacheConfig, EngineConfig, ExecMode, InterconnectConfig, LatencyConfig, MachineConfig, MemConfig,
    };
    pub use crate::engine::{AccessEvent, Engine, NullObserver, Observer, ThreadSpec};
    pub use crate::hierarchy::DataSource;
    pub use crate::memmap::{MemoryMap, ObjectHandle, ObjectId, PlacementPolicy};
    pub use crate::sched::{BurstConfig, Migration, ScenarioEngine, ScenarioStats, TenantId, TenantRun, TenantStats};
    pub use crate::stats::{AccessCounts, RunStats};
    pub use crate::topology::{ChannelId, CoreId, NodeId, ThreadId, Topology};
}

pub use prelude::*;

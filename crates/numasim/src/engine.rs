//! The execution engine: advances simulated threads through their access
//! streams in deterministic rounds, modelling latency, bandwidth
//! contention, and cache behaviour, and reporting every access event to a
//! pluggable [`Observer`] (the PEBS sampler in `drbw-pebs`).
//!
//! ## Scheduling model
//!
//! Time advances in rounds of `round_cycles`. Within a round each thread
//! issues accesses until its private clock passes the round boundary; the
//! bandwidth model aggregates the round's DRAM traffic and derives latency
//! inflation factors for the *next* round (a closed-loop fluid
//! approximation — see [`crate::bandwidth`]). Threads are visited in a
//! fixed order, so runs are bit-for-bit deterministic regardless of host
//! parallelism.
//!
//! ## Clock accounting
//!
//! Per access: `clock += compute + latency / mlp`. `mlp` is the stream's
//! memory-level parallelism (dependent pointer chases use 1). Extra loads
//! to the same line (`reps > 1`) that hit the line-fill buffer advance the
//! clock by their compute only — their latency is hidden under the in-flight
//! fill — but are still reported to the observer with the LFB latency, just
//! as PEBS reports load-to-use latency for overlapped loads.

use crate::access::{AccessRun, AccessStream};
use crate::bandwidth::BandwidthModel;
use crate::config::{ExecMode, MachineConfig};
use crate::fp::{bulk_add, bulk_line_chain, LineStep};

use crate::hierarchy::{CoreCaches, DataSource, Hierarchy, MissProofMemo};
use crate::memmap::MemoryMap;
use crate::stats::{AccessCounts, RunStats};
use crate::topology::{CoreId, NodeId, ThreadId};

/// One access event, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Simulated time (cycles) at which the access retires.
    pub time: f64,
    /// Issuing software thread.
    pub thread: ThreadId,
    /// Core the thread is bound to.
    pub core: CoreId,
    /// NUMA node of that core (the channel *source*).
    pub node: NodeId,
    /// Byte address.
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Where the access was satisfied.
    pub source: DataSource,
    /// Home node of the page for DRAM and LFB events (the channel
    /// *target*); `None` for cache hits, where no off-core transfer
    /// happened.
    pub home: Option<NodeId>,
    /// Observed load-to-use latency in cycles (congestion included).
    pub latency: f64,
}

/// Receives every access event. Implementations must be cheap: the engine
/// calls this once per simulated access.
pub trait Observer {
    /// Called for each retired access event. The returned value is a
    /// *perturbation cost* in cycles charged to the issuing thread's
    /// clock — a profiler that records this access (PEBS buffer drain,
    /// interception bookkeeping) slows the program down by that much,
    /// which is how profiling overhead becomes measurable in simulated
    /// time. Pure observers return 0.
    fn on_access(&mut self, ev: &AccessEvent) -> f64;

    /// Called when a phase completes, with its final statistics.
    fn on_phase_end(&mut self, _stats: &RunStats) {}

    /// Pause/resume observation (warmup phases are not measured). The
    /// engine never calls this itself; drivers do, around phases they do
    /// not want observed. Default: ignored.
    fn set_enabled(&mut self, _enabled: bool) {}

    /// Bulk fast path: how many upcoming events of `thread` the engine may
    /// deliver via [`Observer::on_run`] instead of [`Observer::on_access`].
    ///
    /// The engine calls this right after each `on_access` and then skips up
    /// to that many of the thread's next events, counting them, before the
    /// next `on_access`. An observer may return `n > 0` only if (a) those
    /// `n` events would each return a perturbation cost of 0 and leave no
    /// externally visible record, and (b) a later `on_run(thread, k)` with
    /// `k ≤ n` restores exactly the state per-event delivery would have
    /// produced. The promise must stay valid until the thread's next
    /// `on_access`/`on_run` — nothing else may consume its budget. The
    /// default (0) delivers every event through `on_access`.
    fn run_hint(&mut self, _thread: ThreadId) -> u64 {
        0
    }

    /// Bulk-commit `n` events of `thread` that the engine skipped under a
    /// [`Observer::run_hint`] promise. Called before the thread's next
    /// `on_access` (and at the end of its scheduling slice), so observers
    /// that count events globally see the same interleaving per-event
    /// delivery would produce. Default: no-op.
    fn on_run(&mut self, _thread: ThreadId, _n: u64) {}
}

/// An observer that ignores everything (profiling disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_access(&mut self, _ev: &AccessEvent) -> f64 {
        0.0
    }

    #[inline]
    fn run_hint(&mut self, _thread: ThreadId) -> u64 {
        u64::MAX // never needs to see an event
    }
}

/// A software thread bound to a core, with its access stream.
pub struct ThreadSpec {
    /// Thread id (dense, unique within a phase).
    pub thread: ThreadId,
    /// Core binding.
    pub core: CoreId,
    /// The access stream driving this thread.
    pub stream: Box<dyn AccessStream>,
}

impl ThreadSpec {
    /// Convenience constructor.
    pub fn new(thread: u32, core: CoreId, stream: Box<dyn AccessStream>) -> Self {
        Self { thread: ThreadId(thread), core, stream }
    }
}

pub(crate) struct ThreadCtx {
    pub(crate) thread: ThreadId,
    core: CoreId,
    pub(crate) node: NodeId,
    stream: Box<dyn AccessStream>,
    pub(crate) clock: f64,
    /// Effective mlp for the current run (resolved against the default).
    mlp: f64,
    pub(crate) done: bool,
    /// Current (possibly partially consumed) run and the cursor into it.
    run: AccessRun,
    run_pos: u64,
    /// Events the observer has promised not to need (see
    /// [`Observer::run_hint`]).
    quiet: u64,
    /// Home-node span cache: every address in `span_start..span_end` is
    /// homed on `span_home` for this thread.
    span_start: u64,
    span_end: u64,
    span_home: NodeId,
    /// Memo of the last `latency / mlp` quotient: streaming runs repeat
    /// the same division for every line of a span within a round, and the
    /// divide sits on the clock's dependency chain.
    lat_memo: f64,
    mlp_memo: f64,
    quot_memo: f64,
    /// Lines to process per-line before the next fused-span attempt; set
    /// after a failed all-miss proof so hit-heavy (cache-resident) phases
    /// do not pay for repeated proof scans.
    fuse_cooldown: u64,
    /// Current backoff window: doubles on consecutive failed attempts up
    /// to [`FUSE_BACKOFF_MAX`], resets on success.
    fuse_backoff: u64,
    /// In-flight interleaved span (see [`AccessStream::next_zip`]): one
    /// pre-pulled sequential run per lane, in issue order. Empty when no
    /// span is active. Draining these positions reproduces exactly the
    /// single-access runs the stream would have handed out one by one.
    zip_lanes: Vec<AccessRun>,
    /// Iterations in the active span / next iteration index / next lane
    /// index within that iteration.
    zip_iters: u64,
    zip_iter: u64,
    zip_lane: usize,
    /// Spans to drain per-line before the next interleaved proof attempt,
    /// and its doubling backoff (failed proofs mean the lanes are cache
    /// resident — hits are imminent for a while).
    zip_cooldown: u32,
    zip_backoff: u32,
    /// Cached absence frontiers of the sequential fused path (see
    /// [`MissProofMemo`]).
    fuse_proof: MissProofMemo,
    /// Cached per-lane absence frontiers of the interleaved fused path.
    zip_proof: [MissProofMemo; MAX_LANES],
    /// Whether no other thread of the phase shares this thread's node —
    /// and so its L3. Only then do L3 absence frontiers survive between
    /// slices, making prove-ahead worthwhile at that level.
    solo_l3: bool,
}

/// Lane cap for the interleaved fused path; wider interleavings than any
/// modelled kernel drain per-line.
const MAX_LANES: usize = 8;

/// Lines a fused proof certifies past its commit window when it scans at
/// all: the absence frontier survives the thread's own commits (installs
/// land below it), so one pass over the tag arrays amortises over many
/// rounds of commits instead of rescanning every round.
const PROOF_AHEAD: u64 = 0;

/// Minimum provable span length worth committing through the fused walk;
/// shorter proofs fall back to the per-line path (and trigger backoff).
const FUSE_MIN: u64 = 4;
/// Initial per-line backoff window after a failed fusion attempt.
const FUSE_BACKOFF_MIN: u64 = 32;
/// Backoff ceiling: caches whose spans keep hitting settle at one proof
/// scan per this many lines, amortising it to noise.
const FUSE_BACKOFF_MAX: u64 = 4096;
/// Minimum interleaved iterations worth a per-lane proof; shorter spans
/// drain through the per-line path.
const ZIP_MIN: u64 = 4;
/// Iteration cap per [`AccessStream::next_zip`] pull. Spans that outlive
/// a round or the observer's quiet budget simply resume fusing at the
/// next iteration boundary, so the cap only bounds buffered state.
const ZIP_PULL_MAX: u64 = 4096;
/// Span-granular backoff after a failed interleaved proof (spans are
/// thousands of accesses, so the window stays small).
const ZIP_BACKOFF_MIN: u32 = 1;
/// Ceiling for the interleaved-proof backoff.
const ZIP_BACKOFF_MAX: u32 = 8;

/// The simulator. Owns the machine state (caches, bandwidth accounting,
/// memory map) across phases; see [`Engine::run_phase`].
pub struct Engine<O: Observer> {
    pub(crate) cfg: MachineConfig,
    pub(crate) hierarchy: Hierarchy,
    pub(crate) bw: BandwidthModel,
    pub(crate) memmap: MemoryMap,
    pub(crate) observer: O,
    pub(crate) max_run: u64,
}

impl<O: Observer> Engine<O> {
    /// Build an engine for `cfg` over an allocated `memmap`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &MachineConfig, memmap: MemoryMap, observer: O) -> Self {
        cfg.validate();
        Self {
            cfg: cfg.clone(),
            hierarchy: Hierarchy::new(cfg),
            bw: BandwidthModel::new(cfg),
            memmap,
            observer,
            max_run: u64::MAX,
        }
    }

    /// Cap the number of accesses pulled per [`AccessStream::next_run`]
    /// call in [`ExecMode::Batched`]. Results are identical for any cap;
    /// differential tests use this to exercise run-boundary handling.
    ///
    /// # Panics
    /// Panics if `max == 0`.
    pub fn set_max_run(&mut self, max: u64) {
        assert!(max >= 1, "max_run must allow at least one access");
        self.max_run = max;
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Read access to the memory map (e.g. for page queries).
    pub fn memmap(&self) -> &MemoryMap {
        &self.memmap
    }

    /// Mutable access to the memory map (e.g. to re-place objects between
    /// phases, as the co-locate optimization does).
    pub fn memmap_mut(&mut self) -> &mut MemoryMap {
        &mut self.memmap
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer (e.g. to drain collected samples).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Flush all caches (cold-start the next phase).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush();
    }

    /// Tear down, returning the memory map and observer.
    pub fn into_parts(self) -> (MemoryMap, O) {
        (self.memmap, self.observer)
    }

    /// Execute one phase: run every thread to stream exhaustion.
    ///
    /// Machine state (cache contents, first-touch placements) persists
    /// across phases; bandwidth aggregates are reset per phase. The inner
    /// loop strategy is selected by [`crate::config::EngineConfig::exec`];
    /// both strategies produce bit-identical results.
    ///
    /// # Panics
    /// Panics if thread specs reference out-of-range cores or duplicate
    /// thread ids, or if a stream accesses unallocated memory.
    pub fn run_phase(&mut self, threads: Vec<ThreadSpec>) -> RunStats {
        match self.cfg.engine.exec {
            ExecMode::Batched => self.run_phase_batched(threads),
            ExecMode::Reference => self.run_phase_reference(threads),
        }
    }

    pub(crate) fn make_ctxs(&self, threads: Vec<ThreadSpec>) -> Vec<ThreadCtx> {
        assert!(!threads.is_empty(), "phase needs at least one thread");
        let topo = &self.cfg.topology;
        let ctxs: Vec<ThreadCtx> = threads
            .into_iter()
            .map(|spec| {
                assert!(topo.core_in_range(spec.core), "thread {:?} bound to invalid {:?}", spec.thread, spec.core);
                let node = topo.node_of_core(spec.core);
                ThreadCtx {
                    thread: spec.thread,
                    core: spec.core,
                    node,
                    stream: spec.stream,
                    clock: 0.0,
                    mlp: 1.0,
                    done: false,
                    // Empty run: the first loop iteration fetches one.
                    run: AccessRun { base: 0, stride: 0, len: 0, is_write: false, reps: 1, compute: 0.0, mlp: None },
                    run_pos: 0,
                    quiet: 0,
                    // Empty span: the first miss resolves one.
                    span_start: 0,
                    span_end: 0,
                    span_home: NodeId(0),
                    // NaN never compares equal: the first access computes.
                    lat_memo: f64::NAN,
                    mlp_memo: f64::NAN,
                    quot_memo: 0.0,
                    fuse_cooldown: 0,
                    fuse_backoff: FUSE_BACKOFF_MIN,
                    zip_lanes: Vec::new(),
                    zip_iters: 0,
                    zip_iter: 0,
                    zip_lane: 0,
                    zip_cooldown: 0,
                    zip_backoff: ZIP_BACKOFF_MIN,
                    fuse_proof: MissProofMemo::new(),
                    zip_proof: [MissProofMemo::new(); MAX_LANES],
                    solo_l3: true,
                }
            })
            .collect();
        let mut ctxs = ctxs;
        // Whether each thread has the node's L3 to itself: siblings on the
        // same node invalidate each other's L3 absence frontiers every
        // slice, so proving ahead there is wasted scan work.
        for i in 0..ctxs.len() {
            ctxs[i].solo_l3 = !ctxs.iter().enumerate().any(|(j, c)| j != i && c.node == ctxs[i].node);
        }
        let ctxs = ctxs;
        {
            let mut ids: Vec<u32> = ctxs.iter().map(|c| c.thread.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), ctxs.len(), "duplicate thread ids in phase");
        }
        ctxs
    }

    fn finish_phase(&mut self, ctxs: &[ThreadCtx], counts: AccessCounts) -> RunStats {
        let stats = collect_run_stats(&self.bw, ctxs.iter().map(|t| t.clock).collect(), counts);
        self.observer.on_phase_end(&stats);
        stats
    }

    /// The original strictly per-access inner loop, kept as the oracle the
    /// differential tests compare [`Engine::run_phase_batched`] against.
    /// Pulls single-access runs so per-segment `compute`/`mlp` are honoured
    /// here too.
    fn run_phase_reference(&mut self, threads: Vec<ThreadSpec>) -> RunStats {
        let mut ctxs = self.make_ctxs(threads);
        self.bw.reset();
        let round = self.cfg.engine.round_cycles;
        let mut counts = AccessCounts::default();
        let mut round_end = round;
        let mut live = ctxs.len();

        while live > 0 {
            for t in ctxs.iter_mut().filter(|t| !t.done) {
                while t.clock < round_end {
                    let Some(run) = t.stream.next_run(1) else {
                        t.done = true;
                        live -= 1;
                        break;
                    };
                    let mut m = MachineMut {
                        cfg: &self.cfg,
                        hierarchy: &mut self.hierarchy,
                        bw: &mut self.bw,
                        memmap: &mut self.memmap,
                    };
                    step_single_access(
                        &mut m,
                        &mut self.observer,
                        &mut counts,
                        t.thread,
                        t.core,
                        t.node,
                        &mut t.clock,
                        &run,
                    );
                }
            }
            self.bw.end_round();
            round_end += round;
        }
        self.finish_phase(&ctxs, counts)
    }

    /// Run-batched inner loop: pulls [`AccessRun`]s, resolves the cache
    /// handle once per thread slice, caches the home-node span across
    /// misses, and delivers observer events through the
    /// [`Observer::run_hint`]/[`Observer::on_run`] fast path. Performs the
    /// identical sequence of floating-point operations as the reference
    /// path, so results are bit-for-bit equal.
    fn run_phase_batched(&mut self, threads: Vec<ThreadSpec>) -> RunStats {
        let mut ctxs = self.make_ctxs(threads);
        self.bw.reset();
        let round = self.cfg.engine.round_cycles;
        let consts = SliceConsts::new(&self.cfg, self.max_run);
        let mut counts = AccessCounts::default();
        let mut round_end = round;
        let mut live = ctxs.len();

        while live > 0 {
            for t in ctxs.iter_mut().filter(|t| !t.done) {
                let finished = run_thread_slice(
                    &self.cfg,
                    &consts,
                    &mut self.hierarchy,
                    &mut self.bw,
                    &mut self.memmap,
                    &mut self.observer,
                    &mut counts,
                    t,
                    round_end,
                );
                if finished {
                    live -= 1;
                }
            }
            self.bw.end_round();
            round_end += round;
        }
        self.finish_phase(&ctxs, counts)
    }
}

impl<O: Observer + Clone + Send> Engine<O> {
    /// Like [`Engine::run_phase`], but honoring
    /// [`crate::config::EngineConfig::shards`]: in [`ExecMode::Batched`]
    /// with `shards > 1` the phase runs through
    /// [`Engine::run_phase_sharded`]; otherwise it falls through to the
    /// classic single-host-thread loop. Results are bit-identical either
    /// way. This is the production entry point (`drbw-workloads` drives
    /// every phase through it); [`Engine::run_phase`] remains for
    /// observers that are not `Clone + Send`.
    pub fn run_phase_auto(&mut self, threads: Vec<ThreadSpec>) -> RunStats {
        let shards = self.cfg.engine.shards;
        if self.cfg.engine.exec == ExecMode::Batched && shards > 1 {
            self.run_phase_sharded(threads, shards)
        } else {
            self.run_phase(threads)
        }
    }

    /// Execute one phase with its per-core state partitioned over up to
    /// `shards` host threads (bounded by the number of NUMA nodes that
    /// have threads), merging at every round boundary in registration
    /// order — bit-identical to [`Engine::run_phase`] in
    /// [`ExecMode::Batched`] for every shard count. See [`crate::shard`]
    /// for the partition/merge protocol and the observer contract.
    ///
    /// # Panics
    /// Panics if thread specs are invalid (as [`Engine::run_phase`]), if
    /// the observer violates the shard-local determinism contract, or on
    /// a genuine same-round cross-shard first-touch race.
    pub fn run_phase_sharded(&mut self, threads: Vec<ThreadSpec>, shards: usize) -> RunStats {
        crate::shard::run_phase_sharded(self, threads, shards)
    }
}

/// Per-phase constants of the batched inner loop, hoisted once so the
/// per-slice body ([`run_thread_slice`]) shares them between the
/// unsharded loop and the sharded round runner ([`crate::shard`]).
pub(crate) struct SliceConsts {
    lfb_latency: f64,
    l1_latency: f64,
    line_bytes: f64,
    line_step: u64,
    span_fusion: bool,
    default_mlp: f64,
    max_run: u64,
}

impl SliceConsts {
    pub(crate) fn new(cfg: &MachineConfig, max_run: u64) -> Self {
        Self {
            lfb_latency: cfg.latency.lfb,
            l1_latency: cfg.latency.l1,
            line_bytes: cfg.cache.line_size as f64,
            line_step: cfg.cache.line_size,
            span_fusion: cfg.engine.span_fusion,
            default_mlp: cfg.engine.default_mlp,
            max_run,
        }
    }
}

/// One scheduling slice of thread `t` on the batched engine: advance it
/// until its clock passes `round_end` or its stream ends, through the
/// fused span walk, the interleaved (zip) path, and the per-line
/// fallback. This body is shared verbatim by the unsharded loop
/// ([`Engine::run_phase`] in [`ExecMode::Batched`]) and the sharded
/// round runner ([`crate::shard`]) — which is what makes a sharded run
/// bit-identical to the single-host-thread walk. Returns whether the
/// thread finished (its stream ran dry this slice).
#[allow(clippy::too_many_arguments)] // the engine's split field borrows
pub(crate) fn run_thread_slice<O: Observer>(
    cfg: &MachineConfig,
    sc: &SliceConsts,
    hierarchy: &mut Hierarchy,
    bw: &mut BandwidthModel,
    memmap: &mut MemoryMap,
    observer: &mut O,
    counts: &mut AccessCounts,
    t: &mut ThreadCtx,
    round_end: f64,
) -> bool {
    let &SliceConsts { lfb_latency, l1_latency, line_bytes, line_step, span_fusion, default_mlp, max_run } = sc;
    let mut finished = false;
    // Disjoint field borrows: the cache handle pins the hierarchy for the
    // slice while the bandwidth model, memory map, and observer stay
    // independently borrowable.
    let mut caches = hierarchy.core_caches(t.core);
    // Events skipped under `quiet` in this slice, not yet committed to
    // the observer.
    let mut pending: u64 = 0;
    'slice: while t.clock < round_end {
        if t.run_pos == t.run.len {
            if t.zip_iter < t.zip_iters {
                // An interleaved span is in flight. At an
                // iteration boundary a fused commit may absorb
                // whole iterations; whatever remains drains as
                // the exact single-access runs the stream
                // would have handed out.
                if span_fusion && t.zip_lane == 0 && t.zip_cooldown == 0 {
                    zip_fuse(cfg, bw, memmap, &mut caches, counts, t, round_end, line_bytes, default_mlp, &mut pending);
                    if t.zip_iter == t.zip_iters {
                        t.zip_iters = 0;
                        t.zip_iter = 0;
                        t.zip_lanes.clear();
                        continue 'slice;
                    }
                }
                let lane = t.zip_lanes[t.zip_lane];
                let run = AccessRun { base: lane.base + t.zip_iter * lane.stride, len: 1, ..lane };
                t.zip_lane += 1;
                if t.zip_lane == t.zip_lanes.len() {
                    t.zip_lane = 0;
                    t.zip_iter += 1;
                    if t.zip_iter == t.zip_iters {
                        t.zip_iters = 0;
                        t.zip_iter = 0;
                        t.zip_lanes.clear();
                    }
                }
                t.mlp = run.mlp.unwrap_or(default_mlp).max(1.0);
                t.run = run;
                t.run_pos = 0;
            } else {
                if span_fusion {
                    let iters = t.stream.next_zip(line_step, ZIP_PULL_MAX, &mut t.zip_lanes);
                    if iters > 0 {
                        t.zip_iters = iters;
                        t.zip_iter = 0;
                        t.zip_lane = 0;
                        t.zip_cooldown = t.zip_cooldown.saturating_sub(1);
                        continue 'slice;
                    }
                }
                let Some(run) = t.stream.next_run(max_run) else {
                    t.done = true;
                    finished = true;
                    break 'slice;
                };
                t.mlp = run.mlp.unwrap_or(default_mlp).max(1.0);
                t.run = run;
                t.run_pos = 0;
            }
        }
        let run = t.run;
        let compute = run.compute;
        while t.run_pos < run.len && t.clock < round_end {
            // Fused span walk: when the run hands over
            // consecutive lines and a prefix provably misses
            // all three levels, commit it in closed form
            // (DESIGN §8). The proof comes first and is
            // read-only; home-node resolution — which mutates
            // first-touch placement — happens per home span,
            // only once at least one of its lines is certain
            // to commit this round, exactly when the per-line
            // path would have resolved it.
            if span_fusion && t.fuse_cooldown == 0 && run.stride == line_step {
                let reps_total = run.reps as u64;
                let mut k_cap = (run.len - t.run_pos).min(t.quiet / reps_total);
                if k_cap >= FUSE_MIN {
                    // Proving more lines than can commit before
                    // `round_end` is wasted tag-scan work that
                    // next round's proof repeats. Estimate the
                    // fit from the memoized quotient; any cap
                    // is sound — the loop simply proves the
                    // next chunk afterwards.
                    let per_line = reps_total as f64 * compute + t.quot_memo;
                    if per_line > 0.0 {
                        let est = ((round_end - t.clock) / per_line) as u64 + 2;
                        k_cap = k_cap.min(est.max(FUSE_MIN));
                    }
                }
                if k_cap >= FUSE_MIN {
                    let addr0 = run.base + t.run_pos * run.stride;
                    let line0 = caches.line_of(addr0);
                    // Memo-assisted proof: lines the cached
                    // absence frontier still covers skip their
                    // tag scans, and any scan proves ahead so
                    // it amortises across rounds. L3 frontiers
                    // only survive between slices when no
                    // sibling shares the node, so prove ahead
                    // there only then.
                    let a = if t.solo_l3 { PROOF_AHEAD } else { 0 };
                    let ahead = [a, a, a];
                    let k_miss = caches.span_miss_prefix_memo(line0, k_cap, ahead, &mut t.fuse_proof);
                    debug_assert_eq!(
                        k_miss,
                        caches.span_miss_prefix(line0, k_cap),
                        "cached miss proof diverged from a fresh scan"
                    );
                    if k_miss >= FUSE_MIN {
                        t.fuse_backoff = FUSE_BACKOFF_MIN;
                        let nreps = reps_total - 1;
                        // LFB reps hide their latency: the
                        // per-line path advances the clock by
                        // this same addend.
                        let rep_delta = compute + 0.0;
                        let mut done = 0u64;
                        while done < k_miss && t.clock < round_end {
                            let addr = addr0 + done * run.stride;
                            let home = if addr >= t.span_start && addr < t.span_end {
                                t.span_home
                            } else {
                                let (h, end) = memmap.home_node_span(addr, t.node);
                                t.span_start = addr;
                                t.span_end = end;
                                t.span_home = h;
                                h
                            };
                            let span_lines = (t.span_end - addr).div_ceil(run.stride);
                            let k_seg = (k_miss - done).min(span_lines);
                            let (src, service) = if home == t.node {
                                (DataSource::LocalDram, cfg.latency.dram_local_service)
                            } else {
                                (DataSource::RemoteDram, cfg.latency.dram_remote_service)
                            };
                            // Congestion factors only change at
                            // round boundaries, so the latency —
                            // and the clock addend — is one
                            // value for the whole segment.
                            let f = bw.factor_for(t.node, home);
                            let latency = cfg.latency.dram_fixed + service * f;
                            let quot = if latency == t.lat_memo && t.mlp == t.mlp_memo {
                                t.quot_memo
                            } else {
                                let q = latency / t.mlp;
                                t.lat_memo = latency;
                                t.mlp_memo = t.mlp;
                                t.quot_memo = q;
                                q
                            };
                            let addend = compute + quot;
                            // Collapse the reference clock's
                            // per-line replay to one closed-form
                            // grid step per binade (bit-identical
                            // — see `fp::bulk_line_chain`).
                            let (k_fit, clock) = bulk_line_chain(t.clock, addend, rep_delta, nreps, k_seg, round_end);
                            caches.install_span(line0 + done, k_fit);
                            counts.record_n(src, k_fit);
                            if nreps > 0 {
                                counts.record_n(DataSource::Lfb, k_fit * nreps);
                            }
                            bw.record_dram_n(t.node, home, line_bytes, k_fit);
                            t.clock = clock;
                            t.quiet -= k_fit * reps_total;
                            pending += k_fit * reps_total;
                            t.run_pos += k_fit;
                            done += k_fit;
                        }
                        // The commit's installs all sit below
                        // `line0 + done`, so the unconsumed tail
                        // of the proof survives the new epochs.
                        t.fuse_proof.retire(caches.install_epochs(), line0 + done, u64::MAX);
                        continue;
                    }
                    // Miss proof came up short: a hit is
                    // imminent. Before falling back per-line,
                    // try the hit-side closed form — a warm
                    // rescan resolves whole spans at one cache
                    // level, with no DRAM, bandwidth, or
                    // first-touch involvement at all.
                    if let Some((src, k_hit)) = caches.span_hit_prefix(line0, k_cap) {
                        if k_hit >= FUSE_MIN {
                            t.fuse_backoff = FUSE_BACKOFF_MIN;
                            let nreps = reps_total - 1;
                            let latency = cfg.base_latency(src);
                            let quot = if latency == t.lat_memo && t.mlp == t.mlp_memo {
                                t.quot_memo
                            } else {
                                let q = latency / t.mlp;
                                t.lat_memo = latency;
                                t.mlp_memo = t.mlp;
                                t.quot_memo = q;
                                q
                            };
                            let addend = compute + quot;
                            // Cache-hit reps hit L1 and are
                            // charged its latency — the same
                            // per-rep addend every line.
                            let rep_delta = compute + l1_latency / t.mlp;
                            let (k_fit, clock) = bulk_line_chain(t.clock, addend, rep_delta, nreps, k_hit, round_end);
                            caches.commit_hit_span(src, line0, k_fit);
                            // The hit commit installs only the
                            // span itself into the levels above
                            // `src` — all below the frontier.
                            t.fuse_proof.retire(caches.install_epochs(), line0 + k_fit, u64::MAX);
                            counts.record_n(src, k_fit);
                            if nreps > 0 {
                                counts.record_n(DataSource::L1, k_fit * nreps);
                            }
                            t.clock = clock;
                            t.quiet -= k_fit * reps_total;
                            pending += k_fit * reps_total;
                            t.run_pos += k_fit;
                            continue;
                        }
                    }
                    // Both proofs short: walk per-line for a
                    // while before paying for another scan.
                    t.fuse_cooldown = t.fuse_backoff;
                    t.fuse_backoff = (t.fuse_backoff * 2).min(FUSE_BACKOFF_MAX);
                }
            }
            t.fuse_cooldown = t.fuse_cooldown.saturating_sub(1);
            let addr = run.base + t.run_pos * run.stride;
            t.run_pos += 1;
            let (source, home, latency) = match caches.access(addr) {
                Some(src) => (src, None, cfg.base_latency(src)),
                None => {
                    let home = if addr >= t.span_start && addr < t.span_end {
                        t.span_home
                    } else {
                        let (h, end) = memmap.home_node_span(addr, t.node);
                        t.span_start = addr;
                        t.span_end = end;
                        t.span_home = h;
                        h
                    };
                    let (src, service) = if home == t.node {
                        (DataSource::LocalDram, cfg.latency.dram_local_service)
                    } else {
                        (DataSource::RemoteDram, cfg.latency.dram_remote_service)
                    };
                    let f = bw.factor_for(t.node, home);
                    bw.record_dram(t.node, home, line_bytes);
                    (src, Some(home), cfg.latency.dram_fixed + service * f)
                }
            };
            // `latency / mlp` is usually the same division as
            // on the previous line; reusing the quotient is
            // exact and takes the divide off the clock chain.
            let quot = if latency == t.lat_memo && t.mlp == t.mlp_memo {
                t.quot_memo
            } else {
                let q = latency / t.mlp;
                t.lat_memo = latency;
                t.mlp_memo = t.mlp;
                t.quot_memo = q;
                q
            };
            t.clock += compute + quot;
            counts.record(source);
            if t.quiet > 0 {
                t.quiet -= 1;
                pending += 1;
            } else {
                if pending > 0 {
                    observer.on_run(t.thread, pending);
                    pending = 0;
                }
                t.clock += observer.on_access(&AccessEvent {
                    time: t.clock,
                    thread: t.thread,
                    core: t.core,
                    node: t.node,
                    addr,
                    is_write: run.is_write,
                    source,
                    home,
                    latency,
                });
                t.quiet = observer.run_hint(t.thread);
            }
            // Remaining element loads within the same line.
            let nreps = run.reps as u64 - 1;
            if nreps > 0 {
                let (rep_source, rep_latency, rep_home) = if source.is_dram() {
                    (DataSource::Lfb, lfb_latency, home)
                } else {
                    (DataSource::L1, l1_latency, None)
                };
                // Constant across the line's reps, so the
                // per-rep clock advance is one dependent add.
                let rep_delta = compute + if rep_source == DataSource::Lfb { 0.0 } else { rep_latency / t.mlp };
                if t.quiet >= nreps {
                    // Every rep is covered by the observer's
                    // promise: bulk-count them. Adding 0.0
                    // never changes a non-negative clock, so
                    // the chain itself is skippable then.
                    counts.record_n(rep_source, nreps);
                    t.quiet -= nreps;
                    pending += nreps;
                    if rep_delta != 0.0 {
                        t.clock = bulk_add(t.clock, rep_delta, nreps);
                    }
                } else {
                    for _ in 0..nreps {
                        t.clock += rep_delta;
                        counts.record(rep_source);
                        if t.quiet > 0 {
                            t.quiet -= 1;
                            pending += 1;
                        } else {
                            if pending > 0 {
                                observer.on_run(t.thread, pending);
                                pending = 0;
                            }
                            t.clock += observer.on_access(&AccessEvent {
                                time: t.clock,
                                thread: t.thread,
                                core: t.core,
                                node: t.node,
                                addr,
                                is_write: run.is_write,
                                source: rep_source,
                                home: rep_home,
                                latency: rep_latency,
                            });
                            t.quiet = observer.run_hint(t.thread);
                        }
                    }
                }
            }
        }
    }
    // Commit the slice's skipped events before any other thread's events
    // reach the observer — this keeps global event ordering identical to
    // per-event delivery.
    if pending > 0 {
        observer.on_run(t.thread, pending);
    }
    finished
}

/// Split mutable borrows of the machine state every execution path works
/// over: configuration, cache hierarchy, bandwidth model, and memory map.
/// Groups what [`step_single_access`] needs so the reference inner loop
/// and the discrete-event scheduler ([`crate::sched`]) share one access
/// body.
pub(crate) struct MachineMut<'a> {
    pub cfg: &'a MachineConfig,
    pub hierarchy: &'a mut Hierarchy,
    pub bw: &'a mut BandwidthModel,
    pub memmap: &'a mut MemoryMap,
}

/// Execute one single-access run (`run.len == 1`) for a thread: cache
/// lookup, DRAM service with the current congestion factor, clock advance,
/// observer delivery, and the trailing same-line reps. This is the
/// reference-mode access body, shared verbatim with the scheduler's issue
/// units so a single-tenant scenario reproduces
/// [`crate::config::ExecMode::Reference`] bit-for-bit.
#[allow(clippy::too_many_arguments)] // the engine's split field borrows
pub(crate) fn step_single_access<O: Observer + ?Sized>(
    m: &mut MachineMut<'_>,
    observer: &mut O,
    counts: &mut AccessCounts,
    thread: ThreadId,
    core: CoreId,
    node: NodeId,
    clock: &mut f64,
    run: &AccessRun,
) {
    debug_assert_eq!(run.len, 1, "step_single_access requires single-access runs");
    let cfg = m.cfg;
    let compute = run.compute;
    let mlp = run.mlp.unwrap_or(cfg.engine.default_mlp).max(1.0);
    let addr = run.base;
    let (source, home, latency) = match m.hierarchy.cache_access(core, addr) {
        Some(src) => (src, None, cfg.base_latency(src)),
        None => {
            let home = m.memmap.home_node(addr, node);
            let (src, service) = if home == node {
                (DataSource::LocalDram, cfg.latency.dram_local_service)
            } else {
                (DataSource::RemoteDram, cfg.latency.dram_remote_service)
            };
            let f = m.bw.factor_for(node, home);
            m.bw.record_dram(node, home, cfg.cache.line_size as f64);
            (src, Some(home), cfg.latency.dram_fixed + service * f)
        }
    };
    *clock += compute + latency / mlp;
    counts.record(source);
    *clock += observer.on_access(&AccessEvent {
        time: *clock,
        thread,
        core,
        node,
        addr,
        is_write: run.is_write,
        source,
        home,
        latency,
    });
    // Remaining element loads within the same line.
    for _ in 1..run.reps {
        let (rep_source, rep_latency, rep_home) = if source.is_dram() {
            // Satisfied by the in-flight fill: LFB.
            (DataSource::Lfb, cfg.latency.lfb, home)
        } else {
            // Line resident: they hit L1.
            (DataSource::L1, cfg.latency.l1, None)
        };
        // LFB latency is overlapped with the fill; L1 hits are charged
        // like any hit.
        *clock += compute + if rep_source == DataSource::Lfb { 0.0 } else { rep_latency / mlp };
        counts.record(rep_source);
        *clock += observer.on_access(&AccessEvent {
            time: *clock,
            thread,
            core,
            node,
            addr,
            is_write: run.is_write,
            source: rep_source,
            home: rep_home,
            latency: rep_latency,
        });
    }
}

/// Assemble a phase's [`RunStats`] from the final per-thread clocks, the
/// event counts, and the bandwidth model's aggregates (shared by the
/// engine and [`crate::sched`]).
pub(crate) fn collect_run_stats(bw: &BandwidthModel, thread_cycles: Vec<f64>, counts: AccessCounts) -> RunStats {
    let cycles = thread_cycles.iter().copied().fold(0.0, f64::max);
    RunStats {
        cycles,
        thread_cycles,
        counts,
        channel_bytes: bw.channel_bytes(),
        mc_bytes: bw.mc_bytes_total(),
        channel_max_rho: bw.channel_max_rho(),
        mc_max_rho: bw.mc_max_rho(),
        channel_avg_rho: bw.channel_avg_rho(),
        mc_avg_rho: bw.mc_avg_rho(),
        rounds: bw.rounds(),
    }
}

/// Fused commit of an interleaved span (see [`AccessStream::next_zip`]):
/// prove that each lane's upcoming lines miss every cache level, then
/// replay the per-line path's exact clock arithmetic, LRU installs, and
/// bandwidth records in arrival order — with no tag scans, which the
/// proofs have made redundant. Stops at the round boundary or the
/// observer's quiet budget; the caller drains whatever is left through
/// the per-line path. Advances `t.zip_iter`/`t.zip_lane` past the
/// committed prefix.
#[allow(clippy::too_many_arguments)] // the engine's split field borrows
fn zip_fuse(
    cfg: &MachineConfig,
    bw: &mut BandwidthModel,
    memmap: &mut MemoryMap,
    caches: &mut CoreCaches<'_>,
    counts: &mut AccessCounts,
    t: &mut ThreadCtx,
    round_end: f64,
    line_bytes: f64,
    default_mlp: f64,
    pending: &mut u64,
) {
    let nl = t.zip_lanes.len();
    if nl > MAX_LANES {
        // Wider interleavings than any modelled kernel: drain per-line.
        t.zip_cooldown = u32::MAX;
        return;
    }
    let evts: u64 = t.zip_lanes.iter().map(|l| l.reps as u64).sum();
    let mut k_cap = (t.zip_iters - t.zip_iter).min(t.quiet / evts);
    if k_cap < ZIP_MIN {
        // Not a proof failure — the quiet budget refreshes at the next
        // per-line observer event, so don't back off.
        return;
    }
    // Round-fit estimate from the memoized quotient; any cap is sound —
    // the next iteration boundary proves the following chunk.
    let per_iter: f64 = t.zip_lanes.iter().map(|l| l.reps as f64 * l.compute).sum::<f64>() + nl as f64 * t.quot_memo;
    if per_iter > 0.0 {
        let est = ((round_end - t.clock) / per_iter) as u64 + 2;
        k_cap = k_cap.min(est.max(ZIP_MIN));
    }
    let mut first = [0u64; MAX_LANES];
    for (i, l) in t.zip_lanes.iter().enumerate() {
        // `stride == line_step`, so lane lines advance one per iteration.
        first[i] = caches.line_of(l.base) + t.zip_iter;
    }
    // The per-lane all-miss proofs only stay valid under interleaved
    // replay if no lane can touch a line another lane installs: require
    // pairwise-disjoint line ranges.
    let mut k = k_cap;
    // The per-lane all-miss proofs only stay valid under interleaved
    // replay if no lane can touch a line another lane installs. Check
    // disjointness out to the prove-ahead horizon when it holds there
    // (the usual case — lanes walk different objects), so the cached
    // frontiers survive this call's commits; otherwise fall back to the
    // commit window alone and clamp the memos to it.
    #[allow(clippy::unnecessary_min_or_max)] // PROOF_AHEAD is a tuning const, currently 0
    let wide = k_cap.max(PROOF_AHEAD);
    let far = (0..nl).all(|i| (0..i).all(|j| first[i] + wide <= first[j] || first[j] + wide <= first[i]));
    let horizon = if far { wide } else { k_cap };
    let disjoint = far || (0..nl).all(|i| (0..i).all(|j| first[i] + k <= first[j] || first[j] + k <= first[i]));
    if disjoint {
        // L3 frontiers only survive between slices on a node with no
        // sibling threads; elsewhere the extension probes are wasted.
        let ahead = if t.solo_l3 { [horizon; 3] } else { [0; 3] };
        for (i, &f) in first.iter().enumerate().take(nl) {
            // Memo-assisted proof: the cached absence frontier skips the
            // scans; when one happens it proves ahead (within the
            // disjointness horizon) to amortise across rounds.
            let ki = caches.span_miss_prefix_memo(f, k, ahead, &mut t.zip_proof[i]);
            debug_assert_eq!(ki, caches.span_miss_prefix(f, k), "cached miss proof diverged from a fresh scan");
            k = k.min(ki);
            if k < ZIP_MIN {
                break;
            }
        }
    }
    if !disjoint || k < ZIP_MIN {
        // A hit is imminent (or lanes alias): drain this span per-line
        // and back off span-granular proof attempts for a while.
        t.zip_cooldown = t.zip_backoff;
        t.zip_backoff = (t.zip_backoff * 2).min(ZIP_BACKOFF_MAX);
        return;
    }
    t.zip_backoff = ZIP_BACKOFF_MIN;
    // Per-lane, per-home-segment constants, resolved lazily so first-touch
    // placement mutates exactly when the per-line path would resolve it.
    // Counts and bandwidth are flushed per (lane, segment): grouping the
    // per-channel byte adds by lane keeps every accumulator's operation
    // sequence — and thus its rounding — identical to arrival order,
    // because the addend is constant (see `BandwidthModel::record_dram_n`).
    let mut home = [NodeId(0); MAX_LANES];
    let mut seg_rem = [0u64; MAX_LANES];
    let mut seg_done = [0u64; MAX_LANES];
    let mut addend = [0f64; MAX_LANES];
    let mut rep_delta = [0f64; MAX_LANES];
    let mut nreps = [0u64; MAX_LANES];
    let mut src = [DataSource::LocalDram; MAX_LANES];
    let mut committed = [0u64; MAX_LANES];
    // Per-lane memoized grid step: the lane costs are segment constants,
    // so the clock's per-line replay collapses to one integer add per
    // line in steady state (see `fp::LineStep`).
    let mut steps = [LineStep::new(); MAX_LANES];
    let mut clock = t.clock;
    let mut done = 0u64;
    // Lanes of the final (partial) iteration that committed before the
    // round ended; 0 when the replay stopped at an iteration boundary.
    let mut partial = 0usize;
    'replay: while done < k {
        let mut i = 0;
        while i < nl {
            // The reference path re-checks the round boundary before each
            // line (reps included), so the replay must stop mid-iteration
            // exactly where it would.
            if clock >= round_end {
                partial = i;
                break 'replay;
            }
            if seg_rem[i] == 0 {
                let l = &t.zip_lanes[i];
                if seg_done[i] > 0 {
                    counts.record_n(src[i], seg_done[i]);
                    bw.record_dram_n(t.node, home[i], line_bytes, seg_done[i]);
                    committed[i] += seg_done[i];
                    seg_done[i] = 0;
                }
                let addr = l.base + (t.zip_iter + done) * l.stride;
                let (h, end) = memmap.home_node_span(addr, t.node);
                home[i] = h;
                seg_rem[i] = (end - addr).div_ceil(l.stride);
                let (s, service) = if h == t.node {
                    (DataSource::LocalDram, cfg.latency.dram_local_service)
                } else {
                    (DataSource::RemoteDram, cfg.latency.dram_remote_service)
                };
                src[i] = s;
                // Congestion factors only change at round boundaries, and
                // the replay never crosses one.
                let f = bw.factor_for(t.node, h);
                let latency = cfg.latency.dram_fixed + service * f;
                let mlp = l.mlp.unwrap_or(default_mlp).max(1.0);
                addend[i] = l.compute + latency / mlp;
                nreps[i] = l.reps as u64 - 1;
                // LFB reps: the fill latency is hidden, compute remains.
                rep_delta[i] = l.compute;
                // New segment, new costs: the grid memo must re-key.
                steps[i].invalidate();
            }
            clock = steps[i].advance_line(clock, addend[i], rep_delta[i], nreps[i]);
            caches.install_line_deferred(first[i] + done);
            seg_rem[i] -= 1;
            seg_done[i] += 1;
            i += 1;
        }
        done += 1;
    }
    let mut events = 0u64;
    let mut lines = 0u64;
    for i in 0..nl {
        committed[i] += seg_done[i];
        if seg_done[i] > 0 {
            counts.record_n(src[i], seg_done[i]);
            bw.record_dram_n(t.node, home[i], line_bytes, seg_done[i]);
        }
        if nreps[i] > 0 && committed[i] > 0 {
            counts.record_n(DataSource::Lfb, committed[i] * nreps[i]);
        }
        lines += committed[i];
        events += committed[i] * (nreps[i] + 1);
    }
    caches.charge_misses(lines);
    t.quiet -= events;
    *pending += events;
    t.clock = clock;
    t.zip_iter += done;
    t.zip_lane = partial;
    // Keep the unconsumed tails of the lane proofs: the replay's installs
    // are exactly the committed lines — below each lane's own frontier,
    // and outside every other lane's kept range by the disjointness check
    // that sized `horizon`. Stale lanes beyond `nl` need no clearing:
    // their epochs no longer match.
    let epochs = caches.install_epochs();
    for i in 0..nl {
        t.zip_proof[i].retire(epochs, first[i] + committed[i], first[i] + horizon);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMix, SeqStream};
    use crate::memmap::PlacementPolicy;

    fn scaled() -> MachineConfig {
        MachineConfig::scaled()
    }

    /// All-local streaming: one thread scanning an array bound to its node.
    #[test]
    fn local_stream_counts_and_time() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (1u64 << 20) / 64;
        assert_eq!(stats.counts.total(), lines);
        // 1 MiB footprint vs 2 MiB L3: cold misses only, all local.
        assert_eq!(stats.counts.remote_dram, 0);
        assert!(stats.counts.local_dram > lines / 2);
        assert!(stats.cycles > 0.0);
    }

    /// Remote streaming takes longer than local streaming of the same work.
    #[test]
    fn remote_slower_than_local() {
        let cfg = scaled();
        let run = |bind: NodeId| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 4 << 20, PlacementPolicy::Bind(bind));
            let stream = SeqStream::new(a.base, a.size, 2, AccessMix::read_only());
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))])
        };
        let local = run(NodeId(0));
        let remote = run(NodeId(1));
        assert_eq!(local.counts.remote_dram, 0);
        assert!(remote.counts.remote_dram > 0);
        assert!(remote.cycles > local.cycles * 1.2, "remote {} vs local {}", remote.cycles, local.cycles);
    }

    /// Many threads hammering one node's memory contend; the same threads
    /// on interleaved memory do not. This is the paper's core phenomenon.
    #[test]
    fn contention_and_interleave_relief() {
        let cfg = scaled();
        let run = |policy: PlacementPolicy| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 32 << 20, PlacementPolicy::FirstTouch);
            mm.set_policy(a.id, policy);
            let nthreads = 32u64;
            let binding = cfg.topology.bind_threads(nthreads as usize, 4);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let share = a.size / nthreads;
                    let stream =
                        SeqStream::new(a.base + i as u64 * share, share, 4, AccessMix::read_only()).with_compute(0.5);
                    ThreadSpec::new(i as u32, *core, Box::new(stream))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(threads)
        };
        let master_alloc = run(PlacementPolicy::Bind(NodeId(0)));
        let interleaved = run(PlacementPolicy::interleave_all(4));
        // Master allocation: 3/4 of threads remote into node 0.
        assert!(master_alloc.counts.remote_dram > 0);
        let speedup = master_alloc.cycles / interleaved.cycles;
        assert!(speedup > 1.5, "interleave should relieve contention, speedup {speedup}");
        // Contended channels into node 0 ran hot.
        assert!(master_alloc.channel_max_rho.iter().cloned().fold(0.0, f64::max) > 0.8);
    }

    /// Cache-resident working set never touches DRAM after warmup.
    #[test]
    fn cache_resident_is_fast() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 16 << 10, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 50, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (16u64 << 10) / 64;
        assert_eq!(stats.counts.dram(), lines, "only cold misses reach DRAM");
        assert!(stats.counts.l1 + stats.counts.l2 > lines * 40);
    }

    /// reps > 1 produces LFB events exactly when lines come from DRAM.
    #[test]
    fn reps_generate_lfb_on_dram_fills() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 4 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only()).with_reps(8);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (4u64 << 20) / 64;
        // Footprint (4 MiB) exceeds L3 (2 MiB): the scan is all cold misses,
        // so each line contributes 1 DRAM event + 7 LFB events.
        assert_eq!(stats.counts.dram(), lines);
        assert_eq!(stats.counts.lfb, lines * 7);
        assert_eq!(stats.counts.total(), lines * 8);
    }

    /// Events arrive at the observer in thread-local time order with
    /// plausible fields.
    #[test]
    fn observer_sees_coherent_events() {
        struct Check {
            last_time: f64,
            events: u64,
        }
        impl Observer for Check {
            fn on_access(&mut self, ev: &AccessEvent) -> f64 {
                assert!(ev.time >= self.last_time, "single thread: time must not go backwards");
                self.last_time = ev.time;
                assert!(ev.latency > 0.0);
                assert_eq!(ev.node, NodeId(0));
                if ev.source.is_dram() || ev.source == DataSource::Lfb {
                    assert!(ev.home.is_some());
                } else {
                    assert!(ev.home.is_none());
                }
                self.events += 1;
                0.0
            }
        }
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(1)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only()).with_reps(2);
        let mut eng = Engine::new(&cfg, mm, Check { last_time: 0.0, events: 0 });
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        assert_eq!(eng.observer().events, stats.counts.total());
    }

    /// Determinism: identical configs give identical stats.
    #[test]
    fn runs_are_deterministic() {
        let cfg = scaled();
        let run = || {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 2 << 20, PlacementPolicy::interleave_all(4));
            let binding = cfg.topology.bind_threads(8, 2);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let s = crate::access::RandomStream::new(a.base, a.size, 20_000, i as u64, AccessMix::read_only());
                    ThreadSpec::new(i as u32, *core, Box::new(s))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(threads)
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.counts, s2.counts);
        assert_eq!(s1.channel_bytes, s2.channel_bytes);
    }

    /// Phases share first-touch state: a master-thread init phase pins
    /// pages to node 0, and the parallel phase then suffers remote traffic.
    #[test]
    fn first_touch_persists_across_phases() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 4 << 20, PlacementPolicy::FirstTouch);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        // Phase 1: master thread on node 0 writes the whole array.
        let init = SeqStream::new(a.base, a.size, 1, AccessMix::write_only());
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(init))]);
        eng.flush_caches();
        // Phase 2: a thread on node 2 scans it — every DRAM access remote.
        let scan = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(16), Box::new(scan))]);
        assert_eq!(stats.counts.local_dram, 0);
        assert!(stats.counts.remote_dram > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate thread ids")]
    fn duplicate_thread_ids_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let mk = || -> Box<dyn AccessStream> { Box::new(SeqStream::new(a.base, a.size, 1, AccessMix::read_only())) };
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), mk()), ThreadSpec::new(0, CoreId(1), mk())]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn out_of_range_core_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(999), Box::new(stream))]);
    }

    /// Regression (headline bugfix): the engine used to cache each
    /// stream's `compute_cycles()`/`mlp()` once at phase start, so a chain
    /// whose second segment is expensive was charged the *first* segment's
    /// compute for every access. With per-run costs, the expensive
    /// segment's cycles must show up in the clock.
    #[test]
    fn chained_segments_are_charged_their_own_compute() {
        use crate::access::ChainStream;
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        // Cache-resident arrays so latency stays negligible next to compute.
        let a = mm.alloc("a", 16 << 10, PlacementPolicy::Bind(NodeId(0)));
        let b = mm.alloc("b", 16 << 10, PlacementPolicy::Bind(NodeId(0)));
        let cheap = SeqStream::new(a.base, a.size, 1, AccessMix::read_only()).with_compute(0.0);
        let costly = SeqStream::new(b.base, b.size, 2, AccessMix::read_only()).with_compute(500.0);
        let n_costly = 2 * (16u64 << 10) / 64;
        let chain = ChainStream::new(vec![Box::new(cheap), Box::new(costly)]);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(chain))]);
        // The stale-cost engine charged compute 0.0 throughout and finished
        // in a few thousand cycles of pure latency.
        assert!(
            stats.cycles > n_costly as f64 * 500.0,
            "second segment's compute not charged: {} cycles for {} costly accesses",
            stats.cycles,
            n_costly
        );
    }

    /// Regression (headline bugfix, zip flavour): interleaving a costly
    /// and a cheap stream must charge each access its own stream's
    /// compute; the result cannot depend on which member happens to be
    /// first. The stale engine charged member 0's compute for everything,
    /// making the two orders differ by ~4×.
    #[test]
    fn zipped_members_are_charged_their_own_compute() {
        use crate::access::ZipStream;
        let cfg = scaled();
        let run = |computes: [f64; 2]| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 8 << 10, PlacementPolicy::Bind(NodeId(0)));
            let b = mm.alloc("b", 8 << 10, PlacementPolicy::Bind(NodeId(0)));
            let s1 = SeqStream::new(a.base, a.size, 25, AccessMix::read_only()).with_compute(computes[0]);
            let s2 = SeqStream::new(b.base, b.size, 25, AccessMix::read_only()).with_compute(computes[1]);
            let zip = ZipStream::new(vec![Box::new(s1), Box::new(s2)]);
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(zip))]).cycles
        };
        let ab = run([8.0, 2.0]);
        let ba = run([2.0, 8.0]);
        let rel = (ab - ba).abs() / ab;
        assert!(rel < 1e-9, "member order changed total cycles: {ab} vs {ba}");
    }

    /// The batched inner loop is bit-identical to the reference one, for
    /// any `max_run` cap (here with the NullObserver; the differential
    /// integration tests add samplers).
    #[test]
    fn batched_matches_reference_exactly() {
        use crate::access::{BlockCyclicStream, ChainStream};
        use crate::config::ExecMode;
        let run = |exec: ExecMode, max_run: Option<u64>| {
            let mut cfg = scaled();
            cfg.engine.exec = exec;
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
            let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(4));
            let binding = cfg.topology.bind_threads(8, 4);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let share = a.size / 8;
                    let seq = SeqStream::new(a.base + i as u64 * share, share, 2, AccessMix::write_every(3))
                        .with_compute(1.0 + i as f64)
                        .with_reps(4);
                    let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
                    let chain = ChainStream::new(vec![Box::new(seq), Box::new(blk)]);
                    ThreadSpec::new(i as u32, *core, Box::new(chain))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            if let Some(m) = max_run {
                eng.set_max_run(m);
            }
            eng.run_phase(threads)
        };
        let reference = run(ExecMode::Reference, None);
        for cap in [None, Some(1), Some(7), Some(64)] {
            let batched = run(ExecMode::Batched, cap);
            assert_eq!(batched, reference, "batched (cap {cap:?}) diverged from reference");
        }
    }

    /// The fused span walk (streaming, LFB reps, first-touch and
    /// interleaved placement — everything the fast path commits in closed
    /// form) is bit-identical to reference mode and to batched mode with
    /// fusion ablated off.
    #[test]
    fn span_fusion_is_bit_identical_and_ablatable() {
        use crate::access::{BlockCyclicStream, ChainStream};
        use crate::config::ExecMode;
        let run = |exec: ExecMode, fusion: bool| {
            let mut cfg = scaled();
            cfg.engine.exec = exec;
            cfg.engine.span_fusion = fusion;
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 8 << 20, PlacementPolicy::FirstTouch);
            let b = mm.alloc("b", 2 << 20, PlacementPolicy::interleave_all(4));
            let binding = cfg.topology.bind_threads(8, 4);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let share = a.size / 8;
                    // Line-stride read-only streams: maximal fusion, with
                    // reps exercising the bulk LFB path inside spans.
                    let seq = SeqStream::new(a.base + i as u64 * share, share, 1, AccessMix::read_only())
                        .with_compute(0.5 * i as f64)
                        .with_reps(4);
                    let blk = BlockCyclicStream::new(b.base, b.size, 4096, 8, i as u64, 1, AccessMix::read_only());
                    let chain = ChainStream::new(vec![Box::new(seq), Box::new(blk)]);
                    ThreadSpec::new(i as u32, *core, Box::new(chain))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(threads)
        };
        let reference = run(ExecMode::Reference, true);
        let fused = run(ExecMode::Batched, true);
        let unfused = run(ExecMode::Batched, false);
        assert_eq!(fused, reference, "fused batched mode diverged from reference");
        assert_eq!(unfused, reference, "fusion-off batched mode diverged from reference");
    }

    /// Pointer chasing (mlp 1) is slower per access than streaming (mlp 4)
    /// over the same uncached footprint.
    #[test]
    fn dependent_chain_exposes_latency() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        // 4096 lines spaced one L2-set apart => conflict misses everywhere.
        let span = 4096u64 * 64 * 64;
        let a = mm.alloc("a", span, PlacementPolicy::Bind(NodeId(0)));
        let n = 4096;
        let chase = crate::access::PointerChaseStream::new(a.base, n, 64 * 64, n as u64 * 4, 3);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let chase_stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(chase))]);

        let mut mm2 = MemoryMap::new(&cfg);
        let b = mm2.alloc("b", span, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(b.base, b.size, 1, AccessMix::read_only());
        let mut eng2 = Engine::new(&cfg, mm2, NullObserver);
        let stream_stats = eng2.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);

        let chase_per = chase_stats.cycles / chase_stats.counts.total() as f64;
        let stream_per = stream_stats.cycles / stream_stats.counts.total() as f64;
        assert!(chase_per > stream_per * 1.5, "chase {chase_per} vs stream {stream_per}");
    }
}

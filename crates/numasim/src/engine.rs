//! The execution engine: advances simulated threads through their access
//! streams in deterministic rounds, modelling latency, bandwidth
//! contention, and cache behaviour, and reporting every access event to a
//! pluggable [`Observer`] (the PEBS sampler in `drbw-pebs`).
//!
//! ## Scheduling model
//!
//! Time advances in rounds of `round_cycles`. Within a round each thread
//! issues accesses until its private clock passes the round boundary; the
//! bandwidth model aggregates the round's DRAM traffic and derives latency
//! inflation factors for the *next* round (a closed-loop fluid
//! approximation — see [`crate::bandwidth`]). Threads are visited in a
//! fixed order, so runs are bit-for-bit deterministic regardless of host
//! parallelism.
//!
//! ## Clock accounting
//!
//! Per access: `clock += compute + latency / mlp`. `mlp` is the stream's
//! memory-level parallelism (dependent pointer chases use 1). Extra loads
//! to the same line (`reps > 1`) that hit the line-fill buffer advance the
//! clock by their compute only — their latency is hidden under the in-flight
//! fill — but are still reported to the observer with the LFB latency, just
//! as PEBS reports load-to-use latency for overlapped loads.

use crate::access::AccessStream;
use crate::bandwidth::BandwidthModel;
use crate::config::MachineConfig;
use crate::hierarchy::{DataSource, Hierarchy};
use crate::memmap::MemoryMap;
use crate::stats::{AccessCounts, RunStats};
use crate::topology::{CoreId, NodeId, ThreadId};

/// One access event, as seen by an [`Observer`].
#[derive(Debug, Clone, Copy)]
pub struct AccessEvent {
    /// Simulated time (cycles) at which the access retires.
    pub time: f64,
    /// Issuing software thread.
    pub thread: ThreadId,
    /// Core the thread is bound to.
    pub core: CoreId,
    /// NUMA node of that core (the channel *source*).
    pub node: NodeId,
    /// Byte address.
    pub addr: u64,
    /// Store (true) or load (false).
    pub is_write: bool,
    /// Where the access was satisfied.
    pub source: DataSource,
    /// Home node of the page for DRAM and LFB events (the channel
    /// *target*); `None` for cache hits, where no off-core transfer
    /// happened.
    pub home: Option<NodeId>,
    /// Observed load-to-use latency in cycles (congestion included).
    pub latency: f64,
}

/// Receives every access event. Implementations must be cheap: the engine
/// calls this once per simulated access.
pub trait Observer {
    /// Called for each retired access event. The returned value is a
    /// *perturbation cost* in cycles charged to the issuing thread's
    /// clock — a profiler that records this access (PEBS buffer drain,
    /// interception bookkeeping) slows the program down by that much,
    /// which is how profiling overhead becomes measurable in simulated
    /// time. Pure observers return 0.
    fn on_access(&mut self, ev: &AccessEvent) -> f64;

    /// Called when a phase completes, with its final statistics.
    fn on_phase_end(&mut self, _stats: &RunStats) {}

    /// Pause/resume observation (warmup phases are not measured). The
    /// engine never calls this itself; drivers do, around phases they do
    /// not want observed. Default: ignored.
    fn set_enabled(&mut self, _enabled: bool) {}
}

/// An observer that ignores everything (profiling disabled).
#[derive(Debug, Clone, Copy, Default)]
pub struct NullObserver;

impl Observer for NullObserver {
    #[inline]
    fn on_access(&mut self, _ev: &AccessEvent) -> f64 {
        0.0
    }
}

/// A software thread bound to a core, with its access stream.
pub struct ThreadSpec {
    /// Thread id (dense, unique within a phase).
    pub thread: ThreadId,
    /// Core binding.
    pub core: CoreId,
    /// The access stream driving this thread.
    pub stream: Box<dyn AccessStream>,
}

impl ThreadSpec {
    /// Convenience constructor.
    pub fn new(thread: u32, core: CoreId, stream: Box<dyn AccessStream>) -> Self {
        Self { thread: ThreadId(thread), core, stream }
    }
}

struct ThreadCtx {
    thread: ThreadId,
    core: CoreId,
    node: NodeId,
    stream: Box<dyn AccessStream>,
    clock: f64,
    compute: f64,
    mlp: f64,
    done: bool,
}

/// The simulator. Owns the machine state (caches, bandwidth accounting,
/// memory map) across phases; see [`Engine::run_phase`].
pub struct Engine<O: Observer> {
    cfg: MachineConfig,
    hierarchy: Hierarchy,
    bw: BandwidthModel,
    memmap: MemoryMap,
    observer: O,
}

impl<O: Observer> Engine<O> {
    /// Build an engine for `cfg` over an allocated `memmap`.
    ///
    /// # Panics
    /// Panics if the configuration fails validation.
    pub fn new(cfg: &MachineConfig, memmap: MemoryMap, observer: O) -> Self {
        cfg.validate();
        Self { cfg: cfg.clone(), hierarchy: Hierarchy::new(cfg), bw: BandwidthModel::new(cfg), memmap, observer }
    }

    /// The machine configuration.
    pub fn config(&self) -> &MachineConfig {
        &self.cfg
    }

    /// Read access to the memory map (e.g. for page queries).
    pub fn memmap(&self) -> &MemoryMap {
        &self.memmap
    }

    /// Mutable access to the memory map (e.g. to re-place objects between
    /// phases, as the co-locate optimization does).
    pub fn memmap_mut(&mut self) -> &mut MemoryMap {
        &mut self.memmap
    }

    /// The observer.
    pub fn observer(&self) -> &O {
        &self.observer
    }

    /// Mutable access to the observer (e.g. to drain collected samples).
    pub fn observer_mut(&mut self) -> &mut O {
        &mut self.observer
    }

    /// Flush all caches (cold-start the next phase).
    pub fn flush_caches(&mut self) {
        self.hierarchy.flush();
    }

    /// Tear down, returning the memory map and observer.
    pub fn into_parts(self) -> (MemoryMap, O) {
        (self.memmap, self.observer)
    }

    /// Execute one phase: run every thread to stream exhaustion.
    ///
    /// Machine state (cache contents, first-touch placements) persists
    /// across phases; bandwidth aggregates are reset per phase.
    ///
    /// # Panics
    /// Panics if thread specs reference out-of-range cores or duplicate
    /// thread ids, or if a stream accesses unallocated memory.
    pub fn run_phase(&mut self, threads: Vec<ThreadSpec>) -> RunStats {
        assert!(!threads.is_empty(), "phase needs at least one thread");
        let topo = &self.cfg.topology;
        let default_mlp = self.cfg.engine.default_mlp;
        let mut ctxs: Vec<ThreadCtx> = threads
            .into_iter()
            .map(|spec| {
                assert!(topo.core_in_range(spec.core), "thread {:?} bound to invalid {:?}", spec.thread, spec.core);
                let node = topo.node_of_core(spec.core);
                let compute = spec.stream.compute_cycles();
                let mlp = spec.stream.mlp().unwrap_or(default_mlp).max(1.0);
                ThreadCtx {
                    thread: spec.thread,
                    core: spec.core,
                    node,
                    stream: spec.stream,
                    clock: 0.0,
                    compute,
                    mlp,
                    done: false,
                }
            })
            .collect();
        {
            let mut ids: Vec<u32> = ctxs.iter().map(|c| c.thread.0).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), ctxs.len(), "duplicate thread ids in phase");
        }

        self.bw.reset();
        let round = self.cfg.engine.round_cycles;
        let lfb_latency = self.cfg.latency.lfb;
        let l1_latency = self.cfg.latency.l1;
        let line_bytes = self.cfg.cache.line_size as f64;
        let mut counts = AccessCounts::default();
        let mut round_end = round;
        let mut live = ctxs.len();

        while live > 0 {
            for t in ctxs.iter_mut().filter(|t| !t.done) {
                while t.clock < round_end {
                    let Some(acc) = t.stream.next_access() else {
                        t.done = true;
                        live -= 1;
                        break;
                    };
                    // Streams may change compute/mlp across chained phases.
                    let compute = t.compute;
                    let (source, home, latency) = match self.hierarchy.cache_access(t.core, acc.addr) {
                        Some(src) => (src, None, self.cfg.base_latency(src)),
                        None => {
                            let home = self.memmap.home_node(acc.addr, t.node);
                            let (src, service) = if home == t.node {
                                (DataSource::LocalDram, self.cfg.latency.dram_local_service)
                            } else {
                                (DataSource::RemoteDram, self.cfg.latency.dram_remote_service)
                            };
                            let f = self.bw.factor_for(t.node, home);
                            self.bw.record_dram(t.node, home, line_bytes);
                            (src, Some(home), self.cfg.latency.dram_fixed + service * f)
                        }
                    };
                    t.clock += compute + latency / t.mlp;
                    counts.record(source);
                    t.clock += self.observer.on_access(&AccessEvent {
                        time: t.clock,
                        thread: t.thread,
                        core: t.core,
                        node: t.node,
                        addr: acc.addr,
                        is_write: acc.is_write,
                        source,
                        home,
                        latency,
                    });
                    // Remaining element loads within the same line.
                    for _ in 1..acc.reps {
                        let (rep_source, rep_latency, rep_home) = if source.is_dram() {
                            // Satisfied by the in-flight fill: LFB.
                            (DataSource::Lfb, lfb_latency, home)
                        } else {
                            // Line resident: they hit L1.
                            (DataSource::L1, l1_latency, None)
                        };
                        // LFB latency is overlapped with the fill; L1 hits
                        // are charged like any hit.
                        t.clock += compute + if rep_source == DataSource::Lfb { 0.0 } else { rep_latency / t.mlp };
                        counts.record(rep_source);
                        t.clock += self.observer.on_access(&AccessEvent {
                            time: t.clock,
                            thread: t.thread,
                            core: t.core,
                            node: t.node,
                            addr: acc.addr,
                            is_write: acc.is_write,
                            source: rep_source,
                            home: rep_home,
                            latency: rep_latency,
                        });
                    }
                }
            }
            self.bw.end_round();
            round_end += round;
        }

        let cycles = ctxs.iter().map(|t| t.clock).fold(0.0, f64::max);
        let stats = RunStats {
            cycles,
            thread_cycles: ctxs.iter().map(|t| t.clock).collect(),
            counts,
            channel_bytes: self.bw.channel_bytes(),
            mc_bytes: self.bw.mc_bytes_total(),
            channel_max_rho: self.bw.channel_max_rho(),
            mc_max_rho: self.bw.mc_max_rho(),
            channel_avg_rho: self.bw.channel_avg_rho(),
            rounds: self.bw.rounds(),
        };
        self.observer.on_phase_end(&stats);
        stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::access::{AccessMix, SeqStream};
    use crate::memmap::PlacementPolicy;

    fn scaled() -> MachineConfig {
        MachineConfig::scaled()
    }

    /// All-local streaming: one thread scanning an array bound to its node.
    #[test]
    fn local_stream_counts_and_time() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (1u64 << 20) / 64;
        assert_eq!(stats.counts.total(), lines);
        // 1 MiB footprint vs 2 MiB L3: cold misses only, all local.
        assert_eq!(stats.counts.remote_dram, 0);
        assert!(stats.counts.local_dram > lines / 2);
        assert!(stats.cycles > 0.0);
    }

    /// Remote streaming takes longer than local streaming of the same work.
    #[test]
    fn remote_slower_than_local() {
        let cfg = scaled();
        let run = |bind: NodeId| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 4 << 20, PlacementPolicy::Bind(bind));
            let stream = SeqStream::new(a.base, a.size, 2, AccessMix::read_only());
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))])
        };
        let local = run(NodeId(0));
        let remote = run(NodeId(1));
        assert_eq!(local.counts.remote_dram, 0);
        assert!(remote.counts.remote_dram > 0);
        assert!(remote.cycles > local.cycles * 1.2, "remote {} vs local {}", remote.cycles, local.cycles);
    }

    /// Many threads hammering one node's memory contend; the same threads
    /// on interleaved memory do not. This is the paper's core phenomenon.
    #[test]
    fn contention_and_interleave_relief() {
        let cfg = scaled();
        let run = |policy: PlacementPolicy| {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 32 << 20, PlacementPolicy::FirstTouch);
            mm.set_policy(a.id, policy);
            let nthreads = 32u64;
            let binding = cfg.topology.bind_threads(nthreads as usize, 4);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let share = a.size / nthreads;
                    let stream =
                        SeqStream::new(a.base + i as u64 * share, share, 4, AccessMix::read_only()).with_compute(0.5);
                    ThreadSpec::new(i as u32, *core, Box::new(stream))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(threads)
        };
        let master_alloc = run(PlacementPolicy::Bind(NodeId(0)));
        let interleaved = run(PlacementPolicy::interleave_all(4));
        // Master allocation: 3/4 of threads remote into node 0.
        assert!(master_alloc.counts.remote_dram > 0);
        let speedup = master_alloc.cycles / interleaved.cycles;
        assert!(speedup > 1.5, "interleave should relieve contention, speedup {speedup}");
        // Contended channels into node 0 ran hot.
        assert!(master_alloc.channel_max_rho.iter().cloned().fold(0.0, f64::max) > 0.8);
    }

    /// Cache-resident working set never touches DRAM after warmup.
    #[test]
    fn cache_resident_is_fast() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 16 << 10, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 50, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (16u64 << 10) / 64;
        assert_eq!(stats.counts.dram(), lines, "only cold misses reach DRAM");
        assert!(stats.counts.l1 + stats.counts.l2 > lines * 40);
    }

    /// reps > 1 produces LFB events exactly when lines come from DRAM.
    #[test]
    fn reps_generate_lfb_on_dram_fills() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 4 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only()).with_reps(8);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        let lines = (4u64 << 20) / 64;
        // Footprint (4 MiB) exceeds L3 (2 MiB): the scan is all cold misses,
        // so each line contributes 1 DRAM event + 7 LFB events.
        assert_eq!(stats.counts.dram(), lines);
        assert_eq!(stats.counts.lfb, lines * 7);
        assert_eq!(stats.counts.total(), lines * 8);
    }

    /// Events arrive at the observer in thread-local time order with
    /// plausible fields.
    #[test]
    fn observer_sees_coherent_events() {
        struct Check {
            last_time: f64,
            events: u64,
        }
        impl Observer for Check {
            fn on_access(&mut self, ev: &AccessEvent) -> f64 {
                assert!(ev.time >= self.last_time, "single thread: time must not go backwards");
                self.last_time = ev.time;
                assert!(ev.latency > 0.0);
                assert_eq!(ev.node, NodeId(0));
                if ev.source.is_dram() || ev.source == DataSource::Lfb {
                    assert!(ev.home.is_some());
                } else {
                    assert!(ev.home.is_none());
                }
                self.events += 1;
                0.0
            }
        }
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(1)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only()).with_reps(2);
        let mut eng = Engine::new(&cfg, mm, Check { last_time: 0.0, events: 0 });
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);
        assert_eq!(eng.observer().events, stats.counts.total());
    }

    /// Determinism: identical configs give identical stats.
    #[test]
    fn runs_are_deterministic() {
        let cfg = scaled();
        let run = || {
            let mut mm = MemoryMap::new(&cfg);
            let a = mm.alloc("a", 2 << 20, PlacementPolicy::interleave_all(4));
            let binding = cfg.topology.bind_threads(8, 2);
            let threads: Vec<ThreadSpec> = binding
                .iter()
                .enumerate()
                .map(|(i, core)| {
                    let s = crate::access::RandomStream::new(a.base, a.size, 20_000, i as u64, AccessMix::read_only());
                    ThreadSpec::new(i as u32, *core, Box::new(s))
                })
                .collect();
            let mut eng = Engine::new(&cfg, mm, NullObserver);
            eng.run_phase(threads)
        };
        let s1 = run();
        let s2 = run();
        assert_eq!(s1.cycles, s2.cycles);
        assert_eq!(s1.counts, s2.counts);
        assert_eq!(s1.channel_bytes, s2.channel_bytes);
    }

    /// Phases share first-touch state: a master-thread init phase pins
    /// pages to node 0, and the parallel phase then suffers remote traffic.
    #[test]
    fn first_touch_persists_across_phases() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 4 << 20, PlacementPolicy::FirstTouch);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        // Phase 1: master thread on node 0 writes the whole array.
        let init = SeqStream::new(a.base, a.size, 1, AccessMix::write_only());
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(init))]);
        eng.flush_caches();
        // Phase 2: a thread on node 2 scans it — every DRAM access remote.
        let scan = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(16), Box::new(scan))]);
        assert_eq!(stats.counts.local_dram, 0);
        assert!(stats.counts.remote_dram > 0);
    }

    #[test]
    #[should_panic(expected = "duplicate thread ids")]
    fn duplicate_thread_ids_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let mk = || -> Box<dyn AccessStream> { Box::new(SeqStream::new(a.base, a.size, 1, AccessMix::read_only())) };
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), mk()), ThreadSpec::new(0, CoreId(1), mk())]);
    }

    #[test]
    #[should_panic(expected = "invalid")]
    fn out_of_range_core_rejected() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        let a = mm.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(a.base, a.size, 1, AccessMix::read_only());
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        eng.run_phase(vec![ThreadSpec::new(0, CoreId(999), Box::new(stream))]);
    }

    /// Pointer chasing (mlp 1) is slower per access than streaming (mlp 4)
    /// over the same uncached footprint.
    #[test]
    fn dependent_chain_exposes_latency() {
        let cfg = scaled();
        let mut mm = MemoryMap::new(&cfg);
        // 4096 lines spaced one L2-set apart => conflict misses everywhere.
        let span = 4096u64 * 64 * 64;
        let a = mm.alloc("a", span, PlacementPolicy::Bind(NodeId(0)));
        let n = 4096;
        let chase = crate::access::PointerChaseStream::new(a.base, n, 64 * 64, n as u64 * 4, 3);
        let mut eng = Engine::new(&cfg, mm, NullObserver);
        let chase_stats = eng.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(chase))]);

        let mut mm2 = MemoryMap::new(&cfg);
        let b = mm2.alloc("b", span, PlacementPolicy::Bind(NodeId(0)));
        let stream = SeqStream::new(b.base, b.size, 1, AccessMix::read_only());
        let mut eng2 = Engine::new(&cfg, mm2, NullObserver);
        let stream_stats = eng2.run_phase(vec![ThreadSpec::new(0, CoreId(0), Box::new(stream))]);

        let chase_per = chase_stats.cycles / chase_stats.counts.total() as f64;
        let stream_per = stream_stats.cycles / stream_stats.counts.total() as f64;
        assert!(chase_per > stream_per * 1.5, "chase {chase_per} vs stream {stream_per}");
    }
}

//! Explicit SIMD kernels for the cache span walk and sample ingestion.
//!
//! [`crate::cache::Cache::span_miss_prefix`] reduces its two hot scans to
//! branch-free `u64` arithmetic precisely so they vectorize:
//!
//! * **`any_ge`** — is any element `>= first`? Since every tag and bound
//!   is `< 2^63` (a byte address divided by the line size), `m >= first`
//!   iff `m.wrapping_sub(first)` does not borrow, i.e. its sign bit is
//!   clear. AND-reducing the raw differences and testing the accumulated
//!   sign bit answers the question with one subtract and one AND per
//!   element.
//! * **`any_near`** — does any element `t` satisfy
//!   `(t - first) >> shift == 0`, i.e. lie in `[first, first + 2^shift)`?
//!   Zero-detect via `(x - 1) & !x`, whose sign bit is set only for
//!   `x == 0`, OR-reduced over the slice.
//!
//! Both are pure boolean reductions over independent elements, so any
//! grouping of the work — scalar chunks, 128-bit lanes, 256-bit lanes —
//! computes the *same* answer: there is no floating point and no order
//! dependence, which is what makes the SIMD paths trivially bit-identical
//! to the scalar twins (property-tested below).
//!
//! * **`count_above`** — the ingestion-side kernel: per-threshold counts
//!   of latencies strictly above each of `K` thresholds, feeding the
//!   latency-bucket features of the streaming accumulator. Each count is
//!   an integer sum of independent IEEE `>` predicates; `a > b` is exact
//!   in IEEE 754 and NaN compares false under both the scalar operator
//!   and the packed ordered compare, so here too every grouping of the
//!   work produces the same counts bit-for-bit.
//!
//! This module hand-writes the kernels on `core::arch::x86_64` instead of
//! hoping for autovectorization: SSE2 (the x86-64 baseline) has no packed
//! 64-bit compare, but the borrow-sign and zero-detect formulations need
//! only `sub`/`and`/`andnot`/`srl`/`movemask`, all SSE2. A wider AVX2
//! path is selected by runtime detection. The scalar twins are always
//! compiled (and exercised by tests on every target); non-x86-64 builds
//! dispatch to them unconditionally, and setting the `DRBW_NO_SIMD`
//! environment variable forces them at runtime for ablation.
//!
//! Scans early-exit per 128-element chunk: the common caller streams
//! forward through a cold region, where the very first chunk usually
//! decides the answer, but an L3 window can cover 32 K tag slots.

/// Elements per early-exit chunk, matching the pre-SIMD scalar loops.
const CHUNK: usize = 128;

/// Instruction set selected once per process.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Isa {
    /// Portable scalar twins (non-x86-64, or `DRBW_NO_SIMD` set).
    Scalar,
    /// 128-bit baseline x86-64 path.
    #[cfg(target_arch = "x86_64")]
    Sse2,
    /// 256-bit path, runtime-detected.
    #[cfg(target_arch = "x86_64")]
    Avx2,
}

/// The ISA the dispatchers use, resolved once: `DRBW_NO_SIMD` (any value
/// but `0` or empty) forces scalar; otherwise the widest supported path.
fn isa() -> Isa {
    static ISA: std::sync::OnceLock<Isa> = std::sync::OnceLock::new();
    *ISA.get_or_init(|| {
        let disabled = std::env::var_os("DRBW_NO_SIMD").is_some_and(|v| !v.is_empty() && v != "0");
        if disabled {
            return Isa::Scalar;
        }
        #[cfg(target_arch = "x86_64")]
        {
            if std::arch::is_x86_feature_detected!("avx2") {
                Isa::Avx2
            } else {
                // SSE2 is part of the x86-64 baseline: always present.
                Isa::Sse2
            }
        }
        #[cfg(not(target_arch = "x86_64"))]
        Isa::Scalar
    })
}

/// Whether the dispatchers are currently using a SIMD path (for bench
/// reporting; `false` under `DRBW_NO_SIMD` or on non-x86-64 targets).
pub fn simd_active() -> bool {
    isa() != Isa::Scalar
}

/// True iff any element of `slice` is `>= first`, assuming every element
/// and `first` are below `2^63` (as all line numbers and set bounds are).
#[inline]
pub fn any_ge(slice: &[u64], first: u64) -> bool {
    match isa() {
        Isa::Scalar => any_ge_scalar(slice, first),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally available on x86_64.
        Isa::Sse2 => unsafe { any_ge_sse2(slice, first) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa()` returned Avx2 only after runtime detection.
        Isa::Avx2 => unsafe { any_ge_avx2(slice, first) },
    }
}

/// True iff any element `t` of `slice` satisfies
/// `(t.wrapping_sub(first)) >> shift == 0`, i.e. lies in the widened
/// window `[first, first + 2^shift)`. Requires `shift < 64`.
#[inline]
pub fn any_near(slice: &[u64], first: u64, shift: u32) -> bool {
    debug_assert!(shift < 64, "shift must leave a non-empty window");
    match isa() {
        Isa::Scalar => any_near_scalar(slice, first, shift),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally available on x86_64.
        Isa::Sse2 => unsafe { any_near_sse2(slice, first, shift) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa()` returned Avx2 only after runtime detection.
        Isa::Avx2 => unsafe { any_near_avx2(slice, first, shift) },
    }
}

/// Per-threshold counts of elements strictly above each threshold:
/// `out[k] = |{ x in xs : x > thresholds[k] }|`.
///
/// This is the hot kernel behind the streaming accumulator's latency
/// buckets: one pass over a latency lane produces all `K` bucket counts.
/// The SIMD paths are bit-identical to the scalar twin because each
/// count is an integer sum of independent, exact IEEE `>` predicates
/// (ordered compares: NaN counts in no bucket on any path).
#[inline]
pub fn count_above<const K: usize>(xs: &[f64], thresholds: &[f64; K]) -> [usize; K] {
    match isa() {
        Isa::Scalar => count_above_scalar(xs, thresholds),
        #[cfg(target_arch = "x86_64")]
        // SAFETY: SSE2 is unconditionally available on x86_64.
        Isa::Sse2 => unsafe { count_above_sse2(xs, thresholds) },
        #[cfg(target_arch = "x86_64")]
        // SAFETY: `isa()` returned Avx2 only after runtime detection.
        Isa::Avx2 => unsafe { count_above_avx2(xs, thresholds) },
    }
}

/// Scalar twin of [`count_above`].
pub(crate) fn count_above_scalar<const K: usize>(xs: &[f64], thresholds: &[f64; K]) -> [usize; K] {
    let mut counts = [0usize; K];
    for &x in xs {
        for (count, &t) in counts.iter_mut().zip(thresholds) {
            *count += (x > t) as usize;
        }
    }
    counts
}

/// Scalar twin of [`any_ge`]: the reference semantics every SIMD path
/// must reproduce bit-for-bit.
pub(crate) fn any_ge_scalar(slice: &[u64], first: u64) -> bool {
    slice.chunks(CHUNK).any(|chunk| {
        let mut signs = u64::MAX;
        for &m in chunk {
            signs &= m.wrapping_sub(first);
        }
        signs >> 63 == 0
    })
}

/// Scalar twin of [`any_near`].
pub(crate) fn any_near_scalar(slice: &[u64], first: u64, shift: u32) -> bool {
    slice.chunks(CHUNK).any(|chunk| {
        let mut zero_signs = 0u64;
        for &t in chunk {
            let x = t.wrapping_sub(first) >> shift;
            zero_signs |= x.wrapping_sub(1) & !x;
        }
        zero_signs >> 63 != 0
    })
}

#[cfg(target_arch = "x86_64")]
mod x86 {
    use super::CHUNK;
    use core::arch::x86_64::*;

    /// `_mm_movemask_epi8` bits for the sign bytes of the two u64 lanes
    /// of a 128-bit vector (bytes 7 and 15).
    const SIGNS_128: i32 = 0x8080;
    /// `_mm256_movemask_epi8` bits for the sign bytes of the four u64
    /// lanes of a 256-bit vector (bytes 7, 15, 23, 31).
    const SIGNS_256: i32 = 0x8080_8080u32 as i32;

    /// SSE2 [`super::any_ge`]: AND-reduce `m - first` over two lanes at a
    /// time; a chunk is suspect iff either accumulated sign bit is clear.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn any_ge_sse2(slice: &[u64], first: u64) -> bool {
        let vfirst = _mm_set1_epi64x(first as i64);
        slice.chunks(CHUNK).any(|chunk| {
            // SAFETY: intrinsics below read only through `loadu` (no
            // alignment requirement) at `ptr..ptr + 2` for each pair
            // yielded by `chunks_exact(2)`, which stays in bounds.
            unsafe {
                let mut acc = _mm_set1_epi64x(-1);
                let pairs = chunk.chunks_exact(2);
                let tail = pairs.remainder();
                for pair in pairs {
                    let v = _mm_loadu_si128(pair.as_ptr() as *const __m128i);
                    acc = _mm_and_si128(acc, _mm_sub_epi64(v, vfirst));
                }
                let mut signs_clear = _mm_movemask_epi8(acc) & SIGNS_128 != SIGNS_128;
                for &m in tail {
                    signs_clear |= m.wrapping_sub(first) >> 63 == 0;
                }
                signs_clear
            }
        })
    }

    /// SSE2 [`super::any_near`]: `(x - 1) & !x` zero-detect, OR-reduced;
    /// a chunk matches iff any accumulated sign bit is set.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64). `shift < 64`.
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn any_near_sse2(slice: &[u64], first: u64, shift: u32) -> bool {
        let (vfirst, vshift, ones) =
            (_mm_set1_epi64x(first as i64), _mm_cvtsi64_si128(shift as i64), _mm_set1_epi64x(1));
        slice.chunks(CHUNK).any(|chunk| {
            // SAFETY: as in `any_ge_sse2`, all loads are unaligned reads
            // of in-bounds pairs from `chunks_exact(2)`.
            unsafe {
                let mut acc = _mm_setzero_si128();
                let pairs = chunk.chunks_exact(2);
                let tail = pairs.remainder();
                for pair in pairs {
                    let v = _mm_loadu_si128(pair.as_ptr() as *const __m128i);
                    let x = _mm_srl_epi64(_mm_sub_epi64(v, vfirst), vshift);
                    acc = _mm_or_si128(acc, _mm_andnot_si128(x, _mm_sub_epi64(x, ones)));
                }
                let mut found = _mm_movemask_epi8(acc) & SIGNS_128 != 0;
                for &t in tail {
                    let x = t.wrapping_sub(first) >> shift;
                    found |= (x.wrapping_sub(1) & !x) >> 63 != 0;
                }
                found
            }
        })
    }

    /// SSE2 [`super::count_above`]: two latencies per step, one packed
    /// ordered `>` compare per threshold, popcounted movemasks.
    ///
    /// # Safety
    /// Requires SSE2 (always present on x86_64).
    #[target_feature(enable = "sse2")]
    pub(super) unsafe fn count_above_sse2<const K: usize>(xs: &[f64], thresholds: &[f64; K]) -> [usize; K] {
        // SAFETY: all loads are unaligned (`loadu`) reads of in-bounds
        // pairs yielded by `chunks_exact(2)`.
        unsafe {
            let vts: [__m128d; K] = core::array::from_fn(|k| _mm_set1_pd(thresholds[k]));
            let mut counts = [0usize; K];
            let pairs = xs.chunks_exact(2);
            let tail = pairs.remainder();
            for pair in pairs {
                let v = _mm_loadu_pd(pair.as_ptr());
                for (count, vt) in counts.iter_mut().zip(&vts) {
                    *count += _mm_movemask_pd(_mm_cmpgt_pd(v, *vt)).count_ones() as usize;
                }
            }
            for &x in tail {
                for (count, &t) in counts.iter_mut().zip(thresholds) {
                    *count += (x > t) as usize;
                }
            }
            counts
        }
    }

    /// AVX2 [`super::count_above`]: four latencies per step (the packed
    /// compare itself needs only AVX, which AVX2 implies).
    ///
    /// # Safety
    /// Requires AVX2 (callers must have runtime-detected it).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn count_above_avx2<const K: usize>(xs: &[f64], thresholds: &[f64; K]) -> [usize; K] {
        // SAFETY: unaligned 256-bit loads over in-bounds quads from
        // `chunks_exact(4)`.
        unsafe {
            let vts: [__m256d; K] = core::array::from_fn(|k| _mm256_set1_pd(thresholds[k]));
            let mut counts = [0usize; K];
            let quads = xs.chunks_exact(4);
            let tail = quads.remainder();
            for quad in quads {
                let v = _mm256_loadu_pd(quad.as_ptr());
                for (count, vt) in counts.iter_mut().zip(&vts) {
                    let gt = _mm256_cmp_pd::<_CMP_GT_OQ>(v, *vt);
                    *count += _mm256_movemask_pd(gt).count_ones() as usize;
                }
            }
            for &x in tail {
                for (count, &t) in counts.iter_mut().zip(thresholds) {
                    *count += (x > t) as usize;
                }
            }
            counts
        }
    }

    /// AVX2 [`super::any_ge`]: four lanes per step.
    ///
    /// # Safety
    /// Requires AVX2 (callers must have runtime-detected it).
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn any_ge_avx2(slice: &[u64], first: u64) -> bool {
        let vfirst = _mm256_set1_epi64x(first as i64);
        slice.chunks(CHUNK).any(|chunk| {
            // SAFETY: unaligned 256-bit loads over in-bounds quads from
            // `chunks_exact(4)`.
            unsafe {
                let mut acc = _mm256_set1_epi64x(-1);
                let quads = chunk.chunks_exact(4);
                let tail = quads.remainder();
                for quad in quads {
                    let v = _mm256_loadu_si256(quad.as_ptr() as *const __m256i);
                    acc = _mm256_and_si256(acc, _mm256_sub_epi64(v, vfirst));
                }
                let mut signs_clear = _mm256_movemask_epi8(acc) & SIGNS_256 != SIGNS_256;
                for &m in tail {
                    signs_clear |= m.wrapping_sub(first) >> 63 == 0;
                }
                signs_clear
            }
        })
    }

    /// AVX2 [`super::any_near`]: four lanes per step.
    ///
    /// # Safety
    /// Requires AVX2 (callers must have runtime-detected it). `shift < 64`.
    #[target_feature(enable = "avx2")]
    pub(super) unsafe fn any_near_avx2(slice: &[u64], first: u64, shift: u32) -> bool {
        let (vfirst, vshift, ones) =
            (_mm256_set1_epi64x(first as i64), _mm_cvtsi64_si128(shift as i64), _mm256_set1_epi64x(1));
        slice.chunks(CHUNK).any(|chunk| {
            // SAFETY: unaligned 256-bit loads over in-bounds quads from
            // `chunks_exact(4)`.
            unsafe {
                let mut acc = _mm256_setzero_si256();
                let quads = chunk.chunks_exact(4);
                let tail = quads.remainder();
                for quad in quads {
                    let v = _mm256_loadu_si256(quad.as_ptr() as *const __m256i);
                    let x = _mm256_srl_epi64(_mm256_sub_epi64(v, vfirst), vshift);
                    acc = _mm256_or_si256(acc, _mm256_andnot_si256(x, _mm256_sub_epi64(x, ones)));
                }
                let mut found = _mm256_movemask_epi8(acc) & SIGNS_256 != 0;
                for &t in tail {
                    let x = t.wrapping_sub(first) >> shift;
                    found |= (x.wrapping_sub(1) & !x) >> 63 != 0;
                }
                found
            }
        })
    }
}

#[cfg(target_arch = "x86_64")]
use x86::{any_ge_avx2, any_ge_sse2, any_near_avx2, any_near_sse2, count_above_avx2, count_above_sse2};

#[cfg(test)]
mod tests {
    use super::*;

    /// Plain-definition oracle: the predicate each formulation encodes.
    fn oracle_ge(slice: &[u64], first: u64) -> bool {
        // The borrow-sign trick assumes operands below 2^63; the oracle
        // mirrors that domain by comparing the wrapped difference's sign.
        slice.iter().any(|&m| m.wrapping_sub(first) >> 63 == 0)
    }

    fn oracle_near(slice: &[u64], first: u64, shift: u32) -> bool {
        slice.iter().any(|&t| t.wrapping_sub(first) >> shift == 0)
    }

    /// Deterministic pseudo-random u64s (splitmix64).
    fn rand_vec(seed: u64, len: usize, mask: u64) -> Vec<u64> {
        let mut z = seed;
        (0..len)
            .map(|_| {
                z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut x = z;
                x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (x ^ (x >> 31)) & mask
            })
            .collect()
    }

    /// Every compiled implementation against the oracle and each other,
    /// over random slices of many lengths (exercising vector bodies and
    /// scalar tails), boundary values, and the INVALID (u64::MAX) marker
    /// real tag arrays contain.
    #[test]
    fn all_paths_agree_with_scalar_and_oracle() {
        let mut cases: Vec<(Vec<u64>, u64, u32)> = Vec::new();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 127, 128, 129, 255, 256, 1000] {
            for seed in [1u64, 42, 9999] {
                // Values clustered near `first` so both outcomes occur.
                let v = rand_vec(seed, len, 0xFFFF);
                cases.push((v, 0x8000, 4));
            }
            // Full-range values including the sign-bit domain edge.
            cases.push((rand_vec(7 + len as u64, len, u64::MAX >> 1), 1 << 62, 40));
            // INVALID markers (u64::MAX) mixed in, as cold tag arrays have.
            let mut v = rand_vec(len as u64 + 13, len, 0xFFF);
            for (i, slot) in v.iter_mut().enumerate() {
                if i % 3 == 0 {
                    *slot = u64::MAX;
                }
            }
            cases.push((v, 0x800, 8));
        }
        // Exact-boundary probes: first-1, first, first + 2^shift - 1,
        // first + 2^shift.
        for val in [0x7FFu64, 0x800, 0x8FF, 0x900] {
            cases.push((vec![val; 5], 0x800, 8));
        }
        for (v, first, shift) in &cases {
            let (v, first, shift) = (v.as_slice(), *first, *shift);
            assert_eq!(any_ge_scalar(v, first), oracle_ge(v, first), "ge scalar vs oracle");
            assert_eq!(any_near_scalar(v, first, shift), oracle_near(v, first, shift), "near scalar vs oracle");
            // Dispatcher (whatever ISA the host picked) == scalar.
            assert_eq!(any_ge(v, first), any_ge_scalar(v, first), "ge dispatch vs scalar");
            assert_eq!(any_near(v, first, shift), any_near_scalar(v, first, shift), "near dispatch vs scalar");
            // Each intrinsic path directly, independent of DRBW_NO_SIMD.
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: SSE2 is unconditionally available on x86_64.
                unsafe {
                    assert_eq!(any_ge_sse2(v, first), any_ge_scalar(v, first), "ge sse2");
                    assert_eq!(any_near_sse2(v, first, shift), any_near_scalar(v, first, shift), "near sse2");
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 just runtime-detected.
                    unsafe {
                        assert_eq!(any_ge_avx2(v, first), any_ge_scalar(v, first), "ge avx2");
                        assert_eq!(any_near_avx2(v, first, shift), any_near_scalar(v, first, shift), "near avx2");
                    }
                }
            }
        }
    }

    /// Plain-definition oracle for [`count_above`].
    fn oracle_count<const K: usize>(xs: &[f64], thresholds: &[f64; K]) -> [usize; K] {
        let mut counts = [0usize; K];
        for (k, &t) in thresholds.iter().enumerate() {
            counts[k] = xs.iter().filter(|&&x| x > t).count();
        }
        counts
    }

    /// Every compiled `count_above` path against the oracle: random
    /// latencies straddling the thresholds, exact-threshold values
    /// (strictly-greater must exclude them), NaN and infinities, and a
    /// length sweep exercising vector bodies and scalar tails.
    #[test]
    fn count_above_paths_agree_with_scalar_and_oracle() {
        let thresholds = [1000.0f64, 500.0, 200.0, 100.0, 50.0];
        let mut cases: Vec<Vec<f64>> = Vec::new();
        for len in [0usize, 1, 2, 3, 4, 5, 7, 8, 15, 16, 31, 127, 128, 129, 255, 256, 1000] {
            for seed in [1u64, 42, 9999] {
                let v: Vec<f64> = rand_vec(seed, len, 0x7FF).into_iter().map(|u| u as f64).collect();
                cases.push(v);
            }
            // Exact threshold hits, epsilon neighbours, and non-finite values.
            let mut v: Vec<f64> = Vec::with_capacity(len);
            for i in 0..len {
                v.push(match i % 9 {
                    0 => 1000.0,
                    1 => 500.0,
                    2 => 50.0,
                    3 => f64::NAN,
                    4 => f64::INFINITY,
                    5 => f64::NEG_INFINITY,
                    6 => 1000.0_f64.next_up(),
                    7 => 50.0_f64.next_down(),
                    _ => 0.0,
                });
            }
            cases.push(v);
        }
        for xs in &cases {
            let want = oracle_count(xs, &thresholds);
            assert_eq!(count_above_scalar(xs, &thresholds), want, "scalar vs oracle");
            assert_eq!(count_above(xs, &thresholds), want, "dispatch vs oracle");
            // Also a different K, to cover the const-generic machinery.
            let one = [250.0f64];
            assert_eq!(count_above(xs, &one), oracle_count(xs, &one), "K=1 dispatch");
            #[cfg(target_arch = "x86_64")]
            {
                // SAFETY: SSE2 is unconditionally available on x86_64.
                unsafe {
                    assert_eq!(count_above_sse2(xs, &thresholds), want, "sse2 vs oracle");
                }
                if std::arch::is_x86_feature_detected!("avx2") {
                    // SAFETY: AVX2 just runtime-detected.
                    unsafe {
                        assert_eq!(count_above_avx2(xs, &thresholds), want, "avx2 vs oracle");
                    }
                }
            }
        }
    }

    /// The chunked early-exit must not change the answer: a matching
    /// element is found no matter which chunk it sits in.
    #[test]
    fn chunk_boundaries_do_not_lose_matches() {
        for pos in [0usize, 1, 63, 127, 128, 129, 300, 511] {
            let mut v = vec![5u64; 512]; // all far below `first`
            v[pos] = 0x4000; // the single element >= first
            assert!(any_ge(&v, 0x4000), "match at {pos} missed");
            assert!(any_ge_scalar(&v, 0x4000));
            let mut w = vec![u64::MAX - 7; 512]; // wraps far outside window
            w[pos] = 0x4002; // inside [0x4000, 0x4000 + 2^4)
            assert!(any_near(&w, 0x4000, 4), "near match at {pos} missed");
            assert!(any_near_scalar(&w, 0x4000, 4));
        }
        assert!(!any_ge(&[], 5));
        assert!(!any_near(&[], 5, 3));
    }
}

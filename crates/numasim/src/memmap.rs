//! The simulated address space: object allocation and page placement.
//!
//! Data values are never stored — an "allocation" reserves a range of the
//! synthetic address space and records *which NUMA node owns each page* of
//! it. The placement vocabulary matches what libnuma gives the paper:
//!
//! * [`PlacementPolicy::FirstTouch`] — Linux default; the node of the first
//!   core to touch a page becomes its home. A master thread initialising an
//!   array therefore lands every page on its own node — the root cause of
//!   most contention the paper diagnoses.
//! * [`PlacementPolicy::Bind`] — `numa_alloc_onnode`.
//! * [`PlacementPolicy::Interleave`] — `numa_alloc_interleaved`, the
//!   paper's coarse-grained *interleave* optimization and its ground-truth
//!   probe (§VII.B).
//! * [`PlacementPolicy::Segmented`] — the paper's *co-locate* optimization:
//!   each contiguous segment is placed on the node whose threads compute on
//!   it.
//! * [`PlacementPolicy::Replicated`] — the paper's *replicate* optimization
//!   for read-mostly data (Streamcluster's `block`): every node has a local
//!   copy, so each access resolves to the reader's own node.

use crate::config::MachineConfig;
use crate::topology::NodeId;

/// Identifier of an allocated data object, dense per [`MemoryMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// Why a placement policy was rejected.
///
/// Returned by the validating constructors ([`PlacementPolicy::weighted`])
/// and by [`MemoryMap::try_set_policy`]. The panicking entry points
/// ([`MemoryMap::alloc`], [`MemoryMap::set_policy`]) panic with this
/// error's `Display` text.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum PlacementError {
    /// An interleave (uniform or weighted) names no nodes.
    EmptyNodes,
    /// A policy names a node the machine does not have.
    NonexistentNode(NodeId),
    /// Weighted interleave got `nodes` and `weights` of different lengths.
    WeightCountMismatch {
        /// Number of nodes given.
        nodes: usize,
        /// Number of weights given.
        weights: usize,
    },
    /// A weight of zero (use a smaller node list instead).
    ZeroWeight {
        /// Position of the offending weight.
        index: usize,
    },
    /// The weight sum exceeds [`PlacementPolicy::MAX_WEIGHT_SUM`] (the
    /// striping pattern is materialised per object, so its length is
    /// bounded).
    WeightSumTooLarge {
        /// The rejected sum.
        sum: u64,
    },
    /// A segmented policy has no segments.
    EmptySegments,
    /// Segment end offsets must strictly increase.
    SegmentsNotIncreasing,
    /// The last segment must end exactly at the object size.
    SegmentsDontCover {
        /// End offset of the last segment.
        last_end: u64,
        /// The object size the segments must reach.
        size: u64,
    },
}

impl std::fmt::Display for PlacementError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PlacementError::EmptyNodes => write!(f, "interleave over no nodes"),
            PlacementError::NonexistentNode(n) => write!(f, "placement on nonexistent {n}"),
            PlacementError::WeightCountMismatch { nodes, weights } => {
                write!(f, "weighted interleave over {nodes} nodes with {weights} weights")
            }
            PlacementError::ZeroWeight { index } => write!(f, "zero weight at position {index}"),
            PlacementError::WeightSumTooLarge { sum } => {
                write!(f, "weight sum {sum} exceeds the {} pattern bound", PlacementPolicy::MAX_WEIGHT_SUM)
            }
            PlacementError::EmptySegments => write!(f, "empty segment list"),
            PlacementError::SegmentsNotIncreasing => write!(f, "segment ends must strictly increase"),
            PlacementError::SegmentsDontCover { last_end, size } => {
                write!(f, "segments must cover the object exactly (end {last_end} of {size} bytes)")
            }
        }
    }
}

impl std::error::Error for PlacementError {}

/// Where the pages of an object live.
///
/// The enum is `#[non_exhaustive]`: downstream crates should prefer the
/// accessor methods ([`PlacementPolicy::segments`],
/// [`PlacementPolicy::bound_node`], [`PlacementPolicy::is_first_touch`],
/// …) over matching, so new policies do not fan breakage out.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum PlacementPolicy {
    /// Page homed on the node of the first accessor (Linux default).
    FirstTouch,
    /// Every page on one node.
    Bind(NodeId),
    /// Pages round-robined over the given nodes (must be non-empty).
    Interleave(Vec<NodeId>),
    /// Pages striped over `nodes` in proportion to `weights` — BWAP's
    /// `numactl --weights=1,3 --interleave=0,2`. Within every window of
    /// `sum(weights)` consecutive pages, node `i` owns exactly
    /// `weights[i]` of them, spread by smooth weighted round-robin (not
    /// clustered), and **equal weights degenerate to exactly the uniform
    /// [`PlacementPolicy::Interleave`] page assignment**. Construct with
    /// the validating [`PlacementPolicy::weighted`].
    WeightedInterleave {
        /// The nodes striped over (must be non-empty, all existing).
        nodes: Vec<NodeId>,
        /// Pages per node per striping cycle (same length as `nodes`,
        /// all non-zero, sum ≤ [`PlacementPolicy::MAX_WEIGHT_SUM`]).
        weights: Vec<u32>,
    },
    /// Contiguous segments, each bound to a node. Entries are
    /// `(end_offset_exclusive, node)` with strictly increasing offsets; the
    /// last entry must cover the whole object.
    Segmented(Vec<(u64, NodeId)>),
    /// A read-only copy on every node: accesses resolve to the reader's
    /// node (writes are allowed but modelled as local, matching the
    /// paper's use on data that is never overwritten after initialisation).
    Replicated,
}

impl PlacementPolicy {
    /// Upper bound on the sum of weighted-interleave weights: the striping
    /// pattern is materialised once per object, so its length is capped.
    pub const MAX_WEIGHT_SUM: u64 = 4096;

    /// Interleave over all `n` nodes. Thin alias for the uniform
    /// [`PlacementPolicy::Interleave`] over nodes `0..n`.
    pub fn interleave_all(n: usize) -> Self {
        PlacementPolicy::Interleave((0..n as u8).map(NodeId).collect())
    }

    /// Weighted interleave over `nodes` with one weight per node.
    ///
    /// # Errors
    /// [`PlacementError::EmptyNodes`] for an empty node list,
    /// [`PlacementError::WeightCountMismatch`] when the lengths differ,
    /// [`PlacementError::ZeroWeight`] for any zero weight, and
    /// [`PlacementError::WeightSumTooLarge`] when the weights sum past
    /// [`PlacementPolicy::MAX_WEIGHT_SUM`]. Node existence is checked at
    /// allocation / [`MemoryMap::try_set_policy`] time, like every other
    /// policy.
    pub fn weighted(nodes: Vec<NodeId>, weights: Vec<u32>) -> Result<Self, PlacementError> {
        if nodes.is_empty() {
            return Err(PlacementError::EmptyNodes);
        }
        if nodes.len() != weights.len() {
            return Err(PlacementError::WeightCountMismatch { nodes: nodes.len(), weights: weights.len() });
        }
        if let Some(index) = weights.iter().position(|&w| w == 0) {
            return Err(PlacementError::ZeroWeight { index });
        }
        let sum: u64 = weights.iter().map(|&w| w as u64).sum();
        if sum > Self::MAX_WEIGHT_SUM {
            return Err(PlacementError::WeightSumTooLarge { sum });
        }
        Ok(PlacementPolicy::WeightedInterleave { nodes, weights })
    }

    /// Weighted interleave over nodes `0..weights.len()` — the common
    /// "one weight per node of the machine" form.
    ///
    /// # Errors
    /// As [`PlacementPolicy::weighted`].
    pub fn weighted_all(weights: Vec<u32>) -> Result<Self, PlacementError> {
        let nodes = (0..weights.len() as u8).map(NodeId).collect();
        Self::weighted(nodes, weights)
    }

    /// Split `size` bytes into `n` equal segments, segment `i` on node `i` —
    /// the co-locate layout for a loop whose iteration space is divided
    /// evenly over nodes.
    pub fn colocate_even(size: u64, n: usize) -> Self {
        assert!(n > 0);
        let mut segs = Vec::with_capacity(n);
        for i in 0..n {
            let end = if i + 1 == n { size } else { size * (i as u64 + 1) / n as u64 };
            segs.push((end, NodeId(i as u8)));
        }
        PlacementPolicy::Segmented(segs)
    }

    /// Whether this is first-touch placement.
    pub fn is_first_touch(&self) -> bool {
        matches!(self, PlacementPolicy::FirstTouch)
    }

    /// Whether this is per-node replication.
    pub fn is_replicated(&self) -> bool {
        matches!(self, PlacementPolicy::Replicated)
    }

    /// The single home node of a [`PlacementPolicy::Bind`], if that is what
    /// this is.
    pub fn bound_node(&self) -> Option<NodeId> {
        match self {
            PlacementPolicy::Bind(n) => Some(*n),
            _ => None,
        }
    }

    /// The node list of a **uniform** interleave, if that is what this is.
    pub fn interleave_nodes(&self) -> Option<&[NodeId]> {
        match self {
            PlacementPolicy::Interleave(nodes) => Some(nodes),
            _ => None,
        }
    }

    /// The `(nodes, weights)` of a weighted interleave, if that is what
    /// this is.
    pub fn weighted_nodes(&self) -> Option<(&[NodeId], &[u32])> {
        match self {
            PlacementPolicy::WeightedInterleave { nodes, weights } => Some((nodes, weights)),
            _ => None,
        }
    }

    /// The `(end_offset, node)` segments of a segmented placement, if that
    /// is what this is.
    pub fn segments(&self) -> Option<&[(u64, NodeId)]> {
        match self {
            PlacementPolicy::Segmented(segs) => Some(segs),
            _ => None,
        }
    }

    /// Short human-readable description (for reports and tune traces).
    pub fn describe(&self) -> String {
        match self {
            PlacementPolicy::FirstTouch => "first-touch".into(),
            PlacementPolicy::Bind(n) => format!("bind({n})"),
            PlacementPolicy::Interleave(nodes) => format!("interleave({} nodes)", nodes.len()),
            PlacementPolicy::WeightedInterleave { weights, .. } => {
                let w: Vec<String> = weights.iter().map(|w| w.to_string()).collect();
                format!("weighted-interleave({})", w.join(":"))
            }
            PlacementPolicy::Segmented(segs) => format!("co-locate({} segments)", segs.len()),
            PlacementPolicy::Replicated => "replicate".into(),
        }
    }

    /// The weighted-interleave striping pattern: `sum(weights)` page slots,
    /// slot `k` naming the node of pages `p` with `p % len == k`.
    ///
    /// Smooth weighted round-robin (the nginx/LVS scheduler): each step
    /// every node's credit grows by its weight, the highest credit (ties:
    /// first listed) takes the slot and pays the total back. Node `i` gets
    /// exactly `weights[i]` slots per cycle, spread out rather than
    /// clustered — and equal weights reproduce the node list in order,
    /// which is exactly the uniform interleave assignment.
    fn weighted_pattern(nodes: &[NodeId], weights: &[u32]) -> Vec<u8> {
        let total: i64 = weights.iter().map(|&w| w as i64).sum();
        let mut credit = vec![0i64; nodes.len()];
        let mut out = Vec::with_capacity(total as usize);
        for _ in 0..total {
            for (c, &w) in credit.iter_mut().zip(weights) {
                *c += w as i64;
            }
            // First index with the maximum credit.
            let mut best = 0;
            for i in 1..credit.len() {
                if credit[i] > credit[best] {
                    best = i;
                }
            }
            credit[best] -= total;
            out.push(nodes[best].0);
        }
        out
    }
}

/// A successfully allocated object: its id and address range.
#[derive(Debug, Clone, Copy)]
pub struct ObjectHandle {
    /// Object id for registry lookups.
    pub id: ObjectId,
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl ObjectHandle {
    /// Address of byte `off` within the object.
    ///
    /// # Panics
    /// Panics in debug builds if `off` is out of range.
    #[inline]
    pub fn at(&self, off: u64) -> u64 {
        debug_assert!(off < self.size, "offset {off} out of object of {} bytes", self.size);
        self.base + off
    }
}

/// Registry entry for one object.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Human-readable name (the variable name in the paper's case studies,
    /// e.g. `RAP_diag_j`, `block`, `reference`).
    pub label: String,
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Current placement policy.
    pub policy: PlacementPolicy,
    /// Page size used for placement of this object.
    pub page_size: u64,
    /// First-touch record: home node per page, `u8::MAX` = untouched.
    /// Only populated for [`PlacementPolicy::FirstTouch`].
    first_touch: Vec<u8>,
    /// Materialised weighted-interleave striping pattern (page slot →
    /// node), so `home_node` stays O(1). Only populated for
    /// [`PlacementPolicy::WeightedInterleave`].
    wil_pattern: Vec<u8>,
}

impl ObjectInfo {
    fn page_count(&self) -> usize {
        (self.size.div_ceil(self.page_size)) as usize
    }
}

const UNTOUCHED: u8 = u8::MAX;
/// Allocations start above zero so a null-ish address is never valid.
const BASE_ADDR: u64 = 0x1000_0000;

/// One first-touch placement established while claim tracking was on: a
/// shard's private [`MemoryMap`] clone records which pages it faulted in
/// during a round so the merge can re-establish them everywhere else (see
/// [`crate::shard`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct FirstTouchClaim {
    /// Index of the object in allocation order.
    pub object: u32,
    /// Page index within the object.
    pub page: u32,
    /// Node the page was placed on.
    pub node: NodeId,
}

/// The simulated address space: a bump allocator plus the page-placement
/// registry. Owned by the engine during a run.
#[derive(Debug, Clone)]
pub struct MemoryMap {
    objects: Vec<ObjectInfo>,
    /// Object bases, for binary search; `bases[i]` belongs to `objects[i]`.
    bases: Vec<u64>,
    next_addr: u64,
    page_size: u64,
    huge_page_size: u64,
    num_nodes: usize,
    /// One-entry lookup cache: index of the last object hit.
    last_hit: std::cell::Cell<usize>,
    /// Whether first-touch establishments are logged to `claims` (only on
    /// shard-private clones; one branch on the establish path, which runs
    /// once per page, not per access).
    track_claims: bool,
    /// Claim log drained each round by [`MemoryMap::take_claims`].
    claims: Vec<FirstTouchClaim>,
}

impl MemoryMap {
    /// An empty address space for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            objects: Vec::new(),
            bases: Vec::new(),
            next_addr: BASE_ADDR,
            page_size: cfg.mem.page_size,
            huge_page_size: cfg.mem.huge_page_size,
            num_nodes: cfg.topology.num_nodes(),
            last_hit: std::cell::Cell::new(0),
            track_claims: false,
            claims: Vec::new(),
        }
    }

    /// Allocate `size` bytes on base (4 KiB) pages.
    ///
    /// # Panics
    /// Panics if `size == 0` or the policy is invalid for this machine.
    pub fn alloc(&mut self, label: &str, size: u64, policy: PlacementPolicy) -> ObjectHandle {
        self.alloc_with_page_size(label, size, policy, self.page_size)
    }

    /// Allocate `size` bytes on huge (2 MiB) pages — the bandit
    /// micro-benchmark needs the deterministic page-offset → cache-set
    /// mapping huge pages provide.
    pub fn alloc_huge(&mut self, label: &str, size: u64, policy: PlacementPolicy) -> ObjectHandle {
        self.alloc_with_page_size(label, size, policy, self.huge_page_size)
    }

    fn alloc_with_page_size(
        &mut self,
        label: &str,
        size: u64,
        policy: PlacementPolicy,
        page_size: u64,
    ) -> ObjectHandle {
        assert!(size > 0, "zero-sized allocation for {label:?}");
        if let Err(e) = self.check_policy(&policy, size) {
            panic!("invalid placement for {label:?}: {e}");
        }
        // Align the base so page 0 of the object starts a fresh page, then
        // apply cache-set coloring: successive allocations are offset by a
        // varying number of lines so that same-sized arrays do not land on
        // identical cache sets. Without this, a program allocating many
        // arrays whose size is a multiple of a cache's way size (e.g.
        // IRSmk's 29 equal coefficient arrays) would thrash every set-
        // associative level — real allocators and padded HPC codes avoid
        // exactly this pathological alignment.
        let color = (self.objects.len() as u64 % 61) * 64;
        let base = self.next_addr.next_multiple_of(page_size) + color;
        self.next_addr = base + size;
        let id = ObjectId(self.objects.len() as u32);
        let mut info = ObjectInfo {
            label: label.to_string(),
            base,
            size,
            policy,
            page_size,
            first_touch: Vec::new(),
            wil_pattern: Vec::new(),
        };
        if info.policy.is_first_touch() {
            info.first_touch = vec![UNTOUCHED; info.page_count()];
        }
        if let Some((nodes, weights)) = info.policy.weighted_nodes() {
            info.wil_pattern = PlacementPolicy::weighted_pattern(nodes, weights);
        }
        self.objects.push(info);
        self.bases.push(base);
        ObjectHandle { id, base, size }
    }

    /// Validate `policy` against this machine and an object of `size`
    /// bytes, without applying it anywhere.
    ///
    /// # Errors
    /// Any [`PlacementError`] the policy violates.
    pub fn check_policy(&self, policy: &PlacementPolicy, size: u64) -> Result<(), PlacementError> {
        let node_ok = |n: &NodeId| (n.0 as usize) < self.num_nodes;
        match policy {
            PlacementPolicy::Bind(n) => {
                if !node_ok(n) {
                    return Err(PlacementError::NonexistentNode(*n));
                }
            }
            PlacementPolicy::Interleave(nodes) => {
                if nodes.is_empty() {
                    return Err(PlacementError::EmptyNodes);
                }
                if let Some(n) = nodes.iter().find(|n| !node_ok(n)) {
                    return Err(PlacementError::NonexistentNode(*n));
                }
            }
            PlacementPolicy::WeightedInterleave { nodes, weights } => {
                // Re-run the constructor's structural checks: the variant is
                // publicly constructible (non_exhaustive does not seal it).
                PlacementPolicy::weighted(nodes.clone(), weights.clone())?;
                if let Some(n) = nodes.iter().find(|n| !node_ok(n)) {
                    return Err(PlacementError::NonexistentNode(*n));
                }
            }
            PlacementPolicy::Segmented(segs) => {
                if segs.is_empty() {
                    return Err(PlacementError::EmptySegments);
                }
                let mut prev = 0;
                for &(end, n) in segs {
                    if end <= prev {
                        return Err(PlacementError::SegmentsNotIncreasing);
                    }
                    if !node_ok(&n) {
                        return Err(PlacementError::NonexistentNode(n));
                    }
                    prev = end;
                }
                if prev != size {
                    return Err(PlacementError::SegmentsDontCover { last_end: prev, size });
                }
            }
            PlacementPolicy::FirstTouch | PlacementPolicy::Replicated => {}
        }
        Ok(())
    }

    /// Change an object's placement (the optimizations re-place data).
    /// Resets any first-touch history for the object.
    ///
    /// # Errors
    /// Any [`PlacementError`] the policy violates; the object is left
    /// unchanged on error.
    pub fn try_set_policy(&mut self, id: ObjectId, policy: PlacementPolicy) -> Result<(), PlacementError> {
        let size = self.objects[id.0 as usize].size;
        self.check_policy(&policy, size)?;
        let info = &mut self.objects[id.0 as usize];
        info.first_touch = if policy.is_first_touch() { vec![UNTOUCHED; info.page_count()] } else { Vec::new() };
        info.wil_pattern = match policy.weighted_nodes() {
            Some((nodes, weights)) => PlacementPolicy::weighted_pattern(nodes, weights),
            None => Vec::new(),
        };
        info.policy = policy;
        Ok(())
    }

    /// Change an object's placement (the optimizations re-place data).
    /// Resets any first-touch history for the object.
    ///
    /// # Panics
    /// Panics if the policy is invalid; see [`MemoryMap::try_set_policy`]
    /// for the non-panicking form.
    pub fn set_policy(&mut self, id: ObjectId, policy: PlacementPolicy) {
        if let Err(e) = self.try_set_policy(id, policy) {
            panic!("invalid placement for object {}: {e}", id.0);
        }
    }

    /// Forget all first-touch placements (fresh run on the same layout).
    pub fn reset_first_touch(&mut self) {
        for info in &mut self.objects {
            info.first_touch.fill(UNTOUCHED);
        }
    }

    /// Turn first-touch claim logging on or off, clearing any pending log.
    /// Shard-private clones run with it on; the canonical map never does.
    pub(crate) fn set_claim_tracking(&mut self, on: bool) {
        self.track_claims = on;
        self.claims.clear();
    }

    /// Drain the claims logged since the last call (round merge).
    pub(crate) fn take_claims(&mut self) -> Vec<FirstTouchClaim> {
        std::mem::take(&mut self.claims)
    }

    /// Apply a claim from another map clone: establish the page on the
    /// claimed node. Idempotent when the page is untouched or already on
    /// that node. Never logged, even with tracking on — the claim is
    /// already in flight.
    ///
    /// # Panics
    /// Panics if the page is already placed on a *different* node: two
    /// shards first-touched the same page from different nodes within one
    /// round, an ordering race whose outcome the unsharded engine decides
    /// by global event order. No silent divergence — the run must be
    /// re-run unsharded (real workloads establish placement in a
    /// single-threaded init phase, as the paper's master-alloc pattern
    /// does, and never hit this).
    pub(crate) fn establish_first_touch(&mut self, claim: FirstTouchClaim) {
        let info = &mut self.objects[claim.object as usize];
        let slot = &mut info.first_touch[claim.page as usize];
        if *slot == UNTOUCHED {
            *slot = claim.node.0;
        } else {
            assert_eq!(
                *slot, claim.node.0,
                "cross-shard first-touch conflict on object {} ({:?}) page {}: nodes {} vs {}",
                claim.object, info.label, claim.page, *slot, claim.node.0
            );
        }
    }

    /// The object containing `addr`, if any.
    #[inline]
    pub fn object_at(&self, addr: u64) -> Option<ObjectId> {
        self.index_of(addr).map(|i| ObjectId(i as u32))
    }

    #[inline]
    fn index_of(&self, addr: u64) -> Option<usize> {
        // Fast path: the object hit by the previous lookup.
        let cached = self.last_hit.get();
        if let Some(info) = self.objects.get(cached) {
            if addr >= info.base && addr < info.base + info.size {
                return Some(cached);
            }
        }
        let i = self.bases.partition_point(|&b| b <= addr);
        if i == 0 {
            return None;
        }
        let info = &self.objects[i - 1];
        if addr < info.base + info.size {
            self.last_hit.set(i - 1);
            Some(i - 1)
        } else {
            None
        }
    }

    /// Home node of the page containing `addr`, as seen by a core on
    /// `accessor`. For first-touch objects this *establishes* the placement
    /// on the first call for a page (hence `&mut`).
    ///
    /// # Panics
    /// Panics if `addr` is outside every allocation.
    #[inline]
    pub fn home_node(&mut self, addr: u64, accessor: NodeId) -> NodeId {
        let idx = self.index_of(addr).unwrap_or_else(|| panic!("access to unallocated address {addr:#x}"));
        let info = &mut self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        match &info.policy {
            PlacementPolicy::Bind(n) => *n,
            PlacementPolicy::Replicated => accessor,
            PlacementPolicy::Interleave(nodes) => nodes[page % nodes.len()],
            PlacementPolicy::WeightedInterleave { .. } => NodeId(info.wil_pattern[page % info.wil_pattern.len()]),
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                segs[i].1
            }
            PlacementPolicy::FirstTouch => {
                let slot = &mut info.first_touch[page];
                if *slot == UNTOUCHED {
                    *slot = accessor.0;
                    if self.track_claims {
                        self.claims.push(FirstTouchClaim { object: idx as u32, page: page as u32, node: accessor });
                    }
                }
                NodeId(*slot)
            }
        }
    }

    /// Like [`MemoryMap::home_node`], but also returns the first address
    /// *after* `addr` at which the answer could change: the end of the
    /// page for page-granular policies (interleave, first-touch), of the
    /// segment for segmented placement, or of the whole object otherwise.
    /// Every address in `addr..end` has the same home for the same
    /// `accessor`, letting a sequential miss stream skip the lookup until
    /// it crosses `end`. First-touch pages are established exactly as
    /// `home_node` would — the span never extends past the page, so no
    /// page is established earlier than its first actual miss.
    ///
    /// # Panics
    /// Panics if `addr` is outside every allocation.
    #[inline]
    pub fn home_node_span(&mut self, addr: u64, accessor: NodeId) -> (NodeId, u64) {
        let idx = self.index_of(addr).unwrap_or_else(|| panic!("access to unallocated address {addr:#x}"));
        let info = &mut self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        let obj_end = info.base + info.size;
        let page_end = (info.base + (page as u64 + 1) * info.page_size).min(obj_end);
        match &info.policy {
            PlacementPolicy::Bind(n) => (*n, obj_end),
            PlacementPolicy::Replicated => (accessor, obj_end),
            PlacementPolicy::Interleave(nodes) => (nodes[page % nodes.len()], page_end),
            PlacementPolicy::WeightedInterleave { .. } => {
                (NodeId(info.wil_pattern[page % info.wil_pattern.len()]), page_end)
            }
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                (segs[i].1, info.base + segs[i].0)
            }
            PlacementPolicy::FirstTouch => {
                let slot = &mut info.first_touch[page];
                if *slot == UNTOUCHED {
                    *slot = accessor.0;
                    if self.track_claims {
                        self.claims.push(FirstTouchClaim { object: idx as u32, page: page as u32, node: accessor });
                    }
                }
                (NodeId(*slot), page_end)
            }
        }
    }

    /// Read-only view of the home node, without establishing first touch.
    /// Untouched first-touch pages report `None` — the analogue of libnuma's
    /// "page not yet faulted in".
    pub fn query_node(&self, addr: u64) -> Option<NodeId> {
        let idx = self.index_of(addr)?;
        let info = &self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        match &info.policy {
            PlacementPolicy::Bind(n) => Some(*n),
            PlacementPolicy::Replicated => None,
            PlacementPolicy::Interleave(nodes) => Some(nodes[page % nodes.len()]),
            PlacementPolicy::WeightedInterleave { .. } => Some(NodeId(info.wil_pattern[page % info.wil_pattern.len()])),
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                Some(segs[i].1)
            }
            PlacementPolicy::FirstTouch => {
                let n = info.first_touch[page];
                (n != UNTOUCHED).then_some(NodeId(n))
            }
        }
    }

    /// Registry entry for an object.
    pub fn object(&self, id: ObjectId) -> &ObjectInfo {
        &self.objects[id.0 as usize]
    }

    /// All objects in allocation order.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectInfo)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjectId(i as u32), o))
    }

    /// Number of allocated objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn mm() -> MemoryMap {
        MemoryMap::new(&MachineConfig::scaled())
    }

    #[test]
    fn alloc_is_line_aligned_disjoint_and_colored() {
        let mut m = mm();
        let a = m.alloc("a", 100, PlacementPolicy::Bind(NodeId(0)));
        let b = m.alloc("b", 100, PlacementPolicy::Bind(NodeId(1)));
        assert_eq!(a.base % 64, 0, "line aligned");
        assert_eq!(b.base % 64, 0);
        assert!(b.base >= a.base + a.size, "disjoint");
        // Coloring: equal-sized back-to-back allocations land on different
        // cache-set offsets.
        let sets = |h: ObjectHandle| (h.base / 64) % 2048;
        assert_ne!(sets(a), sets(b), "cache-set coloring applied");
    }

    #[test]
    fn object_at_finds_interior_and_rejects_gaps() {
        let mut m = mm();
        let a = m.alloc("a", 100, PlacementPolicy::Bind(NodeId(0)));
        let _b = m.alloc("b", 100, PlacementPolicy::Bind(NodeId(0)));
        assert_eq!(m.object_at(a.base + 50), Some(a.id));
        assert_eq!(m.object_at(a.base + 150), None, "gap between objects");
        assert_eq!(m.object_at(0), None);
    }

    #[test]
    fn bind_policy() {
        let mut m = mm();
        let a = m.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(2)));
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(2));
        assert_eq!(m.home_node(a.at(a.size - 1), NodeId(3)), NodeId(2));
    }

    #[test]
    fn first_touch_sticks() {
        let mut m = mm();
        let a = m.alloc("a", 1 << 20, PlacementPolicy::FirstTouch);
        assert_eq!(m.query_node(a.at(0)), None, "untouched page has no home");
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(3));
        // A later accessor from another node does not move the page.
        assert_eq!(m.home_node(a.at(1), NodeId(1)), NodeId(3));
        assert_eq!(m.query_node(a.at(0)), Some(NodeId(3)));
        // A different page is touched independently.
        assert_eq!(m.home_node(a.at(4096), NodeId(1)), NodeId(1));
    }

    #[test]
    fn interleave_round_robins_pages() {
        let mut m = mm();
        let a = m.alloc("a", 4 * 4096, PlacementPolicy::interleave_all(4));
        for p in 0..4u64 {
            assert_eq!(m.home_node(a.at(p * 4096), NodeId(0)), NodeId(p as u8));
        }
        // Within one page, same node.
        assert_eq!(m.home_node(a.at(4096 + 7), NodeId(0)), NodeId(1));
    }

    #[test]
    fn segmented_covers_exactly() {
        let mut m = mm();
        let pol = PlacementPolicy::colocate_even(1 << 20, 4);
        let a = m.alloc("a", 1 << 20, pol);
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(0));
        assert_eq!(m.home_node(a.at((1 << 20) - 1), NodeId(0)), NodeId(3));
        assert_eq!(m.home_node(a.at(1 << 19), NodeId(0)), NodeId(2));
    }

    #[test]
    fn replicated_resolves_to_reader() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::Replicated);
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(3));
    }

    #[test]
    fn set_policy_resets_first_touch() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::FirstTouch);
        m.home_node(a.at(0), NodeId(2));
        m.set_policy(a.id, PlacementPolicy::interleave_all(4));
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        m.set_policy(a.id, PlacementPolicy::FirstTouch);
        assert_eq!(m.query_node(a.at(0)), None);
    }

    #[test]
    fn huge_pages_interleave_coarser() {
        let mut m = mm();
        let a = m.alloc_huge("a", 4 << 20, PlacementPolicy::interleave_all(2));
        // 2 MiB pages: first 2 MiB on node 0, next on node 1.
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at((2 << 20) - 1), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at(2 << 20), NodeId(0)), NodeId(1));
    }

    #[test]
    fn reset_first_touch_forgets() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::FirstTouch);
        m.home_node(a.at(0), NodeId(1));
        m.reset_first_touch();
        assert_eq!(m.home_node(a.at(0), NodeId(2)), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn home_node_panics_outside_allocations() {
        let mut m = mm();
        m.home_node(42, NodeId(0));
    }

    #[test]
    fn home_node_span_agrees_and_bounds_are_tight() {
        let mut m = mm();
        let bind = m.alloc("bind", 3 * 4096, PlacementPolicy::Bind(NodeId(2)));
        let il = m.alloc("il", 4 * 4096, PlacementPolicy::interleave_all(4));
        let seg = m.alloc("seg", 1 << 20, PlacementPolicy::colocate_even(1 << 20, 4));
        let ft = m.alloc("ft", 2 * 4096, PlacementPolicy::FirstTouch);
        let rep = m.alloc("rep", 4096, PlacementPolicy::Replicated);
        let mut check = |addr: u64, accessor: NodeId| {
            let mut probe = m.clone();
            let expect = probe.home_node(addr, accessor);
            let (home, end) = m.home_node_span(addr, accessor);
            assert_eq!(home, expect);
            assert!(end > addr, "span must be non-empty");
            // Every address within the span resolves identically.
            for a in [addr, (addr + end) / 2, end - 1] {
                assert_eq!(m.home_node(a, accessor), home, "span not uniform at {a:#x}");
            }
            end
        };
        assert_eq!(check(bind.at(0), NodeId(0)), bind.base + bind.size);
        assert_eq!(check(il.at(4096 + 7), NodeId(0)), il.base + 2 * 4096);
        assert_eq!(check(seg.at(0), NodeId(3)), seg.base + (1 << 18));
        assert_eq!(check(ft.at(100), NodeId(3)), ft.base + 4096);
        assert_eq!(check(rep.at(10), NodeId(1)), rep.base + rep.size);
        // Establishing via span is indistinguishable from home_node.
        assert_eq!(m.query_node(ft.at(0)), Some(NodeId(3)));
        assert_eq!(m.query_node(ft.at(4096)), None, "next page untouched");
    }

    #[test]
    #[should_panic(expected = "cover the object exactly")]
    fn segmented_must_cover() {
        let mut m = mm();
        m.alloc("a", 100, PlacementPolicy::Segmented(vec![(50, NodeId(0))]));
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_rejected() {
        mm().alloc("z", 0, PlacementPolicy::FirstTouch);
    }

    #[test]
    fn weighted_constructor_validates() {
        let n = |i: u8| NodeId(i);
        assert_eq!(PlacementPolicy::weighted(vec![], vec![]), Err(PlacementError::EmptyNodes));
        assert_eq!(
            PlacementPolicy::weighted(vec![n(0), n(1)], vec![1]),
            Err(PlacementError::WeightCountMismatch { nodes: 2, weights: 1 })
        );
        assert_eq!(
            PlacementPolicy::weighted(vec![n(0), n(1)], vec![1, 0]),
            Err(PlacementError::ZeroWeight { index: 1 })
        );
        assert_eq!(
            PlacementPolicy::weighted(vec![n(0), n(1)], vec![5000, 1]),
            Err(PlacementError::WeightSumTooLarge { sum: 5001 })
        );
        assert!(PlacementPolicy::weighted(vec![n(0), n(2)], vec![1, 3]).is_ok());
        // Node existence is a machine property, caught at apply time.
        let mut m = mm();
        let pol = PlacementPolicy::weighted(vec![n(9)], vec![1]).unwrap();
        let a = m.alloc("a", 4096, PlacementPolicy::FirstTouch);
        assert_eq!(m.try_set_policy(a.id, pol), Err(PlacementError::NonexistentNode(n(9))));
        assert!(m.object(a.id).policy.is_first_touch(), "object unchanged on error");
    }

    #[test]
    fn weighted_equal_weights_match_uniform_interleave() {
        let mut m = mm();
        let pages = 64u64;
        let uni = m.alloc("uni", pages * 4096, PlacementPolicy::interleave_all(4));
        let wil = m.alloc("wil", pages * 4096, PlacementPolicy::weighted_all(vec![7, 7, 7, 7]).unwrap());
        for p in 0..pages {
            assert_eq!(m.query_node(uni.at(p * 4096)), m.query_node(wil.at(p * 4096)), "page {p}");
        }
    }

    #[test]
    fn weighted_striping_is_deterministic_and_proportional() {
        let mut m = mm();
        // 1:3 over nodes {0, 2}: every 4-page window has one page on node 0
        // and three on node 2, smooth-spread (node 2 first: higher weight).
        let pol = PlacementPolicy::weighted(vec![NodeId(0), NodeId(2)], vec![1, 3]).unwrap();
        let a = m.alloc("a", 16 * 4096, pol.clone());
        let homes: Vec<u8> = (0..16).map(|p| m.home_node(a.at(p * 4096), NodeId(1)).0).collect();
        assert_eq!(&homes[..4], &[2, 0, 2, 2], "smooth WRR order");
        assert_eq!(&homes[4..8], &homes[..4], "pattern repeats per cycle");
        for win in homes.chunks(4) {
            assert_eq!(win.iter().filter(|&&h| h == 0).count(), 1);
            assert_eq!(win.iter().filter(|&&h| h == 2).count(), 3);
        }
        // Same policy on a second allocation stripes identically.
        let b = m.alloc("b", 16 * 4096, pol);
        let homes_b: Vec<u8> = (0..16).map(|p| m.home_node(b.at(p * 4096), NodeId(1)).0).collect();
        assert_eq!(homes, homes_b, "striping is a pure function of the policy");
    }

    #[test]
    fn weighted_huge_pages_and_spans() {
        let mut m = mm();
        let pol = PlacementPolicy::weighted(vec![NodeId(0), NodeId(1)], vec![1, 2]).unwrap();
        let a = m.alloc_huge("a", 6 << 20, pol);
        // 2 MiB pages, cycle [1, 0, 1]: node 1 first (weight 2 wins the tie
        // pattern), then 0, then 1 again.
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(1));
        assert_eq!(m.home_node(a.at(2 << 20), NodeId(3)), NodeId(0));
        assert_eq!(m.home_node(a.at(4 << 20), NodeId(3)), NodeId(1));
        // Span is page-granular and agrees with home_node.
        let (home, end) = m.home_node_span(a.at(7), NodeId(3));
        assert_eq!(home, NodeId(1));
        assert_eq!(end, a.base + (2 << 20));
    }

    #[test]
    fn labels_and_iteration() {
        let mut m = mm();
        m.alloc("x", 10, PlacementPolicy::FirstTouch);
        m.alloc("y", 10, PlacementPolicy::FirstTouch);
        let labels: Vec<_> = m.objects().map(|(_, o)| o.label.clone()).collect();
        assert_eq!(labels, ["x", "y"]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}

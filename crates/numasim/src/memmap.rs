//! The simulated address space: object allocation and page placement.
//!
//! Data values are never stored — an "allocation" reserves a range of the
//! synthetic address space and records *which NUMA node owns each page* of
//! it. The placement vocabulary matches what libnuma gives the paper:
//!
//! * [`PlacementPolicy::FirstTouch`] — Linux default; the node of the first
//!   core to touch a page becomes its home. A master thread initialising an
//!   array therefore lands every page on its own node — the root cause of
//!   most contention the paper diagnoses.
//! * [`PlacementPolicy::Bind`] — `numa_alloc_onnode`.
//! * [`PlacementPolicy::Interleave`] — `numa_alloc_interleaved`, the
//!   paper's coarse-grained *interleave* optimization and its ground-truth
//!   probe (§VII.B).
//! * [`PlacementPolicy::Segmented`] — the paper's *co-locate* optimization:
//!   each contiguous segment is placed on the node whose threads compute on
//!   it.
//! * [`PlacementPolicy::Replicated`] — the paper's *replicate* optimization
//!   for read-mostly data (Streamcluster's `block`): every node has a local
//!   copy, so each access resolves to the reader's own node.

use crate::config::MachineConfig;
use crate::topology::NodeId;

/// Identifier of an allocated data object, dense per [`MemoryMap`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ObjectId(pub u32);

/// Where the pages of an object live.
#[derive(Debug, Clone, PartialEq)]
pub enum PlacementPolicy {
    /// Page homed on the node of the first accessor (Linux default).
    FirstTouch,
    /// Every page on one node.
    Bind(NodeId),
    /// Pages round-robined over the given nodes (must be non-empty).
    Interleave(Vec<NodeId>),
    /// Contiguous segments, each bound to a node. Entries are
    /// `(end_offset_exclusive, node)` with strictly increasing offsets; the
    /// last entry must cover the whole object.
    Segmented(Vec<(u64, NodeId)>),
    /// A read-only copy on every node: accesses resolve to the reader's
    /// node (writes are allowed but modelled as local, matching the
    /// paper's use on data that is never overwritten after initialisation).
    Replicated,
}

impl PlacementPolicy {
    /// Interleave over all `n` nodes.
    pub fn interleave_all(n: usize) -> Self {
        PlacementPolicy::Interleave((0..n as u8).map(NodeId).collect())
    }

    /// Split `size` bytes into `n` equal segments, segment `i` on node `i` —
    /// the co-locate layout for a loop whose iteration space is divided
    /// evenly over nodes.
    pub fn colocate_even(size: u64, n: usize) -> Self {
        assert!(n > 0);
        let mut segs = Vec::with_capacity(n);
        for i in 0..n {
            let end = if i + 1 == n { size } else { size * (i as u64 + 1) / n as u64 };
            segs.push((end, NodeId(i as u8)));
        }
        PlacementPolicy::Segmented(segs)
    }
}

/// A successfully allocated object: its id and address range.
#[derive(Debug, Clone, Copy)]
pub struct ObjectHandle {
    /// Object id for registry lookups.
    pub id: ObjectId,
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
}

impl ObjectHandle {
    /// Address of byte `off` within the object.
    ///
    /// # Panics
    /// Panics in debug builds if `off` is out of range.
    #[inline]
    pub fn at(&self, off: u64) -> u64 {
        debug_assert!(off < self.size, "offset {off} out of object of {} bytes", self.size);
        self.base + off
    }
}

/// Registry entry for one object.
#[derive(Debug, Clone)]
pub struct ObjectInfo {
    /// Human-readable name (the variable name in the paper's case studies,
    /// e.g. `RAP_diag_j`, `block`, `reference`).
    pub label: String,
    /// First byte address.
    pub base: u64,
    /// Size in bytes.
    pub size: u64,
    /// Current placement policy.
    pub policy: PlacementPolicy,
    /// Page size used for placement of this object.
    pub page_size: u64,
    /// First-touch record: home node per page, `u8::MAX` = untouched.
    /// Only populated for [`PlacementPolicy::FirstTouch`].
    first_touch: Vec<u8>,
}

impl ObjectInfo {
    fn page_count(&self) -> usize {
        (self.size.div_ceil(self.page_size)) as usize
    }
}

const UNTOUCHED: u8 = u8::MAX;
/// Allocations start above zero so a null-ish address is never valid.
const BASE_ADDR: u64 = 0x1000_0000;

/// The simulated address space: a bump allocator plus the page-placement
/// registry. Owned by the engine during a run.
#[derive(Debug, Clone)]
pub struct MemoryMap {
    objects: Vec<ObjectInfo>,
    /// Object bases, for binary search; `bases[i]` belongs to `objects[i]`.
    bases: Vec<u64>,
    next_addr: u64,
    page_size: u64,
    huge_page_size: u64,
    num_nodes: usize,
    /// One-entry lookup cache: index of the last object hit.
    last_hit: std::cell::Cell<usize>,
}

impl MemoryMap {
    /// An empty address space for the given machine.
    pub fn new(cfg: &MachineConfig) -> Self {
        Self {
            objects: Vec::new(),
            bases: Vec::new(),
            next_addr: BASE_ADDR,
            page_size: cfg.mem.page_size,
            huge_page_size: cfg.mem.huge_page_size,
            num_nodes: cfg.topology.num_nodes(),
            last_hit: std::cell::Cell::new(0),
        }
    }

    /// Allocate `size` bytes on base (4 KiB) pages.
    ///
    /// # Panics
    /// Panics if `size == 0` or the policy is invalid for this machine.
    pub fn alloc(&mut self, label: &str, size: u64, policy: PlacementPolicy) -> ObjectHandle {
        self.alloc_with_page_size(label, size, policy, self.page_size)
    }

    /// Allocate `size` bytes on huge (2 MiB) pages — the bandit
    /// micro-benchmark needs the deterministic page-offset → cache-set
    /// mapping huge pages provide.
    pub fn alloc_huge(&mut self, label: &str, size: u64, policy: PlacementPolicy) -> ObjectHandle {
        self.alloc_with_page_size(label, size, policy, self.huge_page_size)
    }

    fn alloc_with_page_size(
        &mut self,
        label: &str,
        size: u64,
        policy: PlacementPolicy,
        page_size: u64,
    ) -> ObjectHandle {
        assert!(size > 0, "zero-sized allocation for {label:?}");
        self.validate_policy(&policy, size);
        // Align the base so page 0 of the object starts a fresh page, then
        // apply cache-set coloring: successive allocations are offset by a
        // varying number of lines so that same-sized arrays do not land on
        // identical cache sets. Without this, a program allocating many
        // arrays whose size is a multiple of a cache's way size (e.g.
        // IRSmk's 29 equal coefficient arrays) would thrash every set-
        // associative level — real allocators and padded HPC codes avoid
        // exactly this pathological alignment.
        let color = (self.objects.len() as u64 % 61) * 64;
        let base = self.next_addr.next_multiple_of(page_size) + color;
        self.next_addr = base + size;
        let id = ObjectId(self.objects.len() as u32);
        let mut info = ObjectInfo { label: label.to_string(), base, size, policy, page_size, first_touch: Vec::new() };
        if matches!(info.policy, PlacementPolicy::FirstTouch) {
            info.first_touch = vec![UNTOUCHED; info.page_count()];
        }
        self.objects.push(info);
        self.bases.push(base);
        ObjectHandle { id, base, size }
    }

    fn validate_policy(&self, policy: &PlacementPolicy, size: u64) {
        match policy {
            PlacementPolicy::Bind(n) => assert!((n.0 as usize) < self.num_nodes, "bind to nonexistent {n}"),
            PlacementPolicy::Interleave(nodes) => {
                assert!(!nodes.is_empty(), "interleave over no nodes");
                assert!(nodes.iter().all(|n| (n.0 as usize) < self.num_nodes), "interleave over nonexistent node");
            }
            PlacementPolicy::Segmented(segs) => {
                assert!(!segs.is_empty(), "empty segment list");
                let mut prev = 0;
                for &(end, n) in segs {
                    assert!(end > prev, "segment ends must strictly increase");
                    assert!((n.0 as usize) < self.num_nodes, "segment on nonexistent {n}");
                    prev = end;
                }
                assert_eq!(prev, size, "segments must cover the object exactly");
            }
            PlacementPolicy::FirstTouch | PlacementPolicy::Replicated => {}
        }
    }

    /// Change an object's placement (the optimizations re-place data).
    /// Resets any first-touch history for the object.
    ///
    /// # Panics
    /// Panics if the policy is invalid.
    pub fn set_policy(&mut self, id: ObjectId, policy: PlacementPolicy) {
        let size = self.objects[id.0 as usize].size;
        self.validate_policy(&policy, size);
        let info = &mut self.objects[id.0 as usize];
        info.first_touch =
            if matches!(policy, PlacementPolicy::FirstTouch) { vec![UNTOUCHED; info.page_count()] } else { Vec::new() };
        info.policy = policy;
    }

    /// Forget all first-touch placements (fresh run on the same layout).
    pub fn reset_first_touch(&mut self) {
        for info in &mut self.objects {
            info.first_touch.fill(UNTOUCHED);
        }
    }

    /// The object containing `addr`, if any.
    #[inline]
    pub fn object_at(&self, addr: u64) -> Option<ObjectId> {
        self.index_of(addr).map(|i| ObjectId(i as u32))
    }

    #[inline]
    fn index_of(&self, addr: u64) -> Option<usize> {
        // Fast path: the object hit by the previous lookup.
        let cached = self.last_hit.get();
        if let Some(info) = self.objects.get(cached) {
            if addr >= info.base && addr < info.base + info.size {
                return Some(cached);
            }
        }
        let i = self.bases.partition_point(|&b| b <= addr);
        if i == 0 {
            return None;
        }
        let info = &self.objects[i - 1];
        if addr < info.base + info.size {
            self.last_hit.set(i - 1);
            Some(i - 1)
        } else {
            None
        }
    }

    /// Home node of the page containing `addr`, as seen by a core on
    /// `accessor`. For first-touch objects this *establishes* the placement
    /// on the first call for a page (hence `&mut`).
    ///
    /// # Panics
    /// Panics if `addr` is outside every allocation.
    #[inline]
    pub fn home_node(&mut self, addr: u64, accessor: NodeId) -> NodeId {
        let idx = self.index_of(addr).unwrap_or_else(|| panic!("access to unallocated address {addr:#x}"));
        let info = &mut self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        match &info.policy {
            PlacementPolicy::Bind(n) => *n,
            PlacementPolicy::Replicated => accessor,
            PlacementPolicy::Interleave(nodes) => nodes[page % nodes.len()],
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                segs[i].1
            }
            PlacementPolicy::FirstTouch => {
                let slot = &mut info.first_touch[page];
                if *slot == UNTOUCHED {
                    *slot = accessor.0;
                }
                NodeId(*slot)
            }
        }
    }

    /// Like [`MemoryMap::home_node`], but also returns the first address
    /// *after* `addr` at which the answer could change: the end of the
    /// page for page-granular policies (interleave, first-touch), of the
    /// segment for segmented placement, or of the whole object otherwise.
    /// Every address in `addr..end` has the same home for the same
    /// `accessor`, letting a sequential miss stream skip the lookup until
    /// it crosses `end`. First-touch pages are established exactly as
    /// `home_node` would — the span never extends past the page, so no
    /// page is established earlier than its first actual miss.
    ///
    /// # Panics
    /// Panics if `addr` is outside every allocation.
    #[inline]
    pub fn home_node_span(&mut self, addr: u64, accessor: NodeId) -> (NodeId, u64) {
        let idx = self.index_of(addr).unwrap_or_else(|| panic!("access to unallocated address {addr:#x}"));
        let info = &mut self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        let obj_end = info.base + info.size;
        let page_end = (info.base + (page as u64 + 1) * info.page_size).min(obj_end);
        match &info.policy {
            PlacementPolicy::Bind(n) => (*n, obj_end),
            PlacementPolicy::Replicated => (accessor, obj_end),
            PlacementPolicy::Interleave(nodes) => (nodes[page % nodes.len()], page_end),
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                (segs[i].1, info.base + segs[i].0)
            }
            PlacementPolicy::FirstTouch => {
                let slot = &mut info.first_touch[page];
                if *slot == UNTOUCHED {
                    *slot = accessor.0;
                }
                (NodeId(*slot), page_end)
            }
        }
    }

    /// Read-only view of the home node, without establishing first touch.
    /// Untouched first-touch pages report `None` — the analogue of libnuma's
    /// "page not yet faulted in".
    pub fn query_node(&self, addr: u64) -> Option<NodeId> {
        let idx = self.index_of(addr)?;
        let info = &self.objects[idx];
        let off = addr - info.base;
        let page = (off / info.page_size) as usize;
        match &info.policy {
            PlacementPolicy::Bind(n) => Some(*n),
            PlacementPolicy::Replicated => None,
            PlacementPolicy::Interleave(nodes) => Some(nodes[page % nodes.len()]),
            PlacementPolicy::Segmented(segs) => {
                let i = segs.partition_point(|&(end, _)| end <= off);
                Some(segs[i].1)
            }
            PlacementPolicy::FirstTouch => {
                let n = info.first_touch[page];
                (n != UNTOUCHED).then_some(NodeId(n))
            }
        }
    }

    /// Registry entry for an object.
    pub fn object(&self, id: ObjectId) -> &ObjectInfo {
        &self.objects[id.0 as usize]
    }

    /// All objects in allocation order.
    pub fn objects(&self) -> impl Iterator<Item = (ObjectId, &ObjectInfo)> {
        self.objects.iter().enumerate().map(|(i, o)| (ObjectId(i as u32), o))
    }

    /// Number of allocated objects.
    pub fn len(&self) -> usize {
        self.objects.len()
    }

    /// Whether no objects have been allocated.
    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::MachineConfig;

    fn mm() -> MemoryMap {
        MemoryMap::new(&MachineConfig::scaled())
    }

    #[test]
    fn alloc_is_line_aligned_disjoint_and_colored() {
        let mut m = mm();
        let a = m.alloc("a", 100, PlacementPolicy::Bind(NodeId(0)));
        let b = m.alloc("b", 100, PlacementPolicy::Bind(NodeId(1)));
        assert_eq!(a.base % 64, 0, "line aligned");
        assert_eq!(b.base % 64, 0);
        assert!(b.base >= a.base + a.size, "disjoint");
        // Coloring: equal-sized back-to-back allocations land on different
        // cache-set offsets.
        let sets = |h: ObjectHandle| (h.base / 64) % 2048;
        assert_ne!(sets(a), sets(b), "cache-set coloring applied");
    }

    #[test]
    fn object_at_finds_interior_and_rejects_gaps() {
        let mut m = mm();
        let a = m.alloc("a", 100, PlacementPolicy::Bind(NodeId(0)));
        let _b = m.alloc("b", 100, PlacementPolicy::Bind(NodeId(0)));
        assert_eq!(m.object_at(a.base + 50), Some(a.id));
        assert_eq!(m.object_at(a.base + 150), None, "gap between objects");
        assert_eq!(m.object_at(0), None);
    }

    #[test]
    fn bind_policy() {
        let mut m = mm();
        let a = m.alloc("a", 1 << 20, PlacementPolicy::Bind(NodeId(2)));
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(2));
        assert_eq!(m.home_node(a.at(a.size - 1), NodeId(3)), NodeId(2));
    }

    #[test]
    fn first_touch_sticks() {
        let mut m = mm();
        let a = m.alloc("a", 1 << 20, PlacementPolicy::FirstTouch);
        assert_eq!(m.query_node(a.at(0)), None, "untouched page has no home");
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(3));
        // A later accessor from another node does not move the page.
        assert_eq!(m.home_node(a.at(1), NodeId(1)), NodeId(3));
        assert_eq!(m.query_node(a.at(0)), Some(NodeId(3)));
        // A different page is touched independently.
        assert_eq!(m.home_node(a.at(4096), NodeId(1)), NodeId(1));
    }

    #[test]
    fn interleave_round_robins_pages() {
        let mut m = mm();
        let a = m.alloc("a", 4 * 4096, PlacementPolicy::interleave_all(4));
        for p in 0..4u64 {
            assert_eq!(m.home_node(a.at(p * 4096), NodeId(0)), NodeId(p as u8));
        }
        // Within one page, same node.
        assert_eq!(m.home_node(a.at(4096 + 7), NodeId(0)), NodeId(1));
    }

    #[test]
    fn segmented_covers_exactly() {
        let mut m = mm();
        let pol = PlacementPolicy::colocate_even(1 << 20, 4);
        let a = m.alloc("a", 1 << 20, pol);
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(0));
        assert_eq!(m.home_node(a.at((1 << 20) - 1), NodeId(0)), NodeId(3));
        assert_eq!(m.home_node(a.at(1 << 19), NodeId(0)), NodeId(2));
    }

    #[test]
    fn replicated_resolves_to_reader() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::Replicated);
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at(0), NodeId(3)), NodeId(3));
    }

    #[test]
    fn set_policy_resets_first_touch() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::FirstTouch);
        m.home_node(a.at(0), NodeId(2));
        m.set_policy(a.id, PlacementPolicy::interleave_all(4));
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        m.set_policy(a.id, PlacementPolicy::FirstTouch);
        assert_eq!(m.query_node(a.at(0)), None);
    }

    #[test]
    fn huge_pages_interleave_coarser() {
        let mut m = mm();
        let a = m.alloc_huge("a", 4 << 20, PlacementPolicy::interleave_all(2));
        // 2 MiB pages: first 2 MiB on node 0, next on node 1.
        assert_eq!(m.home_node(a.at(0), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at((2 << 20) - 1), NodeId(0)), NodeId(0));
        assert_eq!(m.home_node(a.at(2 << 20), NodeId(0)), NodeId(1));
    }

    #[test]
    fn reset_first_touch_forgets() {
        let mut m = mm();
        let a = m.alloc("a", 4096, PlacementPolicy::FirstTouch);
        m.home_node(a.at(0), NodeId(1));
        m.reset_first_touch();
        assert_eq!(m.home_node(a.at(0), NodeId(2)), NodeId(2));
    }

    #[test]
    #[should_panic(expected = "unallocated")]
    fn home_node_panics_outside_allocations() {
        let mut m = mm();
        m.home_node(42, NodeId(0));
    }

    #[test]
    fn home_node_span_agrees_and_bounds_are_tight() {
        let mut m = mm();
        let bind = m.alloc("bind", 3 * 4096, PlacementPolicy::Bind(NodeId(2)));
        let il = m.alloc("il", 4 * 4096, PlacementPolicy::interleave_all(4));
        let seg = m.alloc("seg", 1 << 20, PlacementPolicy::colocate_even(1 << 20, 4));
        let ft = m.alloc("ft", 2 * 4096, PlacementPolicy::FirstTouch);
        let rep = m.alloc("rep", 4096, PlacementPolicy::Replicated);
        let mut check = |addr: u64, accessor: NodeId| {
            let mut probe = m.clone();
            let expect = probe.home_node(addr, accessor);
            let (home, end) = m.home_node_span(addr, accessor);
            assert_eq!(home, expect);
            assert!(end > addr, "span must be non-empty");
            // Every address within the span resolves identically.
            for a in [addr, (addr + end) / 2, end - 1] {
                assert_eq!(m.home_node(a, accessor), home, "span not uniform at {a:#x}");
            }
            end
        };
        assert_eq!(check(bind.at(0), NodeId(0)), bind.base + bind.size);
        assert_eq!(check(il.at(4096 + 7), NodeId(0)), il.base + 2 * 4096);
        assert_eq!(check(seg.at(0), NodeId(3)), seg.base + (1 << 18));
        assert_eq!(check(ft.at(100), NodeId(3)), ft.base + 4096);
        assert_eq!(check(rep.at(10), NodeId(1)), rep.base + rep.size);
        // Establishing via span is indistinguishable from home_node.
        assert_eq!(m.query_node(ft.at(0)), Some(NodeId(3)));
        assert_eq!(m.query_node(ft.at(4096)), None, "next page untouched");
    }

    #[test]
    #[should_panic(expected = "cover the object exactly")]
    fn segmented_must_cover() {
        let mut m = mm();
        m.alloc("a", 100, PlacementPolicy::Segmented(vec![(50, NodeId(0))]));
    }

    #[test]
    #[should_panic(expected = "zero-sized")]
    fn zero_alloc_rejected() {
        mm().alloc("z", 0, PlacementPolicy::FirstTouch);
    }

    #[test]
    fn labels_and_iteration() {
        let mut m = mm();
        m.alloc("x", 10, PlacementPolicy::FirstTouch);
        m.alloc("y", 10, PlacementPolicy::FirstTouch);
        let labels: Vec<_> = m.objects().map(|(_, o)| o.label.clone()).collect();
        assert_eq!(labels, ["x", "y"]);
        assert_eq!(m.len(), 2);
        assert!(!m.is_empty());
    }
}

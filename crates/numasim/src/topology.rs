//! NUMA topology: nodes, cores, hardware threads, and interconnect channels.
//!
//! The paper's machine (Figure 1) is four fully interconnected sockets, each
//! with its own memory controller. A *channel* here is a **directed** link
//! between an ordered pair of distinct nodes, matching the paper's
//! observation that bandwidths differ even for opposing directions of the
//! same physical link.

use std::fmt;

/// Identifier of a NUMA node (socket). Dense, starting at 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u8);

/// Identifier of a physical core, global across the machine. Dense.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct CoreId(pub u32);

/// Identifier of a simulated software thread. Dense per run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ThreadId(pub u32);

/// A directed interconnect channel between two distinct NUMA nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ChannelId {
    /// The node issuing the traffic (where the accessing core lives).
    pub src: NodeId,
    /// The node owning the memory being accessed.
    pub dst: NodeId,
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "N{}", self.0)
    }
}

impl fmt::Display for ChannelId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}->{}", self.src, self.dst)
    }
}

/// Static description of the machine's NUMA layout.
///
/// All lookups used on the engine's hot path (`node_of_core`) are O(1)
/// arithmetic; the topology is fully connected, so every ordered pair of
/// distinct nodes has exactly one channel.
#[derive(Debug, Clone)]
pub struct Topology {
    nodes: u8,
    cores_per_node: u32,
    smt: u32,
}

impl Topology {
    /// Build a fully connected topology.
    ///
    /// * `nodes` — number of sockets (the paper's machine has 4).
    /// * `cores_per_node` — physical cores per socket (8).
    /// * `smt` — hardware threads per core (2 with Hyper-Threading).
    ///
    /// # Panics
    /// Panics if any argument is zero or `nodes > 64`.
    pub fn new(nodes: u8, cores_per_node: u32, smt: u32) -> Self {
        assert!(nodes > 0 && cores_per_node > 0 && smt > 0, "topology dimensions must be positive");
        assert!(nodes <= 64, "at most 64 nodes supported");
        Self { nodes, cores_per_node, smt }
    }

    /// Number of NUMA nodes (sockets).
    #[inline]
    pub fn num_nodes(&self) -> usize {
        self.nodes as usize
    }

    /// Physical cores per node.
    #[inline]
    pub fn cores_per_node(&self) -> usize {
        self.cores_per_node as usize
    }

    /// Hardware threads per core (SMT ways).
    #[inline]
    pub fn smt(&self) -> usize {
        self.smt as usize
    }

    /// Total physical cores in the machine.
    #[inline]
    pub fn num_cores(&self) -> usize {
        self.num_nodes() * self.cores_per_node()
    }

    /// Total hardware threads (cores × SMT).
    #[inline]
    pub fn num_hw_threads(&self) -> usize {
        self.num_cores() * self.smt()
    }

    /// The NUMA node a core belongs to.
    ///
    /// Cores are numbered node-major: cores `0..cores_per_node` are on node
    /// 0, the next `cores_per_node` on node 1, and so on.
    ///
    /// # Panics
    /// Panics if the core id is out of range.
    #[inline]
    pub fn node_of_core(&self, core: CoreId) -> NodeId {
        let n = core.0 / self.cores_per_node;
        assert!(n < self.nodes as u32, "core {core:?} out of range");
        NodeId(n as u8)
    }

    /// Whether `core` is a valid core id on this machine.
    #[inline]
    pub fn core_in_range(&self, core: CoreId) -> bool {
        (core.0 as usize) < self.num_cores()
    }

    /// Iterator over all node ids.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> {
        (0..self.nodes).map(NodeId)
    }

    /// Iterator over all directed channels (ordered pairs of distinct nodes).
    pub fn channels(&self) -> impl Iterator<Item = ChannelId> + '_ {
        let n = self.nodes;
        (0..n).flat_map(move |s| {
            (0..n).filter(move |&d| d != s).map(move |d| ChannelId { src: NodeId(s), dst: NodeId(d) })
        })
    }

    /// Number of directed channels: `n * (n - 1)`.
    #[inline]
    pub fn num_channels(&self) -> usize {
        let n = self.num_nodes();
        n * (n - 1)
    }

    /// Dense index of a directed channel, in `0..num_channels()`.
    ///
    /// Returns `None` for the degenerate "channel" from a node to itself
    /// (local accesses do not traverse the interconnect).
    #[inline]
    pub fn channel_index(&self, ch: ChannelId) -> Option<usize> {
        if ch.src == ch.dst {
            return None;
        }
        let n = self.num_nodes();
        let (s, d) = (ch.src.0 as usize, ch.dst.0 as usize);
        debug_assert!(s < n && d < n);
        // Row-major over (src, dst) with the diagonal removed.
        Some(s * (n - 1) + if d > s { d - 1 } else { d })
    }

    /// Inverse of [`Topology::channel_index`].
    #[inline]
    pub fn channel_at(&self, index: usize) -> ChannelId {
        let n = self.num_nodes();
        assert!(index < self.num_channels(), "channel index out of range");
        let s = index / (n - 1);
        let r = index % (n - 1);
        let d = if r >= s { r + 1 } else { r };
        ChannelId { src: NodeId(s as u8), dst: NodeId(d as u8) }
    }

    /// Number of interconnect hops between two nodes (0 if equal, else 1:
    /// the machine is fully connected).
    #[inline]
    pub fn hops(&self, a: NodeId, b: NodeId) -> u32 {
        u32::from(a != b)
    }

    /// Distribute `t` threads over the first `n` nodes in the paper's
    /// `Tt-Nn` scheme: threads are split evenly, each group bound to
    /// consecutive cores of its node (SMT siblings used once the physical
    /// cores of a node are exhausted).
    ///
    /// Returns, for each thread id in `0..t`, the core it is bound to.
    /// Matches the paper's example: for T16-N4, threads 0–3 go to node 0,
    /// 4–7 to node 1, and so on.
    ///
    /// # Panics
    /// Panics if `n` exceeds the node count, `t` is not divisible by `n`,
    /// or a node would need more threads than it has hardware threads.
    pub fn bind_threads(&self, t: usize, n: usize) -> Vec<CoreId> {
        assert!(n >= 1 && n <= self.num_nodes(), "node count {n} out of range");
        assert!(t >= n && t.is_multiple_of(n), "thread count {t} must be a positive multiple of node count {n}");
        let per_node = t / n;
        assert!(
            per_node <= self.cores_per_node() * self.smt(),
            "{per_node} threads per node exceeds hardware threads per node"
        );
        let mut out = Vec::with_capacity(t);
        for tid in 0..t {
            let node = tid / per_node;
            let slot = tid % per_node;
            // Fill physical cores first, then wrap onto SMT siblings.
            let core_in_node = slot % self.cores_per_node();
            let core = node * self.cores_per_node() + core_in_node;
            out.push(CoreId(core as u32));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn topo() -> Topology {
        Topology::new(4, 8, 2)
    }

    #[test]
    fn counts() {
        let t = topo();
        assert_eq!(t.num_nodes(), 4);
        assert_eq!(t.num_cores(), 32);
        assert_eq!(t.num_hw_threads(), 64);
        assert_eq!(t.num_channels(), 12);
    }

    #[test]
    fn node_of_core_is_node_major() {
        let t = topo();
        assert_eq!(t.node_of_core(CoreId(0)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(7)), NodeId(0));
        assert_eq!(t.node_of_core(CoreId(8)), NodeId(1));
        assert_eq!(t.node_of_core(CoreId(31)), NodeId(3));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn node_of_core_rejects_bogus_core() {
        topo().node_of_core(CoreId(32));
    }

    #[test]
    fn channel_index_roundtrip() {
        let t = topo();
        let mut seen = vec![false; t.num_channels()];
        for ch in t.channels() {
            let i = t.channel_index(ch).expect("distinct nodes");
            assert!(!seen[i], "duplicate index {i} for {ch}");
            seen[i] = true;
            assert_eq!(t.channel_at(i), ch);
        }
        assert!(seen.iter().all(|&b| b));
    }

    #[test]
    fn local_channel_has_no_index() {
        let t = topo();
        assert_eq!(t.channel_index(ChannelId { src: NodeId(2), dst: NodeId(2) }), None);
    }

    #[test]
    fn hops_fully_connected() {
        let t = topo();
        assert_eq!(t.hops(NodeId(0), NodeId(0)), 0);
        assert_eq!(t.hops(NodeId(0), NodeId(3)), 1);
    }

    #[test]
    fn bind_t16_n4_matches_paper_example() {
        let t = topo();
        let binding = t.bind_threads(16, 4);
        // Threads 0-3 on node 0, 4-7 on node 1, 8-11 on node 2, 12-15 on node 3.
        for (tid, core) in binding.iter().enumerate() {
            assert_eq!(t.node_of_core(*core), NodeId((tid / 4) as u8));
        }
    }

    #[test]
    fn bind_t64_n4_uses_smt() {
        let t = topo();
        let binding = t.bind_threads(64, 4);
        assert_eq!(binding.len(), 64);
        // 16 threads per node over 8 cores: SMT siblings share a core.
        assert_eq!(binding[0], binding[8]);
        assert_ne!(binding[0], binding[1]);
    }

    #[test]
    #[should_panic(expected = "multiple of node count")]
    fn bind_rejects_uneven_split() {
        topo().bind_threads(10, 4);
    }

    #[test]
    #[should_panic(expected = "exceeds hardware threads")]
    fn bind_rejects_oversubscription() {
        topo().bind_threads(68, 2);
    }

    #[test]
    fn channels_iter_unique_and_directed() {
        let t = topo();
        let chans: Vec<_> = t.channels().collect();
        assert_eq!(chans.len(), 12);
        assert!(chans.contains(&ChannelId { src: NodeId(0), dst: NodeId(1) }));
        assert!(chans.contains(&ChannelId { src: NodeId(1), dst: NodeId(0) }));
    }
}

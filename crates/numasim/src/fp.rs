//! Exact floating-point batching primitives.
//!
//! The batched engine replaces chains of identical f64 additions (clock
//! advances, per-line byte accounting) with fused updates — but only when
//! the fused form is provably bit-identical to the sequential chain. This
//! module holds the one primitive that decision rests on.

/// Advance `acc` by `n` sequential additions of `delta`, collapsing runs of
/// the dependent add chain to fused updates whenever that is bit-identical.
///
/// A run of `m` additions collapses exactly when every partial sum stays in
/// `acc`'s binade and on its ulp grid: `delta` must be a non-negative exact
/// multiple of that ulp (with `delta / ulp ≤ 2^53` so products stay exact)
/// and the partial sums must not reach the next power of two. Every
/// intermediate sum is then exactly representable, so each sequential add
/// would round to the same grid point the fused form lands on. Crossing a
/// binade takes one literal add, after which the (doubled) ulp grid is
/// re-checked — so accumulators that grow through many binades (per-round
/// byte counters) still collapse piecewise. Sub-ulp or off-grid deltas and
/// tiny accumulators run the literal chain.
#[inline]
pub fn bulk_add(mut acc: f64, delta: f64, mut n: u64) -> f64 {
    debug_assert!(acc >= 0.0 && delta >= 0.0, "accumulators and costs are non-negative");
    if delta == 0.0 {
        // Adding +0.0 never changes a non-negative value.
        return acc;
    }
    while n > 0 {
        let bits = acc.to_bits();
        let exp = bits >> 52; // acc >= 0.0 always: no sign bit to strip.
        if exp > 52 && exp < 0x7fe {
            let ulp = f64::from_bits((exp - 52) << 52);
            let steps = delta / ulp; // exact: ulp is a power of two
            if steps.fract() == 0.0 && steps <= (1u64 << 53) as f64 {
                let d = steps as u64; // delta = d * ulp, d >= 1
                let a = (bits & ((1u64 << 52) - 1)) | (1u64 << 52); // acc = a * ulp
                                                                    // Largest m with a + m*d < 2^53 (the binade top in ulps):
                                                                    // all partial sums then stay exact on the grid.
                let m = (((1u64 << 53) - 1 - a) / d).min(n);
                if m > 0 {
                    acc += m as f64 * delta; // m*d < 2^53: product and sum exact
                    n -= m;
                    continue;
                }
            }
        }
        acc += delta;
        n -= 1;
    }
    acc
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(mut c: f64, d: f64, n: u64) -> f64 {
        for _ in 0..n {
            c += d;
        }
        c
    }

    /// `bulk_add` must equal the literal add chain bit-for-bit on every
    /// input, whether or not the fused fast path fires: accumulators on and
    /// off the ulp grid, non-dyadic deltas, binade crossings, tiny values.
    #[test]
    fn bulk_add_matches_sequential_chain() {
        let accs = [0.0, 1.0, 3.5, 64.0, 1000.123456, 1e6 + 1.0 / 3.0, (1u64 << 52) as f64 - 1.5];
        let deltas = [0.0, 0.5, 1.5, 4.0 / 3.0, 0.1, 2e-20, 7.25, 64.0];
        let reps = [1u64, 3, 7, 100, 4095];
        for &c in &accs {
            for &d in &deltas {
                for &n in &reps {
                    let want = chain(c, d, n);
                    let got = bulk_add(c, d, n);
                    assert_eq!(got.to_bits(), want.to_bits(), "bulk_add({c}, {d}, {n}) = {got}, chain = {want}");
                }
            }
        }
    }

    /// The byte-accounting pattern: repeated adds of a power of two cross
    /// binade after binade. The piecewise collapse must track the literal
    /// chain through every crossing.
    #[test]
    fn bulk_add_tracks_binade_crossings() {
        for start in [0.0, 64.0, 192.0, 1.0e9] {
            for n in [1u64, 63, 64, 65, 1000, 100_000] {
                let want = chain(start, 64.0, n);
                let got = bulk_add(start, 64.0, n);
                assert_eq!(got.to_bits(), want.to_bits(), "start {start}, n {n}");
            }
        }
    }

    /// Splitting a chain at any point composes: bulk_add(bulk_add(c, d, k),
    /// d, n-k) == bulk_add(c, d, n). This is what lets callers commit spans
    /// piecewise (round boundaries, home-span boundaries).
    #[test]
    fn bulk_add_composes_under_splits() {
        let c = 20_000.0 + 1.0 / 3.0;
        let d = 17.25;
        let n = 513;
        let whole = bulk_add(c, d, n);
        for k in [0u64, 1, 7, 256, 512, 513] {
            let split = bulk_add(bulk_add(c, d, k), d, n - k);
            assert_eq!(split.to_bits(), whole.to_bits(), "split at {k}");
        }
    }
}

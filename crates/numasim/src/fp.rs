//! Exact floating-point batching primitives.
//!
//! The batched engine replaces chains of identical f64 additions (clock
//! advances, per-line byte accounting) with fused updates — but only when
//! the fused form is provably bit-identical to the sequential chain. This
//! module holds the one primitive that decision rests on.

/// Advance `acc` by `n` sequential additions of `delta`, collapsing runs of
/// the dependent add chain to fused updates whenever that is bit-identical.
///
/// A run of `m` additions collapses exactly when every partial sum stays in
/// `acc`'s binade and on its ulp grid: `delta` must be a non-negative exact
/// multiple of that ulp (with `delta / ulp ≤ 2^53` so products stay exact)
/// and the partial sums must not reach the next power of two. Every
/// intermediate sum is then exactly representable, so each sequential add
/// would round to the same grid point the fused form lands on. Crossing a
/// binade takes one literal add, after which the (doubled) ulp grid is
/// re-checked — so accumulators that grow through many binades (per-round
/// byte counters) still collapse piecewise. Sub-ulp or off-grid deltas and
/// tiny accumulators run the literal chain.
#[inline]
pub fn bulk_add(mut acc: f64, delta: f64, mut n: u64) -> f64 {
    debug_assert!(acc >= 0.0 && delta >= 0.0, "accumulators and costs are non-negative");
    if delta == 0.0 {
        // Adding +0.0 never changes a non-negative value.
        return acc;
    }
    while n > 0 {
        let bits = acc.to_bits();
        let exp = bits >> 52; // acc >= 0.0 always: no sign bit to strip.
        if exp > 52 && exp < 0x7fe {
            let ulp = f64::from_bits((exp - 52) << 52);
            let steps = delta / ulp; // exact: ulp is a power of two
                                     // Integrality via round-trip cast (exact for values <= 2^53)
                                     // rather than `fract()`, which lowers to a libm `trunc` call
                                     // on the hot path.
            let d = steps as u64;
            if steps <= (1u64 << 53) as f64 && d as f64 == steps {
                // delta = d * ulp, d >= 1
                let a = (bits & ((1u64 << 52) - 1)) | (1u64 << 52); // acc = a * ulp
                                                                    // Largest m with a + m*d < 2^53 (the binade top in ulps):
                                                                    // all partial sums then stay exact on the grid.
                let m = (((1u64 << 53) - 1 - a) / d).min(n);
                if m > 0 {
                    acc += m as f64 * delta; // m*d < 2^53: product and sum exact
                    n -= m;
                    continue;
                }
            }
        }
        acc += delta;
        n -= 1;
    }
    acc
}

/// Advance a clock through up to `max_lines` identical per-line updates —
/// each `clock += addend` followed by `nreps` additions of `rep_delta` —
/// stopping (as the engine's replay loop does) when the clock at a line
/// *start* has reached `round_end`. Returns `(lines_processed, clock)`,
/// bit-identical to the literal loop
///
/// ```text
/// while k < max_lines && clock < round_end {
///     clock += addend;
///     if nreps > 0 && rep_delta != 0.0 { clock = bulk_add(clock, rep_delta, nreps); }
///     k += 1;
/// }
/// ```
///
/// The closed form rests on the same ulp-grid argument as [`bulk_add`],
/// lifted from one addition to one *line*: when `addend` and `rep_delta`
/// are both exact non-negative multiples of the clock's current ulp, a
/// whole line moves the clock by exactly `d = addend/ulp + nreps ·
/// rep_delta/ulp` grid steps, and as long as every partial sum stays
/// below the binade top (mantissa `2^53 − 1` in ulps) each sequential
/// add is exact — so `count` lines land on `bits + count·d` directly.
/// Since positive f64 bit patterns order like their values, the
/// round-boundary line count is integer arithmetic on bit patterns:
/// `ceil((round_end.bits − clock.bits) / d)`. Binade crossings, off-grid
/// deltas, and zero-step lines fall back to literal per-line replay,
/// which is bit-identical by construction.
#[inline]
pub fn bulk_line_chain(
    mut clock: f64,
    addend: f64,
    rep_delta: f64,
    nreps: u64,
    max_lines: u64,
    round_end: f64,
) -> (u64, f64) {
    debug_assert!(clock >= 0.0 && addend >= 0.0 && rep_delta >= 0.0, "clocks and costs are non-negative");
    let reps_active = nreps > 0 && rep_delta != 0.0;
    let mut k = 0u64;
    'outer: while k < max_lines && clock < round_end {
        let bits = clock.to_bits();
        let exp = bits >> 52; // clock >= 0.0: no sign bit to strip
                              // Rep-tail grid steps for this binade when `rep_delta` alone is
                              // exact on the grid; `u128::MAX` = off-grid (or clock outside the
                              // grid range). Lets the literal fallback below collapse each
                              // line's rep tail even when `addend` is off-grid.
        let mut dr_tot = u128::MAX;
        if exp > 52 && exp < 0x7fe {
            let ulp = f64::from_bits((exp - 52) << 52);
            let sa = addend / ulp; // exact: ulp is a power of two
            let sr = rep_delta / ulp;
            // Integrality via round-trip casts (exact <= 2^53), not
            // `fract()` — see `bulk_add`.
            let da = sa as u64;
            let dr = if reps_active { sr as u64 } else { 0 };
            let rep_grid = sr <= (1u64 << 53) as f64 && dr as f64 == sr;
            if reps_active && rep_grid {
                dr_tot = nreps as u128 * dr as u128;
            }
            let grid = sa <= (1u64 << 53) as f64 && da as f64 == sa && (!reps_active || rep_grid);
            if grid {
                // One line = da + nreps·dr grid steps (u128: both factors
                // can reach 2^53).
                let d_line = da as u128 + (nreps as u128) * (dr as u128);
                let a = (bits & ((1u64 << 52) - 1)) | (1u64 << 52); // clock = a · ulp
                let top = (1u64 << 53) - 1;
                if d_line == 0 {
                    // The clock does not move, so the round boundary can
                    // never interrupt: every remaining line processes.
                    return (max_lines, clock);
                }
                if d_line <= (top - a) as u128 {
                    let d = d_line as u64;
                    // Lines whose every sub-step stays exact in-binade...
                    let m = (top - a) / d;
                    // ...and lines whose start clock is below round_end
                    // (positive f64s compare as their bit patterns).
                    let rb = round_end.to_bits();
                    let by_round = if bits >= rb { 0 } else { (rb - bits).div_ceil(d) };
                    let count = m.min(max_lines - k).min(by_round);
                    if count > 0 {
                        clock = f64::from_bits(bits + count * d);
                        k += count;
                        continue 'outer;
                    }
                }
            }
        }
        // Off-grid delta (or a clock too small/large for the grid): the
        // verdict cannot change until the clock leaves its binade, so
        // replay lines literally — the engine's exact per-line step —
        // without re-paying the grid divisions per line. When the rep
        // tail alone is on-grid it still collapses to one integer add:
        // that is exactly the single fused update `bulk_add` would pick
        // (`m = nreps` fits below the binade top).
        loop {
            clock += addend;
            if reps_active {
                let b2 = clock.to_bits();
                let a2 = ((b2 & ((1u64 << 52) - 1)) | (1u64 << 52)) as u128;
                if b2 >> 52 == exp && dr_tot != u128::MAX && a2 + dr_tot < (1u64 << 53) as u128 {
                    clock = f64::from_bits(b2 + dr_tot as u64);
                } else {
                    clock = bulk_add(clock, rep_delta, nreps);
                }
            }
            k += 1;
            if k >= max_lines || clock >= round_end || clock.to_bits() >> 52 != exp {
                continue 'outer;
            }
        }
    }
    (k, clock)
}

/// Per-(stream, binade) memo of the one-*line* grid step: `clock +=
/// addend` followed by `nreps` additions of `rep_delta`, collapsed to a
/// single integer add on the clock's bit pattern when the whole line is
/// provably exact on the current ulp grid.
///
/// Interleaved replay loops ([`crate::engine`]'s zip path) advance several
/// lanes' lines through one shared clock, so the multi-line collapse of
/// [`bulk_line_chain`] does not apply — but the per-line costs are
/// segment constants, so the grid analysis (two divisions and the
/// integrality checks) is the same for every line of a lane until the
/// clock changes binade. This memo pays it once per (lane, binade)
/// instead of per line.
#[derive(Debug, Clone, Copy)]
pub struct LineStep {
    /// Biased exponent the memo is valid for; `u64::MAX` = invalid.
    exp: u64,
    /// Grid steps of `addend` alone; `u64::MAX` = off-grid.
    da: u64,
    /// Grid steps of the whole rep tail (`nreps · rep_delta`);
    /// `u128::MAX` = off-grid, `0` = reps inactive.
    dr_tot: u128,
}

impl Default for LineStep {
    fn default() -> Self {
        Self::new()
    }
}

impl LineStep {
    /// A memo valid for no binade (first use computes).
    pub const fn new() -> Self {
        Self { exp: u64::MAX, da: u64::MAX, dr_tot: u128::MAX }
    }

    /// Drop the memo. Callers must invalidate whenever `addend`,
    /// `rep_delta`, or `nreps` may have changed — the memo is keyed on the
    /// binade only.
    #[inline]
    pub fn invalidate(&mut self) {
        self.exp = u64::MAX;
    }

    /// Advance `clock` by one line — bit-identical to the literal step
    ///
    /// ```text
    /// clock += addend;
    /// if nreps > 0 && rep_delta != 0.0 { clock = bulk_add(clock, rep_delta, nreps); }
    /// ```
    ///
    /// The full fast path fires when both costs are exact non-negative
    /// multiples of the clock's ulp and the line's total movement stays
    /// below the binade top: every partial sum is then on the grid and
    /// exact (the [`bulk_add`] argument, restricted to one line), so the
    /// result is `clock.to_bits() + d` directly. When only the rep tail
    /// is on-grid (congested rounds give the DRAM addend a full
    /// mantissa), the addend is added literally and just the tail
    /// collapses — exactly the fused update [`bulk_add`] itself would
    /// pick, minus its per-call division.
    #[inline]
    pub fn advance_line(&mut self, clock: f64, addend: f64, rep_delta: f64, nreps: u64) -> f64 {
        debug_assert!(clock >= 0.0 && addend >= 0.0 && rep_delta >= 0.0, "clocks and costs are non-negative");
        const TOP: u128 = (1u64 << 53) as u128 - 1;
        let bits = clock.to_bits();
        let exp = bits >> 52; // clock >= 0.0: no sign bit to strip
        if exp > 52 && exp < 0x7fe {
            if exp != self.exp {
                self.exp = exp;
                let ulp = f64::from_bits((exp - 52) << 52);
                let reps_active = nreps > 0 && rep_delta != 0.0;
                let sa = addend / ulp; // exact: ulp is a power of two
                let sr = rep_delta / ulp;
                let da = sa as u64;
                let dr = if reps_active { sr as u64 } else { 0 };
                self.da = if sa <= (1u64 << 53) as f64 && da as f64 == sa { da } else { u64::MAX };
                self.dr_tot = if !reps_active {
                    0
                } else if sr <= (1u64 << 53) as f64 && dr as f64 == sr {
                    nreps as u128 * dr as u128
                } else {
                    u128::MAX
                };
            }
            if self.da != u64::MAX && self.dr_tot != u128::MAX {
                let d = self.da as u128 + self.dr_tot;
                let a = ((bits & ((1u64 << 52) - 1)) | (1u64 << 52)) as u128;
                if a + d <= TOP {
                    // d < 2^53 here, so the u64 add cannot overflow.
                    return f64::from_bits(bits + d as u64);
                }
            }
        }
        // Literal addend: the engine's exact per-line step.
        let c = clock + addend;
        if nreps > 0 && rep_delta != 0.0 {
            // Rep-tail collapse on the post-addend clock, when it stayed
            // in the memo's binade: this is precisely the single fused
            // update `bulk_add` would compute (`m = nreps` fits), without
            // re-deriving the grid per line.
            let b2 = c.to_bits();
            if b2 >> 52 == self.exp && self.dr_tot != u128::MAX {
                let a2 = ((b2 & ((1u64 << 52) - 1)) | (1u64 << 52)) as u128;
                if a2 + self.dr_tot <= TOP {
                    return f64::from_bits(b2 + self.dr_tot as u64);
                }
            }
            return bulk_add(c, rep_delta, nreps);
        }
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(mut c: f64, d: f64, n: u64) -> f64 {
        for _ in 0..n {
            c += d;
        }
        c
    }

    /// `bulk_add` must equal the literal add chain bit-for-bit on every
    /// input, whether or not the fused fast path fires: accumulators on and
    /// off the ulp grid, non-dyadic deltas, binade crossings, tiny values.
    #[test]
    fn bulk_add_matches_sequential_chain() {
        let accs = [0.0, 1.0, 3.5, 64.0, 1000.123456, 1e6 + 1.0 / 3.0, (1u64 << 52) as f64 - 1.5];
        let deltas = [0.0, 0.5, 1.5, 4.0 / 3.0, 0.1, 2e-20, 7.25, 64.0];
        let reps = [1u64, 3, 7, 100, 4095];
        for &c in &accs {
            for &d in &deltas {
                for &n in &reps {
                    let want = chain(c, d, n);
                    let got = bulk_add(c, d, n);
                    assert_eq!(got.to_bits(), want.to_bits(), "bulk_add({c}, {d}, {n}) = {got}, chain = {want}");
                }
            }
        }
    }

    /// The byte-accounting pattern: repeated adds of a power of two cross
    /// binade after binade. The piecewise collapse must track the literal
    /// chain through every crossing.
    #[test]
    fn bulk_add_tracks_binade_crossings() {
        for start in [0.0, 64.0, 192.0, 1.0e9] {
            for n in [1u64, 63, 64, 65, 1000, 100_000] {
                let want = chain(start, 64.0, n);
                let got = bulk_add(start, 64.0, n);
                assert_eq!(got.to_bits(), want.to_bits(), "start {start}, n {n}");
            }
        }
    }

    /// The literal per-line loop `bulk_line_chain` must reproduce.
    fn line_chain(
        mut clock: f64,
        addend: f64,
        rep_delta: f64,
        nreps: u64,
        max_lines: u64,
        round_end: f64,
    ) -> (u64, f64) {
        let mut k = 0u64;
        while k < max_lines && clock < round_end {
            clock += addend;
            if nreps > 0 && rep_delta != 0.0 {
                clock = bulk_add(clock, rep_delta, nreps);
            }
            k += 1;
        }
        (k, clock)
    }

    /// `bulk_line_chain` must equal the literal loop bit-for-bit across
    /// on-grid and off-grid costs, rep counts, round boundaries hit
    /// mid-segment, binade crossings, and zero-cost lines.
    #[test]
    fn bulk_line_chain_matches_literal_loop() {
        let clocks = [0.0, 1.0, 1000.123456, 20_000.0 + 1.0 / 3.0, 1e9, (1u64 << 52) as f64 - 1.5];
        let addends = [0.0, 0.5, 4.25, 4.0 / 3.0, 190.0, 1e-18];
        let rep_deltas = [0.0, 0.25, 6.5, 0.1];
        let nreps = [0u64, 1, 3, 7];
        let ends = [1.0, 20_000.0, 40_000.0, 1e12];
        for &c in &clocks {
            for &a in &addends {
                for &rd in &rep_deltas {
                    for &nr in &nreps {
                        for &max in &[0u64, 1, 5, 1000, 100_000] {
                            for &end in &ends {
                                let want = line_chain(c, a, rd, nr, max, end);
                                let got = bulk_line_chain(c, a, rd, nr, max, end);
                                assert_eq!(
                                    (got.0, got.1.to_bits()),
                                    (want.0, want.1.to_bits()),
                                    "chain(c={c}, a={a}, rd={rd}, nr={nr}, max={max}, end={end})"
                                );
                            }
                        }
                    }
                }
            }
        }
    }

    /// Splitting a line chain at any point composes — what lets the
    /// engine commit spans piecewise at round boundaries.
    #[test]
    fn bulk_line_chain_composes_under_splits() {
        let (c, a, rd, nr, end) = (20_000.0 + 1.0 / 3.0, 17.25, 2.5, 3u64, 1e9);
        let n = 513u64;
        let whole = bulk_line_chain(c, a, rd, nr, n, end);
        for k in [0u64, 1, 7, 256, 512, 513] {
            let (k1, mid) = bulk_line_chain(c, a, rd, nr, k, end);
            assert_eq!(k1, k);
            let (k2, fin) = bulk_line_chain(mid, a, rd, nr, n - k, end);
            assert_eq!((k + k2, fin.to_bits()), (whole.0, whole.1.to_bits()), "split at {k}");
        }
    }

    /// `LineStep::advance_line` must equal the literal per-line step
    /// bit-for-bit, across binade crossings (where the memo re-keys),
    /// off-grid costs, and cost changes (with `invalidate` between).
    #[test]
    fn line_step_matches_literal_per_line() {
        let literal = |mut c: f64, a: f64, rd: f64, nr: u64| {
            c += a;
            if nr > 0 && rd != 0.0 {
                c = bulk_add(c, rd, nr);
            }
            c
        };
        let params = [(4.25, 0.25, 7u64), (4.0 / 3.0, 0.1, 3), (0.0, 0.0, 0), (190.0, 6.5, 7), (1e-18, 2e-20, 5)];
        let starts = [0.0, 1.0, 1000.123456, 20_000.0 + 1.0 / 3.0, 1e9, (1u64 << 52) as f64 - 1.5];
        for &start in &starts {
            for &(a, rd, nr) in &params {
                let mut step = LineStep::new();
                let mut want = start;
                let mut got = start;
                for line in 0..4096 {
                    want = literal(want, a, rd, nr);
                    got = step.advance_line(got, a, rd, nr);
                    assert_eq!(got.to_bits(), want.to_bits(), "start {start}, params ({a}, {rd}, {nr}), line {line}");
                }
            }
        }
        // Cost changes mid-stream: invalidate re-keys the memo.
        let mut step = LineStep::new();
        let mut want = 30_000.5;
        let mut got = want;
        for (i, &(a, rd, nr)) in params.iter().cycle().take(50).enumerate() {
            step.invalidate();
            for _ in 0..7 {
                want = literal(want, a, rd, nr);
                got = step.advance_line(got, a, rd, nr);
            }
            assert_eq!(got.to_bits(), want.to_bits(), "segment {i}");
        }
    }

    /// Splitting a chain at any point composes: bulk_add(bulk_add(c, d, k),
    /// d, n-k) == bulk_add(c, d, n). This is what lets callers commit spans
    /// piecewise (round boundaries, home-span boundaries).
    #[test]
    fn bulk_add_composes_under_splits() {
        let c = 20_000.0 + 1.0 / 3.0;
        let d = 17.25;
        let n = 513;
        let whole = bulk_add(c, d, n);
        for k in [0u64, 1, 7, 256, 512, 513] {
            let split = bulk_add(bulk_add(c, d, k), d, n - k);
            assert_eq!(split.to_bits(), whole.to_bits(), "split at {k}");
        }
    }
}

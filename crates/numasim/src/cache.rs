//! Set-associative LRU cache model.
//!
//! The model tracks tags only — the simulator never stores data values. A
//! lookup either hits (the line is resident) or misses and installs the
//! line, evicting the least-recently-used way.
//!
//! Each set is a circular buffer in recency order: `head` points at the
//! MRU way and recency decreases with distance from it. That makes the
//! dominant streaming operations O(1) — a miss overwrites the LRU way and
//! retreats `head` onto it; a hit on the LRU way (cyclic scans) advances
//! recency the same way — while arbitrary hits shift at most the ways
//! ahead of the hit. The engine's hot path stays allocation-free.

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed (and installed the line).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative cache with true-LRU replacement, addressed by cache
/// line number (byte address divided by line size).
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tags per set, a circular buffer in recency order: the MRU way of
    /// set `s` is `tags[s * assoc + heads[s]]`, and recency decreases
    /// walking forward (wrapping) from it.
    tags: Vec<u64>,
    /// Physical index of each set's MRU way.
    heads: Vec<u8>,
    assoc: usize,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create a cache with `sets` sets (must be a power of two) and
    /// `assoc` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or either dimension is zero
    /// or `assoc` exceeds 32 (the membership scan is linear, so the limit
    /// bounds the worst case; real caches stay well under it).
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        assert!(assoc > 0 && assoc <= 32, "associativity must be in 1..=32");
        Self {
            tags: vec![INVALID; sets * assoc],
            heads: vec![0; sets],
            assoc,
            set_mask: (sets - 1) as u64,
            stats: CacheStats::default(),
        }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.set_mask + 1) as usize
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The set a line maps to.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Look up `line`; on miss, install it as MRU and evict the LRU way.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID, "line number reserved as invalid marker");
        let set = self.set_of(line);
        let base = set * self.assoc;
        let head = self.heads[set] as usize;
        let ways = &mut self.tags[base..base + self.assoc];
        // MRU fast path: sequential scans re-touch the most recent line
        // (reps > 1) far more often than any other way.
        if ways[head] == line {
            self.stats.hits += 1;
            return true;
        }
        if let Some(phys) = ways.iter().position(|&t| t == line) {
            self.stats.hits += 1;
            // Logical recency position of the hit way.
            let pos = (phys + self.assoc - head) % self.assoc;
            if pos == self.assoc - 1 {
                // Hit on the LRU way (cyclic scans): retreating the head
                // onto it promotes it to MRU in O(1).
                self.heads[set] = phys as u8;
            } else {
                // General hit: shift the more-recent ways back by one and
                // put `line` at the head slot.
                let mut i = phys;
                while i != head {
                    let prev = if i == 0 { self.assoc - 1 } else { i - 1 };
                    ways[i] = ways[prev];
                    i = prev;
                }
                ways[head] = line;
            }
            true
        } else {
            // Miss: the way before the head is the LRU; overwrite it and
            // make it the new head. O(1) regardless of associativity.
            let lru = if head == 0 { self.assoc - 1 } else { head - 1 };
            ways[lru] = line;
            self.heads[set] = lru as u8;
            self.stats.misses += 1;
            false
        }
    }

    /// Whether `line` is resident, without touching LRU state or stats.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Invalidate every line (e.g. between workload phases).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.heads.fill(0);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(1, 2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.probe(1));
        assert!(c.probe(3));
        assert!(!c.probe(2));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(4, 1);
        for line in 0..4 {
            c.access(line);
        }
        for line in 0..4 {
            assert!(c.probe(line), "line {line} should still be resident");
        }
    }

    #[test]
    fn same_set_conflicts() {
        let mut c = Cache::new(4, 1);
        c.access(0);
        c.access(4); // same set (4 % 4 == 0), evicts 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn flush_clears_residency_keeps_stats() {
        let mut c = Cache::new(4, 2);
        c.access(7);
        c.flush();
        assert!(!c.probe(7));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_count() {
        let c = Cache::new(4, 2);
        c.probe(3);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = Cache::new(2, 2);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        Cache::new(3, 2);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        // 8 sets * 4 ways = 32 lines capacity; touch 32 distinct lines twice.
        let mut c = Cache::new(8, 4);
        for line in 0..32 {
            c.access(line);
        }
        c.reset_stats();
        for line in 0..32 {
            assert!(c.access(line));
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        // Capacity 32 lines; cyclic scan of 64 distinct lines never hits
        // under LRU.
        let mut c = Cache::new(8, 4);
        for _ in 0..3 {
            for line in 0..64 {
                c.access(line);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }
}

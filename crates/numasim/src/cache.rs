//! Set-associative LRU cache model.
//!
//! The model tracks tags only — the simulator never stores data values. A
//! lookup either hits (the line is resident) or misses and installs the
//! line, evicting the least-recently-used way. Within a set, ways are kept
//! in recency order, so a hit is a short scan plus a rotate; with
//! associativity ≤ 20 this is a handful of nanoseconds and keeps the
//! engine's hot path allocation-free.

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed (and installed the line).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative cache with true-LRU replacement, addressed by cache
/// line number (byte address divided by line size).
#[derive(Debug, Clone)]
pub struct Cache {
    /// Tags in recency order per set: `tags[set * assoc]` is the MRU way.
    tags: Vec<u64>,
    assoc: usize,
    set_mask: u64,
    stats: CacheStats,
}

impl Cache {
    /// Create a cache with `sets` sets (must be a power of two) and
    /// `assoc` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or either dimension is zero.
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        assert!(assoc > 0, "associativity must be positive");
        Self { tags: vec![INVALID; sets * assoc], assoc, set_mask: (sets - 1) as u64, stats: CacheStats::default() }
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.set_mask + 1) as usize
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The set a line maps to.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Look up `line`; on miss, install it as MRU and evict the LRU way.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID, "line number reserved as invalid marker");
        let set = self.set_of(line);
        let base = set * self.assoc;
        let ways = &mut self.tags[base..base + self.assoc];
        if let Some(pos) = ways.iter().position(|&t| t == line) {
            // Hit: rotate [0..=pos] right by one to make `line` MRU.
            ways[..=pos].rotate_right(1);
            self.stats.hits += 1;
            true
        } else {
            // Miss: drop the LRU (last) way, shift, install as MRU.
            ways.rotate_right(1);
            ways[0] = line;
            self.stats.misses += 1;
            false
        }
    }

    /// Whether `line` is resident, without touching LRU state or stats.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Invalidate every line (e.g. between workload phases).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(1, 2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.probe(1));
        assert!(c.probe(3));
        assert!(!c.probe(2));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(4, 1);
        for line in 0..4 {
            c.access(line);
        }
        for line in 0..4 {
            assert!(c.probe(line), "line {line} should still be resident");
        }
    }

    #[test]
    fn same_set_conflicts() {
        let mut c = Cache::new(4, 1);
        c.access(0);
        c.access(4); // same set (4 % 4 == 0), evicts 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn flush_clears_residency_keeps_stats() {
        let mut c = Cache::new(4, 2);
        c.access(7);
        c.flush();
        assert!(!c.probe(7));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_count() {
        let c = Cache::new(4, 2);
        c.probe(3);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = Cache::new(2, 2);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        Cache::new(3, 2);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        // 8 sets * 4 ways = 32 lines capacity; touch 32 distinct lines twice.
        let mut c = Cache::new(8, 4);
        for line in 0..32 {
            c.access(line);
        }
        c.reset_stats();
        for line in 0..32 {
            assert!(c.access(line));
        }
        assert_eq!(c.stats().misses, 0);
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        // Capacity 32 lines; cyclic scan of 64 distinct lines never hits
        // under LRU.
        let mut c = Cache::new(8, 4);
        for _ in 0..3 {
            for line in 0..64 {
                c.access(line);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }
}

//! Set-associative LRU cache model.
//!
//! The model tracks tags only — the simulator never stores data values. A
//! lookup either hits (the line is resident) or misses and installs the
//! line, evicting the least-recently-used way.
//!
//! Each set is a circular buffer in recency order: `head` points at the
//! MRU way and recency decreases with distance from it. That makes the
//! dominant streaming operations O(1) — a miss overwrites the LRU way and
//! retreats `head` onto it; a hit on the LRU way (cyclic scans) advances
//! recency the same way — while arbitrary hits shift at most the ways
//! ahead of the hit. The engine's hot path stays allocation-free.

/// Hit/miss counters for one cache instance.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheStats {
    /// Number of lookups that hit.
    pub hits: u64,
    /// Number of lookups that missed (and installed the line).
    pub misses: u64,
}

impl CacheStats {
    /// Total lookups.
    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    /// Hit ratio in `[0, 1]`; 0 when no accesses were made.
    pub fn hit_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.hits as f64 / self.accesses() as f64
        }
    }
}

const INVALID: u64 = u64::MAX;

/// A set-associative cache with true-LRU replacement, addressed by cache
/// line number (byte address divided by line size).
///
/// Equality compares the complete replacement state (tags, recency heads)
/// and the counters — two caches are equal exactly when no sequence of
/// future accesses could distinguish them. The span-walk differential
/// tests rely on this.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cache {
    /// Tags per set, a circular buffer in recency order: the MRU way of
    /// set `s` is `tags[s * assoc + heads[s]]`, and recency decreases
    /// walking forward (wrapping) from it.
    tags: Vec<u64>,
    /// Physical index of each set's MRU way.
    heads: Vec<u8>,
    /// Per-set monotone upper bound on every tag ever installed (0 when
    /// nothing was). Since it never decreases, `set_max[s] < first` proves
    /// set `s` holds no tag in `[first, ∞)` — the O(sets) prefilter that
    /// lets [`Cache::span_miss_prefix`] certify forward streaming without
    /// scanning any ways.
    set_max: Vec<u64>,
    assoc: usize,
    set_mask: u64,
    stats: CacheStats,
    /// Monotone count of tag installs, never reset (unlike `stats`). The
    /// engine's miss-proof memos use it as an epoch: installs are the only
    /// mutation that can *add* a member (evictions remove, hits reorder,
    /// flushes clear), so a proven all-miss span stays proven while this
    /// counter is unchanged.
    installs: u64,
}

impl Cache {
    /// Create a cache with `sets` sets (must be a power of two) and
    /// `assoc` ways.
    ///
    /// # Panics
    /// Panics if `sets` is not a power of two or either dimension is zero
    /// or `assoc` exceeds 32 (the membership scan is linear, so the limit
    /// bounds the worst case; real caches stay well under it).
    pub fn new(sets: usize, assoc: usize) -> Self {
        assert!(sets > 0 && sets.is_power_of_two(), "set count must be a power of two, got {sets}");
        assert!(assoc > 0 && assoc <= 32, "associativity must be in 1..=32");
        Self {
            tags: vec![INVALID; sets * assoc],
            heads: vec![0; sets],
            set_max: vec![0; sets],
            assoc,
            set_mask: (sets - 1) as u64,
            stats: CacheStats::default(),
            installs: 0,
        }
    }

    /// Install epoch: see the `installs` field.
    #[inline]
    pub(crate) fn installs(&self) -> u64 {
        self.installs
    }

    /// Number of sets.
    pub fn num_sets(&self) -> usize {
        (self.set_mask + 1) as usize
    }

    /// Associativity.
    pub fn assoc(&self) -> usize {
        self.assoc
    }

    /// The set a line maps to.
    #[inline]
    pub fn set_of(&self, line: u64) -> usize {
        (line & self.set_mask) as usize
    }

    /// Look up `line`; on miss, install it as MRU and evict the LRU way.
    /// Returns `true` on hit.
    #[inline]
    pub fn access(&mut self, line: u64) -> bool {
        debug_assert_ne!(line, INVALID, "line number reserved as invalid marker");
        let set = self.set_of(line);
        let base = set * self.assoc;
        let head = self.heads[set] as usize;
        let ways = &mut self.tags[base..base + self.assoc];
        // MRU fast path: sequential scans re-touch the most recent line
        // (reps > 1) far more often than any other way.
        if ways[head] == line {
            self.stats.hits += 1;
            return true;
        }
        if let Some(phys) = ways.iter().position(|&t| t == line) {
            self.stats.hits += 1;
            // Logical recency position of the hit way.
            let pos = (phys + self.assoc - head) % self.assoc;
            if pos == self.assoc - 1 {
                // Hit on the LRU way (cyclic scans): retreating the head
                // onto it promotes it to MRU in O(1).
                self.heads[set] = phys as u8;
            } else {
                // General hit: shift the more-recent ways back by one and
                // put `line` at the head slot.
                let mut i = phys;
                while i != head {
                    let prev = if i == 0 { self.assoc - 1 } else { i - 1 };
                    ways[i] = ways[prev];
                    i = prev;
                }
                ways[head] = line;
            }
            true
        } else {
            // Miss: the way before the head is the LRU; overwrite it and
            // make it the new head. O(1) regardless of associativity.
            let lru = if head == 0 { self.assoc - 1 } else { head - 1 };
            ways[lru] = line;
            self.heads[set] = lru as u8;
            if line > self.set_max[set] {
                self.set_max[set] = line;
            }
            self.stats.misses += 1;
            self.installs += 1;
            false
        }
    }

    /// Install `line` as a *proven* miss: the LRU way is overwritten and
    /// becomes MRU, with no residency scan. Bit-identical to the miss arm
    /// of [`Cache::access`] — callers must have established (e.g. via
    /// [`Cache::span_miss_prefix`]) that `line` is not resident.
    #[inline]
    pub fn install_line(&mut self, line: u64) {
        self.install_line_deferred(line);
        self.stats.misses += 1;
    }

    /// [`Cache::install_line`] minus the miss counter, for hot loops that
    /// bulk-charge stats afterwards via [`Cache::charge_misses`]. Counters
    /// are plain integers, so deferring them is order-free.
    #[inline]
    pub(crate) fn install_line_deferred(&mut self, line: u64) {
        debug_assert_ne!(line, INVALID, "line number reserved as invalid marker");
        debug_assert!(!self.probe(line), "install_line on a resident line");
        let set = self.set_of(line);
        let head = self.heads[set] as usize;
        let lru = if head == 0 { self.assoc - 1 } else { head - 1 };
        self.tags[set * self.assoc + lru] = line;
        self.heads[set] = lru as u8;
        if line > self.set_max[set] {
            self.set_max[set] = line;
        }
        self.installs += 1;
    }

    /// Charge `n` misses deferred by [`Cache::install_line_deferred`].
    #[inline]
    pub(crate) fn charge_misses(&mut self, n: u64) {
        self.stats.misses += n;
    }

    /// Whether `line` is resident, without touching LRU state or stats.
    pub fn probe(&self, line: u64) -> bool {
        let set = self.set_of(line);
        let base = set * self.assoc;
        self.tags[base..base + self.assoc].contains(&line)
    }

    /// Invalidate every line (e.g. between workload phases).
    pub fn flush(&mut self) {
        self.tags.fill(INVALID);
        self.heads.fill(0);
        self.set_max.fill(0);
    }

    /// Hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        self.stats
    }

    /// Reset counters (residency is kept).
    pub fn reset_stats(&mut self) {
        self.stats = CacheStats::default();
    }

    /// Length of the longest prefix of the consecutive-line span
    /// `[first, first + n)` that is provably *all misses* — exact, not
    /// conservative: the returned prefix ends either at `n` or at the first
    /// line of the span that would hit.
    ///
    /// The proof does not touch LRU state or stats, so callers may use it
    /// purely as a read-only oracle. It rests on two facts about a span of
    /// distinct consecutive lines processed with no interleaved accesses:
    /// the span cannot hit on its own installs (all lines distinct), and a
    /// resident tag that is itself the `i`-th span line of its set (1-based)
    /// survives until it is reached iff fewer than `assoc - p` misses
    /// precede it in that set, where `p` is its current recency position
    /// (0 = MRU). Since exactly `i - 1` span misses precede it, the line
    /// *hits* iff `i + p <= assoc` — which correctly recognises
    /// footprint-over-capacity cyclic rescans (pass ≥ 2) as all-miss even
    /// though the previous pass's tags still sit in every set.
    pub fn span_miss_prefix(&self, first: u64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        if self.span_absent(first, n) {
            n
        } else {
            self.span_first_hit(first, n)
        }
    }

    /// Whether provably *no* tag of `[first, first + n)` is resident — the
    /// pure-membership fast path of [`Cache::span_miss_prefix`] (set-max
    /// prefilter plus vector scan; never the exact recency walk). `false`
    /// means "unproven", not "some line hits".
    ///
    /// Unlike the survival-based prefix, an absence certificate is
    /// insensitive to recency: hits only reorder ways and evictions only
    /// remove members, so the claim can be broken *solely* by an install.
    /// That is the invariant behind the engine's proof memos (see
    /// [`Cache::installs`]).
    pub(crate) fn span_absent(&self, first: u64, n: u64) -> bool {
        if n == 0 {
            return true;
        }
        debug_assert!(first.checked_add(n).is_some(), "span overflows line space");
        let sets = self.set_mask + 1;
        // The span touches a contiguous (wrapping) stretch of sets, so its
        // candidate tags form at most two contiguous slices of the tag
        // array — scanned linearly (auto-vectorizable) for any resident
        // tag inside the span. `INVALID` wraps to a huge offset and never
        // matches.
        // Prefilter on the per-set tag upper bounds: forward streaming —
        // the dominant caller — never revisits lines, so every touched
        // set's `set_max` sits below `first` and the span is certified
        // all-miss after one `u64` compare per set instead of per way.
        let s0 = (first & self.set_mask) as usize;
        let w = n.min(sets) as usize;
        let nsets = self.set_max.len();
        // `m >= first` iff `m.wrapping_sub(first)` does not borrow, i.e.
        // its sign bit is clear (both operands are < 2^63: lines carry a
        // byte address divided by the line size). The borrow-sign AND
        // reduction runs as explicit SSE2/AVX2 in [`crate::simd::any_ge`].
        let suspect = if s0 + w <= nsets {
            crate::simd::any_ge(&self.set_max[s0..s0 + w], first)
        } else {
            crate::simd::any_ge(&self.set_max[s0..], first)
                || crate::simd::any_ge(&self.set_max[..s0 + w - nsets], first)
        };
        if !suspect {
            return true;
        }
        let start = (first & self.set_mask) as usize * self.assoc;
        let len = (n.min(sets) as usize) * self.assoc;
        // Quick scan for any resident tag *near* the span, widened from
        // `n` to the next power of two `2^shift` so membership becomes a
        // zero test on `off >> shift` — run as explicit SSE2/AVX2
        // zero-detect in [`crate::simd::any_near`]. Widening only admits
        // tags in `[first + n, first + 2^shift)` — the lines the caller
        // is *about* to stream through, which are essentially never
        // resident — and a false positive is not an error: it just falls
        // through to the exact `span_first_hit` walk below.
        let shift = 64 - (n - 1).leading_zeros().min(63);
        let found = if start + len <= self.tags.len() {
            crate::simd::any_near(&self.tags[start..start + len], first, shift)
        } else {
            let wrap = start + len - self.tags.len();
            crate::simd::any_near(&self.tags[start..], first, shift)
                || crate::simd::any_near(&self.tags[..wrap], first, shift)
        };
        !found
    }

    /// Exact earliest hit in the span `[first, first + n)`: the minimum
    /// span offset of a resident tag satisfying the survival predicate
    /// (see [`Cache::span_miss_prefix`]). Only called once the quick scan
    /// has seen at least one resident tag in range.
    fn span_first_hit(&self, first: u64, n: u64) -> u64 {
        let sets = self.set_mask + 1;
        let set_shift = sets.trailing_zeros(); // sets is a power of two
        let assoc = self.assoc as u64;
        let mut best = n;
        for k in 0..n.min(sets) {
            let s = ((first + k) & self.set_mask) as usize;
            let base = s * self.assoc;
            let head = self.heads[s] as usize;
            for w in 0..self.assoc {
                let off = self.tags[base + w].wrapping_sub(first);
                if off < n {
                    // This tag is span line i = off/sets + 1 of its set, at
                    // recency position p; it hits iff i + p <= assoc.
                    let i = (off >> set_shift) + 1;
                    let mut p = (w + self.assoc - head) as u64;
                    if p >= assoc {
                        p -= assoc;
                    }
                    if i + p <= assoc {
                        best = best.min(off);
                    }
                }
            }
        }
        best
    }

    /// Length of the longest prefix of the consecutive-line span
    /// `[first, first + n)` that is provably *all hits* — exact: the
    /// returned prefix ends either at `n` or at the first line that would
    /// miss. Read-only (no LRU state or stats touched).
    ///
    /// The proof is residency alone: span lines are distinct and hits
    /// never evict, so every initially-resident line of the prefix is
    /// still resident when the ascending walk reaches it — an
    /// all-resident prefix is an all-hit prefix. Per touched set, one way
    /// scan builds a bitmask of which of the set's expected span lines
    /// (`i`-th line has span offset `k + i·sets`) are resident; the first
    /// clear bit across sets bounds the prefix. A span longer than the
    /// cache's capacity is capped there first: line `capacity` of an
    /// all-resident prefix cannot itself be resident (its set is full of
    /// earlier span lines), so the cap loses nothing. O(touched sets ×
    /// assoc).
    pub fn span_hit_prefix(&self, first: u64, n: u64) -> u64 {
        if n == 0 {
            return 0;
        }
        debug_assert!(first.checked_add(n).is_some(), "span overflows line space");
        let sets = self.set_mask + 1;
        let set_shift = sets.trailing_zeros(); // sets is a power of two
        let n_eff = n.min(sets * self.assoc as u64);
        let mut best = n_eff;
        for k in 0..n_eff.min(sets) {
            let s = ((first + k) & self.set_mask) as usize;
            let base = s * self.assoc;
            // This set holds span lines k, k + sets, k + 2·sets, …:
            // m of them in the capped span, m <= assoc <= 32.
            let m = (n_eff - k).div_ceil(sets);
            let mut resident = 0u64;
            for w in 0..self.assoc {
                // Tags in set s with span offset < n_eff automatically
                // have offset ≡ k (mod sets); INVALID wraps far outside.
                let off = self.tags[base + w].wrapping_sub(first);
                if off < n_eff {
                    resident |= 1u64 << (off >> set_shift);
                }
            }
            let missing = !resident & ((1u64 << m) - 1);
            if missing != 0 {
                best = best.min(k + missing.trailing_zeros() as u64 * sets);
            }
        }
        best
    }

    /// Touch the consecutive-line span `[first, first + n)` as `n`
    /// *proven* hits, bit-identical to `n` ascending [`Cache::access`]
    /// calls that all hit: same final tags, heads, and counters (hits
    /// never update `set_max`). Callers must have proven the span all-hit
    /// via [`Cache::span_hit_prefix`]; debug builds re-verify.
    ///
    /// Sets are independent (a hit only rearranges its own set), so each
    /// touched set replays its own lines in ascending order. The steady
    /// state cyclic rescans reach — the set's span lines sitting in
    /// consecutive slots walking backward from the head, each touch
    /// hitting the LRU position — collapses to a head retreat with tags
    /// untouched; any other arrangement replays the exact per-line hit
    /// arm.
    pub fn promote_span(&mut self, first: u64, n: u64) {
        debug_assert_eq!(self.span_hit_prefix(first, n), n, "promote_span requires a proven all-hit span");
        if n == 0 {
            return;
        }
        let sets = self.set_mask + 1;
        for k in 0..n.min(sets) {
            let s = ((first + k) & self.set_mask) as usize;
            let base = s * self.assoc;
            let m = ((n - k).div_ceil(sets)) as usize; // <= assoc: all resident
            let head0 = self.heads[s] as usize;
            // Cyclic-rescan fast case: i-th span line at physical slot
            // head0 - 1 - i (mod assoc) means every touch hits recency
            // position assoc-1, so each is an O(1) head retreat.
            let cyclic = (0..m).all(|i| {
                let phys = (head0 + self.assoc - 1 - i) % self.assoc;
                self.tags[base + phys] == first + k + i as u64 * sets
            });
            if cyclic {
                self.heads[s] = ((head0 + self.assoc - m % self.assoc) % self.assoc) as u8;
                continue;
            }
            for i in 0..m {
                let line = first + k + i as u64 * sets;
                // Replica of the hit arm of `access`.
                let head = self.heads[s] as usize;
                let ways = &mut self.tags[base..base + self.assoc];
                if ways[head] == line {
                    continue;
                }
                let phys = ways.iter().position(|&t| t == line).expect("promote_span line not resident");
                let pos = (phys + self.assoc - head) % self.assoc;
                if pos == self.assoc - 1 {
                    self.heads[s] = phys as u8;
                } else {
                    let mut j = phys;
                    while j != head {
                        let prev = if j == 0 { self.assoc - 1 } else { j - 1 };
                        ways[j] = ways[prev];
                        j = prev;
                    }
                    ways[head] = line;
                }
            }
        }
        self.stats.hits += n;
    }

    /// Install the consecutive-line span `[first, first + n)` as `n`
    /// misses in closed form: per touched set, the final circular-buffer
    /// state after `m` sequential miss-installs is written directly — the
    /// head retreats by `m mod assoc` and only the last `min(m, assoc)`
    /// installed lines remain, in recency order. O(touched sets + writes)
    /// instead of O(n) per-line installs, and bit-identical to them.
    ///
    /// The caller must have proven the span all-miss (via
    /// [`Cache::span_miss_prefix`]); debug builds re-verify.
    pub fn install_span(&mut self, first: u64, n: u64) {
        debug_assert_eq!(self.span_miss_prefix(first, n), n, "install_span requires a proven all-miss span");
        if n == 0 {
            return;
        }
        let sets = self.set_mask + 1;
        let assoc = self.assoc as u64;
        if n < sets {
            // Short spans — every L3 window in practice — give each
            // touched set exactly one line: the head retreats one way
            // onto it. Kept minimal; this bound is the walk's floor.
            for k in 0..n {
                let line = first + k;
                let s = (line & self.set_mask) as usize;
                let h = self.heads[s] as usize;
                let h1 = if h == 0 { self.assoc - 1 } else { h - 1 };
                self.tags[s * self.assoc + h1] = line;
                self.heads[s] = h1 as u8;
                if line > self.set_max[s] {
                    self.set_max[s] = line;
                }
            }
            self.stats.misses += n;
            self.installs += n;
            return;
        }
        // Per touched set, the span holds m = ceil((n - k) / sets) lines:
        // q + 1 for the first n mod sets sets, q for the rest. Hoisting the
        // two cases out of the loop keeps the per-set body division-free.
        let q = n / sets;
        let r = n % sets;
        let retreat = [(assoc - q % assoc) % assoc, (assoc - (q + 1) % assoc) % assoc];
        let fill = [q.min(assoc), (q + 1).min(assoc)];
        for k in 0..n.min(sets) {
            let s = ((first + k) & self.set_mask) as usize;
            let extra = (k < r) as usize;
            let m = q + extra as u64;
            let base = s * self.assoc;
            let h0 = self.heads[s] as u64;
            let mut h1 = (h0 + retreat[extra]) as usize;
            if h1 >= self.assoc {
                h1 -= self.assoc;
            }
            let last = first + k + (m - 1) * sets;
            // Walk the ways from the new head with one wrap and a running
            // line counter — no division in the per-way loop. The counter
            // may wrap below zero after the final write; it is unused then.
            let mut w = h1;
            let mut line = last;
            for _ in 0..fill[extra] {
                self.tags[base + w] = line;
                w += 1;
                if w == self.assoc {
                    w = 0;
                }
                line = line.wrapping_sub(sets);
            }
            self.heads[s] = h1 as u8;
            if last > self.set_max[s] {
                self.set_max[s] = last;
            }
        }
        self.stats.misses += n;
        self.installs += n;
    }

    /// Access the consecutive-line span `[first, first + n)`, exactly as
    /// `n` per-line [`Cache::access`] calls would: identical final tag and
    /// head state, identical counters. All-miss stretches are committed in
    /// closed form via [`Cache::install_span`]; around hits the walk falls
    /// back to bounded per-line chunks before re-proving, so adversarial
    /// hit/miss mixes stay O(n · assoc) overall.
    ///
    /// Returns the hit/miss delta of this span.
    pub fn access_span(&mut self, first: u64, n: u64) -> CacheStats {
        // Bounded per-line fallback between proofs: long enough to amortise
        // a failed proof, short enough to re-enter the closed form quickly.
        const FALLBACK_CHUNK: u64 = 32;
        let mut delta = CacheStats::default();
        let mut cur = first;
        let mut rem = n;
        while rem > 0 {
            let p = self.span_miss_prefix(cur, rem);
            if p > 0 {
                self.install_span(cur, p);
                delta.misses += p;
                cur += p;
                rem -= p;
            }
            if rem == 0 {
                break;
            }
            for _ in 0..rem.min(FALLBACK_CHUNK) {
                if self.access(cur) {
                    delta.hits += 1;
                } else {
                    delta.misses += 1;
                }
                cur += 1;
                rem -= 1;
            }
        }
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cold_miss_then_hit() {
        let mut c = Cache::new(4, 2);
        assert!(!c.access(10));
        assert!(c.access(10));
        assert_eq!(c.stats(), CacheStats { hits: 1, misses: 1 });
    }

    #[test]
    fn lru_eviction_order() {
        let mut c = Cache::new(1, 2);
        c.access(1);
        c.access(2);
        c.access(1); // 1 is now MRU, 2 is LRU
        c.access(3); // evicts 2
        assert!(c.probe(1));
        assert!(c.probe(3));
        assert!(!c.probe(2));
    }

    #[test]
    fn distinct_sets_do_not_conflict() {
        let mut c = Cache::new(4, 1);
        for line in 0..4 {
            c.access(line);
        }
        for line in 0..4 {
            assert!(c.probe(line), "line {line} should still be resident");
        }
    }

    #[test]
    fn same_set_conflicts() {
        let mut c = Cache::new(4, 1);
        c.access(0);
        c.access(4); // same set (4 % 4 == 0), evicts 0
        assert!(!c.probe(0));
        assert!(c.probe(4));
    }

    #[test]
    fn flush_clears_residency_keeps_stats() {
        let mut c = Cache::new(4, 2);
        c.access(7);
        c.flush();
        assert!(!c.probe(7));
        assert_eq!(c.stats().misses, 1);
    }

    #[test]
    fn probe_does_not_count() {
        let c = Cache::new(4, 2);
        c.probe(3);
        assert_eq!(c.stats().accesses(), 0);
    }

    #[test]
    fn hit_ratio() {
        let mut c = Cache::new(2, 2);
        assert_eq!(c.stats().hit_ratio(), 0.0);
        c.access(0);
        c.access(0);
        c.access(0);
        assert!((c.stats().hit_ratio() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_pow2_sets_rejected() {
        Cache::new(3, 2);
    }

    #[test]
    fn working_set_within_capacity_all_hits_after_warmup() {
        // 8 sets * 4 ways = 32 lines capacity; touch 32 distinct lines twice.
        let mut c = Cache::new(8, 4);
        for line in 0..32 {
            c.access(line);
        }
        c.reset_stats();
        for line in 0..32 {
            assert!(c.access(line));
        }
        assert_eq!(c.stats().misses, 0);
    }

    /// Drive `oracle` per-line and return it for comparison against a
    /// span-walked twin.
    fn per_line(c: &mut Cache, first: u64, n: u64) -> CacheStats {
        let mut d = CacheStats::default();
        for line in first..first + n {
            if c.access(line) {
                d.hits += 1;
            } else {
                d.misses += 1;
            }
        }
        d
    }

    #[test]
    fn span_walk_matches_per_line_on_cold_cache() {
        for (sets, assoc) in [(1, 1), (1, 4), (4, 2), (8, 4), (16, 8)] {
            for n in [1u64, 3, 7, 32, 100, 257] {
                let mut a = Cache::new(sets, assoc);
                let mut b = a.clone();
                let want = per_line(&mut a, 5, n);
                assert_eq!(b.span_miss_prefix(5, n), n, "cold span must prove all-miss");
                let got = b.access_span(5, n);
                assert_eq!(got, want, "sets {sets} assoc {assoc} n {n}");
                assert_eq!(a, b, "state diverged: sets {sets} assoc {assoc} n {n}");
            }
        }
    }

    #[test]
    fn span_walk_matches_per_line_on_cyclic_rescan() {
        // Footprint 3x capacity: pass >= 2 re-walks sets full of the
        // previous pass's tags, and the survival predicate must still prove
        // all-miss (every resident is evicted before the scan reaches it).
        let (sets, assoc) = (8u64, 4u64);
        let n = sets * assoc * 3;
        let mut a = Cache::new(sets as usize, assoc as usize);
        let mut b = a.clone();
        for _ in 0..3 {
            let want = per_line(&mut a, 0, n);
            assert_eq!(b.span_miss_prefix(0, n), n, "cyclic over-capacity pass must prove all-miss");
            assert_eq!(b.access_span(0, n), want);
            assert_eq!(a, b);
        }
        assert_eq!(b.stats().hits, 0);
    }

    #[test]
    fn span_walk_matches_per_line_around_hits() {
        // Resident sub-range in the middle of the span forces prove /
        // fallback / re-prove transitions.
        for warm in [(40u64, 8u64), (0, 32), (60, 1), (32, 16)] {
            let mut a = Cache::new(8, 4);
            let mut b = a.clone();
            per_line(&mut a, warm.0, warm.1);
            per_line(&mut b, warm.0, warm.1);
            let want = per_line(&mut a, 0, 96);
            assert_eq!(b.access_span(0, 96), want, "warm {warm:?}");
            assert_eq!(a, b, "warm {warm:?}");
        }
    }

    #[test]
    fn span_prefix_stops_exactly_at_first_hit() {
        // Lines 10..14 resident and recent in a single-set cache: a span
        // from 6 misses 6..10, then hits 10.
        let mut c = Cache::new(1, 8);
        per_line(&mut c, 10, 4);
        assert_eq!(c.span_miss_prefix(6, 20), 4);
        // Deep (near-LRU) residents that the span's own misses would evict
        // before reaching them are not hits: fill 8 ways, then a span that
        // reaches line 10 only after 8 misses proves all-miss through it.
        let mut c = Cache::new(1, 8);
        per_line(&mut c, 10, 1);
        per_line(&mut c, 100, 7); // line 10 is now LRU (p = 7)
        assert_eq!(c.span_miss_prefix(2, 20), 20, "i + p = 9 + 7 > 8: line 10 evicted before reached");
        let mut c = Cache::new(1, 8);
        per_line(&mut c, 100, 7);
        per_line(&mut c, 10, 1); // line 10 is MRU (p = 0)
        assert_eq!(c.span_miss_prefix(2, 20), 20, "i + p = 9 + 0 > 8: line 10 still evicted");
        assert_eq!(c.span_miss_prefix(3, 20), 7, "i + p = 8 + 0 = 8: line 10 survives and hits");
    }

    #[test]
    fn install_span_state_is_exact_for_deep_wraps() {
        // m >> assoc per set: only the last `assoc` installs survive, in
        // recency order, with the head retreated by m mod assoc.
        for n in [1u64, 4, 5, 9, 64, 1000, 1001, 1003] {
            let mut a = Cache::new(4, 4);
            let mut b = a.clone();
            per_line(&mut a, 7, n);
            b.install_span(7, n);
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn hit_span_matches_per_line_after_warmup() {
        // A resident working set rescanned ascending: the hit proof must
        // cover the whole span and the closed-form promote must leave
        // state and counters bit-identical to per-line accesses. Repeat
        // rescans exercise the cyclic fast case in steady state.
        for (sets, assoc) in [(1usize, 1usize), (1, 4), (4, 2), (8, 4), (16, 8)] {
            let cap = (sets * assoc) as u64;
            for n in [1u64, 2, cap / 2 + 1, cap] {
                let n = n.clamp(1, cap);
                let mut a = Cache::new(sets, assoc);
                per_line(&mut a, 5, n);
                let mut b = a.clone();
                for pass in 0..3 {
                    assert_eq!(a.span_hit_prefix(5, n), n, "warm span must prove all-hit (pass {pass})");
                    let want = per_line(&mut a, 5, n);
                    assert_eq!(want.misses, 0);
                    b.promote_span(5, n);
                    assert_eq!(a, b, "sets {sets} assoc {assoc} n {n} pass {pass}");
                }
            }
        }
    }

    #[test]
    fn promote_span_matches_per_line_on_scrambled_recency() {
        // Warm the span, then disturb recency order with extra hits so the
        // cyclic fast case cannot fire everywhere: the per-line hit-arm
        // replica must keep state bit-identical.
        for scramble in [[9u64, 5, 13], [21, 6, 6], [5, 17, 10]] {
            let mut a = Cache::new(8, 4);
            per_line(&mut a, 5, 24);
            for &l in &scramble {
                a.access(l);
            }
            let mut b = a.clone();
            assert_eq!(a.span_hit_prefix(5, 24), 24);
            let want = per_line(&mut a, 5, 24);
            assert_eq!(want.misses, 0, "scramble {scramble:?}");
            b.promote_span(5, 24);
            assert_eq!(a, b, "scramble {scramble:?}");
        }
    }

    #[test]
    fn hit_prefix_stops_exactly_at_first_miss() {
        // Lines 10..14 resident in a single-set cache: a span from 10 of
        // length 8 hits 10..14 then misses 14.
        let mut c = Cache::new(1, 8);
        per_line(&mut c, 10, 4);
        assert_eq!(c.span_hit_prefix(10, 8), 4);
        assert_eq!(c.span_hit_prefix(10, 4), 4);
        assert_eq!(c.span_hit_prefix(10, 3), 3);
        // A hole mid-span bounds the prefix even with later residents.
        let mut c = Cache::new(4, 4);
        per_line(&mut c, 0, 16); // fills every set
        assert_eq!(c.span_hit_prefix(0, 16), 16);
        let mut d = c.clone();
        d.access(100); // evicts LRU of set 0 = line 0
        assert_eq!(d.span_hit_prefix(0, 16), 0);
        let mut d = c.clone();
        d.access(101); // evicts LRU of set 1 = line 1
        assert_eq!(d.span_hit_prefix(0, 16), 1);
        // Nothing resident: prefix is empty.
        assert_eq!(Cache::new(4, 4).span_hit_prefix(0, 12), 0);
    }

    #[test]
    fn hit_prefix_caps_at_capacity() {
        // A span longer than the cache cannot be all-hit past capacity:
        // with the whole cache holding the span's first 16 lines, the
        // prefix is exactly 16 and line 16 would miss.
        let mut c = Cache::new(4, 4);
        per_line(&mut c, 0, 16);
        assert_eq!(c.span_hit_prefix(0, 1000), 16);
        let mut twin = c.clone();
        assert!(c.access(15));
        assert!(!twin.access(16));
    }

    #[test]
    fn working_set_exceeding_capacity_thrashes() {
        // Capacity 32 lines; cyclic scan of 64 distinct lines never hits
        // under LRU.
        let mut c = Cache::new(8, 4);
        for _ in 0..3 {
            for line in 0..64 {
                c.access(line);
            }
        }
        assert_eq!(c.stats().hits, 0);
    }
}

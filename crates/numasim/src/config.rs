//! Machine configuration: cache geometry, latencies, bandwidths, presets.
//!
//! Two presets are provided:
//!
//! * [`MachineConfig::xeon_e5_4650`] mirrors the paper's testbed geometry
//!   (4 sockets × 8 cores, 32 KB L1 / 256 KB L2 per core, 20 MB L3 per
//!   socket). Simulating full-size working sets against these caches costs
//!   hundreds of millions of simulated accesses per run.
//! * [`MachineConfig::scaled`] keeps every *ratio* of the testbed (cache
//!   size ladder, local-vs-remote latency, per-channel vs per-controller
//!   bandwidth) but shrinks capacities ~10×, so the experiments run with
//!   proportionally smaller working sets in bounded time. All experiments
//!   in `EXPERIMENTS.md` use this preset; DESIGN.md documents the
//!   substitution.

use crate::topology::Topology;

/// Geometry of one level of the cache hierarchy.
#[derive(Debug, Clone, Copy)]
pub struct CacheGeometry {
    /// Total capacity in bytes.
    pub size: u64,
    /// Associativity (ways per set).
    pub assoc: u32,
}

impl CacheGeometry {
    /// Number of sets given a line size.
    ///
    /// # Panics
    /// Panics if the geometry does not divide into whole sets.
    pub fn num_sets(&self, line_size: u64) -> usize {
        let lines = self.size / line_size;
        assert_eq!(self.size % line_size, 0, "cache size not a multiple of line size");
        assert_eq!(lines % self.assoc as u64, 0, "lines not a multiple of associativity");
        (lines / self.assoc as u64) as usize
    }
}

/// Cache hierarchy configuration (per-core L1/L2, per-node shared L3).
#[derive(Debug, Clone, Copy)]
pub struct CacheConfig {
    /// Cache line size in bytes (64 on the paper's machine).
    pub line_size: u64,
    /// Per-core L1 data cache.
    pub l1: CacheGeometry,
    /// Per-core unified L2.
    pub l2: CacheGeometry,
    /// Per-node shared L3.
    pub l3: CacheGeometry,
    /// Line-fill-buffer entries per core (outstanding-miss window used to
    /// classify back-to-back misses to the same line as LFB hits).
    pub lfb_entries: usize,
}

/// Unloaded access latencies in cycles, by where the data is found.
///
/// DRAM latency is split into a fixed part (row access, on-die traversal)
/// and a *service* part that scales with queueing delay when a memory
/// controller or interconnect channel approaches saturation — see
/// [`crate::bandwidth`].
#[derive(Debug, Clone, Copy)]
pub struct LatencyConfig {
    /// L1 hit latency.
    pub l1: f64,
    /// L2 hit latency.
    pub l2: f64,
    /// L3 hit latency.
    pub l3: f64,
    /// Hit in a line-fill buffer (miss already in flight).
    pub lfb: f64,
    /// Fixed portion of any DRAM access.
    pub dram_fixed: f64,
    /// Service portion of a local DRAM access (scaled by congestion).
    pub dram_local_service: f64,
    /// Service portion of a remote DRAM access (scaled by congestion).
    pub dram_remote_service: f64,
}

/// Memory system configuration.
#[derive(Debug, Clone, Copy)]
pub struct MemConfig {
    /// Base page size in bytes (4 KiB).
    pub page_size: u64,
    /// Huge page size in bytes (2 MiB) — used by the bandit micro-benchmark.
    pub huge_page_size: u64,
    /// Per-node memory-controller bandwidth in bytes/cycle.
    pub mc_bandwidth: f64,
}

/// Interconnect configuration.
#[derive(Debug, Clone)]
pub struct InterconnectConfig {
    /// Default directed-channel bandwidth in bytes/cycle.
    pub channel_bandwidth: f64,
    /// Optional per-channel overrides (dense channel index → bytes/cycle),
    /// modelling the bandwidth asymmetry the paper cites (Lepers et al.).
    pub overrides: Vec<(usize, f64)>,
}

impl InterconnectConfig {
    /// Bandwidth of the channel with dense index `idx`.
    pub fn bandwidth_of(&self, idx: usize) -> f64 {
        self.overrides.iter().find(|(i, _)| *i == idx).map(|(_, bw)| *bw).unwrap_or(self.channel_bandwidth)
    }
}

/// Congestion-model knobs shared by channels and memory controllers.
#[derive(Debug, Clone, Copy)]
pub struct CongestionConfig {
    /// Utilization below which no queueing delay is charged.
    pub knee: f64,
    /// Utilization cap used in the M/D/1 delay term (numerical guard).
    pub rho_cap: f64,
    /// Upper bound on the latency inflation factor.
    pub max_factor: f64,
    /// Utilization the closed-loop controller drives saturated resources
    /// toward (see `bandwidth` module docs). Must lie in `(knee, 1)`.
    pub ctrl_target: f64,
    /// Utilization at/above which a resource is *saturated* — used only for
    /// reporting, never by the classifier (the classifier must learn
    /// contention from sample features, as in the paper).
    pub saturation: f64,
}

/// How [`crate::engine::Engine::run_phase`] walks each thread's stream.
///
/// Both modes produce bit-identical results (`RunStats`, channel bytes,
/// observer event sequence); the reference mode exists so differential
/// tests can prove it.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ExecMode {
    /// Pull [`crate::access::AccessRun`]s of same-stride accesses and
    /// amortize bounds checks, home-node resolution, and observer
    /// dispatch over each run. The default.
    #[default]
    Batched,
    /// Strictly one access at a time — the original inner loop, kept as
    /// the differential-testing oracle.
    Reference,
}

/// Engine scheduling parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Cycles per accounting round. Congestion factors computed from round
    /// `k` apply to round `k + 1` (closed-loop fluid approximation).
    pub round_cycles: f64,
    /// Memory-level parallelism: how many outstanding misses a core
    /// overlaps. Thread clocks advance by `latency / mlp` per miss unless a
    /// stream declares dependent accesses (pointer chasing ⇒ mlp 1).
    pub default_mlp: f64,
    /// Inner-loop execution strategy (see [`ExecMode`]).
    pub exec: ExecMode,
    /// Whether [`ExecMode::Batched`] may commit provably all-miss line
    /// spans through the fused span-level cache walk
    /// ([`crate::cache::Cache::install_span`]). Results are bit-identical
    /// either way; the switch exists so benchmarks can ablate the fused
    /// walk's contribution. Default: enabled.
    pub span_fusion: bool,
    /// Number of host threads one simulation's per-core state may be
    /// partitioned across in [`ExecMode::Batched`] (see
    /// [`crate::shard`]). `1` (the default) runs the classic
    /// single-host-thread batched loop; `N > 1` splits the simulated
    /// nodes over up to `N` host threads with a boundary-synchronized,
    /// registration-ordered merge every accounting round. Results are
    /// bit-identical for every value. Only
    /// [`crate::engine::Engine::run_phase_auto`] /
    /// [`crate::engine::Engine::run_phase_sharded`] honor this knob;
    /// [`crate::engine::Engine::run_phase`] always runs unsharded.
    pub shards: usize,
}

/// Complete machine description handed to the [`crate::engine::Engine`].
#[derive(Debug, Clone)]
pub struct MachineConfig {
    /// NUMA topology (nodes, cores, SMT).
    pub topology: Topology,
    /// Cache hierarchy geometry.
    pub cache: CacheConfig,
    /// Unloaded latencies.
    pub latency: LatencyConfig,
    /// Memory system (page sizes, controller bandwidth).
    pub mem: MemConfig,
    /// Interconnect bandwidths.
    pub interconnect: InterconnectConfig,
    /// Congestion model knobs.
    pub congestion: CongestionConfig,
    /// Engine scheduling knobs.
    pub engine: EngineConfig,
}

/// `DRBW_SHARDS`: default shard count for the presets, for ablation runs
/// that cannot thread a config through (ci smoke matrix, benches). Unset,
/// empty, unparsable, or `0` all mean `1` (unsharded). Read once per
/// process.
pub fn env_shards() -> usize {
    static SHARDS: std::sync::OnceLock<usize> = std::sync::OnceLock::new();
    *SHARDS.get_or_init(|| {
        std::env::var("DRBW_SHARDS").ok().and_then(|v| v.trim().parse::<usize>().ok()).unwrap_or(1).max(1)
    })
}

/// `DRBW_NO_FUSE`: any non-empty value other than `0` disables the fused
/// span-level cache walk in the presets (same truthiness convention as
/// `DRBW_NO_SIMD`). Read once per process.
pub fn env_no_fuse() -> bool {
    static NO_FUSE: std::sync::OnceLock<bool> = std::sync::OnceLock::new();
    *NO_FUSE.get_or_init(|| std::env::var_os("DRBW_NO_FUSE").is_some_and(|v| !v.is_empty() && v != "0"))
}

impl MachineConfig {
    /// The paper's testbed: 4-socket Intel Xeon E5-4650, 32 KB L1 and
    /// 256 KB L2 per core, 20 MB L3 per socket, fully connected QPI.
    pub fn xeon_e5_4650() -> Self {
        Self {
            topology: Topology::new(4, 8, 2),
            cache: CacheConfig {
                line_size: 64,
                l1: CacheGeometry { size: 32 << 10, assoc: 8 },
                l2: CacheGeometry { size: 256 << 10, assoc: 8 },
                l3: CacheGeometry { size: 20 << 20, assoc: 20 },
                lfb_entries: 10,
            },
            latency: LatencyConfig {
                l1: 4.0,
                l2: 12.0,
                l3: 40.0,
                lfb: 90.0,
                dram_fixed: 100.0,
                dram_local_service: 80.0,
                dram_remote_service: 180.0,
            },
            mem: MemConfig { page_size: 4 << 10, huge_page_size: 2 << 20, mc_bandwidth: 20.0 },
            interconnect: InterconnectConfig { channel_bandwidth: 6.0, overrides: Vec::new() },
            congestion: CongestionConfig {
                knee: 0.55,
                rho_cap: 0.97,
                max_factor: 8.0,
                ctrl_target: 0.92,
                saturation: 0.85,
            },
            engine: EngineConfig {
                round_cycles: 20_000.0,
                default_mlp: 4.0,
                exec: ExecMode::Batched,
                span_fusion: !env_no_fuse(),
                shards: env_shards(),
            },
        }
    }

    /// The experiment preset: the testbed scaled ~10× down in capacity with
    /// all ratios preserved. Working sets scale down with it, keeping every
    /// run within tens of milliseconds on one host core.
    pub fn scaled() -> Self {
        let mut cfg = Self::xeon_e5_4650();
        cfg.cache.l1 = CacheGeometry { size: 4 << 10, assoc: 8 };
        cfg.cache.l2 = CacheGeometry { size: 32 << 10, assoc: 8 };
        cfg.cache.l3 = CacheGeometry { size: 2 << 20, assoc: 16 };
        cfg
    }

    /// A tiny 2-node machine for unit tests.
    pub fn tiny() -> Self {
        let mut cfg = Self::scaled();
        cfg.topology = Topology::new(2, 2, 2);
        cfg.cache.l1 = CacheGeometry { size: 1 << 10, assoc: 4 };
        cfg.cache.l2 = CacheGeometry { size: 4 << 10, assoc: 4 };
        cfg.cache.l3 = CacheGeometry { size: 64 << 10, assoc: 8 };
        cfg
    }

    /// Validate internal consistency (cache geometries divide into sets,
    /// bandwidths positive, latencies ordered). Called by the engine.
    ///
    /// # Panics
    /// Panics with a descriptive message on any inconsistency.
    pub fn validate(&self) {
        let ls = self.cache.line_size;
        assert!(ls.is_power_of_two(), "line size must be a power of two");
        self.cache.l1.num_sets(ls);
        self.cache.l2.num_sets(ls);
        self.cache.l3.num_sets(ls);
        assert!(self.mem.page_size.is_power_of_two() && self.mem.page_size >= ls);
        assert!(self.mem.huge_page_size.is_power_of_two() && self.mem.huge_page_size > self.mem.page_size);
        assert!(self.mem.mc_bandwidth > 0.0 && self.interconnect.channel_bandwidth > 0.0);
        let l = &self.latency;
        assert!(
            l.l1 < l.l2 && l.l2 < l.l3 && l.l3 < l.dram_fixed + l.dram_local_service,
            "latency ladder must increase with distance"
        );
        assert!(l.dram_local_service < l.dram_remote_service, "remote service must exceed local");
        let c = &self.congestion;
        assert!(c.knee > 0.0 && c.knee < c.rho_cap && c.rho_cap < 1.0 && c.max_factor >= 1.0);
        assert!(c.ctrl_target > c.knee && c.ctrl_target < 1.0, "ctrl_target must lie in (knee, 1)");
        assert!(self.engine.round_cycles > 0.0 && self.engine.default_mlp >= 1.0);
        assert!(self.engine.shards >= 1, "shards must be at least 1");
    }

    /// Unloaded latency of an access satisfied at `source`, before
    /// congestion inflation of the DRAM service portion.
    pub fn base_latency(&self, source: crate::hierarchy::DataSource) -> f64 {
        use crate::hierarchy::DataSource::*;
        match source {
            L1 => self.latency.l1,
            L2 => self.latency.l2,
            L3 => self.latency.l3,
            Lfb => self.latency.lfb,
            LocalDram => self.latency.dram_fixed + self.latency.dram_local_service,
            RemoteDram => self.latency.dram_fixed + self.latency.dram_remote_service,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_validate() {
        MachineConfig::xeon_e5_4650().validate();
        MachineConfig::scaled().validate();
        MachineConfig::tiny().validate();
    }

    #[test]
    fn xeon_geometry_matches_paper() {
        let c = MachineConfig::xeon_e5_4650();
        assert_eq!(c.topology.num_cores(), 32);
        assert_eq!(c.cache.l1.size, 32 << 10);
        assert_eq!(c.cache.l2.size, 256 << 10);
        assert_eq!(c.cache.l3.size, 20 << 20);
    }

    #[test]
    fn set_counts() {
        let c = MachineConfig::scaled();
        assert_eq!(c.cache.l1.num_sets(64), 8);
        assert_eq!(c.cache.l2.num_sets(64), 64);
        assert_eq!(c.cache.l3.num_sets(64), 2048);
    }

    #[test]
    fn latency_ladder_ordered() {
        use crate::hierarchy::DataSource::*;
        let c = MachineConfig::scaled();
        assert!(c.base_latency(L1) < c.base_latency(L2));
        assert!(c.base_latency(L2) < c.base_latency(L3));
        assert!(c.base_latency(L3) < c.base_latency(LocalDram));
        assert!(c.base_latency(LocalDram) < c.base_latency(RemoteDram));
        assert!(c.base_latency(L3) < c.base_latency(Lfb));
    }

    #[test]
    fn interconnect_overrides() {
        let mut ic = InterconnectConfig { channel_bandwidth: 6.0, overrides: vec![(3, 4.0)] };
        assert_eq!(ic.bandwidth_of(0), 6.0);
        assert_eq!(ic.bandwidth_of(3), 4.0);
        ic.overrides.clear();
        assert_eq!(ic.bandwidth_of(3), 6.0);
    }

    #[test]
    #[should_panic(expected = "latency ladder")]
    fn validate_rejects_inverted_latencies() {
        let mut c = MachineConfig::scaled();
        c.latency.l2 = 1.0;
        c.validate();
    }

    #[test]
    #[should_panic]
    fn bad_geometry_panics() {
        CacheGeometry { size: 1000, assoc: 3 }.num_sets(64);
    }
}

//! The tuner's output: the chosen plan, the measured speedup, and the
//! full convergence trace of every placement the loop evaluated.

use drbw_core::diagnoser::OwnedDiagnosis;
use drbw_core::Mode;
use workloads::plan::PlacementPlan;

/// One evaluated placement: a candidate plan and its measured outcome.
#[derive(Debug, Clone)]
pub struct TuneStep {
    /// The candidate plan that was simulated.
    pub plan: PlacementPlan,
    /// Human-readable description (object → action).
    pub description: String,
    /// Measured cycles under the plan.
    pub cycles: f64,
    /// Measured speedup over the baseline (`baseline / cycles`).
    pub speedup: f64,
}

/// Result of one closed tuning loop: diagnose → plan → apply → re-simulate
/// → verify. The chosen plan is the best *measured* candidate when it
/// clears the acceptance threshold, else the no-op plan — so
/// [`TuneReport::speedup`] is never below 1.
#[derive(Debug, Clone)]
pub struct TuneReport {
    /// Program name.
    pub workload: String,
    /// The run's `Tt-Nn` shape label.
    pub shape: String,
    /// Detection verdict of the baseline profile.
    pub detected: Mode,
    /// Root-cause ranking the candidates were derived from (owned — it
    /// outlives the profile).
    pub diagnosis: OwnedDiagnosis,
    /// Measured baseline cycles (no plan).
    pub baseline_cycles: f64,
    /// The chosen plan (empty = keep the program as written).
    pub plan: PlacementPlan,
    /// Measured cycles under the chosen plan (equals
    /// [`TuneReport::baseline_cycles`] when the plan is empty).
    pub tuned_cycles: f64,
    /// Every candidate evaluated, in evaluation order.
    pub trace: Vec<TuneStep>,
    /// Total simulator evaluations (baseline + candidates).
    pub evaluations: usize,
}

impl TuneReport {
    /// Verified speedup of the chosen plan over the baseline (≥ 1 by the
    /// no-op fallback).
    pub fn speedup(&self) -> f64 {
        self.baseline_cycles / self.tuned_cycles
    }

    /// Whether the loop found (and kept) a placement that beat the
    /// acceptance threshold.
    pub fn improved(&self) -> bool {
        !self.plan.is_empty()
    }

    /// The best candidate evaluated, accepted or not.
    pub fn best_step(&self) -> Option<&TuneStep> {
        self.trace.iter().min_by(|a, b| a.cycles.total_cmp(&b.cycles))
    }

    /// Render the report as a text block (one line per evaluated
    /// candidate, best marked with `*`, verdict last).
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(
            out,
            "{} {} — detected {}, {} candidate evaluation(s)",
            self.workload,
            self.shape,
            self.detected.name(),
            self.trace.len()
        );
        if let Some(top) = self.diagnosis.top_object() {
            let _ = writeln!(out, "  top object: {} (CF {:.2})", top.label, top.cf);
        }
        let _ = writeln!(out, "  baseline: {:.0} cycles", self.baseline_cycles);
        let best = self.best_step().map(|s| s.cycles);
        for step in &self.trace {
            let mark = if Some(step.cycles) == best { '*' } else { ' ' };
            let _ =
                writeln!(out, "  {mark} {:<48} {:>12.0} cycles  x{:.3}", step.description, step.cycles, step.speedup);
        }
        let verdict = if self.improved() {
            format!("tuned: {} — x{:.3} measured speedup", self.plan.describe(), self.speedup())
        } else {
            "tuned: no placement beat the baseline; keeping the program as written".to_string()
        };
        let _ = writeln!(out, "  {verdict}");
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::plan::PlanAction;

    fn report() -> TuneReport {
        let plan = PlacementPlan::new().with("v", PlanAction::Interleave(vec![numasim::topology::NodeId(0)]));
        TuneReport {
            workload: "Sumv".into(),
            shape: "T32-N4".into(),
            detected: Mode::Rmc,
            diagnosis: OwnedDiagnosis::default(),
            baseline_cycles: 2000.0,
            plan: plan.clone(),
            tuned_cycles: 1000.0,
            trace: vec![
                TuneStep {
                    plan: PlacementPlan::new(),
                    description: "v→colocate".into(),
                    cycles: 1500.0,
                    speedup: 2000.0 / 1500.0,
                },
                TuneStep { plan, description: "v→interleave".into(), cycles: 1000.0, speedup: 2.0 },
            ],
            evaluations: 3,
        }
    }

    #[test]
    fn speedup_and_render() {
        let r = report();
        assert!((r.speedup() - 2.0).abs() < 1e-12);
        assert!(r.improved());
        assert_eq!(r.best_step().unwrap().description, "v→interleave");
        let text = r.render();
        assert!(text.contains("Sumv T32-N4"), "header names the case: {text}");
        assert!(text.contains("* v→interleave"), "best candidate is starred: {text}");
        assert!(text.contains("x2.000"), "verified speedup rendered: {text}");
    }

    #[test]
    fn no_op_report_is_honest() {
        let mut r = report();
        r.plan = PlacementPlan::new();
        r.tuned_cycles = r.baseline_cycles;
        assert!(!r.improved());
        assert_eq!(r.speedup(), 1.0, "the no-op fallback never reports a slowdown");
        assert!(r.render().contains("keeping the program as written"));
    }
}

//! # drbw-tune — the DR-BW guided-optimization autotuner
//!
//! The paper stops at guidance: DR-BW names the objects causing
//! remote-memory bandwidth contention and suggests co-locating,
//! interleaving, or replicating them (§VI.B). This crate closes the loop
//! by *doing* it — and verifying the result under the same simulator that
//! produced the diagnosis:
//!
//! ```text
//! diagnose ──▶ plan candidates ──▶ apply placement ──▶ re-simulate ──▶ verify
//!     ▲                                                                 │
//!     └────────────── weighted-interleave weight refinement ◀───────────┘
//! ```
//!
//! The [`Tune`] extension trait adds [`Tune::tune`] to
//! [`DrBw`](drbw_core::DrBw). Each candidate placement is a
//! [`PlacementPlan`](workloads::plan::PlacementPlan) carried by the run
//! configuration; the runner rewrites the workload's memory map and the
//! engine re-simulates, served from the tool's content-addressed run cache
//! when one is attached. Weighted-interleave candidates (BWAP-style) are
//! refined from the *measured* per-node pressure of the previous iterate
//! until the improvement stalls. The verdict is a [`TuneReport`]: the
//! chosen plan, the verified speedup (≥ 1 by the no-op fallback), and the
//! full convergence trace.
//!
//! ```no_run
//! use drbw_core::{DrBw, TrainingSet};
//! use drbw_tune::{Tune, TuneConfig};
//! use workloads::config::{Input, RunConfig};
//! use workloads::suite;
//!
//! let tool = DrBw::builder().training_set(TrainingSet::Quick).build().unwrap();
//! let program = suite::Streamcluster;
//! let rcfg = RunConfig::new(32, 4, Input::Native);
//! let report = tool.tune(&program, &rcfg, &TuneConfig::default());
//! println!("{}", report.render());
//! assert!(report.speedup() >= 1.0);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

mod config;
mod report;
mod tuner;

pub use config::{CandidateKind, TuneConfig, TuneConfigBuilder, TuneConfigError};
pub use report::{TuneReport, TuneStep};
pub use tuner::Tune;

//! The closed guided-optimization loop: diagnose → plan → apply →
//! re-simulate → verify.
//!
//! The [`Tune`] extension trait adds `tune()` to [`DrBw`]. One call runs
//! the full loop for a case:
//!
//! 1. **Diagnose** — profile the baseline, detect per-channel contention,
//!    and rank root-cause objects by Contribution Fraction (§VI). When
//!    detection is clean and [`TuneConfig::opportunistic`] is on, the
//!    ranking instead targets the channels that carried remote samples —
//!    the verify step makes that safe.
//! 2. **Plan** — for each ranked object, enumerate candidate placements:
//!    co-locate, uniform interleave, weighted interleave, and (for
//!    read-mostly objects) replicate.
//! 3. **Apply + re-simulate** — each candidate becomes a
//!    [`PlacementPlan`] carried by the [`RunConfig`]; the runner rewrites
//!    the freshly built memory map and the engine re-simulates. With a run
//!    cache attached, repeat evaluations are served from disk.
//! 4. **Verify** — the measured cycles decide. Weighted-interleave weights
//!    are refined from the *measured* per-node pressure of the previous
//!    iterate (§"weight search"); the final plan is kept only if it beats
//!    [`TuneConfig::min_speedup`], else the report carries the no-op plan,
//!    so a tuned program is never slower than the original.

use std::collections::HashMap;

use drbw_core::diagnoser::{diagnose, UNTRACKED};
use drbw_core::{DrBw, Profile};
use numasim::topology::{ChannelId, NodeId};
use workloads::config::RunConfig;
use workloads::plan::{PlacementPlan, PlanAction};
use workloads::runner::{self, RunOutcome};
use workloads::spec::Workload;

use crate::config::{CandidateKind, TuneConfig};
use crate::report::{TuneReport, TuneStep};

/// Extension trait implementing the guided-optimization loop on the
/// assembled [`DrBw`] tool.
pub trait Tune {
    /// Run the closed diagnose → plan → re-simulate → verify loop for one
    /// case and return the chosen plan with its measured speedup.
    fn tune(&self, workload: &dyn Workload, rcfg: &RunConfig, cfg: &TuneConfig) -> TuneReport;
}

impl Tune for DrBw {
    fn tune(&self, workload: &dyn Workload, rcfg: &RunConfig, cfg: &TuneConfig) -> TuneReport {
        // 1. Diagnose: one profiled run under this tool's sampler.
        let analysis = self.analyze(workload, rcfg);
        let detected = analysis.detection.mode();
        let channels = if !analysis.detection.contended_channels.is_empty() {
            analysis.detection.contended_channels.clone()
        } else if cfg.opportunistic {
            busy_remote_channels(&analysis.profile)
        } else {
            Vec::new()
        };
        let diagnosis = diagnose(&analysis.profile, &channels).into_owned();
        let writes = write_fractions(&analysis.profile);
        drop(analysis); // the owned diagnosis outlives the profile

        let mut lp = Loop {
            cfg,
            tool: self,
            workload,
            rcfg,
            nodes: (0..rcfg.nodes).map(|i| NodeId(i as u8)).collect(),
            baseline: 0.0,
            trace: Vec::new(),
            evaluations: 0,
        };
        lp.baseline = lp.run(None).cycles();

        // Coarse remedy first: interleave every memory-map object. This is
        // the only candidate that reaches *untracked* allocations (static
        // data the profiler cannot attribute to a site, §VIII.F) — when
        // those dominate the CF ranking, no per-object plan can name them.
        if cfg.coarse_interleave && lp.nodes.len() >= 2 {
            let built = workload.build(self.machine(), rcfg);
            let mut labels: Vec<String> = Vec::new();
            for (_, o) in built.mm.objects() {
                if !labels.iter().any(|l| l == &o.label) {
                    labels.push(o.label.clone());
                }
            }
            let mut plan = PlacementPlan::new();
            for label in labels {
                plan.push(label, PlanAction::Interleave(lp.nodes.clone()));
            }
            if !plan.is_empty() {
                let desc = format!("all-objects\u{2192}interleave({} nodes)", lp.nodes.len());
                lp.eval(plan, desc);
            }
        }

        // 2–4. Plan, apply, re-simulate, verify — per ranked object.
        let mut targets: Vec<String> = diagnosis
            .overall
            .iter()
            .filter(|o| o.label != UNTRACKED && o.cf >= cfg.min_cf)
            .take(cfg.max_objects)
            .map(|o| o.label.clone())
            .collect();
        if targets.is_empty() {
            // No tracked object cleared the CF floor — try the top tracked
            // labels anyway; the verify step discards useless plans, and a
            // low-CF read-mostly object can still win big via replicate.
            targets = diagnosis
                .overall
                .iter()
                .filter(|o| o.label != UNTRACKED && o.cf > 0.0)
                .take(cfg.max_objects)
                .map(|o| o.label.clone())
                .collect();
        }
        let mut winners: Vec<(String, PlanAction)> = Vec::new();
        for label in &targets {
            let write_frac = writes.get(label.as_str()).copied().unwrap_or(1.0);
            if let Some((action, cycles)) = lp.tune_object(label, write_frac) {
                if cycles < lp.baseline {
                    winners.push((label.clone(), action));
                }
            }
        }
        // Combined plan: merge each object's best accepted action. Only
        // worth an evaluation when two or more objects improved alone.
        if winners.len() >= 2 {
            let mut plan = PlacementPlan::new();
            for (label, action) in &winners {
                plan.push(label.clone(), action.clone());
            }
            let desc = format!("combined: {}", plan.describe());
            lp.eval(plan, desc);
        }

        // Final verify: keep the best measured candidate only if it clears
        // the acceptance threshold; otherwise fall back to the no-op plan.
        let best = lp.trace.iter().min_by(|a, b| a.cycles.total_cmp(&b.cycles)).cloned();
        let (plan, tuned_cycles) = match best {
            Some(s) if lp.baseline / s.cycles >= cfg.min_speedup => (s.plan, s.cycles),
            _ => (PlacementPlan::new(), lp.baseline),
        };
        TuneReport {
            workload: workload.name().to_string(),
            shape: rcfg.shape_label(),
            detected,
            diagnosis,
            baseline_cycles: lp.baseline,
            plan,
            tuned_cycles,
            trace: lp.trace,
            evaluations: lp.evaluations,
        }
    }
}

/// Loop state: the case under tuning plus the growing convergence trace.
struct Loop<'a> {
    cfg: &'a TuneConfig,
    tool: &'a DrBw,
    workload: &'a dyn Workload,
    rcfg: &'a RunConfig,
    nodes: Vec<NodeId>,
    baseline: f64,
    trace: Vec<TuneStep>,
    evaluations: usize,
}

impl Loop<'_> {
    /// One unprofiled re-simulation, served from the tool's run cache when
    /// one is attached.
    fn run(&mut self, plan: Option<&PlacementPlan>) -> RunOutcome {
        self.evaluations += 1;
        let rcfg = match plan {
            Some(p) => self.rcfg.with_plan(p.clone()),
            None => self.rcfg.clone(),
        };
        match self.tool.run_cache() {
            Some(cache) => runcache::run_memo(cache, self.workload, self.tool.machine(), &rcfg, None),
            None => runner::run(self.workload, self.tool.machine(), &rcfg, None),
        }
    }

    /// Evaluate a candidate plan and record it in the trace.
    fn eval(&mut self, plan: PlacementPlan, description: String) -> (f64, RunOutcome) {
        let out = self.run(Some(&plan));
        let cycles = out.cycles();
        self.trace.push(TuneStep { plan, description, cycles, speedup: self.baseline / cycles });
        (cycles, out)
    }

    /// Evaluate a single-object action.
    fn eval_action(&mut self, label: &str, action: PlanAction) -> (f64, RunOutcome) {
        let description = format!("{label}\u{2192}{}", action.describe());
        self.eval(PlacementPlan::new().with(label, action), description)
    }

    /// Try every configured candidate family on one object; return the
    /// family's best action by measured cycles.
    fn tune_object(&mut self, label: &str, write_frac: f64) -> Option<(PlanAction, f64)> {
        let nodes = self.nodes.clone();
        let mut best: Option<(PlanAction, f64)> = None;
        let note = |best: &mut Option<(PlanAction, f64)>, action: PlanAction, cycles: f64| {
            if best.as_ref().is_none_or(|(_, c)| cycles < *c) {
                *best = Some((action, cycles));
            }
        };
        let mut interleave_seed: Option<(f64, RunOutcome)> = None;
        for kind in self.cfg.candidates.clone() {
            match kind {
                CandidateKind::Colocate => {
                    let action = PlanAction::ColocateEven { nodes: nodes.len() };
                    let (cycles, _) = self.eval_action(label, action.clone());
                    note(&mut best, action, cycles);
                }
                CandidateKind::Interleave => {
                    let action = PlanAction::Interleave(nodes.clone());
                    let (cycles, out) = self.eval_action(label, action.clone());
                    note(&mut best, action, cycles);
                    interleave_seed = Some((cycles, out));
                }
                CandidateKind::Replicate => {
                    if write_frac <= self.cfg.replicate_write_fraction {
                        let action = PlanAction::Replicate;
                        let (cycles, _) = self.eval_action(label, action.clone());
                        note(&mut best, action, cycles);
                    }
                }
                // Needs the uniform-interleave measurement as its seed;
                // handled after the first pass.
                CandidateKind::WeightedInterleave => {}
            }
        }
        if self.cfg.candidates.contains(&CandidateKind::WeightedInterleave) && nodes.len() >= 2 {
            // Seed the weight search from the measured uniform interleave
            // (evaluating it first if the family was not configured).
            let (mut cur_cycles, mut cur_out) = match interleave_seed {
                Some(seed) => seed,
                None => self.eval_action(label, PlanAction::Interleave(nodes.clone())),
            };
            let mut weights = vec![1u32; nodes.len()];
            for _ in 0..self.cfg.max_iterations {
                // Measured per-node pressure of the previous iterate drives
                // the proposal: nodes above the mean shed pages, nodes with
                // residual headroom take them.
                let pressure = node_pressure_on(&cur_out, &nodes);
                let next = propose_weights(&weights, &pressure, self.cfg.weight_grid);
                if next == weights {
                    break; // converged: the measurement asks for no shift
                }
                let action = PlanAction::WeightedInterleave { nodes: nodes.clone(), weights: next.clone() };
                let (cycles, out) = self.eval_action(label, action.clone());
                note(&mut best, action, cycles);
                let improvement = (cur_cycles - cycles) / cur_cycles;
                weights = next;
                (cur_cycles, cur_out) = (cycles, out);
                if improvement < self.cfg.min_improvement {
                    break; // verified gain too small to keep iterating
                }
            }
        }
        best
    }
}

/// Per-label write fraction over the profile's attributed samples, for the
/// replicate-only-read-mostly gate.
fn write_fractions(profile: &Profile) -> HashMap<String, f64> {
    let mut counts: HashMap<&str, (u64, u64)> = HashMap::new();
    for s in &profile.samples {
        let Some(site) = profile.tracker.attribute_site(s.addr) else { continue };
        let entry = counts.entry(profile.tracker.site(site).label.as_str()).or_insert((0, 0));
        entry.1 += 1;
        if s.is_write {
            entry.0 += 1;
        }
    }
    counts.into_iter().map(|(label, (w, t))| (label.to_string(), w as f64 / t.max(1) as f64)).collect()
}

/// The channels that carried remote samples, busiest first (≥ 1% of remote
/// traffic each) — the opportunistic-mode substitute for the detector's
/// contended set.
fn busy_remote_channels(profile: &Profile) -> Vec<ChannelId> {
    let mut counts: HashMap<ChannelId, u64> = HashMap::new();
    for s in &profile.samples {
        let Some(home) = s.home else { continue };
        if home != s.node {
            *counts.entry(ChannelId { src: s.node, dst: home }).or_insert(0) += 1;
        }
    }
    let total: u64 = counts.values().sum();
    let floor = (total / 100).max(1);
    let mut busy: Vec<(ChannelId, u64)> = counts.into_iter().filter(|&(_, c)| c >= floor).collect();
    busy.sort_by(|a, b| b.1.cmp(&a.1).then_with(|| (a.0.src.0, a.0.dst.0).cmp(&(b.0.src.0, b.0.dst.0))));
    busy.into_iter().map(|(ch, _)| ch).collect()
}

/// Measured pressure per run node: fold the dominant measured phase's
/// memory-controller and inbound-channel utilizations down to one
/// saturation figure per node (see `RunStats::node_pressure`).
fn node_pressure_on(outcome: &RunOutcome, nodes: &[NodeId]) -> Vec<f64> {
    let dominant = outcome.phases.iter().filter(|p| !p.warmup).max_by(|a, b| a.stats.cycles.total_cmp(&b.stats.cycles));
    let Some(phase) = dominant else { return vec![1.0; nodes.len()] };
    let pressure = phase.stats.node_pressure();
    nodes.iter().map(|n| pressure.get(n.0 as usize).copied().unwrap_or(0.0)).collect()
}

/// One multiplicative weight update: scale each node's weight by
/// `mean(pressure) / pressure`, clamped to one octave per iteration, then
/// round onto the integer grid (largest weight = `grid`) and divide out
/// the gcd. Equal pressures return the input unchanged — the fixed point.
fn propose_weights(current: &[u32], pressure: &[f64], grid: u32) -> Vec<u32> {
    let n = current.len();
    let mean = pressure.iter().sum::<f64>() / n as f64;
    if mean.is_nan() || mean <= 1e-12 {
        return current.to_vec(); // idle machine: nothing to rebalance
    }
    let mults: Vec<f64> = pressure.iter().map(|&p| (mean / p.max(1e-3 * mean)).clamp(0.5, 2.0)).collect();
    if mults.iter().all(|m| (m - 1.0).abs() < 0.02) {
        return current.to_vec(); // balanced already: exact fixed point
    }
    let scaled: Vec<f64> = current.iter().zip(&mults).map(|(&w, &m)| w as f64 * m).collect();
    let max = scaled.iter().fold(0.0f64, |a, &b| a.max(b));
    if max.is_nan() || max <= 0.0 {
        return current.to_vec();
    }
    let mut next: Vec<u32> = scaled.iter().map(|&f| ((f * grid as f64 / max).round() as u32).clamp(1, grid)).collect();
    let g = next.iter().copied().fold(0, gcd);
    if g > 1 {
        for w in &mut next {
            *w /= g;
        }
    }
    next
}

fn gcd(a: u32, b: u32) -> u32 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn equal_pressure_is_the_fixed_point() {
        let w = propose_weights(&[1, 1, 1, 1], &[0.8, 0.8, 0.8, 0.8], 8);
        assert_eq!(w, vec![1, 1, 1, 1], "balanced pressure proposes no shift");
        let w = propose_weights(&[2, 3], &[0.5, 0.5], 8);
        assert_eq!(w, vec![2, 3], "current ratio kept verbatim under equal pressure");
    }

    #[test]
    fn pressured_node_sheds_pages() {
        // Node 0 saturated, node 1 idle: weight mass moves to node 1.
        let w = propose_weights(&[1, 1], &[1.0, 0.25], 8);
        assert!(w[1] > w[0], "headroom node takes more pages: {w:?}");
        // The shift is clamped to one octave per iteration.
        assert!(w[1] as f64 / w[0] as f64 <= 4.0 + 1e-9, "per-iteration clamp holds: {w:?}");
    }

    #[test]
    fn weights_stay_on_grid_and_coprime() {
        let w = propose_weights(&[1, 1, 1, 1], &[1.0, 1.0, 0.5, 0.5], 8);
        assert_eq!(w.len(), 4);
        assert!(*w.iter().max().unwrap() <= 8);
        assert!(w.iter().all(|&x| x >= 1));
        let g = w.iter().copied().fold(0, gcd);
        assert_eq!(g, 1, "gcd divided out: {w:?}");
    }

    #[test]
    fn idle_measurement_changes_nothing() {
        assert_eq!(propose_weights(&[3, 1], &[0.0, 0.0], 8), vec![3, 1]);
    }
}

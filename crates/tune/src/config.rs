//! Tuning-loop configuration, built in the same builder style as
//! `DrBw::builder()`.

/// A family of candidate placements the tuner may propose for a diagnosed
/// object (§VI.B's guided optimizations, plus BWAP's weighted interleave).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateKind {
    /// Split the object into contiguous per-node segments (the paper's
    /// *co-locate*).
    Colocate,
    /// Uniform page interleave over the run's nodes (the paper's
    /// *interleave*).
    Interleave,
    /// Weighted interleave with measured-headroom weight search (BWAP).
    WeightedInterleave,
    /// Replicate read-mostly data on every node (the paper's *replicate*);
    /// only proposed when the object's observed write fraction is below
    /// [`TuneConfig::replicate_write_fraction`].
    Replicate,
}

impl CandidateKind {
    /// Every family, in proposal order.
    pub const ALL: [CandidateKind; 4] = [
        CandidateKind::Colocate,
        CandidateKind::Interleave,
        CandidateKind::WeightedInterleave,
        CandidateKind::Replicate,
    ];
}

/// Why a [`TuneConfigBuilder`] rejected its inputs.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum TuneConfigError {
    /// No candidate families left to propose.
    NoCandidates,
    /// `max_objects` must be at least 1.
    NoObjects,
    /// The acceptance threshold must be at least 1.0 (a "tuned" plan slower
    /// than the baseline is never acceptable).
    SpeedupBelowOne(f64),
    /// The weight grid must allow at least a 2:1 ratio.
    GridTooCoarse(u32),
}

impl std::fmt::Display for TuneConfigError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TuneConfigError::NoCandidates => write!(f, "empty candidate set"),
            TuneConfigError::NoObjects => write!(f, "max_objects must be at least 1"),
            TuneConfigError::SpeedupBelowOne(s) => write!(f, "min_speedup {s} is below 1.0"),
            TuneConfigError::GridTooCoarse(g) => write!(f, "weight grid {g} cannot express a 2:1 ratio"),
        }
    }
}

impl std::error::Error for TuneConfigError {}

/// Configuration of the guided-optimization loop. Construct with
/// [`TuneConfig::builder`]; [`TuneConfig::default`] is the paper-faithful
/// setup (all four candidate families, top-3 objects, 15% CF floor).
#[derive(Debug, Clone)]
pub struct TuneConfig {
    /// Candidate families to propose, in order.
    pub candidates: Vec<CandidateKind>,
    /// How many top-CF diagnosed objects to consider.
    pub max_objects: usize,
    /// Ignore diagnosed objects below this Contribution Fraction.
    pub min_cf: f64,
    /// Weight-search refinement iterations per object.
    pub max_iterations: usize,
    /// Acceptance threshold: the best plan must beat the baseline by at
    /// least this factor, else the report carries the no-op plan.
    pub min_speedup: f64,
    /// Weight-search convergence: stop refining when an iteration improves
    /// cycles by less than this fraction.
    pub min_improvement: f64,
    /// Weight granularity: proposed ratios are scaled so the largest
    /// weight is this many pages per striping cycle.
    pub weight_grid: u32,
    /// When detection is clean, still diagnose against the channels that
    /// carried remote samples and try interleave-style candidates — the
    /// loop verifies against measured cycles either way, so a clean case
    /// can only gain (the no-op fallback bounds the speedup at ≥ 1).
    pub opportunistic: bool,
    /// Also evaluate the paper's coarse remedy — every memory-map object
    /// interleaved over the run's nodes — as one candidate. This is the
    /// only candidate that can reach *untracked* allocations (static
    /// data the profiler cannot attribute, §VIII.F), which per-object
    /// plans keyed on diagnosed labels never name.
    pub coarse_interleave: bool,
    /// Propose [`CandidateKind::Replicate`] only for objects whose sampled
    /// write fraction is at most this.
    pub replicate_write_fraction: f64,
}

impl Default for TuneConfig {
    fn default() -> Self {
        Self {
            candidates: CandidateKind::ALL.to_vec(),
            max_objects: 3,
            min_cf: 0.15,
            max_iterations: 4,
            min_speedup: 1.01,
            min_improvement: 0.01,
            weight_grid: 8,
            opportunistic: true,
            coarse_interleave: true,
            replicate_write_fraction: 0.05,
        }
    }
}

impl TuneConfig {
    /// Start configuring a tuning loop.
    pub fn builder() -> TuneConfigBuilder {
        TuneConfigBuilder::default()
    }
}

/// Configures and validates a [`TuneConfig`], mirroring the
/// `DrBw::builder()` idiom.
///
/// ```
/// use drbw_tune::{CandidateKind, TuneConfig};
///
/// let cfg = TuneConfig::builder()
///     .candidates([CandidateKind::Interleave, CandidateKind::WeightedInterleave])
///     .max_iterations(6)
///     .min_speedup(1.05)
///     .build()
///     .expect("valid tuning configuration");
/// assert_eq!(cfg.candidates.len(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct TuneConfigBuilder {
    cfg: TuneConfig,
}

impl TuneConfigBuilder {
    /// Candidate families to propose (default: all four).
    pub fn candidates(mut self, kinds: impl IntoIterator<Item = CandidateKind>) -> Self {
        self.cfg.candidates = kinds.into_iter().collect();
        self
    }

    /// How many top-CF diagnosed objects to consider (default 3).
    pub fn max_objects(mut self, n: usize) -> Self {
        self.cfg.max_objects = n;
        self
    }

    /// CF floor below which diagnosed objects are ignored (default 0.15).
    pub fn min_cf(mut self, cf: f64) -> Self {
        self.cfg.min_cf = cf;
        self
    }

    /// Weight-search refinement iterations per object (default 4; 0
    /// disables refinement, keeping only the headroom-seeded proposal).
    pub fn max_iterations(mut self, n: usize) -> Self {
        self.cfg.max_iterations = n;
        self
    }

    /// Acceptance threshold on measured speedup (default 1.01).
    pub fn min_speedup(mut self, s: f64) -> Self {
        self.cfg.min_speedup = s;
        self
    }

    /// Weight-search convergence threshold (default 0.01 = 1% of cycles).
    pub fn min_improvement(mut self, frac: f64) -> Self {
        self.cfg.min_improvement = frac;
        self
    }

    /// Weight granularity of the search grid (default 8).
    pub fn weight_grid(mut self, g: u32) -> Self {
        self.cfg.weight_grid = g;
        self
    }

    /// Whether to tune clean-detected cases against their busiest remote
    /// channels anyway (default true; the measured-speedup verify step
    /// keeps this safe).
    pub fn opportunistic(mut self, on: bool) -> Self {
        self.cfg.opportunistic = on;
        self
    }

    /// Whether to also evaluate the coarse everything-interleaved remedy,
    /// the only candidate reaching untracked static data (default true).
    pub fn coarse_interleave(mut self, on: bool) -> Self {
        self.cfg.coarse_interleave = on;
        self
    }

    /// Maximum sampled write fraction for replicate candidates
    /// (default 0.05).
    pub fn replicate_write_fraction(mut self, frac: f64) -> Self {
        self.cfg.replicate_write_fraction = frac;
        self
    }

    /// Validate and produce the configuration.
    ///
    /// # Errors
    /// A [`TuneConfigError`] naming the first invalid knob.
    pub fn build(self) -> Result<TuneConfig, TuneConfigError> {
        let c = self.cfg;
        if c.candidates.is_empty() {
            return Err(TuneConfigError::NoCandidates);
        }
        if c.max_objects == 0 {
            return Err(TuneConfigError::NoObjects);
        }
        if c.min_speedup < 1.0 {
            return Err(TuneConfigError::SpeedupBelowOne(c.min_speedup));
        }
        if c.weight_grid < 2 {
            return Err(TuneConfigError::GridTooCoarse(c.weight_grid));
        }
        Ok(c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_valid() {
        let cfg = TuneConfig::builder().build().expect("default must build");
        assert_eq!(cfg.candidates, CandidateKind::ALL.to_vec());
        assert_eq!(cfg.max_objects, 3);
        assert!(cfg.opportunistic);
    }

    #[test]
    fn builder_rejects_degenerate_knobs() {
        assert_eq!(TuneConfig::builder().candidates([]).build().unwrap_err(), TuneConfigError::NoCandidates);
        assert_eq!(TuneConfig::builder().max_objects(0).build().unwrap_err(), TuneConfigError::NoObjects);
        assert_eq!(TuneConfig::builder().min_speedup(0.9).build().unwrap_err(), TuneConfigError::SpeedupBelowOne(0.9));
        assert_eq!(TuneConfig::builder().weight_grid(1).build().unwrap_err(), TuneConfigError::GridTooCoarse(1));
    }

    #[test]
    fn builder_chains() {
        let cfg = TuneConfig::builder()
            .candidates([CandidateKind::Replicate])
            .max_objects(1)
            .min_cf(0.4)
            .max_iterations(0)
            .min_speedup(1.5)
            .min_improvement(0.05)
            .weight_grid(4)
            .opportunistic(false)
            .coarse_interleave(false)
            .replicate_write_fraction(0.0)
            .build()
            .unwrap();
        assert!(!cfg.coarse_interleave);
        assert_eq!(cfg.candidates, vec![CandidateKind::Replicate]);
        assert_eq!(cfg.max_objects, 1);
        assert!(!cfg.opportunistic);
        assert_eq!(cfg.weight_grid, 4);
    }
}

//! Property: weighted interleave with *equal* weights is bit-identical to
//! uniform interleave — same node for every page, for any weight value,
//! any node subset, and any object size. This is the invariant that makes
//! the weight search's `1:1:…:1` starting point exactly the uniform
//! interleave candidate it was seeded from.

use numasim::config::MachineConfig;
use numasim::memmap::{MemoryMap, PlacementPolicy};
use numasim::topology::NodeId;
use proptest::prelude::*;
use workloads::plan::{PlacementPlan, PlanAction};

const PAGE: u64 = 4096;

proptest! {
    /// For any node subset, any common weight, and any page count, the
    /// weighted policy assigns every page to the same node as the uniform
    /// one.
    #[test]
    fn equal_weights_assign_pages_like_uniform_interleave(
        node_count in 2usize..5,
        weight in 1u32..17,
        pages in 1u64..513,
    ) {
        let nodes: Vec<NodeId> = (0..node_count).map(|i| NodeId(i as u8)).collect();
        let mut m = MemoryMap::new(&MachineConfig::scaled());
        let size = pages * PAGE;
        let uni = m.alloc("uni", size, PlacementPolicy::Interleave(nodes.clone()));
        let wil = m.alloc(
            "wil",
            size,
            PlacementPolicy::weighted(nodes.clone(), vec![weight; node_count]).expect("equal weights are valid"),
        );
        for p in 0..pages {
            prop_assert_eq!(
                m.query_node(uni.at(p * PAGE)),
                m.query_node(wil.at(p * PAGE)),
                "page {} of {} over {} nodes at weight {}", p, pages, node_count, weight
            );
        }
    }

    /// The same equivalence holds end-to-end through the plan layer: a
    /// `WeightedInterleave` plan entry with equal weights rewrites an
    /// object onto exactly the pages a plain `Interleave` entry chooses.
    #[test]
    fn equal_weight_plans_apply_like_uniform_plans(
        node_count in 2usize..5,
        weight in 1u32..17,
        pages in 1u64..513,
    ) {
        let nodes: Vec<NodeId> = (0..node_count).map(|i| NodeId(i as u8)).collect();
        let mcfg = MachineConfig::scaled();
        let size = pages * PAGE;

        let mut uni = MemoryMap::new(&mcfg);
        let a = uni.alloc("a", size, PlacementPolicy::Bind(NodeId(0)));
        let touched = PlacementPlan::new()
            .with("a", PlanAction::Interleave(nodes.clone()))
            .apply(&mut uni)
            .expect("interleave always resolves");
        prop_assert_eq!(touched, 1);

        let mut wil = MemoryMap::new(&mcfg);
        let b = wil.alloc("a", size, PlacementPolicy::Bind(NodeId(0)));
        let touched = PlacementPlan::new()
            .with("a", PlanAction::WeightedInterleave { nodes: nodes.clone(), weights: vec![weight; node_count] })
            .apply(&mut wil)
            .expect("equal weights always resolve");
        prop_assert_eq!(touched, 1);

        for p in 0..pages {
            prop_assert_eq!(
                uni.query_node(a.at(p * PAGE)),
                wil.query_node(b.at(p * PAGE)),
                "page {} of {} over {} nodes at weight {}", p, pages, node_count, weight
            );
        }
    }
}

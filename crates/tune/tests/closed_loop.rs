//! End-to-end tests of the closed tuning loop: diagnose → plan → apply →
//! re-simulate → verify on real simulated workloads.

use drbw_core::classifier::ContentionClassifier;
use drbw_core::{training, DrBw, TrainingSet};
use drbw_tune::{Tune, TuneConfig};
use mldt::tree::TrainConfig;
use numasim::config::MachineConfig;
use numasim::memmap::PlacementPolicy;
use numasim::topology::NodeId;
use workloads::config::{Input, RunConfig};
use workloads::plan::PlanAction;
use workloads::spec::{BuiltWorkload, Suite, Workload};
use workloads::suite::common::{partitioned_scan, Builder, ScanParams};

/// The contended micro of `engine.rs::contention_and_interleave_relief`:
/// a 32 MiB array master-allocated on node 0, scanned partitioned by the
/// run's threads — the canonical case interleaving relieves by > 1.5×.
struct ContendedMicro;

impl Workload for ContendedMicro {
    fn name(&self) -> &'static str {
        "ContendedMicro"
    }
    fn suite(&self) -> Suite {
        Suite::Micro
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Native]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let a = b.alloc("a", 7, 32 << 20, PlacementPolicy::Bind(NodeId(0)));
        let threads = partitioned_scan(&b, &[a], ScanParams::read(4, 1, 0.5));
        b.phase("scan", threads);
        b.finish()
    }
}

/// The same scan with the array already split evenly across the nodes —
/// nothing for the tuner to fix.
struct BalancedMicro;

impl Workload for BalancedMicro {
    fn name(&self) -> &'static str {
        "BalancedMicro"
    }
    fn suite(&self) -> Suite {
        Suite::Micro
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Native]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = 32u64 << 20;
        let policy = b.colocate_policy(size);
        let a = b.alloc("a", 7, size, policy);
        let threads = partitioned_scan(&b, &[a], ScanParams::read(4, 1, 0.5));
        b.phase("scan", threads);
        b.finish()
    }
}

fn tool() -> DrBw {
    let mcfg = MachineConfig::scaled();
    let data = training::quick_training_set(&mcfg);
    DrBw::new(ContentionClassifier::train(&data, TrainConfig::default()))
}

#[test]
fn closed_loop_recovers_interleave_relief() {
    let tool = tool();
    let rcfg = RunConfig::new(32, 4, Input::Native);
    let report = tool.tune(&ContendedMicro, &rcfg, &TuneConfig::default());
    assert!(report.improved(), "the loop must fix the contended micro:\n{}", report.render());
    assert!(
        report.speedup() > 1.5,
        "interleave relief must be recovered, got x{:.3}\n{}",
        report.speedup(),
        report.render()
    );
    assert!(
        report.plan.entries().iter().any(|e| e.label == "a"),
        "the plan re-places the diagnosed array, got: {}",
        report.plan.describe()
    );
    assert_eq!(report.diagnosis.top_object().unwrap().label, "a", "CF ranking names the root cause");
    // Bookkeeping: one baseline + one evaluation per trace entry.
    assert_eq!(report.evaluations, report.trace.len() + 1);
    assert!(report.trace.iter().all(|s| s.cycles > 0.0 && s.speedup > 0.0));
}

#[test]
fn no_op_fallback_never_reports_a_slowdown() {
    let tool = tool();
    let rcfg = RunConfig::new(32, 4, Input::Native);
    let report = tool.tune(&BalancedMicro, &rcfg, &TuneConfig::default());
    assert!(report.speedup() >= 1.0, "the fallback bounds speedup at 1, got x{:.3}", report.speedup());
    assert!(report.tuned_cycles <= report.baseline_cycles);
    if !report.improved() {
        assert_eq!(report.tuned_cycles, report.baseline_cycles, "no-op verdict keeps the baseline cycles");
        assert!(report.plan.is_empty());
    }
}

#[test]
fn weighted_interleave_wins_on_an_asymmetric_machine() {
    // Channels *into node 3* run at 40% bandwidth (Lepers-style asymmetry):
    // dense index s*(n-1) + (d>s ? d-1 : d) for d=3 gives 2, 5, 8.
    let mut mcfg = MachineConfig::scaled();
    let weak = 0.4 * mcfg.interconnect.channel_bandwidth;
    mcfg.interconnect.overrides = vec![(2, weak), (5, weak), (8, weak)];
    let tool = DrBw::builder()
        .machine(mcfg)
        .training_set(TrainingSet::Quick)
        .build()
        .expect("train on the asymmetric machine");
    let rcfg = RunConfig::new(32, 4, Input::Native);
    let report = tool.tune(&ContendedMicro, &rcfg, &TuneConfig::default());
    assert!(report.improved(), "asymmetric contention must still be fixed:\n{}", report.render());

    // The weight search must have explored non-uniform ratios that shed
    // pages from the weak node...
    let weighted: Vec<_> = report
        .trace
        .iter()
        .filter_map(|s| {
            s.plan.entries().iter().find_map(|e| match &e.action {
                PlanAction::WeightedInterleave { nodes, weights } => Some((nodes.clone(), weights.clone())),
                _ => None,
            })
        })
        .collect();
    assert!(!weighted.is_empty(), "weight search ran:\n{}", report.render());
    let shed = weighted.iter().any(|(nodes, weights)| {
        let max = *weights.iter().max().unwrap();
        nodes.iter().zip(weights).any(|(n, &w)| n.0 == 3 && w < max)
    });
    assert!(shed, "some proposal under-weights the weak node: {weighted:?}\n{}", report.render());

    // ...and the best weighted candidate must beat uniform interleave.
    let best_weighted = report
        .trace
        .iter()
        .filter(|s| s.description.contains("weighted-interleave"))
        .map(|s| s.cycles)
        .fold(f64::INFINITY, f64::min);
    let uniform = report
        .trace
        .iter()
        .filter(|s| s.description.contains("\u{2192}interleave("))
        .map(|s| s.cycles)
        .fold(f64::INFINITY, f64::min);
    assert!(
        best_weighted < uniform,
        "weighted ({best_weighted:.0}) must beat uniform ({uniform:.0}) on the asymmetric machine:\n{}",
        report.render()
    );
}

#[test]
fn run_cache_serves_repeat_tunes() {
    let dir = std::env::temp_dir().join(format!("drbw-tune-cache-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let mut tool = tool();
    tool.attach_run_cache(std::sync::Arc::new(runcache::RunCache::open(&dir).expect("open cache")));
    let rcfg = RunConfig::new(32, 4, Input::Native);
    let cold = tool.tune(&ContendedMicro, &rcfg, &TuneConfig::default());
    let stored = tool.run_cache().unwrap().metrics().stores;
    assert!(stored > 0, "cold loop populates the cache");
    let warm = tool.tune(&ContendedMicro, &rcfg, &TuneConfig::default());
    let m = tool.run_cache().unwrap().metrics();
    assert!(m.hits >= cold.evaluations as u64, "warm loop replays from disk: {m:?}");
    assert_eq!(warm.plan, cold.plan, "cached replay chooses the identical plan");
    assert_eq!(warm.tuned_cycles, cold.tuned_cycles, "cached cycles are bit-identical");
    assert_eq!(warm.baseline_cycles, cold.baseline_cycles);
    let _ = std::fs::remove_dir_all(&dir);
}

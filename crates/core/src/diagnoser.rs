//! The root-cause diagnoser (§VI): Contribution Fractions over data
//! objects.
//!
//! For a contended channel `c`, every sample that traversed it is
//! attributed (via the allocation intercept table) to the data object it
//! touched; the Contribution Fraction of object `A` is
//! `CF_c(A) = Samples(c, A) / Samples(c, ALL)`. Across channels, only
//! contended channels are counted:
//! `CF(A) = Σ_c Samples(c, A) / Σ_c Samples(c, ALL)`. The CFs over all
//! objects (including the *untracked* remainder — static or stack data the
//! profiler does not trace, §VIII.D/F) sum to 1 per channel and overall.
//!
//! Objects are aggregated by **allocation site**, so the forty LULESH
//! arrays allocated at lines 2158–2238 fold into site-level entries, as in
//! Figure 4(c).

use crate::profiler::Profile;
use numasim::topology::ChannelId;
use pebs::alloc::{AllocationTracker, SiteId};
use std::collections::HashMap;

/// Label used for samples that hit no tracked allocation (static/stack
/// data, which DR-BW does not trace).
pub const UNTRACKED: &str = "(untracked)";

/// One object's (or site's) contribution to contention. Borrows its
/// label from the profile's allocation tracker (or [`UNTRACKED`]) — CF
/// ranking allocates no strings.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ObjectCf<'a> {
    /// Object label (allocation-site label, or [`UNTRACKED`]).
    pub label: &'a str,
    /// Source line of the allocation site (0 for untracked).
    pub line: u32,
    /// Samples attributed on the channel(s) considered.
    pub samples: u64,
    /// Contribution Fraction in `[0, 1]`.
    pub cf: f64,
}

/// CF ranking for one contended channel.
#[derive(Debug, Clone)]
pub struct ChannelDiagnosis<'a> {
    /// The channel.
    pub channel: ChannelId,
    /// Objects ranked by CF, descending.
    pub objects: Vec<ObjectCf<'a>>,
}

/// Full diagnosis of a case, borrowing object labels from the profile it
/// was computed over.
#[derive(Debug, Clone, Default)]
pub struct Diagnosis<'a> {
    /// Per contended channel, ranked objects.
    pub per_channel: Vec<ChannelDiagnosis<'a>>,
    /// Cross-channel CF ranking (§VI.A-b), descending.
    pub overall: Vec<ObjectCf<'a>>,
}

impl<'a> Diagnosis<'a> {
    /// The top root cause, if any samples were attributed.
    pub fn top_object(&self) -> Option<&ObjectCf<'a>> {
        self.overall.first()
    }

    /// The overall CF of a labelled object (0 if absent).
    pub fn cf_of(&self, label: &str) -> f64 {
        self.overall.iter().find(|o| o.label == label).map_or(0.0, |o| o.cf)
    }

    /// Detach from the profile: clone every ranked label into an
    /// [`OwnedDiagnosis`]. The guided-optimization loop needs this — a
    /// placement plan built from the verdict outlives the profile it was
    /// diagnosed from (strings are cloned once per ranked site here, never
    /// per sample).
    pub fn into_owned(self) -> OwnedDiagnosis {
        let own = |objects: Vec<ObjectCf<'a>>| -> Vec<OwnedObjectCf> {
            objects
                .into_iter()
                .map(|o| OwnedObjectCf { label: o.label.to_string(), line: o.line, samples: o.samples, cf: o.cf })
                .collect()
        };
        OwnedDiagnosis {
            per_channel: self
                .per_channel
                .into_iter()
                .map(|c| OwnedChannelDiagnosis { channel: c.channel, objects: own(c.objects) })
                .collect(),
            overall: own(self.overall),
        }
    }
}

/// [`ObjectCf`] with an owned label: one ranked root-cause object,
/// detached from the profile's lifetime.
#[derive(Debug, Clone, PartialEq)]
pub struct OwnedObjectCf {
    /// Object label (allocation-site label, or [`UNTRACKED`]).
    pub label: String,
    /// Source line of the allocation site (0 for untracked).
    pub line: u32,
    /// Samples attributed on the channel(s) considered.
    pub samples: u64,
    /// Contribution Fraction in `[0, 1]`.
    pub cf: f64,
}

/// [`ChannelDiagnosis`] with owned labels.
#[derive(Debug, Clone)]
pub struct OwnedChannelDiagnosis {
    /// The channel.
    pub channel: ChannelId,
    /// Objects ranked by CF, descending.
    pub objects: Vec<OwnedObjectCf>,
}

/// A [`Diagnosis`] detached from its profile via
/// [`Diagnosis::into_owned`]: what the tuning loop carries across
/// re-simulations.
#[derive(Debug, Clone, Default)]
pub struct OwnedDiagnosis {
    /// Per contended channel, ranked objects.
    pub per_channel: Vec<OwnedChannelDiagnosis>,
    /// Cross-channel CF ranking, descending.
    pub overall: Vec<OwnedObjectCf>,
}

impl OwnedDiagnosis {
    /// The top root cause, if any samples were attributed.
    pub fn top_object(&self) -> Option<&OwnedObjectCf> {
        self.overall.first()
    }

    /// The overall CF of a labelled object (0 if absent).
    pub fn cf_of(&self, label: &str) -> f64 {
        self.overall.iter().find(|o| o.label == label).map_or(0.0, |o| o.cf)
    }
}

/// Turn site-keyed counts into a ranked CF list. Labels are resolved here,
/// once per distinct site, rather than cloned per attributed sample.
fn rank(counts: HashMap<Option<SiteId>, u64>, tracker: &AllocationTracker) -> Vec<ObjectCf<'_>> {
    let total: u64 = counts.values().sum();
    let mut out: Vec<ObjectCf> = counts
        .into_iter()
        .map(|(site, samples)| {
            let (label, line) = match site {
                Some(s) => {
                    let info = tracker.site(s);
                    (info.label.as_str(), info.line)
                }
                None => (UNTRACKED, 0),
            };
            ObjectCf { label, line, samples, cf: if total == 0 { 0.0 } else { samples as f64 / total as f64 } }
        })
        .collect();
    // Descending CF; deterministic tie-break by label.
    out.sort_by(|a, b| b.samples.cmp(&a.samples).then_with(|| a.label.cmp(b.label)));
    out
}

/// Diagnose the root causes of contention on the given channels.
///
/// Only samples that actually traversed a contended channel are counted
/// ("for channels that do not have any contention issue, we do not further
/// analyze their samples"). Returns an empty diagnosis when no channel is
/// contended.
///
/// A single pass over the samples does all the attribution: each remote
/// sample is routed to the contended channel it traversed (duplicate
/// entries in `contended` each count it) and tallied under its
/// [`SiteId`]; labels are materialised only for the handful of ranked
/// sites, not per sample.
pub fn diagnose<'a>(profile: &'a Profile, contended: &[ChannelId]) -> Diagnosis<'a> {
    if contended.is_empty() {
        return Diagnosis::default();
    }
    // Where each contended channel sits in the output; duplicates keep
    // every position so their tallies stay per-occurrence.
    let mut positions: HashMap<ChannelId, Vec<usize>> = HashMap::new();
    for (i, &ch) in contended.iter().enumerate() {
        positions.entry(ch).or_default().push(i);
    }
    let mut per: Vec<HashMap<Option<SiteId>, u64>> = vec![HashMap::new(); contended.len()];
    let mut overall: HashMap<Option<SiteId>, u64> = HashMap::new();
    for s in &profile.samples {
        let Some(h) = s.home else { continue };
        if h == s.node {
            continue;
        }
        let Some(slots) = positions.get(&ChannelId { src: s.node, dst: h }) else { continue };
        let site = profile.tracker.attribute_site(s.addr);
        for &i in slots {
            *per[i].entry(site).or_insert(0) += 1;
            *overall.entry(site).or_insert(0) += 1;
        }
    }
    let per_channel = contended
        .iter()
        .zip(per)
        .map(|(&channel, counts)| ChannelDiagnosis { channel, objects: rank(counts, &profile.tracker) })
        .collect();
    Diagnosis { per_channel, overall: rank(overall, &profile.tracker) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numasim::hierarchy::DataSource;
    use numasim::topology::{CoreId, NodeId, ThreadId};
    use pebs::alloc::AllocationTracker;
    use pebs::sample::MemSample;

    fn sample(node: u8, home: u8, addr: u64) -> MemSample {
        MemSample {
            time: 0.0,
            addr,
            cpu: CoreId(node as u32 * 8),
            thread: ThreadId(0),
            node: NodeId(node),
            source: DataSource::RemoteDram,
            home: Some(NodeId(home)),
            latency: 900.0,
            is_write: false,
        }
    }

    fn ch(src: u8, dst: u8) -> ChannelId {
        ChannelId { src: NodeId(src), dst: NodeId(dst) }
    }

    fn make_profile(samples: Vec<MemSample>, tracker: AllocationTracker) -> Profile {
        Profile { samples, tracker, phases: vec![], observed_accesses: 0, wall: std::time::Duration::ZERO }
    }

    fn tracker_with(objs: &[(&str, u32, u64, u64)]) -> AllocationTracker {
        let mut t = AllocationTracker::new();
        for &(label, line, base, size) in objs {
            let s = t.intern_site(label, line);
            t.record_alloc(s, base, size);
        }
        t
    }

    #[test]
    fn cf_sums_to_one_and_ranks() {
        let tracker = tracker_with(&[("hot", 10, 0x1000, 0x1000), ("cold", 20, 0x3000, 0x1000)]);
        let mut samples = Vec::new();
        for _ in 0..9 {
            samples.push(sample(1, 0, 0x1500));
        }
        samples.push(sample(1, 0, 0x3500));
        let p = make_profile(samples, tracker);
        let d = diagnose(&p, &[ch(1, 0)]);
        assert_eq!(d.overall.len(), 2);
        assert_eq!(d.top_object().unwrap().label, "hot");
        assert!((d.cf_of("hot") - 0.9).abs() < 1e-12);
        assert!((d.cf_of("cold") - 0.1).abs() < 1e-12);
        let total: f64 = d.overall.iter().map(|o| o.cf).sum();
        assert!((total - 1.0).abs() < 1e-12, "CFs sum to 1");
    }

    #[test]
    fn untracked_samples_get_their_own_bucket() {
        let tracker = tracker_with(&[("heap", 1, 0x1000, 0x1000)]);
        let samples = vec![sample(1, 0, 0x1500), sample(1, 0, 0x9000), sample(1, 0, 0x9040)];
        let p = make_profile(samples, tracker);
        let d = diagnose(&p, &[ch(1, 0)]);
        assert!((d.cf_of(UNTRACKED) - 2.0 / 3.0).abs() < 1e-12, "static data shows as untracked");
        assert!((d.cf_of("heap") - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn only_contended_channels_counted() {
        let tracker = tracker_with(&[("a", 1, 0x1000, 0x1000), ("b", 2, 0x3000, 0x1000)]);
        // Channel 1->0 touches object a; channel 2->0 touches object b.
        let samples = vec![sample(1, 0, 0x1500), sample(2, 0, 0x3500)];
        let p = make_profile(samples, tracker);
        let d = diagnose(&p, &[ch(1, 0)]);
        assert_eq!(d.cf_of("a"), 1.0);
        assert_eq!(d.cf_of("b"), 0.0, "uncontended channel's samples ignored");
        assert_eq!(d.per_channel.len(), 1);
    }

    #[test]
    fn cross_channel_accumulates() {
        let tracker = tracker_with(&[("a", 1, 0x1000, 0x1000)]);
        let samples = vec![sample(1, 0, 0x1500), sample(2, 0, 0x1600), sample(3, 0, 0x1700)];
        let p = make_profile(samples, tracker);
        let d = diagnose(&p, &[ch(1, 0), ch(2, 0), ch(3, 0)]);
        assert_eq!(d.cf_of("a"), 1.0);
        assert_eq!(d.overall[0].samples, 3);
        assert_eq!(d.per_channel.len(), 3);
        for pc in &d.per_channel {
            assert_eq!(pc.objects[0].samples, 1);
        }
    }

    #[test]
    fn sites_aggregate_multiple_allocations() {
        // Two arrays from the same site (label + line) merge into one CF
        // entry — the LULESH pattern.
        let tracker = tracker_with(&[("domain", 2158, 0x1000, 0x1000), ("domain", 2158, 0x3000, 0x1000)]);
        let samples = vec![sample(1, 0, 0x1100), sample(1, 0, 0x3100)];
        let p = make_profile(samples, tracker);
        let d = diagnose(&p, &[ch(1, 0)]);
        assert_eq!(d.overall.len(), 1);
        assert_eq!(d.overall[0].samples, 2);
        assert_eq!(d.overall[0].line, 2158);
    }

    #[test]
    fn into_owned_preserves_ranking_beyond_the_profile() {
        let tracker = tracker_with(&[("hot", 10, 0x1000, 0x1000), ("cold", 20, 0x3000, 0x1000)]);
        let mut samples = Vec::new();
        for _ in 0..3 {
            samples.push(sample(1, 0, 0x1500));
        }
        samples.push(sample(1, 0, 0x3500));
        let p = make_profile(samples, tracker);
        let owned = diagnose(&p, &[ch(1, 0)]).into_owned();
        drop(p); // the whole point: the verdict outlives the profile
        assert_eq!(owned.top_object().unwrap().label, "hot");
        assert!((owned.cf_of("hot") - 0.75).abs() < 1e-12);
        assert_eq!(owned.per_channel.len(), 1);
        assert_eq!(owned.per_channel[0].objects[0].samples, 3);
    }

    #[test]
    fn empty_when_no_contention() {
        let p = make_profile(vec![sample(1, 0, 0x1000)], AllocationTracker::new());
        let d = diagnose(&p, &[]);
        assert!(d.per_channel.is_empty());
        assert!(d.overall.is_empty());
        assert!(d.top_object().is_none());
    }
}

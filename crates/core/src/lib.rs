//! # drbw-core — the DR-BW profiler, classifier, and diagnoser
//!
//! This crate is the paper's contribution: a lightweight profiler that
//! **identifies remote-memory bandwidth contention in NUMA architectures
//! with supervised learning** and pinpoints the data objects responsible.
//!
//! The pipeline mirrors Figure 2 of the paper:
//!
//! 1. **Profiler** ([`profiler`]) — runs a program under PEBS-style address
//!    sampling, collecting memory samples and the allocation intercept
//!    table.
//! 2. **Channel association** ([`channels`]) — each sample is associated
//!    with the directed interconnect channel from its *accessing node*
//!    (the CPU's node) to its *locating node* (the sampled address's home,
//!    via the libnuma facade). Detection is per channel, not per program.
//! 3. **Feature extraction** ([`features`]) — per-channel sample batches
//!    are reduced to the statistics of Table I (latency-ratio features,
//!    remote/local DRAM sample rates and latencies, line-fill-buffer
//!    statistics).
//! 4. **Classifier** ([`classifier`], [`training`]) — a CART decision tree
//!    trained on the §V.A mini-programs (sumv/dotv/countv in good and
//!    contended modes, plus the bandit) labels each channel `good` or
//!    `rmc`; a case is `rmc` if any channel is (§VII.A rule 1), a program
//!    if any case is (rule 2).
//! 5. **Diagnoser** ([`diagnoser`]) — for contended channels, samples are
//!    attributed to heap data objects and ranked by Contribution Fraction
//!    `CF_c(A) = Samples(c, A) / Samples(c, ALL)` (§VI); the top objects
//!    are the root causes, and co-locating/interleaving/replicating them
//!    is the optimization guidance.
//!
//! [`heuristics`] implements the single-heuristic baselines DR-BW is
//! compared against in §II (latency thresholds, remote-access counts,
//! all-sockets-touch, bandit interference probing) for the ablation
//! experiments, and [`report`] renders human-readable analyses.
//!
//! The top-level [`DrBw`] type wires the whole pipeline together.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache_contention;
pub mod channels;
pub mod classifier;
pub mod diagnoser;
pub mod features;
pub mod heuristics;
pub mod profiler;
pub mod report;
pub mod training;

pub use classifier::{CaseResult, ContentionClassifier, Mode};
pub use diagnoser::{diagnose, Diagnosis};
pub use profiler::{profile, Profile};

use mldt::tree::TrainConfig;
use numasim::config::MachineConfig;
use workloads::config::RunConfig;
use workloads::spec::Workload;

/// The assembled DR-BW tool: a trained classifier plus the
/// profile → detect → diagnose pipeline.
pub struct DrBw {
    classifier: ContentionClassifier,
}

/// Result of analysing one case end to end.
pub struct Analysis {
    /// The raw profile (samples, attribution, timing).
    pub profile: Profile,
    /// Per-channel detection and the case verdict.
    pub detection: CaseResult,
    /// Root-cause diagnosis (empty if no channel is contended).
    pub diagnosis: Diagnosis,
}

impl DrBw {
    /// Wrap an already-trained classifier.
    pub fn new(classifier: ContentionClassifier) -> Self {
        Self { classifier }
    }

    /// Train DR-BW on the full §V mini-program training set (192 runs —
    /// takes a while; see [`training::quick_training_set`] for tests).
    pub fn train(mcfg: &MachineConfig) -> Self {
        let data = training::full_training_set(mcfg);
        Self::new(ContentionClassifier::train(&data, TrainConfig::default()))
    }

    /// The trained classifier.
    pub fn classifier(&self) -> &ContentionClassifier {
        &self.classifier
    }

    /// Profile one case and run detection + diagnosis on it.
    pub fn analyze(&self, workload: &dyn Workload, mcfg: &MachineConfig, rcfg: &RunConfig) -> Analysis {
        let profile = profile(workload, mcfg, rcfg);
        let detection = self.classifier.classify_case(&profile, mcfg.topology.num_nodes());
        let diagnosis = diagnose(&profile, &detection.contended_channels);
        Analysis { profile, detection, diagnosis }
    }
}

//! # drbw-core — the DR-BW profiler, classifier, and diagnoser
//!
//! This crate is the paper's contribution: a lightweight profiler that
//! **identifies remote-memory bandwidth contention in NUMA architectures
//! with supervised learning** and pinpoints the data objects responsible.
//!
//! The pipeline mirrors Figure 2 of the paper:
//!
//! 1. **Profiler** ([`profiler`]) — runs a program under PEBS-style address
//!    sampling, collecting memory samples and the allocation intercept
//!    table.
//! 2. **Channel association** ([`channels`]) — each sample is associated
//!    with the directed interconnect channel from its *accessing node*
//!    (the CPU's node) to its *locating node* (the sampled address's home,
//!    via the libnuma facade). Detection is per channel, not per program.
//! 3. **Feature extraction** ([`features`]) — per-channel sample batches
//!    are reduced to the statistics of Table I (latency-ratio features,
//!    remote/local DRAM sample rates and latencies, line-fill-buffer
//!    statistics).
//! 4. **Classifier** ([`classifier`], [`training`]) — a CART decision tree
//!    trained on the §V.A mini-programs (sumv/dotv/countv in good and
//!    contended modes, plus the bandit) labels each channel `good` or
//!    `rmc`; a case is `rmc` if any channel is (§VII.A rule 1), a program
//!    if any case is (rule 2).
//! 5. **Diagnoser** ([`diagnoser`]) — for contended channels, samples are
//!    attributed to heap data objects and ranked by Contribution Fraction
//!    `CF_c(A) = Samples(c, A) / Samples(c, ALL)` (§VI); the top objects
//!    are the root causes, and co-locating/interleaving/replicating them
//!    is the optimization guidance.
//!
//! [`heuristics`] implements the single-heuristic baselines DR-BW is
//! compared against in §II (latency thresholds, remote-access counts,
//! all-sockets-touch, bandit interference probing) for the ablation
//! experiments, and [`report`] renders human-readable analyses.
//!
//! The top-level [`DrBw`] type wires the whole pipeline together.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod cache_contention;
pub mod channels;
pub mod classifier;
pub mod diagnoser;
pub mod error;
pub mod features;
pub mod heuristics;
pub mod profiler;
pub mod registry;
pub mod report;
pub mod training;

pub use classifier::{CaseResult, ContentionClassifier, Mode};
pub use diagnoser::{diagnose, Diagnosis, OwnedDiagnosis};
pub use error::DrbwError;
pub use profiler::{profile, profile_memo, profile_with, Profile};
pub use registry::{ModelHandle, ModelReader, ModelRegistry};

use mldt::tree::TrainConfig;
use numasim::config::MachineConfig;
use pebs::sampler::SamplerConfig;
use rayon::prelude::*;
use std::path::Path;
use training::TrainingSpec;
use workloads::config::RunConfig;
use workloads::spec::Workload;

/// The assembled DR-BW tool: a trained classifier plus the machine and
/// sampler configuration under which the profile → detect → diagnose
/// pipeline runs. Construct one with [`DrBw::builder`] (or [`DrBw::new`] /
/// [`DrBw::load`] when a classifier already exists).
pub struct DrBw {
    classifier: ContentionClassifier,
    machine: MachineConfig,
    sampler: SamplerConfig,
    pool: Option<rayon::ThreadPool>,
    run_cache: Option<std::sync::Arc<runcache::RunCache>>,
}

/// Result of analysing one case end to end.
pub struct Analysis {
    /// The raw profile (samples, attribution, timing).
    pub profile: Profile,
    /// Per-channel detection and the case verdict.
    pub detection: CaseResult,
}

impl Analysis {
    /// Root-cause diagnosis for the contended channels (empty when none
    /// is). Computed on demand — batch sweeps that only read detections
    /// never pay for the ranking — and the result borrows object labels
    /// from this profile's allocation tracker instead of cloning them.
    pub fn diagnosis(&self) -> Diagnosis<'_> {
        diagnose(&self.profile, &self.detection.contended_channels)
    }
}

/// One unit of batch work: a workload plus the run shape to profile it
/// under (see [`DrBw::analyze_batch`]).
#[derive(Clone, Copy)]
pub struct Case<'a> {
    /// The program to profile.
    pub workload: &'a dyn Workload,
    /// Thread/node/input shape (and seed) of the run.
    pub rcfg: &'a RunConfig,
}

impl<'a> Case<'a> {
    /// Bundle a workload with a run configuration.
    pub fn new(workload: &'a dyn Workload, rcfg: &'a RunConfig) -> Self {
        Self { workload, rcfg }
    }
}

/// Which training grid [`DrBwBuilder::build`] runs when it has to train.
#[derive(Debug, Clone)]
pub enum TrainingSet {
    /// The full §V Table II grid: 192 simulations (see
    /// [`training::training_specs`]).
    Full,
    /// The stride-8 subset (24 simulations) — fast, for tests and smoke
    /// runs (see [`training::quick_training_specs`]).
    Quick,
    /// Caller-provided specs.
    Custom(Vec<TrainingSpec>),
}

impl TrainingSet {
    fn specs(&self) -> Vec<TrainingSpec> {
        match self {
            TrainingSet::Full => training::training_specs(),
            TrainingSet::Quick => training::quick_training_specs(),
            TrainingSet::Custom(specs) => specs.clone(),
        }
    }
}

/// Configures and constructs a [`DrBw`] instance.
///
/// ```no_run
/// use drbw_core::{DrBw, TrainingSet};
///
/// let tool = DrBw::builder()
///     .training_set(TrainingSet::Full)
///     .threads(8)
///     .model_cache("results/drbw.model")
///     .build()
///     .expect("train or load DR-BW");
/// ```
#[derive(Debug, Clone)]
pub struct DrBwBuilder {
    machine: MachineConfig,
    training_set: TrainingSet,
    train_cfg: TrainConfig,
    sampler: SamplerConfig,
    threads: Option<usize>,
    model_cache: Option<std::path::PathBuf>,
    run_cache: Option<std::path::PathBuf>,
}

impl Default for DrBwBuilder {
    fn default() -> Self {
        Self {
            machine: MachineConfig::scaled(),
            training_set: TrainingSet::Full,
            train_cfg: TrainConfig::default(),
            sampler: SamplerConfig::default(),
            threads: None,
            model_cache: None,
            run_cache: None,
        }
    }
}

impl DrBwBuilder {
    /// The simulated machine to train on and analyze under (default:
    /// [`MachineConfig::scaled`], the paper's 4-socket box).
    pub fn machine(mut self, mcfg: MachineConfig) -> Self {
        self.machine = mcfg;
        self
    }

    /// Which training grid to run when no cached model is available
    /// (default: [`TrainingSet::Full`]).
    pub fn training_set(mut self, set: TrainingSet) -> Self {
        self.training_set = set;
        self
    }

    /// Decision-tree training hyperparameters (default:
    /// [`TrainConfig::default`]).
    pub fn train_config(mut self, cfg: TrainConfig) -> Self {
        self.train_cfg = cfg;
        self
    }

    /// Full sampler configuration for every profiled run (default: the
    /// paper's 1-in-2000 PEBS setup).
    pub fn sampler(mut self, scfg: SamplerConfig) -> Self {
        self.sampler = scfg;
        self
    }

    /// Sampling period only — one address sample per `period` accesses per
    /// thread. Convenience over [`DrBwBuilder::sampler`] for the common
    /// overhead-versus-precision knob (§VIII.D ablation).
    pub fn sampling_period(mut self, period: u64) -> Self {
        self.sampler.period = period;
        self
    }

    /// Cap the worker threads used for training-set generation and
    /// [`DrBw::analyze_batch`]. Defaults to rayon's global choice
    /// (`RAYON_NUM_THREADS` or all cores). The dataset and analyses do not
    /// depend on this — see the determinism note on
    /// [`training::collect_training_set`].
    pub fn threads(mut self, n: usize) -> Self {
        self.threads = Some(n);
        self
    }

    /// Load the model from this path if present; otherwise train and save
    /// the result there (creating parent directories).
    pub fn model_cache(mut self, path: impl Into<std::path::PathBuf>) -> Self {
        self.model_cache = Some(path.into());
        self
    }

    /// Memoize simulated runs in a content-addressed on-disk cache rooted
    /// at `dir` (created if needed). Training-grid runs and every
    /// [`DrBw::analyze`] / [`DrBw::analyze_batch`] profile are then served
    /// from disk when a verified entry exists — bit-identical to
    /// re-simulating (see [`runcache`]) — and stored when not. Off by
    /// default so timing experiments measure real simulation.
    pub fn run_cache(mut self, dir: impl Into<std::path::PathBuf>) -> Self {
        self.run_cache = Some(dir.into());
        self
    }

    /// Produce the configured tool: load the cached model when one exists,
    /// else run the training grid (in parallel) and cache the result.
    ///
    /// # Errors
    /// [`DrbwError::Model`] / [`DrbwError::ModelFormat`] /
    /// [`DrbwError::FeatureArity`] when a cached model exists but is
    /// malformed (delete the file to retrain), [`DrbwError::Io`] when the
    /// trained model cannot be written back, and
    /// [`DrbwError::EmptyTrainingSet`] when a custom spec list covers only
    /// one class.
    pub fn build(self) -> Result<DrBw, DrbwError> {
        let pool = match self.threads {
            Some(n) => Some(
                rayon::ThreadPoolBuilder::new()
                    .num_threads(n)
                    .build()
                    .map_err(|e| DrbwError::Io(std::io::Error::other(format!("cannot build thread pool: {e}"))))?,
            ),
            None => None,
        };
        let run_cache = match &self.run_cache {
            Some(dir) => Some(std::sync::Arc::new(runcache::RunCache::open(dir)?)),
            None => None,
        };
        if let Some(path) = &self.model_cache {
            if path.exists() {
                let text = std::fs::read_to_string(path)?;
                let classifier = ContentionClassifier::from_model_string(&text)?;
                return Ok(DrBw { classifier, machine: self.machine, sampler: self.sampler, pool, run_cache });
            }
        }
        let specs = self.training_set.specs();
        let collect = || training::collect_training_set_cached(&self.machine, &specs, run_cache.as_deref());
        let data = match &pool {
            Some(p) => p.install(collect),
            None => collect(),
        };
        let classifier = ContentionClassifier::try_train(&data, self.train_cfg)?;
        let tool = DrBw { classifier, machine: self.machine, sampler: self.sampler, pool, run_cache };
        if let Some(path) = &self.model_cache {
            tool.save(path)?;
        }
        Ok(tool)
    }
}

impl DrBw {
    /// Start configuring a DR-BW instance.
    pub fn builder() -> DrBwBuilder {
        DrBwBuilder::default()
    }

    /// Wrap an already-trained classifier, with the default machine and
    /// sampler configuration.
    pub fn new(classifier: ContentionClassifier) -> Self {
        Self {
            classifier,
            machine: MachineConfig::scaled(),
            sampler: SamplerConfig::default(),
            pool: None,
            run_cache: None,
        }
    }

    /// Train DR-BW on the full §V mini-program training set (192 runs,
    /// simulated in parallel). Shorthand for
    /// `DrBw::builder().machine(mcfg.clone()).build()`.
    ///
    /// # Panics
    /// Panics when training produces a degenerate dataset; use
    /// [`DrBw::builder`] for a fallible construction.
    pub fn train(mcfg: &MachineConfig) -> Self {
        Self::builder().machine(mcfg.clone()).build().expect("the full Table II grid always trains")
    }

    /// Load a tool whose classifier was saved with [`DrBw::save`] (the
    /// portable `drbw-classifier v1` text format). Machine and sampler
    /// configuration take their defaults; use
    /// `DrBw::builder().model_cache(path)` to combine loading with other
    /// knobs.
    ///
    /// # Errors
    /// [`DrbwError::Io`] when the file cannot be read, or a model-format
    /// error when its contents are not a valid classifier.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, DrbwError> {
        let text = std::fs::read_to_string(path)?;
        Ok(Self::new(ContentionClassifier::from_model_string(&text)?))
    }

    /// Save the trained classifier to `path` in the portable text model
    /// format, creating parent directories as needed.
    ///
    /// # Errors
    /// [`DrbwError::Io`] when the directories or file cannot be written.
    pub fn save(&self, path: impl AsRef<Path>) -> Result<(), DrbwError> {
        let path = path.as_ref();
        if let Some(dir) = path.parent() {
            if !dir.as_os_str().is_empty() {
                std::fs::create_dir_all(dir)?;
            }
        }
        std::fs::write(path, self.classifier.to_model_string())?;
        Ok(())
    }

    /// The trained classifier.
    pub fn classifier(&self) -> &ContentionClassifier {
        &self.classifier
    }

    /// The machine configuration analyses run under.
    pub fn machine(&self) -> &MachineConfig {
        &self.machine
    }

    /// The sampler configuration analyses run under.
    pub fn sampler(&self) -> &SamplerConfig {
        &self.sampler
    }

    /// The content-addressed run cache, when one was configured with
    /// [`DrBwBuilder::run_cache`] or [`DrBw::attach_run_cache`].
    pub fn run_cache(&self) -> Option<&std::sync::Arc<runcache::RunCache>> {
        self.run_cache.as_ref()
    }

    /// Attach (or share) a run cache after construction. Useful to give
    /// several tools — or a tool plus direct [`runcache::run_memo`]
    /// callers — one cache with combined hit/miss accounting.
    pub fn attach_run_cache(&mut self, cache: std::sync::Arc<runcache::RunCache>) {
        self.run_cache = Some(cache);
    }

    /// Profile one case and run detection on it, under this tool's machine
    /// and sampler configuration (diagnosis is computed lazily by
    /// [`Analysis::diagnosis`]).
    pub fn analyze(&self, workload: &dyn Workload, rcfg: &RunConfig) -> Analysis {
        let profile = profiler::profile_memo(workload, &self.machine, rcfg, self.sampler, self.run_cache.as_deref());
        let detection = self.classifier.classify_case(&profile, self.machine.topology.num_nodes());
        Analysis { profile, detection }
    }

    /// Analyze a batch of cases in parallel, respecting the builder's
    /// thread cap. Results come back in input order, and each equals what
    /// [`DrBw::analyze`] returns for the same case (runs are seeded by
    /// their `RunConfig`, so scheduling cannot perturb them).
    pub fn analyze_batch(&self, cases: &[Case<'_>]) -> Vec<Analysis> {
        let run = || cases.par_iter().map(|c| self.analyze(c.workload, c.rcfg)).collect();
        match &self.pool {
            Some(p) => p.install(run),
            None => run(),
        }
    }
}

//! Training-set generation (§V.A–C, Table II).
//!
//! The classifier is trained on the four mini-programs, each run under many
//! configurations whose contention mode is known **by construction**:
//!
//! * `sumv`, `dotv`, `countv` — 24 *good* runs (small/medium vectors, which
//!   cache well or demand little bandwidth) and 24 *rmc* runs (large/native
//!   vectors streamed by many threads across nodes into the master node's
//!   memory) each;
//! * `bandit` — 48 runs, all *good*: one or two instances chasing remote
//!   memory never saturate a channel, but they produce **many
//!   remote-DRAM samples at uncontended latency**. This is what forces the
//!   tree to learn that a high remote-access count alone is not contention
//!   — it must also consult the remote latency, exactly the two-feature
//!   structure of the paper's Figure 3.
//!
//! One training instance = the Table I features of the run's *hottest*
//! channel (the one with the most remote samples), labelled with the run's
//! mode. Totals match Table II: 120 good + 72 rmc = 192 instances.

use crate::classifier::{empty_feature_dataset, Mode};
use crate::features::{selected_features, FeatureCtx, NUM_SELECTED};
use crate::profiler::{profile, Profile};
use mldt::dataset::Dataset;
use numasim::config::MachineConfig;
use workloads::config::{Input, RunConfig};
use workloads::micro::{Bandit, Countv, Dotv, Sumv};
use workloads::spec::Workload;

/// Which mini-program a training run uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MicroProgram {
    /// Vector summation.
    Sumv,
    /// Vector dot product.
    Dotv,
    /// Vector value count.
    Countv,
    /// The bandwidth-bandit probe.
    Bandit,
}

static SUMV: Sumv = Sumv;
static DOTV: Dotv = Dotv;
static COUNTV: Countv = Countv;
static BANDIT: Bandit = Bandit;

impl MicroProgram {
    /// The workload implementation.
    pub fn workload(&self) -> &'static dyn Workload {
        match self {
            MicroProgram::Sumv => &SUMV,
            MicroProgram::Dotv => &DOTV,
            MicroProgram::Countv => &COUNTV,
            MicroProgram::Bandit => &BANDIT,
        }
    }

    /// Program name.
    pub fn name(&self) -> &'static str {
        self.workload().name()
    }

    /// The three vector kernels.
    pub const KERNELS: [MicroProgram; 3] = [MicroProgram::Sumv, MicroProgram::Dotv, MicroProgram::Countv];
}

/// One training run: program, configuration, and its mode by construction.
#[derive(Debug, Clone)]
pub struct TrainingSpec {
    /// Which mini-program.
    pub program: MicroProgram,
    /// Run configuration.
    pub rcfg: RunConfig,
    /// Ground-truth label.
    pub label: Mode,
}

/// `Tt-Nn` shapes whose runs stay bandwidth-friendly at small/medium
/// inputs (which cache): anything up to full machine width.
fn good_shapes_cached() -> [(usize, usize); 6] {
    [(2, 2), (4, 2), (8, 2), (16, 2), (8, 4), (16, 4)]
}

/// Shapes that stream large inputs from DRAM **without** contention: one
/// node, or very few threads per node. These teach the classifier that
/// heavy DRAM streaming (high LFB and DRAM sample rates) is not by itself
/// contention — only inflated remote latency under load is.
fn good_shapes_streaming() -> [(usize, usize); 6] {
    [(1, 1), (2, 1), (4, 1), (8, 1), (2, 2), (4, 2)]
}

/// Shapes that drive enough remote traffic into the master node to contend
/// at large/native inputs (≥ 6 threads per node with multiple nodes).
fn rmc_shapes() -> [(usize, usize); 12] {
    // (16,4) and (20,4) contend only mildly (4–5 threads per node share
    // one victim controller): they teach the tree the low end of the
    // contended latency range.
    [(16, 4), (20, 4), (16, 2), (24, 2), (32, 2), (24, 3), (48, 3), (32, 4), (40, 4), (48, 4), (56, 4), (64, 4)]
}

/// The full Table II grid: 48 runs per vector kernel (24 good + 24 rmc)
/// plus 48 good bandit runs — 192 training instances.
pub fn training_specs() -> Vec<TrainingSpec> {
    let mut specs = Vec::with_capacity(192);
    for program in MicroProgram::KERNELS {
        for input in [Input::Small, Input::Medium] {
            for (t, n) in good_shapes_cached() {
                specs.push(TrainingSpec { program, rcfg: RunConfig::new(t, n, input), label: Mode::Good });
            }
        }
        for input in [Input::Large, Input::Native] {
            for (t, n) in good_shapes_streaming() {
                specs.push(TrainingSpec { program, rcfg: RunConfig::new(t, n, input), label: Mode::Good });
            }
        }
        for input in [Input::Large, Input::Native] {
            for (t, n) in rmc_shapes() {
                specs.push(TrainingSpec { program, rcfg: RunConfig::new(t, n, input), label: Mode::Rmc });
            }
        }
    }
    // Bandit: 1–2 co-running instances, all stream counts, six seeds each —
    // 48 good runs.
    for instances in [1usize, 2] {
        for input in Input::ALL {
            for seed in 0..6u64 {
                let rcfg = RunConfig::new(instances, 2, input).with_seed(0xBA2D17 + seed);
                specs.push(TrainingSpec { program: MicroProgram::Bandit, rcfg, label: Mode::Good });
            }
        }
    }
    specs
}

/// A small subset (stride 8 over the full grid, 24 instances) for tests.
pub fn quick_training_specs() -> Vec<TrainingSpec> {
    training_specs().into_iter().step_by(8).collect()
}

/// Features of a profiled run's hottest channel (most remote samples).
pub fn case_features(profile: &Profile, nodes: usize) -> [f64; NUM_SELECTED] {
    let batches = crate::channels::ChannelBatches::split(&profile.samples, nodes);
    let ctx = FeatureCtx { duration_cycles: profile.duration_cycles() };
    let hottest =
        batches.iter().max_by_key(|(ch, _)| batches.remote_samples(*ch).count()).map(|(_, b)| b).unwrap_or(&[]);
    selected_features(hottest, &ctx)
}

/// Run a list of specs and assemble the labelled dataset, simulating the
/// runs in parallel.
///
/// # Determinism
/// The parallel dataset is **bit-identical** to the serial one
/// ([`collect_training_set_serial`]): every simulation's randomness derives
/// only from its own `RunConfig::seed` (no shared RNG, no global state),
/// and the parallel map preserves input order, so instance `i` of the
/// result is always the features of `specs[i]` regardless of thread count
/// or scheduling.
pub fn collect_training_set(mcfg: &MachineConfig, specs: &[TrainingSpec]) -> Dataset {
    collect_training_set_cached(mcfg, specs, None)
}

/// [`collect_training_set`] through an optional content-addressed run
/// cache: repeated training-set generation (model retrains, ablations,
/// cross-validation over the same grid) then re-reads the simulations
/// instead of re-running them. Features are recomputed from the cached
/// sample logs, which are bit-identical to fresh ones, so the dataset is
/// too.
pub fn collect_training_set_cached(
    mcfg: &MachineConfig,
    specs: &[TrainingSpec],
    cache: Option<&runcache::RunCache>,
) -> Dataset {
    use rayon::prelude::*;
    let nodes = mcfg.topology.num_nodes();
    let scfg = pebs::sampler::SamplerConfig::default();
    let rows: Vec<(Vec<f64>, usize)> = specs
        .par_iter()
        .map(|spec| {
            let p = crate::profiler::profile_memo(spec.program.workload(), mcfg, &spec.rcfg, scfg, cache);
            (case_features(&p, nodes).to_vec(), spec.label.class_index())
        })
        .collect();
    let mut data = empty_feature_dataset();
    for (features, label) in rows {
        data.push(features, label);
    }
    data
}

/// Single-threaded reference implementation of [`collect_training_set`];
/// the determinism test compares the two instance for instance.
pub fn collect_training_set_serial(mcfg: &MachineConfig, specs: &[TrainingSpec]) -> Dataset {
    let nodes = mcfg.topology.num_nodes();
    let mut data = empty_feature_dataset();
    for spec in specs {
        let p = profile(spec.program.workload(), mcfg, &spec.rcfg);
        data.push(case_features(&p, nodes).to_vec(), spec.label.class_index());
    }
    data
}

/// The full 192-instance training set (Table II). Runs 192 simulations.
pub fn full_training_set(mcfg: &MachineConfig) -> Dataset {
    collect_training_set(mcfg, &training_specs())
}

/// The reduced training set for tests.
pub fn quick_training_set(mcfg: &MachineConfig) -> Dataset {
    collect_training_set(mcfg, &quick_training_specs())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grid_matches_table_ii() {
        let specs = training_specs();
        assert_eq!(specs.len(), 192, "Table II total");
        let count = |p: MicroProgram, m: Mode| specs.iter().filter(|s| s.program == p && s.label == m).count();
        for k in MicroProgram::KERNELS {
            assert_eq!(count(k, Mode::Good), 24, "{}", k.name());
            assert_eq!(count(k, Mode::Rmc), 24, "{}", k.name());
        }
        assert_eq!(count(MicroProgram::Bandit, Mode::Good), 48);
        assert_eq!(count(MicroProgram::Bandit, Mode::Rmc), 0);
        let good: usize = specs.iter().filter(|s| s.label == Mode::Good).count();
        assert_eq!(good, 120);
    }

    #[test]
    fn shapes_are_valid_bindings() {
        // Every shape must be realisable on the 4x8x2 machine.
        let mcfg = MachineConfig::scaled();
        for (t, n) in good_shapes_cached().iter().chain(good_shapes_streaming().iter()).chain(rmc_shapes().iter()) {
            let binding = mcfg.topology.bind_threads(*t, *n);
            assert_eq!(binding.len(), *t);
        }
    }

    #[test]
    fn features_separate_good_from_rmc() {
        // One representative run per mode: the rmc run must show a clearly
        // higher remote latency on its hottest channel.
        use crate::features::{REMOTE_COUNT, REMOTE_LATENCY};
        let mcfg = MachineConfig::scaled();
        let good_p = profile(&Sumv, &mcfg, &RunConfig::new(16, 4, Input::Small));
        let rmc_p = profile(&Sumv, &mcfg, &RunConfig::new(48, 4, Input::Large));
        let g = case_features(&good_p, 4);
        let r = case_features(&rmc_p, 4);
        assert!(
            r[REMOTE_COUNT] > g[REMOTE_COUNT] * 2.0,
            "remote rate: rmc {} vs good {}",
            r[REMOTE_COUNT],
            g[REMOTE_COUNT]
        );
        assert!(
            r[REMOTE_LATENCY] > g[REMOTE_LATENCY] + 100.0,
            "remote latency: rmc {} vs good {}",
            r[REMOTE_LATENCY],
            g[REMOTE_LATENCY]
        );
    }

    #[test]
    fn bandit_runs_have_high_remote_rate_but_low_latency() {
        use crate::features::{REMOTE_COUNT, REMOTE_LATENCY};
        let mcfg = MachineConfig::scaled();
        let p = profile(&Bandit, &mcfg, &RunConfig::new(2, 2, Input::Native));
        let f = case_features(&p, 4);
        assert!(f[REMOTE_COUNT] > 5.0, "bandit hammers remote memory: {}", f[REMOTE_COUNT]);
        assert!(f[REMOTE_LATENCY] < 500.0, "but stays uncontended: {}", f[REMOTE_LATENCY]);
    }

    #[test]
    fn quick_set_trains_a_sane_classifier() {
        use crate::classifier::ContentionClassifier;
        use mldt::tree::TrainConfig;
        let mcfg = MachineConfig::scaled();
        let data = quick_training_set(&mcfg);
        assert_eq!(data.len(), quick_training_specs().len());
        assert!(data.class_counts().iter().all(|&c| c > 0), "both classes present");
        let c = ContentionClassifier::train(&data, TrainConfig::default());
        // Resubstitution accuracy should be high on this easy subset.
        let mut correct = 0;
        for i in 0..data.len() {
            if c.tree().predict(data.row(i)) == data.label(i) {
                correct += 1;
            }
        }
        assert!(correct as f64 / data.len() as f64 > 0.85, "{correct}/{}", data.len());
    }
}

//! The profiler front end: run a workload under sampling and package what
//! the rest of the pipeline needs.

use numasim::config::MachineConfig;
use pebs::alloc::AllocationTracker;
use pebs::sample::MemSample;
use pebs::sampler::SamplerConfig;
use workloads::config::RunConfig;
use workloads::runner::{self, PhaseOutcome};
use workloads::spec::Workload;

/// A profiled execution: samples, the allocation intercept table, and
/// timing.
#[derive(Debug)]
pub struct Profile {
    /// Memory samples, in collection order.
    pub samples: Vec<MemSample>,
    /// The malloc-interception record (for attribution).
    pub tracker: AllocationTracker,
    /// Per-phase engine statistics.
    pub phases: Vec<PhaseOutcome>,
    /// Total simulated access events.
    pub observed_accesses: u64,
    /// Host wall-clock time of the profiled run.
    pub wall: std::time::Duration,
}

impl Profile {
    /// Total simulated cycles over all measured (non-warmup) phases.
    pub fn duration_cycles(&self) -> f64 {
        self.phases.iter().filter(|p| !p.warmup).map(|p| p.stats.cycles).sum()
    }

    /// Achieved sampling rate (samples per observed access).
    pub fn sampling_rate(&self) -> f64 {
        if self.observed_accesses == 0 {
            0.0
        } else {
            self.samples.len() as f64 / self.observed_accesses as f64
        }
    }
}

/// Profile a workload with the paper's default sampling (1 in 2000 per
/// thread, latency threshold 3).
pub fn profile(workload: &dyn Workload, mcfg: &MachineConfig, rcfg: &RunConfig) -> Profile {
    profile_with(workload, mcfg, rcfg, SamplerConfig::default())
}

/// Profile with an explicit sampler configuration (the sampling-period
/// ablation uses this).
pub fn profile_with(workload: &dyn Workload, mcfg: &MachineConfig, rcfg: &RunConfig, scfg: SamplerConfig) -> Profile {
    profile_memo(workload, mcfg, rcfg, scfg, None)
}

/// [`profile_with`] through an optional content-addressed run cache: with
/// `Some(cache)` a previously simulated run is served from disk
/// (bit-identical to re-simulating — see [`runcache::run_memo`]); with
/// `None` this is plain [`profile_with`].
pub fn profile_memo(
    workload: &dyn Workload,
    mcfg: &MachineConfig,
    rcfg: &RunConfig,
    scfg: SamplerConfig,
    cache: Option<&runcache::RunCache>,
) -> Profile {
    let out = match cache {
        Some(cache) => runcache::run_memo(cache, workload, mcfg, rcfg, Some(scfg)),
        None => runner::run(workload, mcfg, rcfg, Some(scfg)),
    };
    Profile {
        samples: out.samples,
        tracker: out.tracker,
        phases: out.phases,
        observed_accesses: out.observed_accesses,
        wall: out.wall,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use workloads::config::Input;
    use workloads::micro::Sumv;

    #[test]
    fn profile_collects_everything() {
        let mcfg = MachineConfig::scaled();
        let p = profile(&Sumv, &mcfg, &RunConfig::new(16, 4, Input::Medium));
        assert!(!p.samples.is_empty());
        assert!(p.duration_cycles() > 0.0);
        assert!(p.observed_accesses > 0);
        // 1-in-2000 sampling with a small latency threshold.
        let rate = p.sampling_rate();
        assert!(rate > 1.0 / 4000.0 && rate < 1.0 / 1000.0, "rate {rate}");
        assert_eq!(p.tracker.sites().count(), 1, "sumv allocates one vector");
    }

    #[test]
    fn custom_period_changes_sample_count() {
        let mcfg = MachineConfig::scaled();
        let rcfg = RunConfig::new(16, 4, Input::Medium);
        let coarse = profile_with(
            &Sumv,
            &mcfg,
            &rcfg,
            SamplerConfig { period: 8000, latency_threshold: 0.0, latency_jitter: 0.0, per_sample_cost: 0.0 },
        );
        let fine = profile_with(
            &Sumv,
            &mcfg,
            &rcfg,
            SamplerConfig { period: 500, latency_threshold: 0.0, latency_jitter: 0.0, per_sample_cost: 0.0 },
        );
        assert!(fine.samples.len() > coarse.samples.len() * 8);
    }
}

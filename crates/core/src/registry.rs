//! Read-mostly model registry with atomic hot-swap.
//!
//! A long-running analysis service classifies on many threads at once
//! while an operator occasionally retrains and publishes a new model. The
//! registry separates those rates: publishing is rare and takes a lock;
//! the classify path is hot and takes none. Each published model gets a
//! monotonically increasing **version** (plus a content-derived tree
//! fingerprint), and the current version is mirrored into an atomic
//! **epoch** word. A [`ModelReader`] caches the last [`ModelHandle`] it
//! fetched and revalidates with a single atomic load per check — the
//! epoch-pointer discipline of `ArcSwap`, built from safe primitives: the
//! slot mutex is touched only on the (rare) epoch transition, never on
//! the steady-state classify path.
//!
//! Versioned handles are what make hot-swap *observable*: a consumer pins
//! the handle it started a window with, classifies the whole window on it,
//! and stamps the verdict with the handle's version, so "every window was
//! classified by exactly one model" is checkable after the fact.

use crate::classifier::ContentionClassifier;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// A versioned, cheaply clonable reference to one published classifier.
#[derive(Debug, Clone)]
pub struct ModelHandle {
    version: u64,
    fingerprint: u64,
    model: Arc<ContentionClassifier>,
}

impl ModelHandle {
    /// Registry-assigned publication version (1 for the registry's initial
    /// model, increasing by one per publish).
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Structural fingerprint of the underlying decision tree (see
    /// [`mldt::tree::DecisionTree::fingerprint`]): two handles with equal
    /// fingerprints classify identically even across save/load.
    pub fn fingerprint(&self) -> u64 {
        self.fingerprint
    }

    /// The classifier itself.
    pub fn model(&self) -> &Arc<ContentionClassifier> {
        &self.model
    }
}

/// The shared registry: one current model, atomically hot-swappable.
#[derive(Debug)]
pub struct ModelRegistry {
    /// Version of the currently published model; readers revalidate
    /// against this word without locking.
    epoch: AtomicU64,
    /// The current handle. Locked only by [`ModelRegistry::publish`] and
    /// by readers refreshing after an epoch change.
    slot: Mutex<ModelHandle>,
}

impl ModelRegistry {
    /// A registry whose initial model is `classifier`, published as
    /// version 1.
    pub fn new(classifier: ContentionClassifier) -> Self {
        let handle =
            ModelHandle { version: 1, fingerprint: classifier.tree().fingerprint(), model: Arc::new(classifier) };
        Self { epoch: AtomicU64::new(1), slot: Mutex::new(handle) }
    }

    /// The current publication version. One atomic load — this is the
    /// only registry operation on the classify path.
    pub fn epoch(&self) -> u64 {
        self.epoch.load(Ordering::Acquire)
    }

    /// Models published after the initial one.
    pub fn swaps(&self) -> u64 {
        self.epoch() - 1
    }

    /// A clone of the current handle (locks the slot; use a
    /// [`ModelReader`] on hot paths).
    pub fn current(&self) -> ModelHandle {
        self.slot.lock().expect("model slot poisoned").clone()
    }

    /// Atomically publish `classifier` as the new current model and
    /// return its handle. In-flight readers holding the previous handle
    /// keep classifying on it (the `Arc` keeps it alive); they observe
    /// the swap at their next epoch check.
    pub fn publish(&self, classifier: ContentionClassifier) -> ModelHandle {
        let mut slot = self.slot.lock().expect("model slot poisoned");
        let handle = ModelHandle {
            version: slot.version + 1,
            fingerprint: classifier.tree().fingerprint(),
            model: Arc::new(classifier),
        };
        *slot = handle.clone();
        // The new handle must be visible before the epoch that announces
        // it; readers load the epoch with Acquire.
        self.epoch.store(handle.version, Ordering::Release);
        handle
    }
}

/// A per-consumer cache over a shared [`ModelRegistry`].
///
/// `handle()` costs one atomic load while the epoch is unchanged; only an
/// actual swap pays the slot lock, once, to refetch.
#[derive(Debug, Clone)]
pub struct ModelReader {
    registry: Arc<ModelRegistry>,
    cached: ModelHandle,
}

impl ModelReader {
    /// A reader over `registry`, pre-warmed with the current model.
    pub fn new(registry: Arc<ModelRegistry>) -> Self {
        let cached = registry.current();
        Self { registry, cached }
    }

    /// The current handle, revalidated against the registry epoch.
    pub fn handle(&mut self) -> &ModelHandle {
        if self.registry.epoch() != self.cached.version {
            self.cached = self.registry.current();
        }
        &self.cached
    }

    /// The last handle fetched, without revalidating.
    pub fn cached(&self) -> &ModelHandle {
        &self.cached
    }

    /// The registry this reader watches.
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.registry
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::empty_feature_dataset;
    use crate::features::{NUM_SELECTED, REMOTE_COUNT, REMOTE_LATENCY};
    use mldt::tree::TrainConfig;

    fn classifier(split: f64) -> ContentionClassifier {
        let mut d = empty_feature_dataset();
        for i in 0..20 {
            let mut good = [0.0; NUM_SELECTED];
            good[REMOTE_COUNT] = split - 10.0 - (i % 5) as f64;
            good[REMOTE_LATENCY] = 280.0;
            d.push(good.to_vec(), 0);
            let mut rmc = [0.0; NUM_SELECTED];
            rmc[REMOTE_COUNT] = split + 10.0 + i as f64;
            rmc[REMOTE_LATENCY] = 950.0;
            d.push(rmc.to_vec(), 1);
        }
        ContentionClassifier::train(&d, TrainConfig::default())
    }

    #[test]
    fn publish_bumps_epoch_and_versions_monotonically() {
        let reg = ModelRegistry::new(classifier(100.0));
        assert_eq!(reg.epoch(), 1);
        assert_eq!(reg.current().version(), 1);
        let v2 = reg.publish(classifier(200.0));
        assert_eq!((v2.version(), reg.epoch(), reg.swaps()), (2, 2, 1));
        let v3 = reg.publish(classifier(300.0));
        assert_eq!((v3.version(), reg.epoch()), (3, 3));
        assert_ne!(v2.fingerprint(), v3.fingerprint());
    }

    #[test]
    fn reader_sees_swaps_only_at_revalidation() {
        let reg = Arc::new(ModelRegistry::new(classifier(100.0)));
        let mut reader = ModelReader::new(Arc::clone(&reg));
        assert_eq!(reader.handle().version(), 1);
        let pinned = reader.cached().clone();
        reg.publish(classifier(200.0));
        // The pinned handle still classifies on the old model.
        let mut probe = [0.0; NUM_SELECTED];
        probe[REMOTE_COUNT] = 150.0;
        probe[REMOTE_LATENCY] = 950.0;
        assert_eq!(pinned.model().predict(&probe), crate::Mode::Rmc, "old split at 100 says rmc");
        assert_eq!(reader.cached().version(), 1, "no revalidation yet");
        assert_eq!(reader.handle().version(), 2, "revalidation observes the swap");
        assert_eq!(reader.handle().model().predict(&probe), crate::Mode::Good, "new split at 200 says good");
    }

    #[test]
    fn concurrent_readers_never_observe_a_torn_handle() {
        let reg = Arc::new(ModelRegistry::new(classifier(100.0)));
        let stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
        let readers: Vec<_> = (0..4)
            .map(|_| {
                let reg = Arc::clone(&reg);
                let stop = Arc::clone(&stop);
                std::thread::spawn(move || {
                    let mut reader = ModelReader::new(reg);
                    let mut last = 0;
                    while !stop.load(Ordering::Relaxed) {
                        let h = reader.handle();
                        assert!(h.version() >= last, "versions must be monotone per reader");
                        assert_eq!(
                            h.fingerprint(),
                            h.model().tree().fingerprint(),
                            "handle fields must belong to one publication"
                        );
                        last = h.version();
                    }
                    last
                })
            })
            .collect();
        for split in [200.0, 300.0, 400.0, 500.0] {
            reg.publish(classifier(split));
            std::thread::yield_now();
        }
        stop.store(true, Ordering::Relaxed);
        for r in readers {
            r.join().expect("reader thread panicked");
        }
        assert_eq!(reg.epoch(), 5);
    }
}

//! The workspace error type.
//!
//! Every fallible operation reachable from the public `drbw::prelude`
//! surface reports a [`DrbwError`]: malformed model files, class-index and
//! feature-arity mismatches, and I/O around model caching. Lower layers
//! keep their own typed errors ([`mldt::MldtError`], [`std::io::Error`])
//! and convert with `From`, so `?` composes across the stack.

use mldt::MldtError;

/// Errors produced by the DR-BW pipeline.
#[derive(Debug)]
pub enum DrbwError {
    /// A class index that is neither `good` (0) nor `rmc` (1).
    InvalidClassIndex(usize),
    /// A model file's DR-BW header or feature list is malformed.
    ModelFormat(String),
    /// A model does not carry the expected number of Table I features.
    FeatureArity {
        /// Features the pipeline expects ([`crate::features::NUM_SELECTED`]).
        expected: usize,
        /// Features the model carries.
        got: usize,
    },
    /// The embedded decision tree failed to parse or validate.
    Model(MldtError),
    /// Reading or writing a model cache failed.
    Io(std::io::Error),
    /// A training set was empty or single-class, so no classifier can be
    /// trained from it.
    EmptyTrainingSet,
}

impl std::fmt::Display for DrbwError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DrbwError::InvalidClassIndex(i) => write!(f, "unknown class index {i} (expected 0=good or 1=rmc)"),
            DrbwError::ModelFormat(msg) => write!(f, "malformed model: {msg}"),
            DrbwError::FeatureArity { expected, got } => {
                write!(f, "model carries {got} features, expected the {expected} Table I features")
            }
            DrbwError::Model(e) => write!(f, "{e}"),
            DrbwError::Io(e) => write!(f, "model file I/O error: {e}"),
            DrbwError::EmptyTrainingSet => write!(f, "training set has no instances of one class"),
        }
    }
}

impl std::error::Error for DrbwError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrbwError::Model(e) => Some(e),
            DrbwError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MldtError> for DrbwError {
    fn from(e: MldtError) -> Self {
        DrbwError::Model(e)
    }
}

impl From<std::io::Error> for DrbwError {
    fn from(e: std::io::Error) -> Self {
        DrbwError::Io(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn displays_are_specific() {
        assert!(DrbwError::InvalidClassIndex(7).to_string().contains("class index 7"));
        assert!(DrbwError::FeatureArity { expected: 13, got: 2 }.to_string().contains("13"));
        assert!(DrbwError::ModelFormat("bad header".into()).to_string().contains("bad header"));
    }

    #[test]
    fn from_conversions_wrap_sources() {
        let e: DrbwError = MldtError::Parse("x".into()).into();
        assert!(matches!(e, DrbwError::Model(_)));
        assert!(std::error::Error::source(&e).is_some());
        let e: DrbwError = std::io::Error::new(std::io::ErrorKind::NotFound, "gone").into();
        assert!(matches!(e, DrbwError::Io(_)));
        assert!(e.to_string().contains("gone"));
    }
}

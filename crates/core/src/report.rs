//! Human-readable analysis reports: what DR-BW prints for a case.

use crate::classifier::CaseResult;
use crate::diagnoser::Diagnosis;
use crate::profiler::Profile;
use std::fmt::Write as _;

/// Render a full case report: detection verdict per channel, and — when
/// contention was found — the ranked root causes with optimization
/// guidance.
pub fn render(name: &str, profile: &Profile, detection: &CaseResult, diagnosis: &Diagnosis) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "=== DR-BW analysis: {name} ===");
    let _ = writeln!(
        out,
        "samples: {} ({} accesses observed, rate 1/{:.0})",
        profile.samples.len(),
        profile.observed_accesses,
        if profile.sampling_rate() > 0.0 { 1.0 / profile.sampling_rate() } else { 0.0 },
    );
    let _ = writeln!(out, "verdict: {}", detection.mode().name());
    for (ch, mode) in &detection.channel_modes {
        let _ = writeln!(out, "  channel {ch}: {}", mode.name());
    }
    if detection.contended_channels.is_empty() {
        let _ = writeln!(out, "no remote bandwidth contention detected.");
        return out;
    }
    let _ = writeln!(out, "root causes (Contribution Fraction over contended channels):");
    for o in &diagnosis.overall {
        let _ =
            writeln!(out, "  {:<24} line {:>5}  CF {:>6.2}%  ({} samples)", o.label, o.line, o.cf * 100.0, o.samples);
    }
    if let Some(top) = diagnosis.top_object() {
        let _ = writeln!(
            out,
            "guidance: co-locate, interleave, or replicate `{}` (CF {:.1}%) with its computation.",
            top.label,
            top.cf * 100.0
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::classifier::Mode;
    use numasim::topology::{ChannelId, NodeId};
    use pebs::alloc::AllocationTracker;

    fn empty_profile() -> Profile {
        Profile {
            samples: vec![],
            tracker: AllocationTracker::new(),
            phases: vec![],
            observed_accesses: 1000,
            wall: std::time::Duration::ZERO,
        }
    }

    #[test]
    fn good_case_report() {
        let det = CaseResult {
            channel_modes: vec![(ChannelId { src: NodeId(0), dst: NodeId(1) }, Mode::Good)],
            contended_channels: vec![],
        };
        let r = render("blackscholes", &empty_profile(), &det, &Diagnosis::default());
        assert!(r.contains("verdict: good"));
        assert!(r.contains("no remote bandwidth contention"));
    }

    #[test]
    fn rmc_case_report_lists_causes() {
        let ch = ChannelId { src: NodeId(1), dst: NodeId(0) };
        let det = CaseResult { channel_modes: vec![(ch, Mode::Rmc)], contended_channels: vec![ch] };
        let diag = Diagnosis {
            per_channel: vec![],
            overall: vec![crate::diagnoser::ObjectCf { label: "block", line: 42, samples: 90, cf: 0.9 }],
        };
        let r = render("streamcluster", &empty_profile(), &det, &diag);
        assert!(r.contains("verdict: rmc"));
        assert!(r.contains("block"));
        assert!(r.contains("90.00%"));
        assert!(r.contains("guidance"));
    }
}

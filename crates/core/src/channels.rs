//! Associating samples with interconnect channels (§IV.B).
//!
//! The *source* of a sample is the accessing node (from its CPU id); the
//! *target* is the locating node of the sampled address (on real hardware
//! found via libnuma; here the sampler already carries the page's home).
//! "Bandwidth issues on one channel are mainly identified by accesses on
//! that channel", so detection happens per directed channel.
//!
//! The batch for channel `a → b` contains:
//!
//! * the samples that actually traversed it — node `a`, home `b`
//!   (remote DRAM accesses and LFB hits of remote fills);
//! * node `a`'s *local* traffic (home `a`) and cache-hit samples, as
//!   context. These carry the local-DRAM and total-sample features of
//!   Table I; without them a channel's feature vector could not express
//!   "lots of accesses, none of them remote", which is what separates a
//!   busy-but-friendly program from a contended one.
//!
//! Local/cache-hit samples therefore appear in every outgoing batch of
//! their node; samples of `a → c` traffic never appear in the `a → b`
//! batch.

use numasim::topology::{ChannelId, NodeId};
use pebs::sample::MemSample;

/// Per-channel sample batches for one profile.
#[derive(Debug, Clone)]
pub struct ChannelBatches {
    nodes: usize,
    batches: Vec<Vec<MemSample>>,
}

impl ChannelBatches {
    /// Split `samples` into per-channel batches for an `nodes`-node
    /// machine.
    ///
    /// # Panics
    /// Panics if `nodes < 2` or a sample references an out-of-range node.
    pub fn split(samples: &[MemSample], nodes: usize) -> Self {
        assert!(nodes >= 2, "channel association needs at least two nodes");
        let nch = nodes * (nodes - 1);
        let mut batches = vec![Vec::new(); nch];
        for s in samples {
            let a = s.node.0 as usize;
            assert!(a < nodes, "sample from out-of-range node {a}");
            match s.home {
                Some(h) if h != s.node => {
                    // Remote traffic: exactly one channel.
                    let idx = dense_index(nodes, a, h.0 as usize);
                    batches[idx].push(*s);
                }
                _ => {
                    // Local or cache-hit: context for every outgoing
                    // channel of node a.
                    for d in (0..nodes).filter(|&d| d != a) {
                        batches[dense_index(nodes, a, d)].push(*s);
                    }
                }
            }
        }
        Self { nodes, batches }
    }

    /// Number of nodes.
    pub fn num_nodes(&self) -> usize {
        self.nodes
    }

    /// The batch of one channel.
    pub fn batch(&self, ch: ChannelId) -> &[MemSample] {
        &self.batches[dense_index(self.nodes, ch.src.0 as usize, ch.dst.0 as usize)]
    }

    /// Iterate over `(channel, batch)` pairs, dense order.
    pub fn iter(&self) -> impl Iterator<Item = (ChannelId, &[MemSample])> {
        let n = self.nodes;
        self.batches.iter().enumerate().map(move |(i, b)| (channel_at(n, i), b.as_slice()))
    }

    /// Samples that actually traversed `ch` (remote only, no context).
    pub fn remote_samples(&self, ch: ChannelId) -> impl Iterator<Item = &MemSample> {
        self.batch(ch).iter().filter(move |s| s.home == Some(ch.dst) && ch.dst != ch.src)
    }
}

/// Dense index of channel `src → dst` on an `n`-node machine.
///
/// # Panics
/// Panics if `src == dst` or either is out of range.
pub fn dense_index(n: usize, src: usize, dst: usize) -> usize {
    assert!(src != dst, "no channel from a node to itself");
    assert!(src < n && dst < n, "node out of range");
    src * (n - 1) + if dst > src { dst - 1 } else { dst }
}

/// Inverse of [`dense_index`].
pub fn channel_at(n: usize, index: usize) -> ChannelId {
    assert!(index < n * (n - 1), "channel index out of range");
    let s = index / (n - 1);
    let r = index % (n - 1);
    let d = if r >= s { r + 1 } else { r };
    ChannelId { src: NodeId(s as u8), dst: NodeId(d as u8) }
}

#[cfg(test)]
mod tests {
    use super::*;
    use numasim::hierarchy::DataSource;
    use numasim::topology::{CoreId, ThreadId};

    fn sample(node: u8, home: Option<u8>, source: DataSource, latency: f64) -> MemSample {
        MemSample {
            time: 0.0,
            addr: 0x1000,
            cpu: CoreId(node as u32 * 8),
            thread: ThreadId(0),
            node: NodeId(node),
            source,
            home: home.map(NodeId),
            latency,
            is_write: false,
        }
    }

    fn ch(src: u8, dst: u8) -> ChannelId {
        ChannelId { src: NodeId(src), dst: NodeId(dst) }
    }

    #[test]
    fn remote_sample_lands_on_exactly_one_channel() {
        let s = vec![sample(0, Some(2), DataSource::RemoteDram, 400.0)];
        let b = ChannelBatches::split(&s, 4);
        assert_eq!(b.batch(ch(0, 2)).len(), 1);
        assert_eq!(b.batch(ch(0, 1)).len(), 0);
        assert_eq!(b.batch(ch(2, 0)).len(), 0);
        assert_eq!(b.remote_samples(ch(0, 2)).count(), 1);
    }

    #[test]
    fn local_sample_is_context_for_all_outgoing_channels() {
        let s = vec![sample(1, Some(1), DataSource::LocalDram, 200.0)];
        let b = ChannelBatches::split(&s, 4);
        for d in [0u8, 2, 3] {
            assert_eq!(b.batch(ch(1, d)).len(), 1);
            assert_eq!(b.remote_samples(ch(1, d)).count(), 0, "context is not remote traffic");
        }
        // Channels not originating at node 1 see nothing.
        assert_eq!(b.batch(ch(0, 1)).len(), 0);
    }

    #[test]
    fn cache_hit_sample_is_context() {
        let s = vec![sample(3, None, DataSource::L1, 4.0)];
        let b = ChannelBatches::split(&s, 4);
        assert_eq!(b.batch(ch(3, 0)).len(), 1);
        assert_eq!(b.batch(ch(3, 1)).len(), 1);
        assert_eq!(b.batch(ch(3, 2)).len(), 1);
        assert_eq!(b.batch(ch(0, 3)).len(), 0);
    }

    #[test]
    fn remote_lfb_counts_as_channel_traffic() {
        let s = vec![sample(0, Some(1), DataSource::Lfb, 90.0)];
        let b = ChannelBatches::split(&s, 2);
        assert_eq!(b.remote_samples(ch(0, 1)).count(), 1);
    }

    #[test]
    fn dense_index_roundtrip() {
        for n in [2usize, 3, 4, 8] {
            let mut seen = vec![false; n * (n - 1)];
            for s in 0..n {
                for d in (0..n).filter(|&d| d != s) {
                    let i = dense_index(n, s, d);
                    assert!(!seen[i]);
                    seen[i] = true;
                    let c = channel_at(n, i);
                    assert_eq!((c.src.0 as usize, c.dst.0 as usize), (s, d));
                }
            }
            assert!(seen.iter().all(|&x| x));
        }
    }

    #[test]
    fn iter_covers_all_channels() {
        let b = ChannelBatches::split(&[], 3);
        assert_eq!(b.iter().count(), 6);
        assert_eq!(b.num_nodes(), 3);
    }

    #[test]
    #[should_panic(expected = "at least two nodes")]
    fn single_node_rejected() {
        ChannelBatches::split(&[], 1);
    }

    #[test]
    #[should_panic(expected = "no channel from a node to itself")]
    fn self_channel_rejected() {
        dense_index(4, 2, 2);
    }
}

//! Performance features (§V.B, Table I).
//!
//! From a batch of memory samples (one interconnect channel's batch), DR-BW
//! derives statistics in three categories — identification, location, and
//! latency — into a **candidate list**, from which 13 features were
//! selected because they separate `good` from `rmc` runs across the
//! mini-programs. Table I:
//!
//! | #  | description                                       |
//! |----|---------------------------------------------------|
//! | 1  | ratio of latency above 1000 among all samples     |
//! | 2  | ratio of latency above 500                        |
//! | 3  | ratio of latency above 200                        |
//! | 4  | ratio of latency above 100                        |
//! | 5  | ratio of latency above 50                         |
//! | 6  | # of remote-DRAM access samples                   |
//! | 7  | average remote-DRAM access latency                |
//! | 8  | # of local-DRAM access samples                    |
//! | 9  | average local-DRAM access latency                 |
//! | 10 | total # of memory-access samples                  |
//! | 11 | average memory-access latency                     |
//! | 12 | total # of line-fill-buffer access samples        |
//! | 13 | line-fill-buffer access latency                   |
//!
//! **Normalisation.** The paper normalises feature values before
//! thresholding in its tree (Fig. 3). Here the per-source count features
//! (6, 8, 12) are reported per 1000 samples of the batch — i.e. the
//! *composition* of the channel's traffic — which makes them independent
//! of run length and of how many threads happen to stream (an
//! uncontended 64-thread streaming run and a contended one have similar
//! LFB/DRAM *fractions*; what differs is the remote share and its
//! latency). The total-sample feature (10) is a rate per million
//! simulated cycles, average-latency features are plain cycle values, and
//! ratio features are in `[0, 1]`.

//!
//! **Batch/stream equivalence.** [`selected_features`] is implemented as
//! "feed every sample into a [`FeatureAccumulator`], then
//! [`FeatureAccumulator::finalize`]". The accumulator is *mergeable* and
//! its latency sums are kept in an order-independent fixed-point form
//! ([`ExactSum`]), so splitting a batch at any point, accumulating the
//! parts separately, and merging yields the **bit-identical** feature
//! vector — the property the streaming detector's tumbling/sliding
//! windows (`drbw-stream`) are built on.

use mldt::stats::Welford;
use numasim::hierarchy::DataSource;
use pebs::sample::MemSample;

/// Number of selected features (Table I).
pub const NUM_SELECTED: usize = 13;

/// Table I indices (0-based) of the two features the paper's learned tree
/// actually uses: #6 (remote-DRAM sample count) and #7 (average remote
/// latency).
pub const REMOTE_COUNT: usize = 5;
/// See [`REMOTE_COUNT`].
pub const REMOTE_LATENCY: usize = 6;

/// Context needed to normalise count features.
#[derive(Debug, Clone, Copy)]
pub struct FeatureCtx {
    /// Total simulated cycles of the profiled execution.
    pub duration_cycles: f64,
}

impl FeatureCtx {
    /// Rate per million cycles.
    fn rate(&self, count: usize) -> f64 {
        count as f64 / (self.duration_cycles / 1e6)
    }
}

/// Per-mille of the batch: `1000 * count / total` (0 for an empty batch).
fn per_mille(count: usize, total: usize) -> f64 {
    if total == 0 {
        0.0
    } else {
        1000.0 * count as f64 / total as f64
    }
}

/// Names of the 13 selected features, Table I order. `'static` — callers
/// that need owned strings (dataset construction) convert at the edge;
/// hot paths (benchmark headers, per-window reporting) borrow.
pub fn selected_names() -> [&'static str; NUM_SELECTED] {
    [
        "ratio_latency_gt_1000",
        "ratio_latency_gt_500",
        "ratio_latency_gt_200",
        "ratio_latency_gt_100",
        "ratio_latency_gt_50",
        "num_remote_dram_samples",
        "avg_remote_dram_latency",
        "num_local_dram_samples",
        "avg_local_dram_latency",
        "num_total_samples",
        "avg_latency",
        "num_lfb_samples",
        "avg_lfb_latency",
    ]
}

fn avg(sum: f64, n: usize) -> f64 {
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// The latency thresholds of Table I features 1–5, in feature order.
pub const LATENCY_THRESHOLDS: [f64; 5] = [1000.0, 500.0, 200.0, 100.0, 50.0];

/// Fractional bits of [`ExactSum`]'s fixed-point representation.
const EXACT_FRAC_BITS: u32 = 75;
/// 2⁷⁵ as an `f64` (exact: powers of two are representable).
const EXACT_SCALE: f64 = (1u128 << EXACT_FRAC_BITS) as f64;

/// An order-independent, mergeable sum of latencies.
///
/// Values are converted **once, per observation**, to a signed 128-bit
/// fixed-point integer in units of 2⁻⁷⁵ and summed with integer addition,
/// which is associative and commutative. Two accumulators built over the
/// two halves of a stream therefore merge to the *bit-identical* state an
/// accumulator fed the whole stream reaches — the property that lets
/// windowed streaming feature extraction reproduce batch extraction
/// exactly, for any window split.
///
/// The conversion is exact for values whose lowest mantissa bit is at
/// 2⁻⁷⁵ or above — every latency the simulator can produce (|x| in
/// [2⁻²³, 2⁵²] is always exact) — and faithfully rounded to the nearest
/// unit otherwise, identically on every path. The i128 saturates at
/// roughly 4.5 × 10¹⁵ cycle-units of accumulated latency, far beyond any
/// window.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ExactSum {
    units: i128,
}

impl ExactSum {
    /// The empty sum.
    pub fn new() -> Self {
        Self::default()
    }

    /// Add one value.
    pub fn push(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "latency sums are over finite values");
        // Multiplying by a power of two is exact (no mantissa rounding);
        // `round` then resolves sub-unit bits, identically wherever the
        // same value is pushed.
        let scaled = (x * EXACT_SCALE).round();
        self.units = self.units.saturating_add(scaled as i128);
    }

    /// Add a whole slice with a four-lane split reduction.
    ///
    /// Each value is converted exactly as [`ExactSum::push`] converts it;
    /// the lane partial sums are then folded with the same integer
    /// addition, so the result is bit-identical to pushing the elements
    /// one at a time — associativity and commutativity of integer
    /// addition make the grouping invisible. (The `saturating_add` is
    /// associative too until a partial sum actually saturates, which
    /// needs ~4.5 × 10¹⁵ accumulated cycle-units — orders of magnitude
    /// beyond any window, and `debug_assert`ed unreachable here.)
    pub fn push_slice(&mut self, xs: &[f64]) {
        let mut lanes = [0i128; 4];
        let quads = xs.chunks_exact(4);
        let tail = quads.remainder();
        for quad in quads {
            for (lane, &x) in lanes.iter_mut().zip(quad) {
                debug_assert!(x.is_finite(), "latency sums are over finite values");
                *lane = lane.saturating_add((x * EXACT_SCALE).round() as i128);
            }
        }
        for (lane, &x) in lanes.iter_mut().zip(tail) {
            debug_assert!(x.is_finite(), "latency sums are over finite values");
            *lane = lane.saturating_add((x * EXACT_SCALE).round() as i128);
        }
        for lane in lanes {
            debug_assert!(lane > i128::MIN && lane < i128::MAX, "lane sum saturated");
            self.units = self.units.saturating_add(lane);
        }
    }

    /// Fold another sum into this one (exact: integer addition).
    pub fn merge(&mut self, other: &ExactSum) {
        self.units = self.units.saturating_add(other.units);
    }

    /// The sum as an `f64` (one rounding, at the very end).
    pub fn value(&self) -> f64 {
        self.units as f64 / EXACT_SCALE
    }
}

/// Per-source running state: a count and an exact latency sum.
#[derive(Debug, Clone, Copy, Default, PartialEq)]
struct SourceAccum {
    n: usize,
    lat: ExactSum,
}

impl SourceAccum {
    fn push(&mut self, latency: f64) {
        self.n += 1;
        self.lat.push(latency);
    }

    fn merge(&mut self, other: &SourceAccum) {
        self.n += other.n;
        self.lat.merge(&other.lat);
    }
}

/// Incremental, mergeable state from which the 13 Table I features are
/// produced.
///
/// Feed samples with [`FeatureAccumulator::push`]; combine accumulators
/// built over disjoint sub-streams with [`FeatureAccumulator::merge`];
/// produce the feature vector with [`FeatureAccumulator::finalize`].
/// Counts are integers and latency sums are [`ExactSum`]s, so any
/// push/merge schedule that covers each sample exactly once finalizes to
/// the bit-identical vector [`selected_features`] computes over the whole
/// batch. The accumulator additionally tracks the running latency moments
/// ([`mldt::stats::Welford`]) for monitoring surfaces; the moments are not
/// part of the feature vector (their merge is subject to ordinary
/// floating-point rounding).
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct FeatureAccumulator {
    total: usize,
    above: [usize; 5],
    remote: SourceAccum,
    local: SourceAccum,
    lfb: SourceAccum,
    lat_all: ExactSum,
    moments: Welford,
}

impl FeatureAccumulator {
    /// An empty accumulator.
    pub fn new() -> Self {
        Self::default()
    }

    /// Accumulate a whole batch (the batch pipeline's path).
    pub fn from_batch(batch: &[MemSample]) -> Self {
        let mut acc = Self::new();
        for s in batch {
            acc.push(s);
        }
        acc
    }

    /// Ingest one sample.
    pub fn push(&mut self, s: &MemSample) {
        self.total += 1;
        self.lat_all.push(s.latency);
        self.moments.push(s.latency);
        for (i, &t) in LATENCY_THRESHOLDS.iter().enumerate() {
            if s.latency > t {
                self.above[i] += 1;
            }
        }
        match s.source {
            DataSource::RemoteDram => self.remote.push(s.latency),
            DataSource::LocalDram => self.local.push(s.latency),
            DataSource::Lfb => self.lfb.push(s.latency),
            _ => {}
        }
    }

    /// Ingest a batch of samples given as parallel lanes: `lats[i]` and
    /// `srcs[i]` describe sample `i` of a columnar
    /// [`pebs::block::SampleBlock`] segment.
    ///
    /// Bit-identical to pushing the same samples in the same order with
    /// [`FeatureAccumulator::push`]: the latency-bucket counts come from
    /// the SIMD-dispatched [`numasim::simd::count_above`] (exact IEEE `>`
    /// predicates, any grouping identical), the latency sums from the
    /// lane-split [`ExactSum::push_slice`] (integer addition,
    /// associative), the per-source state from an in-order scalar pass,
    /// and the monitoring moments from in-order [`Welford`] pushes (the
    /// one order-dependent piece, kept in stream order on purpose).
    ///
    /// # Panics
    /// Panics if the lanes disagree in length.
    pub fn push_lanes(&mut self, lats: &[f64], srcs: &[DataSource]) {
        assert_eq!(lats.len(), srcs.len(), "lane lengths must agree");
        self.total += lats.len();
        self.lat_all.push_slice(lats);
        for &l in lats {
            self.moments.push(l);
        }
        let above = numasim::simd::count_above(lats, &LATENCY_THRESHOLDS);
        for (a, b) in self.above.iter_mut().zip(above) {
            *a += b;
        }
        for (&l, &src) in lats.iter().zip(srcs) {
            match src {
                DataSource::RemoteDram => self.remote.push(l),
                DataSource::LocalDram => self.local.push(l),
                DataSource::Lfb => self.lfb.push(l),
                _ => {}
            }
        }
    }

    /// Fold an accumulator built over a disjoint sub-stream into this one.
    pub fn merge(&mut self, other: &FeatureAccumulator) {
        self.total += other.total;
        for (a, b) in self.above.iter_mut().zip(other.above) {
            *a += b;
        }
        self.remote.merge(&other.remote);
        self.local.merge(&other.local);
        self.lfb.merge(&other.lfb);
        self.lat_all.merge(&other.lat_all);
        self.moments.merge(&other.moments);
    }

    /// Samples accumulated so far.
    pub fn count(&self) -> usize {
        self.total
    }

    /// Remote-DRAM samples accumulated so far (the count behind Table I
    /// feature #6 before per-mille normalisation).
    pub fn remote_dram_count(&self) -> usize {
        self.remote.n
    }

    /// Running latency moments (count / mean / variance) of everything
    /// accumulated — a monitoring by-product, not a Table I feature.
    pub fn latency_moments(&self) -> Welford {
        self.moments
    }

    /// Produce the 13 selected features (Table I order).
    ///
    /// # Panics
    /// Panics if `ctx.duration_cycles <= 0`.
    pub fn finalize(&self, ctx: &FeatureCtx) -> [f64; NUM_SELECTED] {
        assert!(ctx.duration_cycles > 0.0, "profile duration must be positive");
        let total = self.total;
        let ratio = |c: usize| if total == 0 { 0.0 } else { c as f64 / total as f64 };
        [
            ratio(self.above[0]),
            ratio(self.above[1]),
            ratio(self.above[2]),
            ratio(self.above[3]),
            ratio(self.above[4]),
            per_mille(self.remote.n, total),
            avg(self.remote.lat.value(), self.remote.n),
            per_mille(self.local.n, total),
            avg(self.local.lat.value(), self.local.n),
            ctx.rate(total),
            avg(self.lat_all.value(), total),
            per_mille(self.lfb.n, total),
            avg(self.lfb.lat.value(), self.lfb.n),
        ]
    }
}

/// Compute the 13 selected features over a sample batch.
///
/// Implemented via [`FeatureAccumulator`], so a windowed/streaming
/// extraction that covers the same samples produces the bit-identical
/// vector (see the module docs).
///
/// # Panics
/// Panics if `ctx.duration_cycles <= 0`.
pub fn selected_features(batch: &[MemSample], ctx: &FeatureCtx) -> [f64; NUM_SELECTED] {
    FeatureAccumulator::from_batch(batch).finalize(ctx)
}

/// Names of the full candidate list: the 13 selected features plus the
/// rest of the statistics categories of §V.B (per-level hit rates, write
/// fraction, remote fraction, CPU spread, and the raw
/// `MEM_LOAD_UOPS_LLC_MISS_RETIRED.REMOTE_DRAM`-style unnormalised remote
/// count the paper calls out as *not* discriminative).
pub fn candidate_names() -> Vec<&'static str> {
    let mut names = selected_names().to_vec();
    names.extend([
        "num_l1_hit_samples",
        "num_l2_hit_samples",
        "num_l3_hit_samples",
        "num_l3_miss_samples",
        "write_sample_fraction",
        "remote_fraction_of_dram",
        "num_distinct_cpus",
        "raw_remote_dram_count",
    ]);
    names
}

/// Indices of the selected features within the candidate vector
/// (they come first).
pub fn selected_indices() -> Vec<usize> {
    (0..NUM_SELECTED).collect()
}

/// Compute the full candidate vector.
pub fn candidate_features(batch: &[MemSample], ctx: &FeatureCtx) -> Vec<f64> {
    let mut out = selected_features(batch, ctx).to_vec();
    let total = batch.len();
    let count = |src: DataSource| batch.iter().filter(|s| s.source == src).count();
    let (l1, l2, l3) = (count(DataSource::L1), count(DataSource::L2), count(DataSource::L3));
    let loc = count(DataSource::LocalDram);
    let rem = count(DataSource::RemoteDram);
    let writes = batch.iter().filter(|s| s.is_write).count();
    let mut cpus: Vec<u32> = batch.iter().map(|s| s.cpu.0).collect();
    cpus.sort_unstable();
    cpus.dedup();
    out.push(per_mille(l1, total));
    out.push(per_mille(l2, total));
    out.push(per_mille(l3, total));
    out.push(per_mille(loc + rem, total)); // L3 misses reach DRAM
    out.push(if total == 0 { 0.0 } else { writes as f64 / total as f64 });
    out.push(if loc + rem == 0 { 0.0 } else { rem as f64 / (loc + rem) as f64 });
    out.push(cpus.len() as f64);
    out.push(rem as f64); // raw, unnormalised
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use numasim::topology::{CoreId, NodeId, ThreadId};

    fn sample(source: DataSource, latency: f64, cpu: u32, is_write: bool) -> MemSample {
        MemSample {
            time: 0.0,
            addr: 0,
            cpu: CoreId(cpu),
            thread: ThreadId(0),
            node: NodeId(0),
            source,
            home: None,
            latency,
            is_write,
        }
    }

    const CTX: FeatureCtx = FeatureCtx { duration_cycles: 1e6 };

    #[test]
    fn empty_batch_is_all_zero() {
        let f = selected_features(&[], &CTX);
        assert!(f.iter().all(|&v| v == 0.0));
        let c = candidate_features(&[], &CTX);
        assert!(c.iter().all(|&v| v == 0.0));
    }

    #[test]
    fn latency_ratios_are_nested() {
        let batch: Vec<_> = [30.0, 60.0, 150.0, 300.0, 700.0, 1500.0]
            .iter()
            .map(|&l| sample(DataSource::RemoteDram, l, 0, false))
            .collect();
        let f = selected_features(&batch, &CTX);
        // gt1000: 1/6, gt500: 2/6, gt200: 3/6, gt100: 4/6, gt50: 5/6.
        assert!((f[0] - 1.0 / 6.0).abs() < 1e-12);
        assert!((f[1] - 2.0 / 6.0).abs() < 1e-12);
        assert!((f[2] - 3.0 / 6.0).abs() < 1e-12);
        assert!((f[3] - 4.0 / 6.0).abs() < 1e-12);
        assert!((f[4] - 5.0 / 6.0).abs() < 1e-12);
        // Ratios must be monotone by construction.
        assert!(f[0] <= f[1] && f[1] <= f[2] && f[2] <= f[3] && f[3] <= f[4]);
    }

    #[test]
    fn per_source_counts_and_latencies() {
        let batch = vec![
            sample(DataSource::RemoteDram, 400.0, 0, false),
            sample(DataSource::RemoteDram, 600.0, 0, false),
            sample(DataSource::LocalDram, 180.0, 0, false),
            sample(DataSource::Lfb, 90.0, 0, false),
            sample(DataSource::L1, 4.0, 0, false),
        ];
        let f = selected_features(&batch, &CTX);
        assert_eq!(f[REMOTE_COUNT], 400.0, "2 of 5 samples are remote DRAM");
        assert_eq!(f[REMOTE_LATENCY], 500.0);
        assert_eq!(f[7], 200.0);
        assert_eq!(f[8], 180.0);
        assert_eq!(f[9], 5.0, "5 samples per Mcycle");
        assert!((f[10] - (400.0 + 600.0 + 180.0 + 90.0 + 4.0) / 5.0).abs() < 1e-9);
        assert_eq!(f[11], 200.0);
        assert_eq!(f[12], 90.0);
    }

    #[test]
    fn normalisation_split_between_composition_and_rate() {
        let batch = vec![sample(DataSource::RemoteDram, 400.0, 0, false)];
        let short = selected_features(&batch, &FeatureCtx { duration_cycles: 1e6 });
        let long = selected_features(&batch, &FeatureCtx { duration_cycles: 2e6 });
        // Composition features are duration-invariant...
        assert_eq!(short[REMOTE_COUNT], long[REMOTE_COUNT]);
        assert_eq!(short[REMOTE_LATENCY], long[REMOTE_LATENCY]);
        // ...the total-sample feature is a rate.
        assert_eq!(short[9], 2.0 * long[9]);
    }

    #[test]
    fn candidate_vector_extends_selected() {
        let batch = vec![
            sample(DataSource::L1, 4.0, 0, true),
            sample(DataSource::L2, 12.0, 3, false),
            sample(DataSource::L3, 40.0, 3, false),
            sample(DataSource::LocalDram, 180.0, 5, false),
            sample(DataSource::RemoteDram, 300.0, 5, false),
        ];
        let c = candidate_features(&batch, &CTX);
        assert_eq!(c.len(), candidate_names().len());
        let sel = selected_features(&batch, &CTX);
        assert_eq!(&c[..NUM_SELECTED], &sel[..]);
        let base = NUM_SELECTED;
        assert_eq!(c[base], 200.0); // l1
        assert_eq!(c[base + 1], 200.0); // l2
        assert_eq!(c[base + 2], 200.0); // l3
        assert_eq!(c[base + 3], 400.0); // l3 misses
        assert!((c[base + 4] - 0.2).abs() < 1e-12); // write fraction
        assert_eq!(c[base + 5], 0.5); // remote fraction of dram
        assert_eq!(c[base + 6], 3.0); // distinct cpus
        assert_eq!(c[base + 7], 1.0); // raw remote count
    }

    #[test]
    fn names_align_with_arity() {
        assert_eq!(selected_names().len(), NUM_SELECTED);
        assert_eq!(selected_indices(), (0..13).collect::<Vec<_>>());
        assert!(candidate_names().len() > NUM_SELECTED);
    }

    #[test]
    #[should_panic(expected = "duration must be positive")]
    fn zero_duration_rejected() {
        selected_features(&[], &FeatureCtx { duration_cycles: 0.0 });
    }

    /// A batch with awkward latencies (the jittered values real sampling
    /// produces).
    fn jittery_batch() -> Vec<MemSample> {
        let sources = [
            DataSource::RemoteDram,
            DataSource::LocalDram,
            DataSource::Lfb,
            DataSource::L1,
            DataSource::L2,
            DataSource::L3,
        ];
        (0..97)
            .map(|i| {
                let lat = 3.0 + (i as f64 * 0.731).sin().abs() * 1700.0 + i as f64 / 7.0;
                sample(sources[i % sources.len()], lat, (i % 13) as u32, i % 3 == 0)
            })
            .collect()
    }

    #[test]
    fn accumulator_split_merge_is_bit_identical_to_batch() {
        let batch = jittery_batch();
        let whole = selected_features(&batch, &CTX);
        for split in [0, 1, 13, 48, 96, 97] {
            let mut a = FeatureAccumulator::from_batch(&batch[..split]);
            let b = FeatureAccumulator::from_batch(&batch[split..]);
            a.merge(&b);
            assert_eq!(a.finalize(&CTX), whole, "split at {split}");
        }
        // Three-way and reversed merge orders too: exact sums commute.
        let (x, y, z) = (&batch[..20], &batch[20..70], &batch[70..]);
        let mut m = FeatureAccumulator::from_batch(z);
        m.merge(&FeatureAccumulator::from_batch(x));
        m.merge(&FeatureAccumulator::from_batch(y));
        assert_eq!(m.finalize(&CTX), whole, "merge order must not matter");
    }

    /// The columnar lane path must reach the exact accumulator state the
    /// per-sample path reaches — including the order-dependent moments,
    /// because `push_lanes` keeps the Welford pushes in stream order.
    #[test]
    fn push_lanes_is_bit_identical_to_per_sample_push() {
        let batch = jittery_batch();
        let mut per_sample = FeatureAccumulator::new();
        for s in &batch {
            per_sample.push(s);
        }
        // Lane ingestion in chunks of every awkward size, including a
        // chunk larger than the batch.
        for chunk in [1usize, 2, 3, 4, 5, 7, 31, 96, 97, 128] {
            let mut lanes = FeatureAccumulator::new();
            for part in batch.chunks(chunk) {
                let lats: Vec<f64> = part.iter().map(|s| s.latency).collect();
                let srcs: Vec<DataSource> = part.iter().map(|s| s.source).collect();
                lanes.push_lanes(&lats, &srcs);
            }
            assert_eq!(lanes, per_sample, "chunk size {chunk}");
            assert_eq!(lanes.finalize(&CTX), per_sample.finalize(&CTX));
        }
    }

    #[test]
    fn push_slice_matches_per_element_push() {
        let vals = [1013.75, 3.0000001, 880.125, 42.625, 1999.99, 0.5, 77.25];
        for take in 0..=vals.len() {
            let mut one = ExactSum::new();
            for &v in &vals[..take] {
                one.push(v);
            }
            let mut slab = ExactSum::new();
            slab.push_slice(&vals[..take]);
            assert_eq!(one, slab, "len {take}");
        }
    }

    #[test]
    fn exact_sum_is_order_independent() {
        let vals = [1013.75, 3.0000001, 880.125, 42.625, 1999.99, 0.5];
        let mut fwd = ExactSum::new();
        let mut rev = ExactSum::new();
        for v in vals {
            fwd.push(v);
        }
        for v in vals.iter().rev() {
            rev.push(*v);
        }
        assert_eq!(fwd, rev);
        assert!((fwd.value() - vals.iter().sum::<f64>()).abs() < 1e-9);
    }

    #[test]
    fn accumulator_exposes_counts_and_moments() {
        let batch = jittery_batch();
        let acc = FeatureAccumulator::from_batch(&batch);
        assert_eq!(acc.count(), batch.len());
        assert_eq!(acc.remote_dram_count(), batch.iter().filter(|s| s.source == DataSource::RemoteDram).count());
        let m = acc.latency_moments();
        assert_eq!(m.count(), batch.len() as u64);
        let lat: Vec<f64> = batch.iter().map(|s| s.latency).collect();
        assert!((m.mean() - mldt::stats::mean(&lat)).abs() < 1e-9);
        assert!((m.variance() - mldt::stats::variance(&lat)).abs() * 1e-9 < m.variance().max(1.0));
    }
}

//! The contention classifier (§V) and the case-level decision rules
//! (§VII.A).

use crate::channels::ChannelBatches;
use crate::error::DrbwError;
use crate::features::{selected_features, selected_names, FeatureCtx, NUM_SELECTED};
use crate::profiler::Profile;
use mldt::dataset::Dataset;
use mldt::export;
use mldt::tree::{DecisionTree, TrainConfig};
use numasim::topology::ChannelId;

/// Contention verdict for a run, channel, or program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// No remote-memory bandwidth contention.
    Good,
    /// Remote-memory bandwidth contention.
    Rmc,
}

impl Mode {
    /// Class index used in datasets and confusion matrices (good = 0,
    /// rmc = 1).
    pub fn class_index(self) -> usize {
        match self {
            Mode::Good => 0,
            Mode::Rmc => 1,
        }
    }

    /// Display name matching the paper's labels.
    pub fn name(self) -> &'static str {
        match self {
            Mode::Good => "good",
            Mode::Rmc => "rmc",
        }
    }
}

impl TryFrom<usize> for Mode {
    type Error = DrbwError;

    /// Inverse of [`Mode::class_index`]: 0 is `good`, 1 is `rmc`, anything
    /// else is a typed [`DrbwError::InvalidClassIndex`].
    fn try_from(i: usize) -> Result<Self, DrbwError> {
        match i {
            0 => Ok(Mode::Good),
            1 => Ok(Mode::Rmc),
            _ => Err(DrbwError::InvalidClassIndex(i)),
        }
    }
}

/// Detection result for one case (§VII.A rule 1: a case is `rmc` if at
/// least one remote channel is detected contended).
#[derive(Debug, Clone)]
pub struct CaseResult {
    /// Verdict per channel, dense channel order.
    pub channel_modes: Vec<(ChannelId, Mode)>,
    /// The channels detected contended.
    pub contended_channels: Vec<ChannelId>,
}

impl CaseResult {
    /// The case verdict.
    pub fn mode(&self) -> Mode {
        if self.contended_channels.is_empty() {
            Mode::Good
        } else {
            Mode::Rmc
        }
    }
}

/// Fewer remote samples than this on a channel ⇒ the channel is `good`
/// without consulting the tree (there is no traffic to contend; PEBS-based
/// tools use the same guard against classifying noise).
pub const MIN_REMOTE_SAMPLES: usize = 8;

/// Minimum remote-DRAM share (per mille of the channel batch) before the
/// tree is consulted. This is the role feature #6 plays at the root of the
/// paper's tree (Figure 3): a channel whose traffic is almost entirely
/// cache hits cannot be bandwidth-contended, no matter how noisy the
/// latencies of its few stray remote samples are — with a handful of
/// samples, an average latency is not statistically meaningful.
pub const MIN_REMOTE_SHARE: f64 = 25.0;

/// The trained decision-tree classifier over the 13 Table I features.
#[derive(Debug, Clone)]
pub struct ContentionClassifier {
    tree: DecisionTree,
    feature_names: Vec<String>,
}

impl ContentionClassifier {
    /// Train on a dataset whose rows are the 13 selected features and
    /// whose classes are `good`/`rmc` (see [`crate::training`]).
    ///
    /// # Panics
    /// Panics if the dataset's arity is not [`NUM_SELECTED`]; use
    /// [`ContentionClassifier::try_train`] for a typed error instead.
    pub fn train(data: &Dataset, cfg: TrainConfig) -> Self {
        Self::try_train(data, cfg).unwrap_or_else(|e| panic!("expected the 13 Table I features: {e}"))
    }

    /// Train, reporting bad training data as a [`DrbwError`] instead of
    /// panicking.
    ///
    /// # Errors
    /// [`DrbwError::FeatureArity`] if the dataset's arity is not
    /// [`NUM_SELECTED`]; [`DrbwError::EmptyTrainingSet`] if either class
    /// has no instances (a one-sided set trains a degenerate
    /// constant-answer tree).
    pub fn try_train(data: &Dataset, cfg: TrainConfig) -> Result<Self, DrbwError> {
        if data.num_features() != NUM_SELECTED {
            return Err(DrbwError::FeatureArity { expected: NUM_SELECTED, got: data.num_features() });
        }
        if data.class_counts().contains(&0) {
            return Err(DrbwError::EmptyTrainingSet);
        }
        Ok(Self { tree: DecisionTree::train(data, cfg), feature_names: data.feature_names().to_vec() })
    }

    /// The underlying tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }

    /// Classify one feature vector.
    pub fn predict(&self, features: &[f64; NUM_SELECTED]) -> Mode {
        // A trained binary tree only emits labels 0/1; a violation is an
        // internal invariant breach, not a malformed-input condition.
        Mode::try_from(self.tree.predict(features)).expect("binary tree emits class 0 or 1")
    }

    /// Classify every channel of a profile, applying the §VII.A rules.
    pub fn classify_case(&self, profile: &Profile, nodes: usize) -> CaseResult {
        let batches = ChannelBatches::split(&profile.samples, nodes);
        let ctx = FeatureCtx { duration_cycles: profile.duration_cycles() };
        let mut channel_modes = Vec::new();
        let mut contended = Vec::new();
        for (ch, batch) in batches.iter() {
            let remote = batches.remote_samples(ch).count();
            let feats = selected_features(batch, &ctx);
            let mode = if remote < MIN_REMOTE_SAMPLES || feats[crate::features::REMOTE_COUNT] < MIN_REMOTE_SHARE {
                Mode::Good
            } else {
                self.predict(&feats)
            };
            if mode == Mode::Rmc {
                contended.push(ch);
            }
            channel_modes.push((ch, mode));
        }
        CaseResult { channel_modes, contended_channels: contended }
    }

    /// Serialize the trained classifier (tree + feature names) to the
    /// portable text model format, so a pretrained model can ship with a
    /// release and be loaded without rerunning the training grid.
    pub fn to_model_string(&self) -> String {
        let mut out = String::new();
        out.push_str("drbw-classifier v1\n");
        for name in &self.feature_names {
            out.push_str("feature ");
            out.push_str(name);
            out.push('\n');
        }
        out.push_str(&mldt::serialize::tree_to_string(&self.tree));
        out
    }

    /// Load a classifier saved by [`ContentionClassifier::to_model_string`].
    ///
    /// # Errors
    /// [`DrbwError::ModelFormat`] when the header is wrong,
    /// [`DrbwError::FeatureArity`] when the feature list or embedded tree
    /// does not carry the 13 Table I features, and [`DrbwError::Model`]
    /// when the tree text itself is malformed.
    pub fn from_model_string(text: &str) -> Result<Self, DrbwError> {
        let mut lines = text.lines();
        match lines.next() {
            Some("drbw-classifier v1") => {}
            other => return Err(DrbwError::ModelFormat(format!("bad model header {other:?}"))),
        }
        let mut feature_names = Vec::new();
        let mut rest = String::new();
        for line in lines {
            if let Some(name) = line.strip_prefix("feature ") {
                feature_names.push(name.to_string());
            } else {
                rest.push_str(line);
                rest.push('\n');
            }
        }
        if feature_names.len() != NUM_SELECTED {
            return Err(DrbwError::FeatureArity { expected: NUM_SELECTED, got: feature_names.len() });
        }
        let tree = mldt::serialize::tree_from_string(&rest)?;
        if tree.num_features() != NUM_SELECTED {
            return Err(DrbwError::FeatureArity { expected: NUM_SELECTED, got: tree.num_features() });
        }
        Ok(Self { tree, feature_names })
    }

    /// Text rendering of the learned tree (Figure 3).
    pub fn render_tree(&self) -> String {
        export::to_text(&self.tree, &self.feature_names, &["good".into(), "rmc".into()])
    }

    /// Graphviz rendering of the learned tree.
    pub fn render_dot(&self) -> String {
        export::to_dot(&self.tree, &self.feature_names, &["good".into(), "rmc".into()])
    }
}

/// Build an empty 13-feature `good`/`rmc` dataset (helper shared by
/// training and the benchmark sweep).
pub fn empty_feature_dataset() -> Dataset {
    Dataset::binary(selected_names().iter().map(|s| s.to_string()).collect())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::features::{REMOTE_COUNT, REMOTE_LATENCY};

    /// A synthetic training set with the paper's structure: rmc rows have
    /// many remote samples at high latency.
    fn synthetic() -> Dataset {
        let mut d = empty_feature_dataset();
        for i in 0..30 {
            let mut good = [0.0; NUM_SELECTED];
            good[REMOTE_COUNT] = 2.0 + (i % 5) as f64;
            good[REMOTE_LATENCY] = 280.0 + i as f64;
            good[9] = 100.0;
            d.push(good.to_vec(), 0);
            let mut rmc = [0.0; NUM_SELECTED];
            rmc[REMOTE_COUNT] = 60.0 + i as f64;
            rmc[REMOTE_LATENCY] = 900.0 + 10.0 * i as f64;
            rmc[9] = 100.0;
            d.push(rmc.to_vec(), 1);
        }
        d
    }

    #[test]
    fn classifier_learns_remote_features() {
        let c = ContentionClassifier::train(&synthetic(), TrainConfig::default());
        let used = c.tree().features_used();
        assert!(
            used.iter().all(|&f| f == REMOTE_COUNT || f == REMOTE_LATENCY),
            "tree should split on features 6/7, used {used:?}"
        );
        let mut probe = [0.0; NUM_SELECTED];
        probe[REMOTE_COUNT] = 3.0;
        probe[REMOTE_LATENCY] = 290.0;
        assert_eq!(c.predict(&probe), Mode::Good);
        probe[REMOTE_COUNT] = 80.0;
        probe[REMOTE_LATENCY] = 1100.0;
        assert_eq!(c.predict(&probe), Mode::Rmc);
    }

    #[test]
    fn render_tree_mentions_feature_names() {
        let c = ContentionClassifier::train(&synthetic(), TrainConfig::default());
        let txt = c.render_tree();
        assert!(txt.contains("num_remote_dram_samples") || txt.contains("avg_remote_dram_latency"), "{txt}");
        assert!(c.render_dot().starts_with("digraph"));
    }

    #[test]
    fn mode_roundtrip() {
        assert_eq!(Mode::try_from(Mode::Rmc.class_index()).unwrap(), Mode::Rmc);
        assert_eq!(Mode::try_from(Mode::Good.class_index()).unwrap(), Mode::Good);
        assert_eq!(Mode::Good.name(), "good");
    }

    #[test]
    fn bad_class_index_is_a_typed_error() {
        match Mode::try_from(2) {
            Err(crate::error::DrbwError::InvalidClassIndex(2)) => {}
            other => panic!("expected InvalidClassIndex(2), got {other:?}"),
        }
    }

    #[test]
    fn case_rule_any_contended_channel() {
        let r = CaseResult {
            channel_modes: vec![],
            contended_channels: vec![ChannelId {
                src: numasim::topology::NodeId(1),
                dst: numasim::topology::NodeId(0),
            }],
        };
        assert_eq!(r.mode(), Mode::Rmc);
        let g = CaseResult { channel_modes: vec![], contended_channels: vec![] };
        assert_eq!(g.mode(), Mode::Good);
    }

    #[test]
    fn model_roundtrip() {
        let c = ContentionClassifier::train(&synthetic(), TrainConfig::default());
        let text = c.to_model_string();
        let c2 = ContentionClassifier::from_model_string(&text).expect("roundtrip");
        let mut probe = [0.0; NUM_SELECTED];
        for v in [1.0, 50.0, 80.0, 200.0] {
            probe[REMOTE_COUNT] = v;
            probe[REMOTE_LATENCY] = v * 12.0;
            assert_eq!(c.predict(&probe), c2.predict(&probe));
        }
        assert_eq!(c.render_tree(), c2.render_tree(), "feature names preserved");
    }

    #[test]
    fn model_load_rejects_garbage() {
        assert!(ContentionClassifier::from_model_string("").is_err());
        assert!(ContentionClassifier::from_model_string("drbw-classifier v1\nfeature x\n").is_err());
    }

    #[test]
    #[should_panic(expected = "13 Table I features")]
    fn wrong_arity_rejected() {
        let d = Dataset::binary(vec!["x".into()]);
        ContentionClassifier::train(&d, TrainConfig::default());
    }
}

//! Single-heuristic baseline detectors (§II.B) for the ablation studies.
//!
//! Prior tools detect bandwidth problems with one fixed heuristic each;
//! DR-BW's contribution is replacing the hand-picked rule with a learned
//! model. To quantify that, we implement the heuristics the paper surveys:
//!
//! * **latency threshold** — accesses above a fixed latency are deemed
//!   contentious (Dashti et al. \[7\]; HPCToolkit-NUMA \[19\] picks its
//!   threshold "via simple experiments");
//! * **remote-access count** — high remote-DRAM traffic means trouble
//!   (what raw `MEM_LOAD_UOPS_LLC_MISS_RETIRED.REMOTE_DRAM`-style counting
//!   gives you — the paper found it non-discriminative);
//! * **all-sockets-touch** — data allocated on one node but accessed from
//!   every socket is flagged (Liu & Mellor-Crummey \[20\]);
//! * **bandit interference probe** — co-run tunable interference threads
//!   and call the program bandwidth-bound if it slows down (Eklov et al.
//!   \[10\]); needs spare cores and gives only a whole-program answer.

use crate::features::{selected_features, FeatureCtx, REMOTE_COUNT};
use crate::profiler::Profile;
use crate::training::case_features;

/// A whole-case contention detector (the baselines are program-level, not
/// per-channel — one of their limitations).
pub trait Detector {
    /// Short name for tables.
    fn name(&self) -> &'static str;

    /// `true` if the case is deemed contended.
    fn detect(&self, profile: &Profile, nodes: usize) -> bool;
}

/// Flag a case when more than `fraction` of its samples exceed `latency`
/// cycles.
#[derive(Debug, Clone, Copy)]
pub struct LatencyThreshold {
    /// Latency cutoff in cycles.
    pub latency: f64,
    /// Fraction of samples that must exceed it.
    pub fraction: f64,
}

impl Default for LatencyThreshold {
    fn default() -> Self {
        // A common choice on SandyBridge-era machines: a few hundred
        // cycles means "past the local DRAM".
        Self { latency: 500.0, fraction: 0.05 }
    }
}

impl Detector for LatencyThreshold {
    fn name(&self) -> &'static str {
        "latency-threshold"
    }

    fn detect(&self, profile: &Profile, _nodes: usize) -> bool {
        let total = profile.samples.len();
        if total == 0 {
            return false;
        }
        let above = profile.samples.iter().filter(|s| s.latency > self.latency).count();
        above as f64 / total as f64 > self.fraction
    }
}

/// Flag a case when the hottest channel's remote-DRAM sample share exceeds
/// a threshold (per mille of the channel batch).
#[derive(Debug, Clone, Copy)]
pub struct RemoteCount {
    /// Remote samples per 1000 batch samples on the hottest channel.
    pub rate: f64,
}

impl Default for RemoteCount {
    fn default() -> Self {
        Self { rate: 250.0 }
    }
}

impl Detector for RemoteCount {
    fn name(&self) -> &'static str {
        "remote-count"
    }

    fn detect(&self, profile: &Profile, nodes: usize) -> bool {
        case_features(profile, nodes)[REMOTE_COUNT] > self.rate
    }
}

/// Flag a case when some tracked object homed on one node draws DRAM
/// samples from at least `min_nodes` distinct accessing nodes.
#[derive(Debug, Clone, Copy)]
pub struct AllSocketsTouch {
    /// Distinct accessing nodes required.
    pub min_nodes: usize,
}

impl Default for AllSocketsTouch {
    fn default() -> Self {
        Self { min_nodes: 3 }
    }
}

impl Detector for AllSocketsTouch {
    fn name(&self) -> &'static str {
        "all-sockets-touch"
    }

    fn detect(&self, profile: &Profile, _nodes: usize) -> bool {
        use std::collections::HashMap;
        // For each tracked object: the set of accessing nodes of its
        // remote DRAM samples.
        let mut touchers: HashMap<u32, Vec<u8>> = HashMap::new();
        for s in &profile.samples {
            if !s.is_remote() {
                continue;
            }
            if let Some(site) = profile.tracker.attribute_site(s.addr) {
                let v = touchers.entry(site.0).or_default();
                if !v.contains(&s.node.0) {
                    v.push(s.node.0);
                }
            }
        }
        touchers.values().any(|v| v.len() >= self.min_nodes)
    }
}

/// Per-channel features for the latency heuristic applied channel-wise
/// (used by the ablation harness to give the baselines their best shot).
pub fn channel_latency_fraction(profile: &Profile, nodes: usize, latency: f64) -> f64 {
    let batches = crate::channels::ChannelBatches::split(&profile.samples, nodes);
    let ctx = FeatureCtx { duration_cycles: profile.duration_cycles().max(1.0) };
    batches
        .iter()
        .map(|(_, b)| {
            let f = selected_features(b, &ctx);
            // Reuse ratio features: pick the tightest threshold ≥ latency.
            match latency as u64 {
                l if l >= 1000 => f[0],
                l if l >= 500 => f[1],
                l if l >= 200 => f[2],
                l if l >= 100 => f[3],
                _ => f[4],
            }
        })
        .fold(0.0, f64::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use numasim::config::MachineConfig;
    use workloads::config::{Input, RunConfig};
    use workloads::micro::{Bandit, Sumv};

    fn mcfg() -> MachineConfig {
        MachineConfig::scaled()
    }

    #[test]
    fn latency_threshold_catches_contention_and_passes_good() {
        let det = LatencyThreshold::default();
        let good = crate::profiler::profile(&Sumv, &mcfg(), &RunConfig::new(16, 4, Input::Small));
        let rmc = crate::profiler::profile(&Sumv, &mcfg(), &RunConfig::new(48, 4, Input::Large));
        assert!(!det.detect(&good, 4));
        assert!(det.detect(&rmc, 4));
    }

    #[test]
    fn remote_count_false_positives_on_bandit() {
        // The paper's point: a count heuristic calls the (uncontended)
        // bandit contended because it only sees traffic volume.
        let det = RemoteCount::default();
        let bandit = crate::profiler::profile(&Bandit, &mcfg(), &RunConfig::new(2, 2, Input::Native));
        assert!(det.detect(&bandit, 4), "count-based heuristic is fooled by the bandit");
    }

    #[test]
    fn all_sockets_touch_fires_on_master_alloc() {
        let det = AllSocketsTouch::default();
        let rmc = crate::profiler::profile(&Sumv, &mcfg(), &RunConfig::new(48, 4, Input::Large));
        assert!(det.detect(&rmc, 4), "vector on node 0 accessed from 3 other sockets");
        let single = crate::profiler::profile(&Sumv, &mcfg(), &RunConfig::new(8, 1, Input::Large));
        assert!(!det.detect(&single, 4), "single-node run touches from one socket");
    }

    #[test]
    fn detectors_have_names() {
        assert_eq!(LatencyThreshold::default().name(), "latency-threshold");
        assert_eq!(RemoteCount::default().name(), "remote-count");
        assert_eq!(AllSocketsTouch::default().name(), "all-sockets-touch");
    }

    #[test]
    fn empty_profile_is_good_everywhere() {
        let p = Profile {
            samples: vec![],
            tracker: pebs::alloc::AllocationTracker::new(),
            phases: vec![],
            observed_accesses: 0,
            wall: std::time::Duration::ZERO,
        };
        assert!(!LatencyThreshold::default().detect(&p, 4));
        assert!(!AllSocketsTouch::default().detect(&p, 4));
    }
}

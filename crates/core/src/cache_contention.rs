//! Shared-cache contention detection — the first of the paper's §IX
//! future-work extensions ("contention in … different level of caches"),
//! built on the same supervised recipe as the bandwidth classifier.
//!
//! The phenomenon: co-located threads whose individual working sets fit
//! the node's shared L3 evict each other once their *combined* footprint
//! exceeds it. The symptom in the samples is compositional, not
//! latency-driven: the L3-hit share collapses and the (local-)DRAM share
//! surges, while latencies stay near unloaded DRAM levels — which is
//! exactly why the *bandwidth* classifier stays silent on it and a
//! dedicated detector is needed.
//!
//! Detection is **per NUMA node** (the L3 is the per-node shared
//! resource, as the interconnect channel is the per-link one):
//!
//! * features: per-node sample composition (L1/L2/L3/DRAM shares, DRAM
//!   latency, total rate);
//! * training: the `cachemix` mini-program packed onto one node with
//!   per-thread footprints swept across the fits/thrashes boundary;
//! * ground truth: the *isolation* probe — spreading the same threads
//!   across nodes removes only the cache sharing, so an isolation speedup
//!   above 10% marks real cache contention (the cache analog of the
//!   paper's interleave probe).

use crate::classifier::Mode;
use crate::profiler::{profile, Profile};
use mldt::dataset::Dataset;
use mldt::tree::{DecisionTree, TrainConfig};
use numasim::config::MachineConfig;
use numasim::hierarchy::DataSource;
use numasim::topology::NodeId;
use pebs::sample::MemSample;
use workloads::config::{Input, RunConfig};
use workloads::micro::CacheMix;
use workloads::runner::run;

/// Number of per-node features.
pub const NUM_CACHE_FEATURES: usize = 6;

/// Feature names, index-aligned with [`node_features`].
pub fn cache_feature_names() -> Vec<String> {
    ["l2_hit_share", "l3_hit_share", "dram_share", "avg_dram_latency", "lfb_share", "samples_per_mcycle"]
        .iter()
        .map(|s| s.to_string())
        .collect()
}

/// Per-node sample-composition features (shares are per mille of the
/// node's samples).
pub fn node_features(samples: &[MemSample], node: NodeId, duration_cycles: f64) -> [f64; NUM_CACHE_FEATURES] {
    assert!(duration_cycles > 0.0, "duration must be positive");
    let batch: Vec<&MemSample> = samples.iter().filter(|s| s.node == node).collect();
    let total = batch.len();
    let share = |n: usize| if total == 0 { 0.0 } else { 1000.0 * n as f64 / total as f64 };
    let count = |src: DataSource| batch.iter().filter(|s| s.source == src).count();
    let (l2, l3, lfb) = (count(DataSource::L2), count(DataSource::L3), count(DataSource::Lfb));
    let dram: Vec<&&MemSample> = batch.iter().filter(|s| s.source.is_dram()).collect();
    let avg_dram = if dram.is_empty() { 0.0 } else { dram.iter().map(|s| s.latency).sum::<f64>() / dram.len() as f64 };
    [share(l2), share(l3), share(dram.len()), avg_dram, share(lfb), total as f64 / (duration_cycles / 1e6)]
}

/// A trained per-node cache-contention detector.
#[derive(Debug, Clone)]
pub struct CacheContentionDetector {
    tree: DecisionTree,
}

/// Threads-per-node grid used for training (all packed onto node 0).
fn training_threads() -> [usize; 4] {
    [4, 6, 8, 12]
}

impl CacheContentionDetector {
    /// Train on the `cachemix` grid: per-thread footprints from
    /// cache-friendly to thrashing, each at several packed thread counts,
    /// labelled by whether the combined footprint exceeds the node L3.
    pub fn train(mcfg: &MachineConfig) -> Self {
        let mut data = Dataset::new(cache_feature_names(), vec!["good".into(), "thrash".into()]);
        let l3 = mcfg.cache.l3.size;
        for input in Input::ALL {
            for threads in training_threads() {
                let per = workloads::micro::cachemix_bytes(input);
                let rcfg = RunConfig::new(threads, 1, input);
                let p = profile(&CacheMix, mcfg, &rcfg);
                let f = node_features(&p.samples, NodeId(0), p.duration_cycles());
                let label = usize::from(per * threads as u64 > l3);
                data.push(f.to_vec(), label);
            }
        }
        Self {
            tree: DecisionTree::train(
                &data,
                TrainConfig { min_samples_leaf: 2, min_samples_split: 4, ..TrainConfig::default() },
            ),
        }
    }

    /// Verdict for one node of a profile.
    pub fn detect_node(&self, profile: &Profile, node: NodeId) -> Mode {
        let f = node_features(&profile.samples, node, profile.duration_cycles().max(1.0));
        // No meaningful traffic on this node ⇒ nothing to contend.
        if f[5] < 1.0 {
            return Mode::Good;
        }
        match self.tree.predict(&f) {
            0 => Mode::Good,
            _ => Mode::Rmc,
        }
    }

    /// Per-node verdicts; the case is contended if any node is.
    pub fn detect_case(&self, profile: &Profile, nodes: usize) -> (Vec<(NodeId, Mode)>, Mode) {
        let per: Vec<(NodeId, Mode)> =
            (0..nodes).map(|n| (NodeId(n as u8), self.detect_node(profile, NodeId(n as u8)))).collect();
        let overall = if per.iter().any(|(_, m)| *m == Mode::Rmc) { Mode::Rmc } else { Mode::Good };
        (per, overall)
    }

    /// The learned tree.
    pub fn tree(&self) -> &DecisionTree {
        &self.tree
    }
}

/// The isolation ground-truth probe: pack vs spread the same threads.
/// Returns the isolation speedup; above 1.10 means real cache contention.
pub fn isolation_speedup(mcfg: &MachineConfig, threads: usize, input: Input) -> f64 {
    let packed = run(&CacheMix, mcfg, &RunConfig::new(threads, 1, input), None);
    // Spread over as many nodes as divide the thread count evenly.
    let nodes = (1..=mcfg.topology.num_nodes().min(threads)).rev().find(|n| threads.is_multiple_of(*n)).unwrap();
    let spread = run(&CacheMix, mcfg, &RunConfig::new(threads, nodes, input), None);
    packed.cycles() / spread.cycles()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn detector_separates_thrash_from_fit() {
        let mcfg = MachineConfig::scaled();
        let det = CacheContentionDetector::train(&mcfg);
        // 8 x 512K packed = 4M > 2M L3: thrash.
        let p = profile(&CacheMix, &mcfg, &RunConfig::new(8, 1, Input::Large));
        assert_eq!(det.detect_node(&p, NodeId(0)), Mode::Rmc);
        // 8 x 64K packed = 512K: fits.
        let p = profile(&CacheMix, &mcfg, &RunConfig::new(8, 1, Input::Small));
        assert_eq!(det.detect_node(&p, NodeId(0)), Mode::Good);
        // Idle nodes report good.
        assert_eq!(det.detect_node(&p, NodeId(3)), Mode::Good);
    }

    #[test]
    fn detection_matches_isolation_ground_truth() {
        let mcfg = MachineConfig::scaled();
        let det = CacheContentionDetector::train(&mcfg);
        for (threads, input) in [(8, Input::Small), (8, Input::Large), (4, Input::Native), (12, Input::Medium)] {
            let gt = isolation_speedup(&mcfg, threads, input) > 1.10;
            let p = profile(&CacheMix, &mcfg, &RunConfig::new(threads, 1, input));
            let (_, overall) = det.detect_case(&p, 4);
            assert_eq!(overall == Mode::Rmc, gt, "{threads} threads, {} input", input.name());
        }
    }

    #[test]
    fn bandwidth_classifier_is_blind_to_cache_contention() {
        // The phenomena are disjoint: a thrashing-but-local workload must
        // not trip the remote-bandwidth classifier (its hot channels carry
        // no remote traffic at all).
        use crate::classifier::ContentionClassifier;
        use crate::training;
        let mcfg = MachineConfig::scaled();
        let data = training::quick_training_set(&mcfg);
        let bw = ContentionClassifier::train(&data, mldt::tree::TrainConfig::default());
        let p = profile(&CacheMix, &mcfg, &RunConfig::new(8, 1, Input::Native));
        assert_eq!(bw.classify_case(&p, 4).mode(), Mode::Good, "no remote traffic, no rmc");
        // ...while the cache detector fires.
        let det = CacheContentionDetector::train(&mcfg);
        assert_eq!(det.detect_node(&p, NodeId(0)), Mode::Rmc);
    }

    #[test]
    fn node_features_well_formed() {
        let mcfg = MachineConfig::scaled();
        let p = profile(&CacheMix, &mcfg, &RunConfig::new(8, 1, Input::Medium));
        let f = node_features(&p.samples, NodeId(0), p.duration_cycles());
        for v in f {
            assert!(v.is_finite() && v >= 0.0);
        }
        assert!(f[0] + f[1] + f[2] + f[4] <= 1000.0 + 1e-9, "shares bounded");
        assert_eq!(cache_feature_names().len(), NUM_CACHE_FEATURES);
    }
}

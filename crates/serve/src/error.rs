//! Typed service errors.

use std::fmt;

/// Failures the analysis service reports instead of panicking or hanging.
#[derive(Debug)]
pub enum ServeError {
    /// The OS refused to spawn a shard worker thread at server start.
    /// Already-spawned shards were shut down cleanly before this was
    /// returned.
    SpawnFailed {
        /// Index of the shard whose worker failed to spawn.
        shard: usize,
        /// The underlying OS error.
        source: std::io::Error,
    },
    /// The shard worker owning this session panicked mid-run; its sessions
    /// cannot produce a report. The rest of the server keeps running.
    WorkerPanicked {
        /// Index of the shard whose worker died.
        shard: usize,
    },
}

impl fmt::Display for ServeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServeError::SpawnFailed { shard, source } => {
                write!(f, "failed to spawn worker for shard {shard}: {source}")
            }
            ServeError::WorkerPanicked { shard } => {
                write!(f, "shard {shard} worker panicked; session report unavailable")
            }
        }
    }
}

impl std::error::Error for ServeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ServeError::SpawnFailed { source, .. } => Some(source),
            ServeError::WorkerPanicked { .. } => None,
        }
    }
}

//! The sharded analysis server.
//!
//! Sessions are pinned to shards by a session-id hash; each shard is one
//! worker thread that exclusively owns its sessions' detectors, so every
//! session's samples are classified in exactly the FIFO order they were
//! accepted — deterministic per-session, parallel across shards. Workers
//! pool detectors across sessions ([`drbw_stream::StreamingDetector::reset`]
//! makes a recycled detector indistinguishable from a fresh one) and
//! watch the shared [`ModelRegistry`] through a per-worker
//! [`ModelReader`]: the steady-state classify path costs one atomic epoch
//! load, and a published model reaches each detector at its own window
//! boundary (in-flight windows finish on the model they started with).

use crate::error::ServeError;
use crate::metrics::{LatencyHistogram, ServeMetrics, ServerStats, ShardStats};
use crate::session::{SessionHandle, SessionId, SessionInner, SessionQueue, SessionReport};
use drbw_core::classifier::ContentionClassifier;
use drbw_core::registry::{ModelHandle, ModelReader, ModelRegistry};
use drbw_stream::{StreamConfig, StreamingDetector};
use pebs::ring::{BlockRing, OverflowPolicy, RingCounters};
use pebs::SampleBlock;
use runcache::RunCache;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Server tuning knobs.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServerConfig {
    /// Detector geometry every session runs under (machine shape, window,
    /// hysteresis, sketches). One geometry per server keeps the detector
    /// pool universal: any recycled detector fits any session.
    pub stream: StreamConfig,
    /// Worker threads; sessions are hash-pinned to one of them.
    pub shards: usize,
    /// Per-session sample ring capacity (the backpressure bound).
    pub ring_capacity: usize,
    /// What a session ring does when full.
    pub overflow: OverflowPolicy,
    /// Samples a worker moves out of one session queue per lock
    /// acquisition.
    pub drain_batch: usize,
    /// How long an idle worker parks before re-polling (it is woken early
    /// by any offer, session open/close, or model publish on its shard).
    pub idle_wait: Duration,
}

impl ServerConfig {
    /// A config with the given detector geometry and service defaults:
    /// one shard per available core (capped at 8), 1024-sample rings with
    /// reject-newest backpressure.
    pub fn new(stream: StreamConfig) -> Self {
        let shards = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1).min(8);
        Self {
            stream,
            shards,
            ring_capacity: 1024,
            overflow: OverflowPolicy::RejectNewest,
            drain_batch: 256,
            idle_wait: Duration::from_millis(2),
        }
    }
}

/// Wakeup signal for one shard worker: producers raise it on any offer,
/// open, close, or model publish; the worker consumes it (or times out)
/// when it has drained everything.
#[derive(Debug, Default)]
pub(crate) struct ShardNotify {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl ShardNotify {
    pub(crate) fn raise(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        *flag = true;
        self.cv.notify_all();
    }

    fn wait(&self, timeout: Duration) {
        let flag = self.flag.lock().unwrap_or_else(|e| e.into_inner());
        let (mut flag, _) =
            self.cv.wait_timeout_while(flag, timeout, |raised| !*raised).unwrap_or_else(|e| e.into_inner());
        *flag = false;
    }
}

/// One shard's shared state (worker on one side, `open_session` and the
/// metrics snapshot on the other).
#[derive(Debug)]
struct ShardState {
    stats: Arc<ShardStats>,
    notify: Arc<ShardNotify>,
    /// Sessions opened but not yet adopted by the worker.
    inbox: Mutex<VecDeque<Arc<SessionInner>>>,
    /// Sessions the worker has adopted but not yet finalized — the panic
    /// sweep delivers a typed error to these so no `finish()` ever hangs
    /// on a dead worker.
    adopted: Mutex<Vec<Arc<SessionInner>>>,
}

#[derive(Debug)]
struct ServerInner {
    cfg: ServerConfig,
    registry: Arc<ModelRegistry>,
    stats: Arc<ServerStats>,
    latency: LatencyHistogram,
    shards: Vec<ShardState>,
    next_id: AtomicU64,
    shutdown: AtomicBool,
    cache: Mutex<Option<Arc<RunCache>>>,
}

/// The long-running analysis service: many concurrent profiling sessions
/// multiplexed over shard workers, one hot-swappable model registry, one
/// optional run cache whose warm-hit rate the metrics surface.
#[derive(Debug)]
pub struct AnalysisServer {
    inner: Arc<ServerInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl AnalysisServer {
    /// Start a server whose initial model is `classifier` (published as
    /// registry version 1).
    ///
    /// # Errors
    /// [`ServeError::SpawnFailed`] when the OS refuses a worker thread;
    /// any shards spawned before the failure are shut down cleanly first.
    pub fn start(classifier: ContentionClassifier, cfg: ServerConfig) -> Result<Self, ServeError> {
        Self::start_with_registry(Arc::new(ModelRegistry::new(classifier)), cfg)
    }

    /// Start a server over an existing (possibly shared) registry.
    ///
    /// # Errors
    /// [`ServeError::SpawnFailed`] when the OS refuses a worker thread;
    /// any shards spawned before the failure are shut down cleanly first.
    ///
    /// # Panics
    /// Panics if `cfg.shards == 0`, `cfg.ring_capacity == 0`, or
    /// `cfg.drain_batch == 0`.
    pub fn start_with_registry(registry: Arc<ModelRegistry>, cfg: ServerConfig) -> Result<Self, ServeError> {
        assert!(cfg.shards > 0, "a server needs at least one shard");
        assert!(cfg.ring_capacity > 0, "session rings need capacity");
        assert!(cfg.drain_batch > 0, "drain batch must be positive");
        let shards = (0..cfg.shards)
            .map(|_| ShardState {
                stats: Arc::new(ShardStats::default()),
                notify: Arc::new(ShardNotify::default()),
                inbox: Mutex::new(VecDeque::new()),
                adopted: Mutex::new(Vec::new()),
            })
            .collect();
        let inner = Arc::new(ServerInner {
            cfg,
            registry,
            stats: Arc::new(ServerStats::default()),
            latency: LatencyHistogram::new(),
            shards,
            next_id: AtomicU64::new(0),
            shutdown: AtomicBool::new(false),
            cache: Mutex::new(None),
        });
        let mut workers = Vec::with_capacity(cfg.shards);
        for idx in 0..cfg.shards {
            let worker = spawn_worker(&inner, idx);
            match worker {
                Ok(w) => workers.push(w),
                Err(source) => {
                    // Shut the already-spawned shards down cleanly before
                    // reporting the failure.
                    let mut partial = Self { inner, workers };
                    partial.stop_and_join();
                    partial.workers.clear();
                    return Err(ServeError::SpawnFailed { shard: idx, source });
                }
            }
        }
        Ok(Self { inner, workers })
    }

    /// The model registry (for sharing with other components).
    pub fn registry(&self) -> &Arc<ModelRegistry> {
        &self.inner.registry
    }

    /// The server configuration.
    pub fn config(&self) -> &ServerConfig {
        &self.inner.cfg
    }

    /// Attach a run cache so the metrics snapshot surfaces its warm-hit
    /// rate alongside the service counters.
    pub fn attach_run_cache(&self, cache: Arc<RunCache>) {
        *self.inner.cache.lock().unwrap_or_else(|e| e.into_inner()) = Some(cache);
    }

    /// Atomically publish a retrained model. Already-running sessions
    /// switch at their next window boundary; every verdict and window
    /// stays stamped with the version that actually classified it.
    pub fn publish_model(&self, classifier: ContentionClassifier) -> ModelHandle {
        let handle = self.inner.registry.publish(classifier);
        for shard in &self.inner.shards {
            shard.notify.raise();
        }
        handle
    }

    /// Open a new session, pinned to a shard by its id hash. The handle
    /// is the producer side; `finish()` returns the session's report.
    pub fn open_session(&self) -> SessionHandle {
        let id = SessionId(self.inner.next_id.fetch_add(1, Ordering::Relaxed));
        let shard_idx = (splitmix64(id.0) % self.inner.cfg.shards as u64) as usize;
        let shard = &self.inner.shards[shard_idx];
        let session = Arc::new(SessionInner {
            id,
            queue: Mutex::new(SessionQueue {
                ring: BlockRing::with_policy(self.inner.cfg.ring_capacity, self.inner.cfg.overflow),
                closed: false,
            }),
            report: Mutex::new(None),
            done: Condvar::new(),
            space: Condvar::new(),
        });
        shard.inbox.lock().unwrap_or_else(|e| e.into_inner()).push_back(Arc::clone(&session));
        self.inner.stats.sessions_opened.fetch_add(1, Ordering::Relaxed);
        shard.notify.raise();
        SessionHandle {
            inner: session,
            notify: Arc::clone(&shard.notify),
            server_stats: Arc::clone(&self.inner.stats),
            shard_stats: Arc::clone(&shard.stats),
            shard: shard_idx,
        }
    }

    /// Snapshot the whole service.
    pub fn metrics(&self) -> ServeMetrics {
        let inner = &self.inner;
        let rel = Ordering::Relaxed;
        let opened = inner.stats.sessions_opened.load(rel);
        let closed = inner.stats.sessions_closed.load(rel);
        let cache_hit_rate =
            inner.cache.lock().unwrap_or_else(|e| e.into_inner()).as_ref().map(|c| c.metrics().hit_rate());
        ServeMetrics {
            sessions_opened: opened,
            sessions_closed: closed,
            sessions_open: opened - closed,
            samples_offered: inner.stats.offered.load(rel),
            samples_enqueued: inner.stats.enqueued.load(rel),
            samples_dropped: inner.stats.dropped.load(rel),
            samples_ingested: inner.shards.iter().map(|s| s.stats.ingested.load(rel)).sum(),
            verdicts: inner.shards.iter().map(|s| s.stats.verdicts.load(rel)).sum(),
            windows_classified: inner.shards.iter().map(|s| s.stats.windows.load(rel)).sum(),
            model_epoch: inner.registry.epoch(),
            model_swaps: inner.registry.swaps(),
            shard_depths: inner.shards.iter().map(|s| s.stats.depth.load(rel)).collect(),
            verdict_latency_count: inner.latency.count(),
            verdict_p50_us: inner.latency.quantile_nanos(0.5) / 1_000.0,
            verdict_p99_us: inner.latency.quantile_nanos(0.99) / 1_000.0,
            verdict_mean_us: inner.latency.mean_nanos() / 1_000.0,
            cache_hit_rate,
        }
    }

    /// Stop the service: workers drain whatever is queued, force-finalize
    /// every session (open or not) so no `finish()` ever hangs, and exit.
    /// Returns the final metrics snapshot. Dropping the server does the
    /// same.
    pub fn shutdown(mut self) -> ServeMetrics {
        self.stop_and_join();
        self.metrics()
    }

    fn stop_and_join(&mut self) {
        self.inner.shutdown.store(true, Ordering::Release);
        for shard in &self.inner.shards {
            shard.notify.raise();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
        // Sessions that raced into an inbox after its worker exited still
        // get a (necessarily empty) report; sessions a panicked worker
        // left adopted get the typed error (first delivery wins, so this
        // never clobbers a real report).
        for (idx, shard) in self.inner.shards.iter().enumerate() {
            let stragglers: Vec<_> = shard.inbox.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
            for session in stragglers {
                let ring = ring_counters(&session);
                self.inner.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                session.deliver(Ok(SessionReport {
                    id: session.id,
                    events: Vec::new(),
                    windows: Vec::new(),
                    stream: Default::default(),
                    ring,
                    model_versions: Vec::new(),
                }));
            }
            let abandoned: Vec<_> = shard.adopted.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
            for session in abandoned {
                self.inner.stats.sessions_closed.fetch_add(1, Ordering::Relaxed);
                session.deliver(Err(ServeError::WorkerPanicked { shard: idx }));
            }
        }
    }
}

impl Drop for AnalysisServer {
    fn drop(&mut self) {
        if !self.workers.is_empty() {
            self.stop_and_join();
        }
    }
}

/// Spawn one shard worker. The test fail-point simulates the OS refusing
/// the thread, which is otherwise unreachable in a test.
fn spawn_worker(inner: &Arc<ServerInner>, idx: usize) -> std::io::Result<std::thread::JoinHandle<()>> {
    #[cfg(test)]
    if idx == test_fail::spawn_fail_at() {
        return Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "simulated spawn failure"));
    }
    let inner = Arc::clone(inner);
    std::thread::Builder::new().name(format!("drbw-shard-{idx}")).spawn(move || run_shard(inner, idx))
}

/// SplitMix64 finalizer: spreads sequential session ids uniformly over
/// shards.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn ring_counters(session: &SessionInner) -> RingCounters {
    session.lock_queue().ring.counters()
}

/// One session as the shard worker sees it.
struct ActiveSession {
    session: Arc<SessionInner>,
    detector: StreamingDetector,
    /// The last registry version requested on this detector (the swap may
    /// still be pending its window boundary).
    requested_version: u64,
    /// Distinct versions the detector has classified with, first-use
    /// order.
    versions: Vec<u64>,
    /// Verdict transitions already accounted to the shard counters.
    transitions: u64,
    /// Windows already accounted to the shard counters.
    windows: u64,
}

/// The shard worker: the real loop behind a panic barrier. A panic (e.g.
/// a malformed sample blowing up the detector) must not strand the
/// shard's sessions — every adopted or queued session gets a typed
/// [`ServeError::WorkerPanicked`], and the thread stays alive as a bare
/// drain so sessions opened on this shard later fail fast instead of
/// hanging in `finish()`.
fn run_shard(inner: Arc<ServerInner>, idx: usize) {
    let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_shard_inner(&inner, idx)));
    if result.is_err() {
        let rel = Ordering::Relaxed;
        let shard = &inner.shards[idx];
        let fail_all = || {
            let mut doomed: Vec<Arc<SessionInner>> =
                shard.adopted.lock().unwrap_or_else(|e| e.into_inner()).drain(..).collect();
            doomed.extend(shard.inbox.lock().unwrap_or_else(|e| e.into_inner()).drain(..));
            for session in doomed {
                inner.stats.sessions_closed.fetch_add(1, rel);
                session.deliver(Err(ServeError::WorkerPanicked { shard: idx }));
            }
        };
        fail_all();
        while !inner.shutdown.load(Ordering::Acquire) {
            shard.notify.wait(inner.cfg.idle_wait);
            fail_all();
        }
        fail_all();
    }
}

/// The shard worker loop.
fn run_shard_inner(inner: &ServerInner, idx: usize) {
    let rel = Ordering::Relaxed;
    let shard = &inner.shards[idx];
    let mut reader = ModelReader::new(Arc::clone(&inner.registry));
    let mut active: Vec<ActiveSession> = Vec::new();
    let mut pool: Vec<StreamingDetector> = Vec::new();
    let mut blocks: Vec<(SampleBlock, Instant)> = Vec::new();
    loop {
        let shutting = inner.shutdown.load(Ordering::Acquire);
        // Adopt newly opened sessions: recycle a pooled detector when one
        // is free (reset has made it indistinguishable from fresh).
        {
            let mut inbox = shard.inbox.lock().unwrap_or_else(|e| e.into_inner());
            while let Some(session) = inbox.pop_front() {
                let handle = reader.handle();
                let (version, model) = (handle.version(), Arc::clone(handle.model()));
                let detector = match pool.pop() {
                    Some(mut d) => {
                        d.swap_model(version, model); // idle detector: immediate
                        d
                    }
                    None => StreamingDetector::with_model(model, version, inner.cfg.stream),
                };
                shard.adopted.lock().unwrap_or_else(|e| e.into_inner()).push(Arc::clone(&session));
                active.push(ActiveSession {
                    session,
                    detector,
                    requested_version: version,
                    versions: vec![version],
                    transitions: 0,
                    windows: 0,
                });
            }
        }
        // Propagate a freshly published model: one epoch load when nothing
        // changed, a per-detector boundary-deferred swap when it did.
        {
            let handle = reader.handle();
            let version = handle.version();
            if active.iter().any(|a| a.requested_version != version) {
                let model = Arc::clone(handle.model());
                for a in active.iter_mut().filter(|a| a.requested_version != version) {
                    a.detector.swap_model(version, Arc::clone(&model));
                    a.requested_version = version;
                }
            }
        }
        let mut did_work = false;
        let mut i = 0;
        while i < active.len() {
            blocks.clear();
            let a = &mut active[i];
            let closed_and_drained = {
                let mut q = a.session.lock_queue();
                let mut taken = 0;
                // Whole blocks, up to the drain batch: one lock covers
                // hundreds of samples.
                while taken < inner.cfg.drain_batch {
                    let Some((block, at)) = q.ring.pop_block() else { break };
                    taken += block.len();
                    blocks.push((block, at));
                }
                q.closed && q.ring.is_empty()
            };
            if !blocks.is_empty() {
                // The lock is released: wake producers parked on the
                // freed space before the (long) ingest.
                a.session.space.notify_all();
                did_work = true;
                let total: u64 = blocks.iter().map(|(b, _)| b.len() as u64).sum();
                shard.stats.depth.fetch_sub(total, rel);
                for (block, at) in &blocks {
                    a.detector.ingest_block(block);
                    let used = a.detector.model_version();
                    if *a.versions.last().expect("seeded at adoption") != used {
                        a.versions.push(used);
                    }
                    let m = a.detector.metrics();
                    if m.verdict_transitions > a.transitions {
                        let newly = m.verdict_transitions - a.transitions;
                        a.transitions = m.verdict_transitions;
                        // Latency is measured from the block's enqueue
                        // stamp (its first sample's arrival) — the
                        // conservative end of the per-sample stamps it
                        // replaces.
                        let nanos = at.elapsed().as_nanos().min(u64::MAX as u128) as u64;
                        for _ in 0..newly {
                            inner.latency.record(nanos);
                        }
                        shard.stats.verdicts.fetch_add(newly, rel);
                    }
                    if m.windows_classified > a.windows {
                        shard.stats.windows.fetch_add(m.windows_classified - a.windows, rel);
                        a.windows = m.windows_classified;
                    }
                }
                shard.stats.ingested.fetch_add(total, rel);
                // Hand the emptied shells back for the producer side to
                // refill — the steady state allocates nothing.
                let mut q = a.session.lock_queue();
                for (block, _) in blocks.drain(..) {
                    q.ring.recycle(block);
                }
            } else if closed_and_drained || shutting {
                // Finished (or force-finalized at shutdown): classify the
                // tail, deliver the report, recycle the detector.
                did_work = true;
                let mut a = active.swap_remove(i);
                finalize(inner, &shard.stats, &mut a);
                shard.adopted.lock().unwrap_or_else(|e| e.into_inner()).retain(|s| s.id != a.session.id);
                pool.push(a.detector);
                continue; // swap_remove: re-inspect index i
            }
            i += 1;
        }
        if !did_work {
            if shutting {
                let inbox_empty = shard.inbox.lock().unwrap_or_else(|e| e.into_inner()).is_empty();
                if active.is_empty() && inbox_empty {
                    break;
                }
            } else {
                shard.notify.wait(inner.cfg.idle_wait);
            }
        }
    }
}

/// Flush the tail window, account the last verdicts/windows, deliver the
/// report, and reset the detector for the pool.
fn finalize(inner: &ServerInner, stats: &ShardStats, a: &mut ActiveSession) {
    let rel = Ordering::Relaxed;
    a.detector.flush();
    let used = a.detector.model_version();
    if *a.versions.last().expect("seeded at adoption") != used {
        a.versions.push(used);
    }
    let m = a.detector.metrics();
    if m.verdict_transitions > a.transitions {
        // Flush-emitted verdicts have no single triggering enqueue; they
        // count, but stay out of the latency histogram.
        stats.verdicts.fetch_add(m.verdict_transitions - a.transitions, rel);
    }
    if m.windows_classified > a.windows {
        stats.windows.fetch_add(m.windows_classified - a.windows, rel);
    }
    let ring = ring_counters(&a.session);
    inner.stats.sessions_closed.fetch_add(1, rel);
    a.session.deliver(Ok(SessionReport {
        id: a.session.id,
        events: a.detector.drain_events(),
        windows: a.detector.drain_windows(),
        stream: m,
        ring,
        model_versions: std::mem::take(&mut a.versions),
    }));
    a.detector.reset();
}

#[cfg(test)]
pub(crate) mod test_fail {
    use std::sync::atomic::{AtomicUsize, Ordering};

    /// Worker index at which `spawn_worker` simulates an OS failure
    /// (`usize::MAX` = never).
    static SPAWN_FAIL_AT: AtomicUsize = AtomicUsize::new(usize::MAX);

    pub(crate) fn spawn_fail_at() -> usize {
        SPAWN_FAIL_AT.load(Ordering::Relaxed)
    }

    /// Arm the fail-point; disarms on drop so a panicking test cannot
    /// poison the others.
    pub(crate) struct FailSpawn;

    impl FailSpawn {
        pub(crate) fn at(idx: usize) -> Self {
            SPAWN_FAIL_AT.store(idx, Ordering::Relaxed);
            Self
        }
    }

    impl Drop for FailSpawn {
        fn drop(&mut self) {
            SPAWN_FAIL_AT.store(usize::MAX, Ordering::Relaxed);
        }
    }
}

//! Sessions: the client half of the service.
//!
//! A [`SessionHandle`] is the producer side of one profiling session: the
//! client offers samples into a bounded [`SampleRing`] (the existing
//! backpressure/drop accounting), a shard worker on the other side drains
//! them into a pooled [`drbw_stream::StreamingDetector`], and `finish()`
//! returns the [`SessionReport`] once the tail of the stream has been
//! classified. Each sample rides with its allocation-site attribution and
//! an enqueue timestamp (for verdict-latency accounting) in sidecar
//! queues kept in lockstep with the ring under one mutex, so the ring's
//! loss accounting (`offered == accepted + dropped`) stays authoritative
//! for the whole triple.

use crate::error::ServeError;
use crate::metrics::{ServerStats, ShardStats};
use crate::server::ShardNotify;
use drbw_stream::{StreamMetrics, VerdictEvent, WindowSummary};
use pebs::alloc::SiteId;
use pebs::ring::{Offer, RingCounters, SampleRing};
use pebs::sample::MemSample;
use std::collections::VecDeque;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};
use std::time::Instant;

/// Identifier of one profiling session (unique per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The producer→worker queue: the sample ring plus sidecar site and
/// timestamp queues, advanced in lockstep (a drop on the ring drops the
/// same position's sidecar entries).
#[derive(Debug)]
pub(crate) struct SessionQueue {
    pub ring: SampleRing,
    pub sites: VecDeque<Option<SiteId>>,
    pub enqueued_at: VecDeque<Instant>,
    /// Set by `finish()`: no more offers; the worker finalizes once the
    /// ring drains.
    pub closed: bool,
}

/// Shared per-session state (handle on the client side, worker on the
/// shard side).
#[derive(Debug)]
pub(crate) struct SessionInner {
    pub id: SessionId,
    pub queue: Mutex<SessionQueue>,
    pub report: Mutex<Option<Result<SessionReport, ServeError>>>,
    pub done: Condvar,
}

impl SessionInner {
    /// Poison-tolerant queue lock: every critical section leaves the
    /// queue consistent at each statement boundary.
    pub(crate) fn lock_queue(&self) -> MutexGuard<'_, SessionQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deliver the final report (or the typed reason there is none) and
    /// wake the waiting client. First delivery wins: a shutdown sweep
    /// never overwrites a real report a worker already produced.
    pub(crate) fn deliver(&self, report: Result<SessionReport, ServeError>) {
        let mut slot = self.report.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(report);
        }
        drop(slot);
        self.done.notify_all();
    }
}

/// Everything one finished session produced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session.
    pub id: SessionId,
    /// Stable-verdict transitions, in emission order. Each event carries
    /// the version of the model that classified its window.
    pub events: Vec<VerdictEvent>,
    /// Closed-window summaries (empty unless the server's
    /// [`drbw_stream::StreamConfig::record_windows`] is set).
    pub windows: Vec<WindowSummary>,
    /// The detector's final counters.
    pub stream: StreamMetrics,
    /// The session ring's final loss accounting.
    pub ring: RingCounters,
    /// Distinct model versions this session's detector classified with,
    /// in first-use order (length 1 when no swap landed mid-session).
    pub model_versions: Vec<u64>,
}

/// Client handle to one open session. Dropping the handle without calling
/// [`SessionHandle::finish`] abandons the session; the worker still
/// drains and finalizes it, the report is just never read.
#[derive(Debug)]
pub struct SessionHandle {
    pub(crate) inner: Arc<SessionInner>,
    pub(crate) notify: Arc<ShardNotify>,
    pub(crate) server_stats: Arc<ServerStats>,
    pub(crate) shard_stats: Arc<ShardStats>,
    pub(crate) shard: usize,
}

impl SessionHandle {
    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.inner.id
    }

    /// The shard this session is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Offer one sample (with its allocation-site attribution). The
    /// outcome is the ring's: `RejectedNewest` is backpressure the caller
    /// can react to, `EvictedOldest` means an older queued sample was
    /// dropped in this one's favour. Every offer lands in the drop
    /// accounting either way.
    ///
    /// # Panics
    /// Panics if called after [`SessionHandle::finish`] began (impossible
    /// through this API: `finish` consumes the handle).
    pub fn offer(&self, s: &MemSample, site: Option<SiteId>) -> Offer {
        use std::sync::atomic::Ordering::Relaxed;
        self.server_stats.offered.fetch_add(1, Relaxed);
        let outcome = {
            let mut q = self.inner.lock_queue();
            assert!(!q.closed, "offer on a finished session");
            let outcome = q.ring.offer(*s);
            match outcome {
                Offer::Accepted => {
                    q.sites.push_back(site);
                    q.enqueued_at.push_back(Instant::now());
                }
                Offer::EvictedOldest => {
                    q.sites.pop_front();
                    q.enqueued_at.pop_front();
                    q.sites.push_back(site);
                    q.enqueued_at.push_back(Instant::now());
                }
                Offer::RejectedNewest => {}
            }
            outcome
        };
        match outcome {
            Offer::Accepted => {
                self.server_stats.enqueued.fetch_add(1, Relaxed);
                self.shard_stats.depth.fetch_add(1, Relaxed);
            }
            Offer::EvictedOldest => {
                // One in, one out: depth unchanged, but a sample was lost.
                self.server_stats.enqueued.fetch_add(1, Relaxed);
                self.server_stats.dropped.fetch_add(1, Relaxed);
            }
            Offer::RejectedNewest => {
                self.server_stats.dropped.fetch_add(1, Relaxed);
            }
        }
        if outcome != Offer::RejectedNewest {
            self.notify.raise();
        }
        outcome
    }

    /// Offer with backpressure honoured: a `RejectedNewest` outcome is
    /// retried (yielding the CPU between attempts) until the sample is
    /// queued, so a producer that can afford to wait never loses samples.
    pub fn offer_blocking(&self, s: &MemSample, site: Option<SiteId>) {
        loop {
            match self.offer(s, site) {
                Offer::RejectedNewest => std::thread::yield_now(),
                _ => return,
            }
        }
    }

    /// Samples currently queued (the session's share of its shard's
    /// queue depth).
    pub fn queued(&self) -> usize {
        self.inner.lock_queue().ring.len()
    }

    /// Close the session and block until the shard worker has classified
    /// the stream's tail (flushing the final partial window), returning
    /// the session's report.
    ///
    /// # Errors
    /// [`ServeError::WorkerPanicked`] when the shard worker owning this
    /// session died before it could produce a report.
    pub fn finish(self) -> Result<SessionReport, ServeError> {
        {
            let mut q = self.inner.lock_queue();
            q.closed = true;
        }
        self.notify.raise();
        let mut report = self.inner.report.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = report.take() {
                return r;
            }
            report = self.inner.done.wait(report).unwrap_or_else(|e| e.into_inner());
        }
    }
}

//! Sessions: the client half of the service.
//!
//! A [`SessionHandle`] is the producer side of one profiling session: the
//! client offers samples — one at a time or as whole columnar
//! [`SampleBlock`]s — into a bounded [`pebs::ring::BlockRing`], a shard
//! worker on the other side drains sealed blocks into a pooled
//! [`drbw_stream::StreamingDetector`], and `finish()` returns the
//! [`SessionReport`] once the tail of the stream has been classified.
//! Allocation-site attributions ride in the blocks' site lane and the
//! enqueue timestamp (for verdict-latency accounting) is stamped per
//! block, so the ring's loss accounting
//! (`offered == dropped + popped + len`) is authoritative for everything
//! a sample carries — there are no sidecar queues to keep in lockstep.

use crate::error::ServeError;
use crate::metrics::{ServerStats, ShardStats};
use crate::server::ShardNotify;
use drbw_stream::{StreamMetrics, VerdictEvent, WindowSummary};
use pebs::alloc::SiteId;
use pebs::ring::{BlockOffer, BlockRing, Offer, RingCounters};
use pebs::sample::MemSample;
use pebs::SampleBlock;
use std::sync::{Arc, Condvar, Mutex, MutexGuard};

/// Identifier of one profiling session (unique per server).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SessionId(pub u64);

impl std::fmt::Display for SessionId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "s{}", self.0)
    }
}

/// The producer→worker queue: the columnar block ring (sites and enqueue
/// stamps travel inside the blocks).
#[derive(Debug)]
pub(crate) struct SessionQueue {
    pub ring: BlockRing,
    /// Set by `finish()`: no more offers; the worker finalizes once the
    /// ring drains.
    pub closed: bool,
}

/// Shared per-session state (handle on the client side, worker on the
/// shard side).
#[derive(Debug)]
pub(crate) struct SessionInner {
    pub id: SessionId,
    pub queue: Mutex<SessionQueue>,
    pub report: Mutex<Option<Result<SessionReport, ServeError>>>,
    pub done: Condvar,
    /// Raised by the worker after every drain: blocking producers wait
    /// here for ring space instead of spinning.
    pub space: Condvar,
}

impl SessionInner {
    /// Poison-tolerant queue lock: every critical section leaves the
    /// queue consistent at each statement boundary.
    pub(crate) fn lock_queue(&self) -> MutexGuard<'_, SessionQueue> {
        self.queue.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Deliver the final report (or the typed reason there is none) and
    /// wake the waiting client. First delivery wins: a shutdown sweep
    /// never overwrites a real report a worker already produced.
    pub(crate) fn deliver(&self, report: Result<SessionReport, ServeError>) {
        let mut slot = self.report.lock().unwrap_or_else(|e| e.into_inner());
        if slot.is_none() {
            *slot = Some(report);
        }
        drop(slot);
        self.done.notify_all();
    }
}

/// Everything one finished session produced.
#[derive(Debug, Clone)]
pub struct SessionReport {
    /// The session.
    pub id: SessionId,
    /// Stable-verdict transitions, in emission order. Each event carries
    /// the version of the model that classified its window.
    pub events: Vec<VerdictEvent>,
    /// Closed-window summaries (empty unless the server's
    /// [`drbw_stream::StreamConfig::record_windows`] is set).
    pub windows: Vec<WindowSummary>,
    /// The detector's final counters.
    pub stream: StreamMetrics,
    /// The session ring's final loss accounting.
    pub ring: RingCounters,
    /// Distinct model versions this session's detector classified with,
    /// in first-use order (length 1 when no swap landed mid-session).
    pub model_versions: Vec<u64>,
}

/// Client handle to one open session. Dropping the handle without calling
/// [`SessionHandle::finish`] abandons the session; the worker still
/// drains and finalizes it, the report is just never read.
#[derive(Debug)]
pub struct SessionHandle {
    pub(crate) inner: Arc<SessionInner>,
    pub(crate) notify: Arc<ShardNotify>,
    pub(crate) server_stats: Arc<ServerStats>,
    pub(crate) shard_stats: Arc<ShardStats>,
    pub(crate) shard: usize,
}

impl SessionHandle {
    /// The session's id.
    pub fn id(&self) -> SessionId {
        self.inner.id
    }

    /// The shard this session is pinned to.
    pub fn shard(&self) -> usize {
        self.shard
    }

    /// Offer one sample (with its allocation-site attribution). The
    /// outcome is the ring's: `RejectedNewest` is backpressure the caller
    /// can react to, `EvictedOldest` means an older queued **block** was
    /// dropped in this one's favour (the ring evicts whole blocks, so one
    /// eviction can drop several samples — all of them land in the drop
    /// accounting).
    ///
    /// # Panics
    /// Panics if called after [`SessionHandle::finish`] began (impossible
    /// through this API: `finish` consumes the handle).
    pub fn offer(&self, s: &MemSample, site: Option<SiteId>) -> Offer {
        use std::sync::atomic::Ordering::Relaxed;
        self.server_stats.offered.fetch_add(1, Relaxed);
        let (outcome, newly_dropped) = {
            let mut q = self.inner.lock_queue();
            assert!(!q.closed, "offer on a finished session");
            let before = q.ring.dropped();
            let outcome = q.ring.offer(*s, site);
            (outcome, q.ring.dropped() - before)
        };
        match outcome {
            Offer::Accepted => {
                self.server_stats.enqueued.fetch_add(1, Relaxed);
                self.shard_stats.depth.fetch_add(1, Relaxed);
            }
            Offer::EvictedOldest => {
                // One in, a whole block out: the evicted samples leave the
                // queue-depth gauge and enter the drop account.
                self.server_stats.enqueued.fetch_add(1, Relaxed);
                self.server_stats.dropped.fetch_add(newly_dropped, Relaxed);
                self.shard_stats.depth.fetch_add(1, Relaxed);
                self.shard_stats.depth.fetch_sub(newly_dropped, Relaxed);
            }
            Offer::RejectedNewest => {
                self.server_stats.dropped.fetch_add(newly_dropped, Relaxed);
            }
        }
        if outcome != Offer::RejectedNewest {
            self.notify.raise();
        }
        outcome
    }

    /// Offer with backpressure honoured: when the ring is full the call
    /// parks on the session's space condvar (woken by the worker's next
    /// drain) until the sample fits, so a producer that can afford to
    /// wait never loses a sample — its own or, under a drop-oldest ring,
    /// anyone else's.
    pub fn offer_blocking(&self, s: &MemSample, site: Option<SiteId>) {
        use std::sync::atomic::Ordering::Relaxed;
        self.server_stats.offered.fetch_add(1, Relaxed);
        {
            let mut q = self.inner.lock_queue();
            assert!(!q.closed, "offer on a finished session");
            while q.ring.is_full() {
                q = self.inner.space.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            let outcome = q.ring.offer(*s, site);
            debug_assert_eq!(outcome, Offer::Accepted, "space was just confirmed under the lock");
        }
        self.server_stats.enqueued.fetch_add(1, Relaxed);
        self.shard_stats.depth.fetch_add(1, Relaxed);
        self.notify.raise();
    }

    /// Offer a whole columnar block, blocking until the ring has room for
    /// all of it — one lock acquisition and at most one condvar wait per
    /// *block* instead of per sample, and the samples move by pointer
    /// swap. Returns an empty recycled shell (same capacity) for the
    /// producer to refill, completing the zero-copy loop.
    ///
    /// # Panics
    /// Panics if the block is larger than the session ring (it could
    /// never fit) or if called after [`SessionHandle::finish`] began.
    pub fn offer_block_blocking(&self, block: SampleBlock) -> SampleBlock {
        use std::sync::atomic::Ordering::Relaxed;
        let n = block.len();
        if n == 0 {
            return block;
        }
        self.server_stats.offered.fetch_add(n as u64, Relaxed);
        let shell = {
            let mut q = self.inner.lock_queue();
            assert!(!q.closed, "offer on a finished session");
            assert!(n <= q.ring.capacity(), "block of {n} samples cannot fit the session ring");
            while q.ring.space() < n {
                q = self.inner.space.wait(q).unwrap_or_else(|e| e.into_inner());
            }
            let (outcome, shell) = q.ring.offer_block(block);
            debug_assert_eq!(outcome, BlockOffer::Accepted, "space was just confirmed under the lock");
            shell
        };
        self.server_stats.enqueued.fetch_add(n as u64, Relaxed);
        self.shard_stats.depth.fetch_add(n as u64, Relaxed);
        self.notify.raise();
        shell
    }

    /// Samples currently queued (the session's share of its shard's
    /// queue depth).
    pub fn queued(&self) -> usize {
        self.inner.lock_queue().ring.len()
    }

    /// Close the session and block until the shard worker has classified
    /// the stream's tail (flushing the final partial window), returning
    /// the session's report.
    ///
    /// # Errors
    /// [`ServeError::WorkerPanicked`] when the shard worker owning this
    /// session died before it could produce a report.
    pub fn finish(self) -> Result<SessionReport, ServeError> {
        {
            let mut q = self.inner.lock_queue();
            q.closed = true;
        }
        self.notify.raise();
        let mut report = self.inner.report.lock().unwrap_or_else(|e| e.into_inner());
        loop {
            if let Some(r) = report.take() {
                return r;
            }
            report = self.inner.done.wait(report).unwrap_or_else(|e| e.into_inner());
        }
    }
}

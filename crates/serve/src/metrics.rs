//! Service observability: lock-free counters, a log2 verdict-latency
//! histogram, and the [`ServeMetrics`] snapshot with its one-line JSON
//! rendering (the `BENCH_*.json` dialect) shared by the load harness and
//! the CI smoke.

use std::sync::atomic::{AtomicU64, Ordering};

/// Number of power-of-two latency buckets (covers 1 ns .. ~584 years).
const BUCKETS: usize = 64;

/// A concurrent histogram over power-of-two nanosecond buckets. Recording
/// is one relaxed `fetch_add`; percentiles are read from a snapshot, so a
/// quantile is accurate to within its bucket's 2x width — plenty for the
/// p50/p99 the service reports.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Record one latency observation.
    pub(crate) fn record(&self, nanos: u64) {
        let idx = if nanos == 0 { 0 } else { (63 - nanos.leading_zeros()) as usize };
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile in nanoseconds (bucket upper bound — a guaranteed
    /// ceiling on the true quantile), 0 when nothing was recorded.
    pub(crate) fn quantile_nanos(&self, q: f64) -> f64 {
        let snapshot: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &n) in snapshot.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return 2f64.powi(idx as i32 + 1);
            }
        }
        2f64.powi(BUCKETS as i32)
    }

    /// Mean latency in nanoseconds (exact, unlike the quantiles).
    pub(crate) fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_nanos.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

/// Per-shard live counters, shared between the shard's worker (writes)
/// and the metrics snapshot (reads). All relaxed: each field is an
/// independent monotone counter or gauge.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Samples currently queued across the shard's sessions (gauge).
    pub depth: AtomicU64,
    /// Samples the shard's detectors have consumed.
    pub ingested: AtomicU64,
    /// Stable-verdict transitions emitted by the shard's detectors.
    pub verdicts: AtomicU64,
    /// Windows classified by the shard's detectors.
    pub windows: AtomicU64,
}

/// Server-wide ingress counters (session lifecycle and the offer path).
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    /// Samples ever offered to any session.
    pub offered: AtomicU64,
    /// Samples accepted into a session queue.
    pub enqueued: AtomicU64,
    /// Samples lost to ring overflow (refused or evicted).
    pub dropped: AtomicU64,
}

/// Point-in-time snapshot of the whole service, renderable as one line of
/// JSON ([`ServeMetrics::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions finished (report delivered, detector back in the pool).
    pub sessions_closed: u64,
    /// Sessions currently open (`opened - closed`).
    pub sessions_open: u64,
    /// Samples ever offered to any session.
    pub samples_offered: u64,
    /// Samples accepted into session queues.
    pub samples_enqueued: u64,
    /// Samples lost to ring overflow (the backpressure account).
    pub samples_dropped: u64,
    /// Samples consumed by detectors.
    pub samples_ingested: u64,
    /// Stable-verdict transitions emitted across all sessions.
    pub verdicts: u64,
    /// Windows classified across all sessions.
    pub windows_classified: u64,
    /// Current model publication version (registry epoch).
    pub model_epoch: u64,
    /// Models published after the initial one.
    pub model_swaps: u64,
    /// Samples currently queued, per shard (the queue-depth gauge).
    pub shard_depths: Vec<u64>,
    /// Verdict latencies recorded (enqueue of the window-closing sample →
    /// verdict emission).
    pub verdict_latency_count: u64,
    /// p50 verdict latency, microseconds (bucket ceiling).
    pub verdict_p50_us: f64,
    /// p99 verdict latency, microseconds (bucket ceiling).
    pub verdict_p99_us: f64,
    /// Mean verdict latency, microseconds (exact).
    pub verdict_mean_us: f64,
    /// Warm-hit rate of the attached run cache, when one is attached.
    pub cache_hit_rate: Option<f64>,
}

impl ServeMetrics {
    /// Render the snapshot as one line of JSON — the shared serializer
    /// used verbatim by `BENCH_serve.json` and the CI smoke output.
    pub fn to_json(&self) -> String {
        let depths = self.shard_depths.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",");
        let cache = match self.cache_hit_rate {
            Some(r) => format!("{r:.4}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"sessions_opened\": {}, \"sessions_closed\": {}, \"sessions_open\": {}, ",
                "\"samples_offered\": {}, \"samples_enqueued\": {}, \"samples_dropped\": {}, ",
                "\"samples_ingested\": {}, \"verdicts\": {}, \"windows_classified\": {}, ",
                "\"model_epoch\": {}, \"model_swaps\": {}, \"shard_depths\": [{}], ",
                "\"verdict_latency_count\": {}, \"verdict_p50_us\": {:.1}, \"verdict_p99_us\": {:.1}, ",
                "\"verdict_mean_us\": {:.1}, \"cache_hit_rate\": {}}}"
            ),
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_open,
            self.samples_offered,
            self.samples_enqueued,
            self.samples_dropped,
            self.samples_ingested,
            self.verdicts,
            self.windows_classified,
            self.model_epoch,
            self.model_swaps,
            depths,
            self.verdict_latency_count,
            self.verdict_p50_us,
            self.verdict_p99_us,
            self.verdict_mean_us,
            cache,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_their_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket [512, 1024) → ceiling 1024
        }
        h.record(1_000_000); // bucket ceiling 2^20
        assert_eq!(h.count(), 100);
        assert_eq!(h.quantile_nanos(0.5), 1024.0);
        assert_eq!(h.quantile_nanos(0.99), 1024.0);
        assert_eq!(h.quantile_nanos(1.0), 2f64.powi(20));
        assert!((h.mean_nanos() - (99.0 * 1000.0 + 1e6) / 100.0).abs() < 1e-9);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_nanos(0.99), 0.0);
        assert_eq!(h.mean_nanos(), 0.0);
    }

    #[test]
    fn json_is_one_line_and_carries_every_field() {
        let m = ServeMetrics {
            sessions_opened: 50,
            sessions_closed: 50,
            sessions_open: 0,
            samples_offered: 1000,
            samples_enqueued: 990,
            samples_dropped: 10,
            samples_ingested: 990,
            verdicts: 25,
            windows_classified: 400,
            model_epoch: 2,
            model_swaps: 1,
            shard_depths: vec![0, 3],
            verdict_latency_count: 25,
            verdict_p50_us: 128.0,
            verdict_p99_us: 512.0,
            verdict_mean_us: 97.3,
            cache_hit_rate: Some(0.75),
        };
        let json = m.to_json();
        assert!(!json.contains('\n'), "snapshot must render on one line");
        for needle in [
            "\"sessions_opened\": 50",
            "\"samples_dropped\": 10",
            "\"shard_depths\": [0,3]",
            "\"verdict_p99_us\": 512.0",
            "\"model_swaps\": 1",
            "\"cache_hit_rate\": 0.7500",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let none = ServeMetrics { cache_hit_rate: None, ..m };
        assert!(none.to_json().contains("\"cache_hit_rate\": null"));
    }
}

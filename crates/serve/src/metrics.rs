//! Service observability: lock-free counters, a log-linear verdict-latency
//! histogram, and the [`ServeMetrics`] snapshot with its one-line JSON
//! rendering (the `BENCH_*.json` dialect) shared by the load harness and
//! the CI smoke.

use std::sync::atomic::{AtomicU64, Ordering};

/// Sub-buckets per power-of-two decade: each decade `[2^e, 2^(e+1))` is
/// split into 16 equal-width buckets, bounding a bucket's relative width
/// at 1/16 (6.25%) of its value.
const SUB: usize = 16;

/// Total log-linear buckets (64 decades × 16, covering 1 ns .. ~584
/// years; values below 16 ns get exact single-nanosecond buckets).
const BUCKETS: usize = 64 * SUB;

/// A concurrent log-linear nanosecond histogram. Recording is one relaxed
/// `fetch_add`; quantiles are read from a snapshot and interpolated
/// within their bucket, so a reported quantile is accurate to ~6% of its
/// value — the plain power-of-two version this replaces could only say
/// "somewhere below the next power of two", which reported p50 = 33 ms
/// for sub-millisecond verdicts.
#[derive(Debug)]
pub(crate) struct LatencyHistogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_nanos: AtomicU64,
}

/// Bucket index of one observation: exact below 16 ns, else decade
/// `e = floor(log2 n)` sliced by the next four mantissa bits.
fn bucket(nanos: u64) -> usize {
    if nanos < SUB as u64 {
        return nanos as usize;
    }
    let e = 63 - nanos.leading_zeros() as usize;
    e * SUB + ((nanos >> (e - 4)) & 0xf) as usize
}

/// `[lo, hi)` nanosecond bounds of bucket `idx` (inverse of [`bucket`]).
fn bounds(idx: usize) -> (f64, f64) {
    if idx < SUB {
        return (idx as f64, idx as f64 + 1.0);
    }
    let (e, sub) = (idx / SUB, (idx % SUB) as f64);
    let width = 2f64.powi(e as i32 - 4);
    let lo = 2f64.powi(e as i32) + sub * width;
    (lo, lo + width)
}

impl LatencyHistogram {
    pub(crate) fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum_nanos: AtomicU64::new(0),
        }
    }

    /// Record one latency observation.
    pub(crate) fn record(&self, nanos: u64) {
        self.buckets[bucket(nanos)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_nanos.fetch_add(nanos, Ordering::Relaxed);
    }

    pub(crate) fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// The `q`-quantile in nanoseconds, interpolated by rank within its
    /// bucket (an estimate within the bucket's 6.25% relative width,
    /// never above the bucket's upper bound); 0 when nothing was
    /// recorded.
    pub(crate) fn quantile_nanos(&self, q: f64) -> f64 {
        let snapshot: Vec<u64> = self.buckets.iter().map(|b| b.load(Ordering::Relaxed)).collect();
        let total: u64 = snapshot.iter().sum();
        if total == 0 {
            return 0.0;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen = 0u64;
        for (idx, &n) in snapshot.iter().enumerate() {
            if n == 0 {
                continue;
            }
            if seen + n >= rank {
                let (lo, hi) = bounds(idx);
                // The rank-th of n evenly spread occupants.
                return lo + (hi - lo) * (rank - seen) as f64 / n as f64;
            }
            seen += n;
        }
        bounds(BUCKETS - 1).1
    }

    /// Mean latency in nanoseconds (exact, unlike the quantiles).
    pub(crate) fn mean_nanos(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum_nanos.load(Ordering::Relaxed) as f64 / n as f64
        }
    }
}

/// Per-shard live counters, shared between the shard's worker (writes)
/// and the metrics snapshot (reads). All relaxed: each field is an
/// independent monotone counter or gauge.
#[derive(Debug, Default)]
pub(crate) struct ShardStats {
    /// Samples currently queued across the shard's sessions (gauge).
    pub depth: AtomicU64,
    /// Samples the shard's detectors have consumed.
    pub ingested: AtomicU64,
    /// Stable-verdict transitions emitted by the shard's detectors.
    pub verdicts: AtomicU64,
    /// Windows classified by the shard's detectors.
    pub windows: AtomicU64,
}

/// Server-wide ingress counters (session lifecycle and the offer path).
#[derive(Debug, Default)]
pub(crate) struct ServerStats {
    pub sessions_opened: AtomicU64,
    pub sessions_closed: AtomicU64,
    /// Samples ever offered to any session.
    pub offered: AtomicU64,
    /// Samples accepted into a session queue.
    pub enqueued: AtomicU64,
    /// Samples lost to ring overflow (refused or evicted).
    pub dropped: AtomicU64,
}

/// Point-in-time snapshot of the whole service, renderable as one line of
/// JSON ([`ServeMetrics::to_json`]).
#[derive(Debug, Clone, PartialEq)]
pub struct ServeMetrics {
    /// Sessions ever opened.
    pub sessions_opened: u64,
    /// Sessions finished (report delivered, detector back in the pool).
    pub sessions_closed: u64,
    /// Sessions currently open (`opened - closed`).
    pub sessions_open: u64,
    /// Samples ever offered to any session.
    pub samples_offered: u64,
    /// Samples accepted into session queues.
    pub samples_enqueued: u64,
    /// Samples lost to ring overflow (the backpressure account).
    pub samples_dropped: u64,
    /// Samples consumed by detectors.
    pub samples_ingested: u64,
    /// Stable-verdict transitions emitted across all sessions.
    pub verdicts: u64,
    /// Windows classified across all sessions.
    pub windows_classified: u64,
    /// Current model publication version (registry epoch).
    pub model_epoch: u64,
    /// Models published after the initial one.
    pub model_swaps: u64,
    /// Samples currently queued, per shard (the queue-depth gauge).
    pub shard_depths: Vec<u64>,
    /// Verdict latencies recorded (enqueue of the window-closing sample →
    /// verdict emission).
    pub verdict_latency_count: u64,
    /// p50 verdict latency, microseconds (bucket ceiling).
    pub verdict_p50_us: f64,
    /// p99 verdict latency, microseconds (bucket ceiling).
    pub verdict_p99_us: f64,
    /// Mean verdict latency, microseconds (exact).
    pub verdict_mean_us: f64,
    /// Warm-hit rate of the attached run cache, when one is attached.
    pub cache_hit_rate: Option<f64>,
}

impl ServeMetrics {
    /// Render the snapshot as one line of JSON — the shared serializer
    /// used verbatim by `BENCH_serve.json` and the CI smoke output.
    pub fn to_json(&self) -> String {
        let depths = self.shard_depths.iter().map(|d| d.to_string()).collect::<Vec<_>>().join(",");
        let cache = match self.cache_hit_rate {
            Some(r) => format!("{r:.4}"),
            None => "null".to_string(),
        };
        format!(
            concat!(
                "{{\"sessions_opened\": {}, \"sessions_closed\": {}, \"sessions_open\": {}, ",
                "\"samples_offered\": {}, \"samples_enqueued\": {}, \"samples_dropped\": {}, ",
                "\"samples_ingested\": {}, \"verdicts\": {}, \"windows_classified\": {}, ",
                "\"model_epoch\": {}, \"model_swaps\": {}, \"shard_depths\": [{}], ",
                "\"verdict_latency_count\": {}, \"verdict_p50_us\": {:.1}, \"verdict_p99_us\": {:.1}, ",
                "\"verdict_mean_us\": {:.1}, \"cache_hit_rate\": {}}}"
            ),
            self.sessions_opened,
            self.sessions_closed,
            self.sessions_open,
            self.samples_offered,
            self.samples_enqueued,
            self.samples_dropped,
            self.samples_ingested,
            self.verdicts,
            self.windows_classified,
            self.model_epoch,
            self.model_swaps,
            depths,
            self.verdict_latency_count,
            self.verdict_p50_us,
            self.verdict_p99_us,
            self.verdict_mean_us,
            cache,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_quantiles_bound_their_bucket() {
        let h = LatencyHistogram::new();
        for _ in 0..99 {
            h.record(1_000); // bucket [992, 1024): ±3.2% of the value
        }
        h.record(1_000_000);
        assert_eq!(h.count(), 100);
        for q in [0.5, 0.99] {
            let est = h.quantile_nanos(q);
            assert!((992.0..=1024.0).contains(&est), "q{q} estimate {est} outside its bucket");
        }
        let max = h.quantile_nanos(1.0);
        assert!((983_040.0..=1_015_808.0).contains(&max), "q1 estimate {max} outside its bucket");
        assert!((h.mean_nanos() - (99.0 * 1000.0 + 1e6) / 100.0).abs() < 1e-9);
    }

    /// The regression the log-linear layout fixes: sub-millisecond
    /// verdicts must report sub-millisecond quantiles, not the 33.5 ms
    /// power-of-two ceiling (2^25 ns) the old buckets produced for
    /// anything in [16.8, 33.5] ms — and, at the scale that actually
    /// bit, ~1 µs work must not report as ~1 ms.
    #[test]
    fn histogram_resolves_fine_quantiles() {
        let h = LatencyHistogram::new();
        // A realistic verdict-latency spread: 0.8 .. 1.6 µs.
        for i in 0..800u64 {
            h.record(800 + i);
        }
        let p50 = h.quantile_nanos(0.5);
        assert!((p50 - 1200.0).abs() < 1200.0 * 0.07, "p50 {p50} not within 7% of the true 1200");
        let p99 = h.quantile_nanos(0.99);
        assert!((p99 - 1592.0).abs() < 1592.0 * 0.07, "p99 {p99} not within 7% of the true 1592");
        // Exact single-nanosecond buckets below 16 ns.
        let tiny = LatencyHistogram::new();
        tiny.record(0);
        tiny.record(7);
        assert!(tiny.quantile_nanos(1.0) <= 8.0);
    }

    #[test]
    fn empty_histogram_reports_zero() {
        let h = LatencyHistogram::new();
        assert_eq!(h.quantile_nanos(0.99), 0.0);
        assert_eq!(h.mean_nanos(), 0.0);
    }

    #[test]
    fn json_is_one_line_and_carries_every_field() {
        let m = ServeMetrics {
            sessions_opened: 50,
            sessions_closed: 50,
            sessions_open: 0,
            samples_offered: 1000,
            samples_enqueued: 990,
            samples_dropped: 10,
            samples_ingested: 990,
            verdicts: 25,
            windows_classified: 400,
            model_epoch: 2,
            model_swaps: 1,
            shard_depths: vec![0, 3],
            verdict_latency_count: 25,
            verdict_p50_us: 128.0,
            verdict_p99_us: 512.0,
            verdict_mean_us: 97.3,
            cache_hit_rate: Some(0.75),
        };
        let json = m.to_json();
        assert!(!json.contains('\n'), "snapshot must render on one line");
        for needle in [
            "\"sessions_opened\": 50",
            "\"samples_dropped\": 10",
            "\"shard_depths\": [0,3]",
            "\"verdict_p99_us\": 512.0",
            "\"model_swaps\": 1",
            "\"cache_hit_rate\": 0.7500",
        ] {
            assert!(json.contains(needle), "missing {needle} in {json}");
        }
        let none = ServeMetrics { cache_hit_rate: None, ..m };
        assert!(none.to_json().contains("\"cache_hit_rate\": null"));
    }
}

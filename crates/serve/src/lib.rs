//! # drbw-serve — the sharded, concurrent analysis service
//!
//! Everything below `drbw-serve` analyzes one run at a time. This crate
//! is the deployment shape the paper's tool would actually run as: a
//! long-lived service multiplexing **many concurrent profiling sessions**
//! over the streaming pipeline.
//!
//! * [`AnalysisServer`] — shard workers (sessions pinned by id hash, so
//!   each session's samples are classified in exactly their accepted FIFO
//!   order), each owning a pool of recycled
//!   [`drbw_stream::StreamingDetector`]s;
//! * [`SessionHandle`] — the producer side: a bounded columnar
//!   [`pebs::ring::BlockRing`] per session gives real backpressure with
//!   the ring's own drop accounting (`offered == dropped + popped + len`),
//!   and whole [`pebs::SampleBlock`]s move producer→worker by pointer
//!   swap ([`SessionHandle::offer_block_blocking`]) so a sample is copied
//!   once at block entry and never again;
//! * [`drbw_core::registry::ModelRegistry`] — atomic model hot-swap: one
//!   epoch load on the steady-state classify path, and every window and
//!   verdict stamped with the version of the exact model that classified
//!   it (in-flight windows finish on the model they started with);
//! * [`ServeMetrics`] — a one-line-JSON snapshot of the whole service
//!   (sessions, ingest/drop accounting, per-shard queue depth, verdict
//!   p50/p99 latency, model epoch, run-cache warm-hit rate).
//!
//! The load harness (`crates/bench/src/bin/serve_load.rs`) drives
//! thousands of simultaneous replayed sessions through one server and
//! records `BENCH_serve.json`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod error;
pub mod metrics;
pub mod server;
pub mod session;

pub use error::ServeError;
pub use metrics::ServeMetrics;
pub use server::{AnalysisServer, ServerConfig};
pub use session::{SessionHandle, SessionId, SessionReport};

#[cfg(test)]
mod tests {
    use super::*;
    use drbw_core::classifier::ContentionClassifier;
    use drbw_core::features::{NUM_SELECTED, REMOTE_COUNT};
    use drbw_core::Mode;
    use drbw_stream::{StreamConfig, StreamingDetector, WindowConfig};
    use mldt::dataset::Dataset;
    use mldt::tree::TrainConfig;
    use numasim::hierarchy::DataSource;
    use numasim::topology::{CoreId, NodeId, ThreadId};
    use pebs::ring::OverflowPolicy;
    use pebs::sample::MemSample;
    use std::sync::Arc;
    use std::time::Duration;

    /// The streaming-detector test classifier: splits on remote count /
    /// latency like the paper's tree.
    fn classifier() -> ContentionClassifier {
        let mut d = Dataset::binary(drbw_core::features::selected_names().iter().map(|s| s.to_string()).collect());
        for i in 0..30 {
            let mut good = [0.0; NUM_SELECTED];
            good[REMOTE_COUNT] = 2.0 + (i % 5) as f64;
            good[REMOTE_COUNT + 1] = 280.0 + i as f64;
            d.push(good.to_vec(), 0);
            let mut rmc = [0.0; NUM_SELECTED];
            rmc[REMOTE_COUNT] = 600.0 + i as f64;
            rmc[REMOTE_COUNT + 1] = 900.0 + 10.0 * i as f64;
            d.push(rmc.to_vec(), 1);
        }
        ContentionClassifier::train(&d, TrainConfig::default())
    }

    /// An opposite-bias classifier (anything remote is rmc), so a swap is
    /// observable in verdicts.
    fn eager_classifier() -> ContentionClassifier {
        let mut d = Dataset::binary(drbw_core::features::selected_names().iter().map(|s| s.to_string()).collect());
        for i in 0..30 {
            let mut good = [0.0; NUM_SELECTED];
            good[REMOTE_COUNT] = 0.5;
            good[REMOTE_COUNT + 1] = 100.0 + i as f64;
            d.push(good.to_vec(), 0);
            let mut rmc = [0.0; NUM_SELECTED];
            rmc[REMOTE_COUNT] = 30.0 + i as f64;
            rmc[REMOTE_COUNT + 1] = 200.0 + i as f64;
            d.push(rmc.to_vec(), 1);
        }
        ContentionClassifier::train(&d, TrainConfig::default())
    }

    fn sample(time: f64, node: u8, home: Option<u8>, source: DataSource, latency: f64) -> MemSample {
        MemSample {
            time,
            addr: 0x1000,
            cpu: CoreId(node as u32 * 8),
            thread: ThreadId(0),
            node: NodeId(node),
            source,
            home: home.map(NodeId),
            latency,
            is_write: false,
        }
    }

    /// `windows` windows of `n` contended remote samples each on channel
    /// 1→0 (1000-cycle tumbling grid).
    fn contended_stream(windows: usize, n: usize) -> Vec<MemSample> {
        let mut out = Vec::with_capacity(windows * n);
        for w in 0..windows {
            for i in 0..n {
                let t = w as f64 * 1000.0 + (i as f64 + 0.5) * 1000.0 / n as f64;
                out.push(sample(t, 1, Some(0), DataSource::RemoteDram, 950.0));
            }
        }
        out
    }

    fn quiet_stream(windows: usize, n: usize) -> Vec<MemSample> {
        let mut out = Vec::with_capacity(windows * n);
        for w in 0..windows {
            for i in 0..n {
                let t = w as f64 * 1000.0 + i as f64 * 1000.0 / n as f64;
                out.push(sample(t, 1, Some(1), DataSource::LocalDram, 180.0));
            }
        }
        out
    }

    fn test_config(shards: usize) -> ServerConfig {
        let stream = StreamConfig::new(4, WindowConfig::tumbling(1000.0));
        ServerConfig { shards, idle_wait: Duration::from_millis(1), ..ServerConfig::new(stream) }
    }

    #[test]
    fn contended_and_quiet_sessions_report_correctly() {
        let server = AnalysisServer::start(classifier(), test_config(2)).expect("start server");
        let hot = server.open_session();
        let cold = server.open_session();
        for s in contended_stream(4, 64) {
            hot.offer_blocking(&s, None);
        }
        for s in quiet_stream(4, 64) {
            cold.offer_blocking(&s, None);
        }
        let hot_report = hot.finish().expect("report");
        let cold_report = cold.finish().expect("report");
        assert!(
            hot_report.events.iter().any(|e| e.mode == Mode::Rmc),
            "contended session must raise rmc: {hot_report:?}"
        );
        assert!(cold_report.events.is_empty(), "quiet session must stay good");
        for r in [&hot_report, &cold_report] {
            assert_eq!(r.ring.offered, 256, "blocking offers lose nothing");
            assert_eq!(r.ring.dropped, 0);
            assert_eq!(r.ring.popped, 256);
            assert_eq!(r.stream.samples_ingested, 256);
            assert_eq!(r.model_versions, vec![1], "no swap happened");
        }
        let m = server.shutdown();
        assert_eq!((m.sessions_opened, m.sessions_closed, m.sessions_open), (2, 2, 0));
        assert_eq!(m.samples_offered, 512);
        assert_eq!(m.samples_ingested, 512);
        assert_eq!(m.samples_dropped, 0);
        assert!(m.verdicts >= 1);
        assert_eq!(m.verdict_latency_count, m.verdicts, "no flush-emitted verdicts here");
        assert!(m.shard_depths.iter().all(|&d| d == 0), "shutdown drains every queue: {m:?}");
        assert!(m.windows_classified >= 6);
        assert!(m.cache_hit_rate.is_none());
    }

    /// Hot swap: versions stamped on windows/events are monotone per
    /// session, never mixed within a window, and a session opened after
    /// the publish classifies entirely on the new version.
    #[test]
    fn hot_swap_stamps_every_window_with_exactly_one_version() {
        let cfg = ServerConfig {
            stream: StreamConfig { record_windows: true, ..StreamConfig::new(4, WindowConfig::tumbling(1000.0)) },
            ..test_config(1)
        };
        let server = AnalysisServer::start(classifier(), cfg).expect("start server");
        let mid = server.open_session();
        // Two windows on v1, then publish v2 mid-stream.
        for s in contended_stream(2, 48) {
            mid.offer_blocking(&s, None);
        }
        // Let the worker ingest the first two windows before publishing,
        // so the stream observably starts on v1 (a sample popped from the
        // ring is always ingested before the worker's next epoch check).
        while mid.queued() > 0 {
            std::thread::yield_now();
        }
        let v2 = server.publish_model(eager_classifier());
        assert_eq!(v2.version(), 2);
        // Give the worker a moment to observe the epoch, then stream more
        // windows (time offset continues the same grid).
        std::thread::sleep(Duration::from_millis(50));
        for s in contended_stream(6, 48) {
            let shifted = MemSample { time: s.time + 2000.0, ..s };
            mid.offer_blocking(&shifted, None);
        }
        let report = mid.finish().expect("report");
        let versions: Vec<u64> = report.windows.iter().map(|w| w.model_version).collect();
        assert!(!versions.is_empty());
        assert!(versions.windows(2).all(|p| p[0] <= p[1]), "window versions must be monotone: {versions:?}");
        assert!(versions.iter().all(|&v| v == 1 || v == 2), "only published versions appear: {versions:?}");
        assert_eq!(versions[0], 1, "the stream started before the publish");
        assert_eq!(*versions.last().unwrap(), 2, "the publish must land before the tail");
        for e in &report.events {
            assert_eq!(
                e.model_version, report.windows[e.window_index as usize].model_version,
                "an event's version must match its window's"
            );
        }
        assert_eq!(report.model_versions, vec![1, 2]);
        // A session opened after the publish runs on v2 from its first
        // window — propagation is guaranteed at adoption.
        let fresh = server.open_session();
        for s in contended_stream(3, 48) {
            fresh.offer_blocking(&s, None);
        }
        let fresh_report = fresh.finish().expect("report");
        assert!(fresh_report.windows.iter().all(|w| w.model_version == 2));
        assert_eq!(fresh_report.model_versions, vec![2]);
        let m = server.shutdown();
        assert_eq!((m.model_epoch, m.model_swaps), (2, 1));
    }

    /// A pooled (recycled) detector must serve a later session exactly
    /// like a fresh detector would: same events, same metrics.
    #[test]
    fn recycled_detectors_match_a_fresh_detector() {
        let cfg = test_config(1); // one shard → the second session reuses the pool
        let server = AnalysisServer::start(classifier(), cfg).expect("start server");
        // Dirty a detector with a contended session.
        let first = server.open_session();
        for s in contended_stream(5, 40) {
            first.offer_blocking(&s, None);
        }
        let _ = first.finish().expect("report");
        // The second session gets the recycled detector.
        let second = server.open_session();
        let stream = contended_stream(4, 64);
        for s in &stream {
            second.offer_blocking(s, None);
        }
        let report = second.finish().expect("report");
        drop(server);
        // Reference: a fresh detector over the same stream.
        let mut fresh = StreamingDetector::with_model(Arc::new(classifier()), 1, cfg.stream);
        for s in &stream {
            fresh.ingest(s, None);
        }
        fresh.flush();
        assert_eq!(report.events, fresh.drain_events(), "recycled detector diverged from fresh");
        assert_eq!(report.stream, fresh.metrics());
    }

    /// Overflow accounting is exact end to end: every offered sample is
    /// either ingested or counted dropped, under both ring policies.
    #[test]
    fn overflow_accounting_is_exact() {
        for policy in [OverflowPolicy::RejectNewest, OverflowPolicy::DropOldest] {
            let cfg = ServerConfig { ring_capacity: 4, overflow: policy, ..test_config(1) };
            let server = AnalysisServer::start(classifier(), cfg).expect("start server");
            let session = server.open_session();
            // Non-blocking offers into a 4-slot ring, much faster than the
            // worker needs to keep up: drops are expected and must balance.
            for s in contended_stream(6, 200) {
                session.offer(&s, None);
            }
            let report = session.finish().expect("report");
            assert_eq!(report.ring.offered, 1200);
            assert_eq!(report.ring.len, 0, "finish drains the ring");
            assert_eq!(
                report.ring.offered,
                report.ring.dropped + report.ring.popped,
                "every sample accounted: {:?}",
                report.ring
            );
            assert_eq!(report.stream.samples_ingested, report.ring.popped, "detector saw exactly the accepted samples");
            assert!(report.ring.peak <= 4);
            let m = server.shutdown();
            assert_eq!(m.samples_offered, 1200);
            assert_eq!(m.samples_dropped, report.ring.dropped);
            assert_eq!(m.samples_ingested, report.ring.popped);
        }
    }

    /// Satellite of the columnar pipeline: a blocking block producer
    /// saturating a tiny ring loses nothing (zero drops), retains at most
    /// the ring's capacity at any instant, and gets its emptied shells
    /// recycled back (zero steady-state allocation).
    #[test]
    fn blocking_block_offers_saturate_without_drops_or_growth() {
        let cfg = ServerConfig { ring_capacity: 32, ..test_config(1) };
        let server = AnalysisServer::start(classifier(), cfg).expect("start server");
        let session = server.open_session();
        let stream = contended_stream(40, 500); // 20_000 samples through a 32-slot ring
        let mut block = pebs::SampleBlock::with_capacity(16);
        for s in &stream {
            if block.is_full() {
                block = session.offer_block_blocking(block);
                assert!(block.is_empty(), "the recycled shell must come back empty");
                assert_eq!(block.capacity(), 16, "the recycled shell keeps its capacity");
            }
            assert!(block.push(s, None));
        }
        let tail = session.offer_block_blocking(block);
        assert!(tail.is_empty());
        let report = session.finish().expect("report");
        assert_eq!(report.ring.offered, 20_000);
        assert_eq!(report.ring.dropped, 0, "blocking block offers lose nothing under saturation");
        assert_eq!(report.ring.popped, 20_000);
        assert_eq!(report.stream.samples_ingested, 20_000);
        assert!(report.ring.peak <= 32, "retention bounded by the ring: {:?}", report.ring);
        assert!(report.events.iter().any(|e| e.mode == Mode::Rmc));
        let m = server.shutdown();
        assert_eq!(m.samples_dropped, 0);
        assert_eq!(m.samples_ingested, 20_000);
        assert!(m.shard_depths.iter().all(|&d| d == 0));
    }

    /// Many sessions, several shards, producers on multiple threads: all
    /// reports arrive, nothing is lost under blocking offers, and every
    /// contended session raises a verdict.
    #[test]
    fn concurrent_sessions_across_shards_all_report() {
        let server = Arc::new(AnalysisServer::start(classifier(), test_config(4)).expect("start server"));
        let sessions_per_thread = 12;
        let threads: Vec<_> = (0..3)
            .map(|tid| {
                let server = Arc::clone(&server);
                std::thread::spawn(move || {
                    // Interleave feeding across this thread's sessions so
                    // they are all concurrently active.
                    let handles: Vec<_> = (0..sessions_per_thread).map(|_| server.open_session()).collect();
                    let streams: Vec<Vec<MemSample>> = (0..sessions_per_thread)
                        .map(|i| if (tid + i) % 3 == 0 { quiet_stream(4, 32) } else { contended_stream(4, 32) })
                        .collect();
                    for chunk in 0..4 {
                        for (h, stream) in handles.iter().zip(&streams) {
                            for s in &stream[chunk * 32..(chunk + 1) * 32] {
                                h.offer_blocking(s, None);
                            }
                        }
                    }
                    handles
                        .into_iter()
                        .enumerate()
                        .map(|(i, h)| ((tid + i) % 3 == 0, h.finish().expect("report")))
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        let mut total_sessions = 0;
        for t in threads {
            for (is_quiet, report) in t.join().expect("producer thread panicked") {
                total_sessions += 1;
                assert_eq!(report.ring.dropped, 0, "blocking offers must not drop");
                assert_eq!(report.ring.offered, 128);
                assert_eq!(report.stream.samples_ingested, 128);
                let raised = report.events.iter().any(|e| e.mode == Mode::Rmc);
                assert_eq!(!is_quiet, raised, "verdict mismatch for {:?}", report.id);
            }
        }
        assert_eq!(total_sessions, 36);
        let server = Arc::into_inner(server).expect("all clones dropped");
        let m = server.shutdown();
        assert_eq!(m.sessions_closed, 36);
        assert_eq!(m.samples_ingested, 36 * 128);
        assert_eq!(m.samples_dropped, 0);
        assert_eq!(m.shard_depths.len(), 4);
    }

    /// Shutdown force-finalizes sessions that were never finished, so a
    /// straggling `finish()` still returns.
    #[test]
    fn shutdown_delivers_reports_for_open_sessions() {
        let server = AnalysisServer::start(classifier(), test_config(2)).expect("start server");
        let session = server.open_session();
        for s in contended_stream(4, 64) {
            session.offer_blocking(&s, None);
        }
        let m = server.shutdown();
        assert_eq!(m.sessions_closed, 1);
        let report = session.finish().expect("report"); // already delivered; returns at once
        assert_eq!(report.stream.samples_ingested, 256, "shutdown drained the queue first");
        assert!(report.events.iter().any(|e| e.mode == Mode::Rmc));
    }

    /// Regression (spawn failure): pre-fix, a failed worker spawn panicked
    /// out of `start` via `.expect("spawn shard worker")`, leaking the
    /// shards already running. Now it is a typed error and the
    /// already-spawned shards are joined cleanly first.
    #[test]
    fn spawn_failure_is_a_typed_error_with_clean_shutdown() {
        let _arm = crate::server::test_fail::FailSpawn::at(2);
        let before = thread_count();
        let err = AnalysisServer::start(classifier(), test_config(4)).expect_err("third spawn must fail");
        match err {
            ServeError::SpawnFailed { shard, ref source } => {
                assert_eq!(shard, 2);
                assert_eq!(source.kind(), std::io::ErrorKind::WouldBlock);
            }
            other => panic!("wrong error: {other}"),
        }
        assert!(!err.to_string().is_empty());
        // The two workers spawned before the failure were joined: no
        // thread leak (give the OS a moment to reap).
        for _ in 0..100 {
            if thread_count() <= before {
                break;
            }
            std::thread::sleep(Duration::from_millis(10));
        }
        assert!(thread_count() <= before, "spawned shards must be shut down on start failure");
    }

    /// Live threads of this process (Linux procfs; falls back to 0 so the
    /// leak assertion trivially passes on exotic platforms).
    fn thread_count() -> usize {
        std::fs::read_dir("/proc/self/task").map(|d| d.count()).unwrap_or(0)
    }

    /// A sample whose node is far outside the configured topology: the
    /// detector indexes per-channel state with it and panics.
    fn malformed_sample() -> MemSample {
        sample(10.0, 200, Some(0), DataSource::RemoteDram, 950.0)
    }

    /// Regression (worker panic): pre-fix, a panicking shard worker left
    /// its sessions' reports undelivered, so `finish()` hung forever (and
    /// shutdown saw the panic at `join`). Now every session owned by the
    /// dead shard — and any opened on it afterwards — gets a typed
    /// `WorkerPanicked` error, and the rest of the server keeps serving.
    #[test]
    fn worker_panic_fails_sessions_with_typed_error() {
        let server = AnalysisServer::start(classifier(), test_config(1)).expect("start server");
        let session = server.open_session();
        session.offer_blocking(&malformed_sample(), None);
        let err = session.finish().expect_err("worker died; no report is possible");
        assert!(matches!(err, ServeError::WorkerPanicked { shard: 0 }), "wrong error: {err}");
        // A session opened after the panic fails fast instead of hanging.
        let late = server.open_session();
        let err = late.finish().expect_err("dead shard must fail new sessions too");
        assert!(matches!(err, ServeError::WorkerPanicked { shard: 0 }));
        // Shutdown completes without surfacing the worker's panic.
        let m = server.shutdown();
        assert_eq!(m.sessions_opened, 2);
        assert_eq!(m.sessions_closed, 2, "panicked-shard sessions still count as closed");
    }
}

//! Executes workloads on the simulator, with or without PEBS sampling.

use crate::config::{RunConfig, Variant};
use crate::spec::Workload;
use numasim::config::MachineConfig;
use numasim::engine::{Engine, NullObserver, Observer};
use numasim::memmap::PlacementPolicy;
use numasim::stats::RunStats;
use pebs::alloc::AllocationTracker;
use pebs::sample::MemSample;
use pebs::sampler::{AddressSampler, SamplerConfig};
use std::time::{Duration, Instant};

/// Statistics of one executed phase.
#[derive(Debug, Clone)]
pub struct PhaseOutcome {
    /// Phase name.
    pub name: &'static str,
    /// Engine statistics for the phase.
    pub stats: RunStats,
    /// Whether this was an unmeasured warmup phase.
    pub warmup: bool,
}

/// Everything a workload run produces.
#[derive(Debug)]
pub struct RunOutcome {
    /// Per-phase results, in execution order.
    pub phases: Vec<PhaseOutcome>,
    /// Collected memory samples (empty when run unprofiled).
    pub samples: Vec<MemSample>,
    /// The allocation tracker (for attribution).
    pub tracker: AllocationTracker,
    /// Total simulated access events.
    pub observed_accesses: u64,
    /// Host wall-clock time of the simulation (for the overhead table).
    pub wall: Duration,
}

impl RunOutcome {
    /// Total simulated cycles over all **measured** phases (warmup phases
    /// populate the caches but do not count).
    pub fn cycles(&self) -> f64 {
        self.phases.iter().filter(|p| !p.warmup).map(|p| p.stats.cycles).sum()
    }

    /// Cycles of one named phase.
    ///
    /// # Panics
    /// Panics if no phase has that name.
    pub fn phase_cycles(&self, name: &str) -> f64 {
        self.phases.iter().find(|p| p.name == name).unwrap_or_else(|| panic!("no phase named {name:?}")).stats.cycles
    }

    /// Speedup of `self` over a baseline run of the same work.
    pub fn speedup_over(&self, baseline: &RunOutcome) -> f64 {
        baseline.cycles() / self.cycles()
    }

    /// Aggregate access counts over all measured phases.
    pub fn total_counts(&self) -> numasim::stats::AccessCounts {
        let mut total = numasim::stats::AccessCounts::default();
        for p in self.phases.iter().filter(|p| !p.warmup) {
            let c = p.stats.counts;
            total.l1 += c.l1;
            total.l2 += c.l2;
            total.l3 += c.l3;
            total.lfb += c.lfb;
            total.local_dram += c.local_dram;
            total.remote_dram += c.remote_dram;
        }
        total
    }
}

fn execute<O: Observer + Clone + Send>(
    workload: &dyn Workload,
    mcfg: &MachineConfig,
    run: &RunConfig,
    observer: O,
) -> (Vec<PhaseOutcome>, AllocationTracker, O) {
    assert!(workload.supports(run.variant), "{} does not support {:?}", workload.name(), run.variant);
    let built = workload.build(mcfg, run);
    let mut mm = built.mm;
    if run.variant == Variant::InterleaveAll {
        // The paper's coarse optimization: every heap page of the program
        // interleaved across all nodes.
        let ids: Vec<_> = mm.objects().map(|(id, _)| id).collect();
        for id in ids {
            mm.set_policy(id, PlacementPolicy::interleave_all(mcfg.topology.num_nodes()));
        }
    }
    if let Some(plan) = &run.plan {
        // Guided optimization: the tuner's per-object re-placements, on top
        // of (and overriding) whatever the variant did.
        if let Err(e) = plan.apply(&mut mm) {
            panic!("placement plan invalid for {}: {e}", workload.name());
        }
    }
    let mut engine = Engine::new(mcfg, mm, observer);
    let mut phases = Vec::with_capacity(built.phases.len());
    for phase in built.phases {
        if phase.warmup {
            engine.observer_mut().set_enabled(false);
        }
        // Honors `cfg.engine.shards` (and through it `DRBW_SHARDS`);
        // results are bit-identical for every shard count.
        let stats = engine.run_phase_auto(phase.threads);
        if phase.warmup {
            engine.observer_mut().set_enabled(true);
        }
        phases.push(PhaseOutcome { name: phase.name, stats, warmup: phase.warmup });
    }
    let (_, observer) = engine.into_parts();
    (phases, built.tracker, observer)
}

/// Run a workload under an arbitrary observer (e.g. the AMD-IBS or
/// IBM-MRK sampling backends). Returns the phase outcomes, the allocation
/// tracker, and the observer itself (holding whatever it collected).
/// Warmup phases disable the observer via [`Observer::set_enabled`].
pub fn run_observed<O: Observer + Clone + Send>(
    workload: &dyn Workload,
    mcfg: &MachineConfig,
    run_cfg: &RunConfig,
    observer: O,
) -> (Vec<PhaseOutcome>, AllocationTracker, O) {
    execute(workload, mcfg, run_cfg, observer)
}

/// Run a workload. With `sampling: Some(cfg)` a PEBS sampler observes the
/// run and the outcome carries its samples; with `None` the run is
/// unprofiled (the baseline side of the overhead experiment).
pub fn run(
    workload: &dyn Workload,
    mcfg: &MachineConfig,
    run_cfg: &RunConfig,
    sampling: Option<SamplerConfig>,
) -> RunOutcome {
    let start = Instant::now();
    match sampling {
        Some(cfg) => {
            let (phases, tracker, sampler) = execute(workload, mcfg, run_cfg, AddressSampler::new(cfg));
            let wall = start.elapsed();
            let observed = sampler.observed_accesses();
            let mut sampler = sampler;
            RunOutcome { phases, samples: sampler.drain_samples(), tracker, observed_accesses: observed, wall }
        }
        None => {
            let (phases, tracker, _) = execute(workload, mcfg, run_cfg, NullObserver);
            let wall = start.elapsed();
            let observed = phases.iter().filter(|p| !p.warmup).map(|p| p.stats.counts.total()).sum();
            RunOutcome { phases, samples: Vec::new(), tracker, observed_accesses: observed, wall }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::Input;
    use crate::micro::Sumv;

    #[test]
    fn profiling_perturbs_time_but_not_results() {
        let mcfg = MachineConfig::scaled();
        let rcfg = RunConfig::new(16, 4, Input::Medium);
        let plain = run(&Sumv, &mcfg, &rcfg, None);
        let profiled = run(&Sumv, &mcfg, &rcfg, Some(SamplerConfig::default()));
        // The same work is simulated either way...
        assert_eq!(plain.observed_accesses, profiled.observed_accesses);
        assert!(plain.samples.is_empty());
        assert!(!profiled.samples.is_empty());
        // ...but each recorded sample charges its per-sample cost to the
        // profiled program (the Table VII overhead), so the profiled run
        // is slightly slower in simulated time — and never faster.
        assert!(profiled.cycles() >= plain.cycles());
        assert!(profiled.cycles() < plain.cycles() * 1.30, "overhead should stay bounded on a short run");
        // With the perturbation disabled, sampling is pure observation.
        let pure = run(&Sumv, &mcfg, &rcfg, Some(SamplerConfig { per_sample_cost: 0.0, ..SamplerConfig::default() }));
        assert_eq!(pure.cycles(), plain.cycles());
    }

    #[test]
    fn interleave_all_changes_placement() {
        let mcfg = MachineConfig::scaled();
        let rcfg = RunConfig::new(32, 4, Input::Large);
        let base = run(&Sumv, &mcfg, &rcfg, None);
        let inter = run(&Sumv, &mcfg, &rcfg.with_variant(Variant::InterleaveAll), None);
        // Master-allocated sumv at large input contends; interleave helps.
        assert!(inter.speedup_over(&base) > 1.1, "speedup {}", inter.speedup_over(&base));
    }

    #[test]
    fn plan_application_matches_variant_treatment() {
        // A plan interleaving sumv's only tracked array must reproduce the
        // generic InterleaveAll variant exactly: same placement → identical
        // simulated outcome.
        let mcfg = MachineConfig::scaled();
        let rcfg = RunConfig::new(32, 4, Input::Large);
        let via_variant = run(&Sumv, &mcfg, &rcfg.with_variant(Variant::InterleaveAll), None);
        let plan = crate::plan::PlacementPlan::new()
            .with("v", crate::plan::PlanAction::Interleave((0..4).map(numasim::topology::NodeId).collect()));
        let via_plan = run(&Sumv, &mcfg, &rcfg.with_plan(plan), None);
        assert_eq!(via_plan.cycles(), via_variant.cycles());
        let base = run(&Sumv, &mcfg, &rcfg, None);
        assert!(via_plan.speedup_over(&base) > 1.1, "plan must deliver the interleave relief");
    }

    #[test]
    fn phase_lookup() {
        let mcfg = MachineConfig::scaled();
        let rcfg = RunConfig::new(16, 2, Input::Small);
        let out = run(&Sumv, &mcfg, &rcfg, None);
        assert!(out.phase_cycles("init") > 0.0);
        assert!(out.phase_cycles("compute") > 0.0);
        // Measured cycles exclude the warmup phase.
        let measured: f64 = out.phases.iter().filter(|p| !p.warmup).map(|p| p.stats.cycles).sum();
        let all: f64 = out.phases.iter().map(|p| p.stats.cycles).sum();
        assert_eq!(out.cycles(), measured);
        assert!(all > measured, "sumv has a warmup phase");
    }

    #[test]
    #[should_panic(expected = "no phase named")]
    fn unknown_phase_panics() {
        let mcfg = MachineConfig::scaled();
        let out = run(&Sumv, &mcfg, &RunConfig::new(16, 2, Input::Small), None);
        out.phase_cycles("nope");
    }
}

//! Analogs of the paper's 23 evaluated benchmarks (§VII), grouped by
//! suite, plus the registry used by the evaluation harnesses.
//!
//! Each analog reproduces the *memory behaviour* that determines its
//! contention class on the simulated machine: allocation placement
//! (master-thread first touch vs parallel first touch vs static data),
//! traversal (partitioned, shared, random, bursty), footprint relative to
//! the cache ladder, and arithmetic intensity. DESIGN.md documents the
//! substitution per benchmark.

pub mod common;
pub mod lulesh;
pub mod npb;
pub mod parsec;
pub mod rodinia;
pub mod sequoia;

use crate::spec::Workload;

pub use lulesh::Lulesh;
pub use npb::{Bt, Cg, Dc, Ep, Ft, Is, Lu, Mg, Sp, Ua};
pub use parsec::{Blackscholes, Bodytrack, Ferret, Fluidanimate, Freqmine, Raytrace, Streamcluster, Swaptions, X264};
pub use rodinia::Nw;
pub use sequoia::{Amg2006, Irsmk};

static SWAPTIONS: Swaptions = Swaptions;
static BLACKSCHOLES: Blackscholes = Blackscholes;
static BODYTRACK: Bodytrack = Bodytrack;
static FREQMINE: Freqmine = Freqmine;
static FERRET: Ferret = Ferret;
static FLUIDANIMATE: Fluidanimate = Fluidanimate;
static X264_W: X264 = X264;
static STREAMCLUSTER: Streamcluster = Streamcluster;
static RAYTRACE: Raytrace = Raytrace;
static IRSMK: Irsmk = Irsmk;
static AMG2006_W: Amg2006 = Amg2006;
static NW: Nw = Nw;
static BT: Bt = Bt;
static CG: Cg = Cg;
static DC: Dc = Dc;
static EP: Ep = Ep;
static FT: Ft = Ft;
static IS: Is = Is;
static LU: Lu = Lu;
static MG: Mg = Mg;
static UA: Ua = Ua;
static SP: Sp = Sp;
static LULESH_W: Lulesh = Lulesh;

/// The 21 benchmarks of the paper's Table V, in its row order. With the
/// paper's per-benchmark input sets this yields exactly 512 cases.
pub fn table_v_benchmarks() -> Vec<&'static dyn Workload> {
    vec![
        &SWAPTIONS,
        &BLACKSCHOLES,
        &BODYTRACK,
        &FREQMINE,
        &FERRET,
        &FLUIDANIMATE,
        &X264_W,
        &STREAMCLUSTER,
        &IRSMK,
        &AMG2006_W,
        &NW,
        &BT,
        &CG,
        &DC,
        &EP,
        &FT,
        &IS,
        &LU,
        &MG,
        &UA,
        &SP,
    ]
}

/// All 23 evaluated benchmarks (Table IV): the Table V set plus Raytrace
/// and LULESH.
pub fn all_benchmarks() -> Vec<&'static dyn Workload> {
    let mut v = table_v_benchmarks();
    v.push(&RAYTRACE);
    v.push(&LULESH_W);
    v
}

/// Look a benchmark up by its paper name (case-insensitive).
pub fn by_name(name: &str) -> Option<&'static dyn Workload> {
    all_benchmarks().into_iter().find(|w| w.name().eq_ignore_ascii_case(name))
}

/// The benchmarks the paper's Table IV classifies as `rmc` overall.
pub const RMC_BENCHMARKS: [&str; 6] = ["SP", "Streamcluster", "NW", "AMG2006", "IRSmk", "LULESH"];

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::cases_for;

    #[test]
    fn table_v_has_512_cases() {
        let total: usize = table_v_benchmarks().iter().map(|w| cases_for(&w.inputs()).len()).sum();
        assert_eq!(total, 512, "the paper sweeps 512 cases");
    }

    #[test]
    fn registry_names_unique_and_lookup_works() {
        let all = all_benchmarks();
        assert_eq!(all.len(), 23, "the paper investigates 23 benchmarks");
        let mut names: Vec<_> = all.iter().map(|w| w.name()).collect();
        names.sort_unstable();
        names.dedup();
        assert_eq!(names.len(), 23);
        assert!(by_name("streamcluster").is_some());
        assert!(by_name("IRSMK").is_some());
        assert!(by_name("nothere").is_none());
    }

    #[test]
    fn rmc_list_matches_table_iv() {
        for name in RMC_BENCHMARKS {
            assert!(by_name(name).is_some(), "{name} must be in the registry");
        }
        assert_eq!(RMC_BENCHMARKS.len(), 6, "six contended programs in Table IV");
    }

    #[test]
    fn per_benchmark_case_counts_match_table_v() {
        let expect = [
            ("Swaptions", 32),
            ("Blackscholes", 32),
            ("Bodytrack", 16),
            ("Freqmine", 32),
            ("Ferret", 32),
            ("Fluidanimate", 32),
            ("X264", 32),
            ("Streamcluster", 16),
            ("IRSmk", 24),
            ("AMG2006", 8),
            ("NW", 24),
            ("BT", 24),
            ("CG", 24),
            ("DC", 16),
            ("EP", 24),
            ("FT", 24),
            ("IS", 24),
            ("LU", 24),
            ("MG", 24),
            ("UA", 24),
            ("SP", 24),
        ];
        for (name, n) in expect {
            let w = by_name(name).unwrap();
            assert_eq!(cases_for(&w.inputs()).len(), n, "{name}");
        }
    }
}

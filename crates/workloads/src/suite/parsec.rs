//! PARSEC benchmark analogs (§VII): Blackscholes, Swaptions, Bodytrack,
//! Freqmine, Ferret, Fluidanimate, X264, Raytrace, and Streamcluster.
//!
//! All but Streamcluster are `good`-class: their parallel sections either
//! work on thread-private, parallel-initialised data, are compute-bound,
//! or share only cache-resident structures. Streamcluster randomly reads a
//! large master-allocated `block` array from every thread — the paper's
//! flagship replication case study (§VIII.C).

use crate::config::{Input, RunConfig, Variant};
use crate::spec::{BuiltWorkload, Suite, Workload};
use crate::suite::common::{partitioned_scan, Builder, ScanParams};
use numasim::access::{AccessMix, AccessStream, PointerChaseStream, SeqStream, ZipStream};
use numasim::config::MachineConfig;
use numasim::memmap::PlacementPolicy;

fn scale4(input: Input, s: u64, m: u64, l: u64, n: u64) -> u64 {
    match input {
        Input::Small => s,
        Input::Medium => m,
        Input::Large => l,
        Input::Native => n,
    }
}

/// Blackscholes: a master-allocated option `buffer` swept by partitioned
/// threads, but so compute-heavy (the closed-form pricing kernel) that
/// bandwidth never matters. DR-BW still ranks `buffer` top by CF; the
/// paper's co-locate experiment on it gains <1% (§VIII.G).
pub struct Blackscholes;

impl Workload for Blackscholes {
    fn name(&self) -> &'static str {
        "Blackscholes"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn supports(&self, v: Variant) -> bool {
        !matches!(v, Variant::Replicate)
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale4(run.input, 256 << 10, 512 << 10, 1 << 20, 2 << 20);
        let policy = b.hot_policy(size);
        let buffer = b.alloc("buffer", 310, size, policy);
        b.master_init("init", &[buffer]);
        // Many iterations over cached shares: only the cold first pass
        // touches DRAM, so placement is almost irrelevant (<1% co-locate
        // gain in §VIII.G).
        let threads = partitioned_scan(&b, &[buffer], ScanParams::read(30, 4, 20.0));
        b.phase("price", threads);
        b.finish()
    }
}

/// Swaptions: every thread prices its own swaptions on thread-private,
/// parallel-initialised simulation buffers — no shared bandwidth at all.
pub struct Swaptions;

impl Workload for Swaptions {
    fn name(&self) -> &'static str {
        "Swaptions"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale4(run.input, 512 << 10, 1 << 20, 2 << 20, 4 << 20);
        let sim = b.alloc("pdSwaptionPrice", 120, size, PlacementPolicy::FirstTouch);
        b.parallel_init("init", &[sim]);
        let threads = partitioned_scan(&b, &[sim], ScanParams::read(10, 4, 30.0));
        b.phase("hjm", threads);
        b.finish()
    }
}

/// Bodytrack: threads filter a shared, modest image pyramid; it caches
/// per node after warmup.
pub struct Bodytrack;

impl Workload for Bodytrack {
    fn name(&self) -> &'static str {
        "Bodytrack"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale4(run.input, 256 << 10, 512 << 10, 1 << 20, 1 << 20);
        let image = b.alloc("mImage", 77, size, PlacementPolicy::FirstTouch);
        let particles = b.alloc("mParticles", 90, size / 4, PlacementPolicy::FirstTouch);
        b.master_init("load", &[image, particles]);
        let mk_threads = |count: u64, passes: u64| {
            b.threads_from(|b, t| {
                let img = numasim::access::RandomStream::new(
                    image.base,
                    image.size,
                    count,
                    b.run.thread_seed(t),
                    AccessMix::read_only(),
                )
                .with_reps(2)
                .with_compute(15.0);
                let (pb, pl) = b.share(particles, t);
                let part = SeqStream::new(pb, pl, passes, AccessMix::write_every(4)).with_reps(4).with_compute(8.0);
                Box::new(ZipStream::new(vec![Box::new(img), Box::new(part)])) as Box<dyn AccessStream>
            })
        };
        let warm = mk_threads(4_000, 1);
        b.warmup_phase("warmup", warm);
        let threads = b.threads_from(|b, t| {
            let img = numasim::access::RandomStream::new(
                image.base,
                image.size,
                20_000,
                b.run.thread_seed(t),
                AccessMix::read_only(),
            )
            .with_reps(2)
            .with_compute(15.0);
            let (pb, pl) = b.share(particles, t);
            let part = SeqStream::new(pb, pl, 8, AccessMix::write_every(4)).with_reps(4).with_compute(8.0);
            Box::new(ZipStream::new(vec![Box::new(img), Box::new(part)])) as Box<dyn AccessStream>
        });
        b.phase("track", threads);
        b.finish()
    }
}

/// Freqmine: FP-growth — each thread chases pointers through its own
/// parallel-initialised tree. High latency per access, tiny bandwidth.
pub struct Freqmine;

impl Workload for Freqmine {
    fn name(&self) -> &'static str {
        "Freqmine"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let per_thread = scale4(run.input, 64 << 10, 128 << 10, 256 << 10, 512 << 10);
        let tree = b.alloc("fp_tree", 1501, per_thread * run.threads as u64, PlacementPolicy::FirstTouch);
        b.parallel_init("build_tree", &[tree]);
        let threads = b.threads_from(|b, t| {
            let (base, len) = b.share(tree, t);
            let lines = (len / 64).max(2) as usize;
            Box::new(PointerChaseStream::new(base, lines, 64, lines as u64 * 6, b.run.thread_seed(t)).with_compute(5.0))
                as Box<dyn AccessStream>
        });
        b.phase("mine", threads);
        b.finish()
    }
}

/// Ferret: the similarity-search pipeline shares a small read-only feature
/// database (cache-resident per node) and streams private query buffers.
pub struct Ferret;

impl Workload for Ferret {
    fn name(&self) -> &'static str {
        "Ferret"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let db = b.alloc("image_db", 800, 512 << 10, PlacementPolicy::FirstTouch);
        let qsize = scale4(run.input, 512 << 10, 1 << 20, 2 << 20, 4 << 20);
        let queries = b.alloc("query_buf", 812, qsize, PlacementPolicy::FirstTouch);
        b.master_init("load_db", &[db]);
        b.parallel_init("load_queries", &[queries]);
        let threads = b.threads_from(|b, t| {
            let dbr = numasim::access::RandomStream::new(
                db.base,
                db.size,
                15_000,
                b.run.thread_seed(t),
                AccessMix::read_only(),
            )
            .with_reps(2)
            .with_compute(25.0);
            let (qb, ql) = b.share(queries, t);
            let q = SeqStream::new(qb, ql, 6, AccessMix::read_only()).with_reps(4).with_compute(10.0);
            Box::new(ZipStream::new(vec![Box::new(dbr), Box::new(q)])) as Box<dyn AccessStream>
        });
        b.phase("rank", threads);
        b.finish()
    }
}

/// Fluidanimate: a parallel-initialised particle grid traversed in thread
/// partitions, with a slice of boundary traffic into neighbouring
/// partitions. The spread-out remote traffic is occasionally mistaken for
/// contention (the paper's 4 false positives on this benchmark).
pub struct Fluidanimate;

impl Workload for Fluidanimate {
    fn name(&self) -> &'static str {
        "Fluidanimate"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale4(run.input, 1 << 20, 2 << 20, 4 << 20, 8 << 20);
        let grid = b.alloc("cells", 445, size, PlacementPolicy::FirstTouch);
        b.parallel_init("populate", &[grid]);
        let threads = b.threads_from(|b, t| {
            let (base, len) = b.share(grid, t);
            let own = SeqStream::new(base, len, 4, AccessMix::write_every(6)).with_reps(4).with_compute(6.0);
            // Boundary exchange: a modest number of random accesses over
            // the whole (distributed) grid.
            let boundary = numasim::access::RandomStream::new(
                grid.base,
                grid.size,
                (len / 64) / 2,
                b.run.thread_seed(t),
                AccessMix::read_only(),
            )
            .with_reps(1)
            .with_compute(6.0);
            Box::new(ZipStream::new(vec![Box::new(own), Box::new(boundary)])) as Box<dyn AccessStream>
        });
        b.phase("advance", threads);
        b.finish()
    }
}

/// X264: each thread encodes its own frame slices (parallel-initialised,
/// streamed with real arithmetic in between).
pub struct X264;

impl Workload for X264 {
    fn name(&self) -> &'static str {
        "X264"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale4(run.input, 1 << 20, 2 << 20, 4 << 20, 8 << 20);
        let frames = b.alloc("frames", 2210, size, PlacementPolicy::FirstTouch);
        b.parallel_init("read_frames", &[frames]);
        let threads = partitioned_scan(
            &b,
            &[frames],
            ScanParams { passes: 6, reps: 4, compute: 12.0, write_every: 8, mlp: None },
        );
        b.phase("encode", threads);
        b.finish()
    }
}

/// Raytrace: all threads read a shared, cache-resident scene (Table IV
/// classifies it good; it is not part of the Table V case sweep).
pub struct Raytrace;

impl Workload for Raytrace {
    fn name(&self) -> &'static str {
        "Raytrace"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        Input::ALL.to_vec()
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let scene = b.alloc("bvh", 650, 1 << 20, PlacementPolicy::FirstTouch);
        b.master_init("load_scene", &[scene]);
        let threads = b.threads_from(|b, t| {
            Box::new(
                numasim::access::RandomStream::new(
                    scene.base,
                    scene.size,
                    25_000,
                    b.run.thread_seed(t),
                    AccessMix::read_only(),
                )
                .with_reps(2)
                .with_compute(30.0),
            ) as Box<dyn AccessStream>
        });
        b.phase("render", threads);
        b.finish()
    }
}

/// Streamcluster: the paper's replication case study (§VIII.C). All
/// threads compute distances against random points of the master-allocated
/// `block` array; `point.p` is swept in partitions. With the native input
/// `block` and `point.p` account for >90% of the contention CF.
pub struct Streamcluster;

impl Workload for Streamcluster {
    fn name(&self) -> &'static str {
        "Streamcluster"
    }
    fn suite(&self) -> Suite {
        Suite::Parsec
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Large, Input::Native] // simLarge and native (§VIII.C)
    }
    fn supports(&self, v: Variant) -> bool {
        // block is never overwritten after initialisation: replication is
        // the fitting optimization (co-locating a randomly-accessed array
        // helps no one).
        !matches!(v, Variant::CoLocate)
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let block_size = scale4(run.input, 2 << 20, 3 << 20, 5 << 20, 12 << 20);
        let block_policy = match run.variant {
            Variant::Replicate => PlacementPolicy::Replicated,
            _ => PlacementPolicy::FirstTouch,
        };
        let block = b.alloc("block", 1852, block_size, block_policy);
        let point_p = b.alloc("point.p", 1860, block_size / 2, PlacementPolicy::FirstTouch);
        let membership = b.alloc("switch_membership", 1871, block_size / 16, PlacementPolicy::FirstTouch);
        b.master_init("read_input", &[block, point_p, membership]);
        let count = scale4(run.input, 15_000, 20_000, 30_000, 60_000);
        let threads = b.threads_from(|b, t| {
            // Distance computations: random reads over the whole block.
            let dist = numasim::access::RandomStream::new(
                block.base,
                block.size,
                count,
                b.run.thread_seed(t),
                AccessMix::read_only(),
            )
            .with_reps(2)
            .with_compute(6.0);
            // Each thread also sweeps its own partition of point.p.
            let (pb, pl) = b.share(point_p, t);
            let pp = SeqStream::new(pb, pl, 4, AccessMix::read_only()).with_reps(4).with_compute(5.0);
            Box::new(ZipStream::new(vec![Box::new(dist), Box::new(pp)])) as Box<dyn AccessStream>
        });
        b.phase("cluster", threads);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::actual_contention;
    use crate::runner::run;

    fn mcfg() -> MachineConfig {
        MachineConfig::scaled()
    }

    #[test]
    fn good_benchmarks_stay_good_at_scale() {
        // The heaviest configuration the paper uses, on each good-class
        // PARSEC analog: interleaving must not find >10% to recover.
        let rcfg = RunConfig::new(64, 4, Input::Native);
        for w in [&Blackscholes as &dyn Workload, &Swaptions, &Freqmine, &X264] {
            let gt = actual_contention(w, &mcfg(), &rcfg);
            assert!(!gt.is_rmc, "{} speedup {}", w.name(), gt.interleave_speedup);
        }
    }

    #[test]
    fn streamcluster_native_contends() {
        let gt = actual_contention(&Streamcluster, &mcfg(), &RunConfig::new(32, 4, Input::Native));
        assert!(gt.is_rmc, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn streamcluster_replicate_beats_baseline() {
        let rcfg = RunConfig::new(32, 4, Input::Native);
        let base = run(&Streamcluster, &mcfg(), &rcfg, None);
        let repl = run(&Streamcluster, &mcfg(), &rcfg.with_variant(Variant::Replicate), None);
        let speedup = repl.speedup_over(&base);
        assert!(speedup > 1.2, "replication should relieve block contention, got {speedup}");
    }

    #[test]
    fn streamcluster_remote_traffic_vanishes_with_replication() {
        let rcfg = RunConfig::new(32, 4, Input::Native);
        let base = run(&Streamcluster, &mcfg(), &rcfg, None);
        let repl = run(&Streamcluster, &mcfg(), &rcfg.with_variant(Variant::Replicate), None);
        let rb = base.total_counts().remote_dram;
        let rr = repl.total_counts().remote_dram;
        assert!(rr * 2 < rb, "block reads become local: {rr} vs {rb}");
    }

    #[test]
    fn blackscholes_colocate_gains_little() {
        // §VIII.G: the speedup from co-locating buffer is <1% because the
        // benchmark never contends. Allow a small margin for cache noise.
        let rcfg = RunConfig::new(64, 4, Input::Native);
        let base = run(&Blackscholes, &mcfg(), &rcfg, None);
        let colo = run(&Blackscholes, &mcfg(), &rcfg.with_variant(Variant::CoLocate), None);
        let speedup = colo.speedup_over(&base);
        assert!(speedup < 1.05, "blackscholes is compute-bound, got {speedup}");
    }

    #[test]
    fn all_parsec_build_and_run_small() {
        let rcfg = RunConfig::new(16, 4, Input::Medium);
        for w in [
            &Blackscholes as &dyn Workload,
            &Swaptions,
            &Bodytrack,
            &Freqmine,
            &Ferret,
            &Fluidanimate,
            &X264,
            &Raytrace,
        ] {
            let out = run(w, &mcfg(), &rcfg, None);
            assert!(out.cycles() > 0.0, "{}", w.name());
        }
        // Streamcluster only defines Large/Native inputs.
        let out = run(&Streamcluster, &mcfg(), &RunConfig::new(16, 4, Input::Large), None);
        assert!(out.cycles() > 0.0);
    }
}

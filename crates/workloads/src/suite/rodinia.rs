//! Rodinia analog: Needleman–Wunsch (NW), the paper's §VIII.E case study.

use crate::config::{Input, RunConfig, Variant};
use crate::spec::{BuiltWorkload, Suite, Workload};
use crate::suite::common::{wavefront_partition_scan, Builder, ScanParams};
use numasim::config::MachineConfig;

/// Needleman–Wunsch: dynamic-programming sequence alignment over two big
/// matrices, `reference` and `input_itemsets`, both allocated by the
/// master thread but read by threads on every node as the wavefront
/// sweeps. Co-locating the two arrays across nodes removes the node-0
/// hotspot for a ~32.6% gain (the wavefront still crosses segments, so the
/// win is far smaller than IRSmk's).
pub struct Nw;

/// Matrix sizes: with the interleaved thread partition, each node's L3
/// retains its own threads' `size / nodes` slice, so contention needs
/// `size > nodes × L3` — small inputs cache cleanly, medium and large
/// stream (the paper's 16-of-24 contended cases).
fn matrix_bytes(input: Input) -> u64 {
    match input {
        Input::Small => 2 << 20,
        Input::Medium => 8 << 20,
        _ => 16 << 20,
    }
}

impl Workload for Nw {
    fn name(&self) -> &'static str {
        "NW"
    }
    fn suite(&self) -> Suite {
        Suite::Rodinia
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn supports(&self, v: Variant) -> bool {
        !matches!(v, Variant::Replicate)
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = matrix_bytes(run.input);
        let policy = b.hot_policy(size);
        let reference = b.alloc("reference", 98, size, policy.clone());
        let itemsets = b.alloc("input_itemsets", 101, size, policy);
        b.master_init("read_sequences", &[reference, itemsets]);
        // Wavefront: each thread's diagonal band visits every page of both
        // matrices, but the bands are disjoint — an interleaved partition.
        // After an unmeasured warmup sweep, the small input is cached per
        // node and only the medium/large inputs keep streaming (paper: 16
        // of 24 cases contended).
        let params = ScanParams { passes: 1, reps: 2, compute: 4.0, write_every: 6, mlp: None };
        let warm = wavefront_partition_scan(&b, &[reference, itemsets], params);
        b.warmup_phase("warmup", warm);
        let threads = wavefront_partition_scan(&b, &[reference, itemsets], ScanParams { passes: 4, ..params });
        b.phase("align", threads);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::actual_contention;
    use crate::runner::run;

    fn mcfg() -> MachineConfig {
        MachineConfig::scaled()
    }

    #[test]
    fn nw_contends_at_scale() {
        let gt = actual_contention(&Nw, &mcfg(), &RunConfig::new(64, 4, Input::Large));
        assert!(gt.is_rmc, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn nw_small_config_is_mild() {
        let gt = actual_contention(&Nw, &mcfg(), &RunConfig::new(16, 4, Input::Small));
        assert!(gt.interleave_speedup < 1.3, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn nw_colocate_gains_moderately() {
        // §VIII.E: +32.6% — meaningful but far from IRSmk's 6x, because
        // the shared wavefront still reads 3/4 of its data remotely after
        // co-location (the hotspot, not the traffic, is what disappears).
        let rcfg = RunConfig::new(64, 4, Input::Large);
        let base = run(&Nw, &mcfg(), &rcfg, None);
        let colo = run(&Nw, &mcfg(), &rcfg.with_variant(Variant::CoLocate), None);
        let speedup = colo.speedup_over(&base);
        assert!(speedup > 1.1 && speedup < 2.5, "moderate gain expected, got {speedup}");
    }

    #[test]
    fn nw_arrays_attract_the_samples() {
        use pebs::sampler::SamplerConfig;
        let out = run(&Nw, &mcfg(), &RunConfig::new(32, 4, Input::Large), Some(SamplerConfig::default()));
        let hot = out
            .samples
            .iter()
            .filter(|s| {
                out.tracker
                    .attribute_site(s.addr)
                    .map(|site| {
                        let l = &out.tracker.site(site).label;
                        l == "reference" || l == "input_itemsets"
                    })
                    .unwrap_or(false)
            })
            .count();
        assert!(hot * 10 > out.samples.len() * 9, "{hot}/{} samples on the two matrices", out.samples.len());
    }
}

//! NAS Parallel Benchmark analogs: BT, CG, DC, EP, FT, IS, LU, MG, UA, SP.
//!
//! The paper runs NPB with CLASS A/B/C (our Small/Medium/Large). Nine of
//! the ten are `good`: their OpenMP loops first-touch their own partitions,
//! fit shared structures in cache, or are compute-bound. The exceptions:
//!
//! * **SP** is contended at larger configurations — its arrays are
//!   statically allocated global data (homed with the master's image on
//!   node 0), which is also why DR-BW cannot attribute its samples to heap
//!   objects and the paper falls back to whole-program interleaving
//!   (§VIII.F);
//! * **UA** (and mildly FT) draw spread-out or bursty remote traffic that
//!   tempts the classifier into false positives without being worth >10%
//!   to interleave — the paper detects 9 (resp. 2) such cases.

use crate::config::{Input, RunConfig};
use crate::spec::{BuiltWorkload, Suite, Workload};
use crate::suite::common::{partitioned_scan, Builder, ScanParams};
use numasim::access::{AccessMix, AccessStream, PointerChaseStream, RandomStream, SeqStream, ZipStream};
use numasim::config::MachineConfig;
use numasim::memmap::PlacementPolicy;

fn scale3(input: Input, a: u64, b: u64, c: u64) -> u64 {
    match input {
        Input::Small => a,
        Input::Medium => b,
        _ => c,
    }
}

/// A partitioned, parallel-initialised multi-array stencil kernel — the
/// shape of BT, LU, and MG, which differ in array count, footprint, and
/// arithmetic density.
fn stencil_kernel(
    mcfg: &MachineConfig,
    run: &RunConfig,
    labels: &[&'static str],
    total: u64,
    passes: u64,
    compute: f64,
) -> BuiltWorkload {
    let mut b = Builder::new(mcfg, run);
    let per = total / labels.len() as u64;
    let handles: Vec<_> =
        labels.iter().enumerate().map(|(i, l)| b.alloc(l, 400 + i as u32, per, PlacementPolicy::FirstTouch)).collect();
    b.parallel_init("init", &handles);
    let threads = partitioned_scan(&b, &handles, ScanParams { passes, reps: 4, compute, write_every: 5, mlp: None });
    b.phase("solve", threads);
    b.finish()
}

macro_rules! npb_stencil {
    ($ty:ident, $name:literal, $labels:expr, $s:expr, $m:expr, $l:expr, $passes:expr, $compute:expr) => {
        /// NPB partitioned stencil benchmark (see module docs).
        pub struct $ty;
        impl Workload for $ty {
            fn name(&self) -> &'static str {
                $name
            }
            fn suite(&self) -> Suite {
                Suite::Npb
            }
            fn inputs(&self) -> Vec<Input> {
                vec![Input::Small, Input::Medium, Input::Large]
            }
            fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
                stencil_kernel(mcfg, run, $labels, scale3(run.input, $s, $m, $l), $passes, $compute)
            }
        }
    };
}

npb_stencil!(Bt, "BT", &["u", "rhs", "forcing", "lhs"], 2 << 20, 6 << 20, 12 << 20, 3, 4.0);
npb_stencil!(Lu, "LU", &["u", "rsd", "frct"], 2 << 20, 4 << 20, 10 << 20, 3, 3.0);
npb_stencil!(Mg, "MG", &["u_level0", "u_level1", "r_level0", "r_level1"], 2 << 20, 4 << 20, 8 << 20, 4, 3.0);

/// CG: partitioned sparse rows plus a small shared `x` vector that caches
/// in every node's L3.
pub struct Cg;

impl Workload for Cg {
    fn name(&self) -> &'static str {
        "CG"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let rows = scale3(run.input, 2 << 20, 6 << 20, 12 << 20);
        let a = b.alloc("a_sparse", 520, rows, PlacementPolicy::FirstTouch);
        let x = b.alloc("x", 531, 256 << 10, PlacementPolicy::FirstTouch);
        b.parallel_init("makea", &[a]);
        b.master_init("init_x", &[x]);
        let threads = b.threads_from(|b, t| {
            let (ab, al) = b.share(a, t);
            let rowscan = SeqStream::new(ab, al, 3, AccessMix::read_only()).with_reps(4).with_compute(4.0);
            let gather = RandomStream::new(x.base, x.size, 20_000, b.run.thread_seed(t), AccessMix::read_only())
                .with_compute(4.0);
            Box::new(ZipStream::new(vec![Box::new(rowscan), Box::new(gather)])) as Box<dyn AccessStream>
        });
        b.phase("cg_iter", threads);
        b.finish()
    }
}

/// EP: embarrassingly parallel random-number generation; all state lives
/// in registers and a tiny private table.
pub struct Ep;

impl Workload for Ep {
    fn name(&self) -> &'static str {
        "EP"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let table = b.alloc("q_table", 610, 64 << 10, PlacementPolicy::FirstTouch);
        b.parallel_init("init", &[table]);
        let passes = scale3(run.input, 30, 60, 100);
        let threads = partitioned_scan(&b, &[table], ScanParams::read(passes, 4, 60.0));
        b.phase("gaussian", threads);
        b.finish()
    }
}

/// FT: partitioned spectral arrays plus an all-to-all transpose through a
/// modest shared buffer — remote traffic with no single hotspot. The
/// paper's classifier flags 2 of its 24 cases (false positives).
pub struct Ft;

impl Workload for Ft {
    fn name(&self) -> &'static str {
        "FT"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale3(run.input, 2 << 20, 4 << 20, 8 << 20);
        let u = b.alloc("u_spectral", 700, size, PlacementPolicy::FirstTouch);
        let xbar = b.alloc("xbar", 711, 1 << 20, PlacementPolicy::FirstTouch);
        b.parallel_init("init", &[u, xbar]);
        let threads = b.threads_from(|b, t| {
            let (ub, ul) = b.share(u, t);
            let fft = SeqStream::new(ub, ul, 3, AccessMix::write_every(4)).with_reps(4).with_compute(5.0);
            // Transpose: stride across the whole shared buffer.
            let transpose = SeqStream::new(xbar.base, xbar.size, 1, AccessMix::read_only())
                .with_stride(64 * (1 + t as u64 % 7))
                .with_reps(2)
                .with_compute(3.0);
            Box::new(ZipStream::new(vec![Box::new(fft), Box::new(transpose)])) as Box<dyn AccessStream>
        });
        b.phase("fft", threads);
        b.finish()
    }
}

/// IS: integer bucket sort — random writes over a distributed
/// (parallel-initialised) key space spread evenly over nodes.
pub struct Is;

impl Workload for Is {
    fn name(&self) -> &'static str {
        "IS"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let size = scale3(run.input, 1 << 20, 2 << 20, 4 << 20);
        let keys = b.alloc("key_array", 310, size, PlacementPolicy::FirstTouch);
        let buckets = b.alloc("bucket_ptrs", 320, 256 << 10, PlacementPolicy::FirstTouch);
        b.parallel_init("gen_keys", &[keys, buckets]);
        let threads = b.threads_from(|b, t| {
            let (kb, kl) = b.share(keys, t);
            let scan = SeqStream::new(kb, kl, 3, AccessMix::read_only()).with_reps(4).with_compute(4.0);
            let scatter =
                RandomStream::new(buckets.base, buckets.size, 15_000, b.run.thread_seed(t), AccessMix::write_only())
                    .with_compute(4.0);
            Box::new(ZipStream::new(vec![Box::new(scan), Box::new(scatter)])) as Box<dyn AccessStream>
        });
        b.phase("rank", threads);
        b.finish()
    }
}

/// DC: the data-cube benchmark — pointer-heavy aggregation over private
/// views, two input sizes in the paper's sweep.
pub struct Dc;

impl Workload for Dc {
    fn name(&self) -> &'static str {
        "DC"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let per_thread = scale3(run.input, 128 << 10, 256 << 10, 256 << 10);
        let views = b.alloc("cube_views", 150, per_thread * run.threads as u64, PlacementPolicy::FirstTouch);
        b.parallel_init("load", &[views]);
        let threads = b.threads_from(|b, t| {
            let (base, len) = b.share(views, t);
            let lines = (len / 64).max(2) as usize;
            Box::new(
                PointerChaseStream::new(base, lines, 64, lines as u64 * 4, b.run.thread_seed(t)).with_compute(20.0),
            ) as Box<dyn AccessStream>
        });
        b.phase("aggregate", threads);
        b.finish()
    }
}

/// UA: unstructured adaptive mesh — long private assembly stretches
/// punctuated by bursts of random access into a master-allocated mesh.
/// The bursts contend briefly (high sampled latencies ⇒ the classifier
/// cries `rmc`), but they are a small share of the runtime, so
/// interleaving recovers <10%: the paper's 9 false positives.
pub struct Ua;

impl Workload for Ua {
    fn name(&self) -> &'static str {
        "UA"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        let mesh_size = scale3(run.input, 2 << 20, 4 << 20, 6 << 20);
        let mesh = b.alloc("ua_mesh", 900, mesh_size, PlacementPolicy::FirstTouch);
        let private = b.alloc("elem_work", 910, (128 << 10) * run.threads as u64, PlacementPolicy::FirstTouch);
        b.master_init("read_mesh", &[mesh]);
        b.parallel_init("init_work", &[private]);
        let threads = b.threads_from(|b, t| {
            let (pb, pl) = b.share(private, t);
            // Compute-heavy private assembly, interleaved with a limited
            // amount of random gathering from the shared mesh. The mesh
            // accesses see elevated (remote, mildly queued) latencies —
            // enough to tempt a latency-keyed classifier — but are too
            // small a share of the runtime for interleaving to pay off.
            let assembly = SeqStream::new(pb, pl, 24, AccessMix::write_every(4)).with_reps(4).with_compute(15.0);
            let gather = RandomStream::new(mesh.base, mesh.size, 4_000, b.run.thread_seed(t), AccessMix::read_only())
                .with_compute(2.0);
            Box::new(ZipStream::new(vec![Box::new(assembly) as Box<dyn AccessStream>, Box::new(gather)]))
                as Box<dyn AccessStream>
        });
        b.phase("adapt", threads);
        b.finish()
    }
}

/// SP: the contended NPB code (§VIII.F). Its arrays are statically
/// allocated — homed on node 0 with the executable image and *invisible to
/// heap attribution* — and swept by all threads. DR-BW detects the
/// contention but cannot name the arrays; the paper applies whole-program
/// interleaving for up to 1.75×.
pub struct Sp;

impl Workload for Sp {
    fn name(&self) -> &'static str {
        "SP"
    }
    fn suite(&self) -> Suite {
        Suite::Npb
    }
    fn inputs(&self) -> Vec<Input> {
        vec![Input::Small, Input::Medium, Input::Large]
    }
    fn build(&self, mcfg: &MachineConfig, run: &RunConfig) -> BuiltWorkload {
        let mut b = Builder::new(mcfg, run);
        // Sizes chosen so CLASS A caches per node after the first sweep,
        // B is borderline, and C streams — concentrating the contended
        // cases at high threads-per-node, like the paper's 11 of 24.
        let size = scale3(run.input, 2 << 20, 6 << 20, 16 << 20);
        // Static global arrays: untracked, bound to node 0 outright.
        let u = b.alloc_untracked("u_static", size / 2, PlacementPolicy::Bind(numasim::topology::NodeId(0)));
        let rhs = b.alloc_untracked("rhs_static", size / 2, PlacementPolicy::Bind(numasim::topology::NodeId(0)));
        // One unmeasured warmup sweep, then the measured ADI iterations:
        // cache-resident configurations stay bandwidth-friendly.
        let params = ScanParams { passes: 1, reps: 4, compute: 2.0, write_every: 5, mlp: None };
        let warm = partitioned_scan(&b, &[u, rhs], params);
        b.warmup_phase("warmup", warm);
        let threads = partitioned_scan(&b, &[u, rhs], ScanParams { passes: 6, ..params });
        b.phase("adi", threads);
        b.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ground_truth::actual_contention;
    use crate::runner::run;

    fn mcfg() -> MachineConfig {
        MachineConfig::scaled()
    }

    #[test]
    fn all_npb_build_and_run() {
        let rcfg = RunConfig::new(16, 4, Input::Small);
        for w in [&Bt as &dyn Workload, &Cg, &Dc, &Ep, &Ft, &Is, &Lu, &Mg, &Ua, &Sp] {
            let out = run(w, &mcfg(), &rcfg, None);
            assert!(out.cycles() > 0.0, "{}", w.name());
        }
    }

    #[test]
    fn partitioned_kernels_are_local() {
        let rcfg = RunConfig::new(32, 4, Input::Large);
        for w in [&Bt as &dyn Workload, &Lu, &Mg] {
            let out = run(w, &mcfg(), &rcfg, None);
            let c = out.total_counts();
            assert!(c.remote_dram < c.local_dram / 10, "{}: remote {} local {}", w.name(), c.remote_dram, c.local_dram);
        }
    }

    #[test]
    fn good_npb_do_not_benefit_from_interleave() {
        let rcfg = RunConfig::new(32, 4, Input::Large);
        for w in [&Bt as &dyn Workload, &Ep, &Cg] {
            let gt = actual_contention(w, &mcfg(), &rcfg);
            assert!(!gt.is_rmc, "{} speedup {}", w.name(), gt.interleave_speedup);
        }
    }

    #[test]
    fn sp_contends_at_heavy_configs() {
        let gt = actual_contention(&Sp, &mcfg(), &RunConfig::new(64, 4, Input::Large));
        assert!(gt.is_rmc, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn sp_light_configs_are_good() {
        let gt = actual_contention(&Sp, &mcfg(), &RunConfig::new(16, 4, Input::Small));
        assert!(!gt.is_rmc, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn ua_interleave_gain_is_modest() {
        // UA's bursts are too small a share of runtime for interleaving to
        // pay off — the precondition of the paper's false positives.
        let gt = actual_contention(&Ua, &mcfg(), &RunConfig::new(64, 4, Input::Large));
        assert!(gt.interleave_speedup < 1.10, "speedup {}", gt.interleave_speedup);
    }

    #[test]
    fn sp_samples_are_unattributable() {
        use pebs::sampler::SamplerConfig;
        let out = run(&Sp, &mcfg(), &RunConfig::new(32, 4, Input::Medium), Some(SamplerConfig::default()));
        assert!(!out.samples.is_empty());
        let attributed = out.samples.iter().filter(|s| out.tracker.attribute(s.addr).is_some()).count();
        assert_eq!(attributed, 0, "static arrays are invisible to heap attribution");
    }
}
